//! Property tests over all serving policies: conservation, causality,
//! non-overlap, and SPLIT-specific scheduling invariants, for arbitrary
//! workloads.

use proptest::prelude::*;
use sched::policy::SplitCfg;
use sched::{simulate, ModelRuntime, ModelTable, Policy};
use workload::Arrival;

/// A deployment of 1-4 models with varied block structure.
fn table_strategy() -> impl Strategy<Value = ModelTable> {
    proptest::collection::vec((2_000.0f64..60_000.0, 1usize..4, 1.0f64..1.3), 1..4).prop_map(
        |models| {
            let mut t = ModelTable::new();
            for (i, (exec, blocks, overhead)) in models.into_iter().enumerate() {
                let name = format!("m{i}");
                if blocks == 1 {
                    t.insert(ModelRuntime::vanilla(name, i as u32, exec));
                } else {
                    let total = exec * overhead;
                    let blocks_us = vec![total / blocks as f64; blocks];
                    t.insert(ModelRuntime::split(name, i as u32, exec, blocks_us));
                }
            }
            t
        },
    )
}

fn workload_strategy() -> impl Strategy<Value = (ModelTable, Vec<Arrival>)> {
    (
        table_strategy(),
        proptest::collection::vec((0.0f64..400_000.0, 0usize..4), 1..60),
    )
        .prop_map(|(table, raw)| {
            let n_models = table.len();
            let mut arrivals: Vec<Arrival> = raw
                .into_iter()
                .map(|(at, m)| Arrival {
                    id: 0,
                    model: format!("m{}", m % n_models),
                    arrival_us: at,
                })
                .collect();
            arrivals.sort_by(|a, b| a.arrival_us.total_cmp(&b.arrival_us));
            for (i, a) in arrivals.iter_mut().enumerate() {
                a.id = i as u64;
            }
            (table, arrivals)
        })
}

fn all_policies() -> Vec<Policy> {
    let mut p = Policy::all_default();
    p.push(Policy::StreamParallel(Default::default()));
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Conservation + causality for every policy.
    #[test]
    fn policies_serve_everything_causally((table, arrivals) in workload_strategy()) {
        for policy in all_policies() {
            let r = simulate(&policy, &arrivals, &table);
            prop_assert_eq!(r.completions.len(), arrivals.len(), "{}", policy.name());
            let mut ids: Vec<u64> = r.completions.iter().map(|c| c.id).collect();
            ids.sort_unstable();
            prop_assert_eq!(ids, (0..arrivals.len() as u64).collect::<Vec<_>>());
            for c in &r.completions {
                prop_assert!(c.start_us + 1e-9 >= c.arrival_us, "{}: {c:?}", policy.name());
                prop_assert!(c.end_us > c.arrival_us, "{}: {c:?}", policy.name());
                prop_assert!(c.e2e_us() + 1e-6 >= c.exec_us, "{}: beat isolated: {c:?}", policy.name());
            }
        }
    }

    /// Sequential policies never overlap device spans.
    #[test]
    fn sequential_policies_never_overlap((table, arrivals) in workload_strategy()) {
        for policy in [
            Policy::Split(SplitCfg::default()),
            Policy::ClockWork,
            Policy::Prema(Default::default()),
        ] {
            let r = simulate(&policy, &arrivals, &table);
            prop_assert!(r.trace.first_overlap().is_none(), "{}", policy.name());
        }
    }

    /// SPLIT: requests of one task type complete in arrival order.
    #[test]
    fn split_same_task_completion_order((table, arrivals) in workload_strategy()) {
        let r = simulate(&Policy::Split(SplitCfg::default()), &arrivals, &table);
        let mut by_task: std::collections::HashMap<u32, Vec<(f64, f64)>> = Default::default();
        for c in &r.completions {
            by_task.entry(c.task).or_default().push((c.arrival_us, c.end_us));
        }
        for (task, mut v) in by_task {
            v.sort_by(|a, b| a.0.total_cmp(&b.0));
            for w in v.windows(2) {
                prop_assert!(w[0].1 <= w[1].1 + 1e-9,
                    "task {task}: FIFO violated ({} ends after {})", w[0].1, w[1].1);
            }
        }
    }

    /// SPLIT: blocks of one request never interleave with blocks of the
    /// *same* request out of order, and each request runs exactly its
    /// planned number of blocks.
    #[test]
    fn split_runs_exactly_the_planned_blocks((table, arrivals) in workload_strategy()) {
        let cfg = SplitCfg { alpha: 4.0, elastic: None };
        let r = simulate(&Policy::Split(cfg), &arrivals, &table);
        for a in &arrivals {
            let planned = table.get(&a.model).blocks_us.len();
            let spans = r.trace.matching(&format!("#{}/", a.id));
            prop_assert_eq!(spans.len(), planned, "request {}", a.id);
            for w in spans.windows(2) {
                prop_assert!(w[0].end_us <= w[1].start_us + 1e-9);
            }
        }
    }

    /// Work conservation for SPLIT: total device busy time equals the sum
    /// of every request's planned block time (elasticity off).
    #[test]
    fn split_work_conservation((table, arrivals) in workload_strategy()) {
        let cfg = SplitCfg { alpha: 4.0, elastic: None };
        let r = simulate(&Policy::Split(cfg), &arrivals, &table);
        let busy: f64 = r.trace.events().iter().map(|e| e.duration_us()).sum();
        let expected: f64 = arrivals.iter().map(|a| table.get(&a.model).split_total_us()).sum();
        prop_assert!((busy - expected).abs() < 1e-6 * expected.max(1.0));
    }

    /// Determinism: every policy is a pure function of its inputs.
    #[test]
    fn policies_are_deterministic((table, arrivals) in workload_strategy()) {
        for policy in all_policies() {
            let a = simulate(&policy, &arrivals, &table);
            let b = simulate(&policy, &arrivals, &table);
            prop_assert_eq!(a.completions, b.completions, "{}", policy.name());
        }
    }
}
