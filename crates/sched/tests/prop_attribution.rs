//! Property test for critical-path attribution: for arbitrary workloads
//! and every serving policy, each completed request's latency components
//! (queue + compute + transfer + stall + sched) must sum back to its
//! end-to-end latency within 1 ns — the `SA301` invariant the analyzer
//! enforces on fixed scenarios, checked here over random ones.

use proptest::prelude::*;
use sched::{simulate, ModelRuntime, ModelTable, Policy};
use split_obs::SUM_TOLERANCE_US;
use workload::Arrival;

fn table_strategy() -> impl Strategy<Value = ModelTable> {
    proptest::collection::vec((2_000.0f64..60_000.0, 1usize..4, 1.0f64..1.3), 1..4).prop_map(
        |models| {
            let mut t = ModelTable::new();
            for (i, (exec, blocks, overhead)) in models.into_iter().enumerate() {
                let name = format!("m{i}");
                if blocks == 1 {
                    t.insert(ModelRuntime::vanilla(name, i as u32, exec));
                } else {
                    let total = exec * overhead;
                    let blocks_us = vec![total / blocks as f64; blocks];
                    t.insert(
                        ModelRuntime::split(name, i as u32, exec, blocks_us)
                            .with_transfer_bytes(vec![1 << 20; blocks - 1]),
                    );
                }
            }
            t
        },
    )
}

fn workload_strategy() -> impl Strategy<Value = (ModelTable, Vec<Arrival>)> {
    (
        table_strategy(),
        proptest::collection::vec((0.0f64..400_000.0, 0usize..4), 1..40),
    )
        .prop_map(|(table, raw)| {
            let n_models = table.len();
            let mut arrivals: Vec<Arrival> = raw
                .into_iter()
                .map(|(at, m)| Arrival {
                    id: 0,
                    model: format!("m{}", m % n_models),
                    arrival_us: at,
                })
                .collect();
            arrivals.sort_by(|a, b| a.arrival_us.total_cmp(&b.arrival_us));
            for (i, a) in arrivals.iter_mut().enumerate() {
                a.id = i as u64;
            }
            (table, arrivals)
        })
}

/// The five serving policies attribution must hold for.
fn all_policies() -> Vec<Policy> {
    let mut p = Policy::all_default();
    p.push(Policy::StreamParallel(Default::default()));
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn components_sum_to_e2e_for_every_policy(
        (table, arrivals) in workload_strategy()
    ) {
        for policy in all_policies() {
            let r = simulate(&policy, &arrivals, &table);
            let attrs = r.attribution();
            // Every completion gets an attribution.
            prop_assert_eq!(
                attrs.len(),
                r.completions.len(),
                "{}: attribution coverage",
                policy.name()
            );
            for a in &attrs {
                prop_assert!(
                    a.residual_us().abs() <= SUM_TOLERANCE_US,
                    "{}: req {} residual {} µs (components {:?} vs e2e {})",
                    policy.name(),
                    a.req,
                    a.residual_us(),
                    (a.queue_us, a.compute_us, a.transfer_us, a.stall_us, a.sched_us),
                    a.e2e_us()
                );
                // Components are non-negative by construction.
                for c in [a.queue_us, a.compute_us, a.transfer_us, a.stall_us, a.sched_us] {
                    prop_assert!(c >= -1e-9, "{}: negative component {c}", policy.name());
                }
                // Attribution matches the engine's completion record.
                let c = r.completions.iter().find(|c| c.id == a.req).expect("completion");
                prop_assert!((a.e2e_us() - c.e2e_us()).abs() < 1e-6);
            }
        }
    }
}
