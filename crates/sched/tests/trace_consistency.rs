//! Completions and device traces must tell the same story: the trace is
//! not decoration, it is the ground truth the completions summarize.

use sched::policy::{PremaCfg, SplitCfg};
use sched::{simulate, ModelRuntime, ModelTable, Policy};
use workload::Arrival;

fn table() -> ModelTable {
    let mut t = ModelTable::new();
    t.insert(ModelRuntime::vanilla("short", 0, 8_000.0));
    t.insert(ModelRuntime::split(
        "mid",
        1,
        30_000.0,
        vec![16_000.0, 16_500.0],
    ));
    t.insert(ModelRuntime::split("long", 2, 60_000.0, vec![22_000.0; 3]));
    t
}

fn workload(n: u64) -> Vec<Arrival> {
    (0..n)
        .map(|i| Arrival {
            id: i,
            model: ["short", "mid", "long"][(i % 3) as usize].into(),
            arrival_us: i as f64 * 9_000.0,
        })
        .collect()
}

#[test]
fn split_completions_match_trace_spans() {
    let r = simulate(
        &Policy::Split(SplitCfg {
            alpha: 4.0,
            elastic: None,
        }),
        &workload(30),
        &table(),
    );
    for c in &r.completions {
        let spans = r.trace.matching(&format!("{}#{}/", c.model, c.id));
        assert!(!spans.is_empty(), "request {} left no trace", c.id);
        let first = spans
            .iter()
            .map(|e| e.start_us)
            .fold(f64::INFINITY, f64::min);
        let last = spans.iter().map(|e| e.end_us).fold(0.0f64, f64::max);
        assert!(
            (first - c.start_us).abs() < 1e-9,
            "{}: {first} vs {}",
            c.id,
            c.start_us
        );
        assert!(
            (last - c.end_us).abs() < 1e-9,
            "{}: {last} vs {}",
            c.id,
            c.end_us
        );
        // Total traced device time equals the plan's block sum.
        let traced: f64 = spans.iter().map(|e| e.duration_us()).sum();
        let planned = table().get(&c.model).split_total_us();
        assert!(
            (traced - planned).abs() < 1e-6,
            "{}: {traced} vs {planned}",
            c.id
        );
    }
}

#[test]
fn clockwork_trace_is_one_span_per_request() {
    let r = simulate(&Policy::ClockWork, &workload(20), &table());
    assert_eq!(r.trace.events().len(), 20);
    for c in &r.completions {
        let label = format!("{}#{}", c.model, c.id);
        let spans: Vec<_> = r
            .trace
            .events()
            .iter()
            .filter(|e| e.label == label)
            .collect();
        assert_eq!(spans.len(), 1);
        assert!((spans[0].duration_us() - c.exec_us).abs() < 1e-9);
    }
}

#[test]
fn prema_trace_covers_each_request_exactly_once() {
    // Request granularity: each request is one contiguous traced span
    // (plus its switch overhead folded in).
    let r = simulate(&Policy::Prema(PremaCfg::default()), &workload(20), &table());
    for c in &r.completions {
        let label = format!("{}#{}", c.model, c.id);
        let spans: Vec<_> = r
            .trace
            .events()
            .iter()
            .filter(|e| e.label == label)
            .collect();
        assert_eq!(spans.len(), 1, "request {}", c.id);
        assert!(spans[0].duration_us() >= c.exec_us - 1e-9);
    }
}

#[test]
fn npu_prema_trace_chunks_sum_to_exec() {
    let cfg = PremaCfg::npu_style();
    let r = simulate(&Policy::Prema(cfg.clone()), &workload(20), &table());
    for c in &r.completions {
        let label = format!("{}#{}", c.model, c.id);
        let spans: Vec<_> = r
            .trace
            .events()
            .iter()
            .filter(|e| e.label == label)
            .collect();
        let traced: f64 = spans.iter().map(|e| e.duration_us()).sum();
        // Work plus at most one switch overhead per chunk.
        let max_chunks = (c.exec_us / cfg.checkpoint_us).ceil();
        assert!(traced + 1e-6 >= c.exec_us, "request {}", c.id);
        assert!(
            traced <= c.exec_us + max_chunks * cfg.switch_overhead_us + 1e-6,
            "request {}: traced {traced}",
            c.id
        );
    }
}

#[test]
fn busy_time_is_work_conserving_for_sequential_policies() {
    let arrivals = workload(40);
    let t = table();
    let total_exec: f64 = arrivals.iter().map(|a| t.get(&a.model).exec_us).sum();
    for policy in [Policy::ClockWork, Policy::Prema(PremaCfg::default())] {
        let r = simulate(&policy, &arrivals, &t);
        let busy: f64 = r.trace.events().iter().map(|e| e.duration_us()).sum();
        assert!(busy + 1e-6 >= total_exec, "{}", policy.name());
        // Overheads are bounded (PREMA pays per-switch costs only).
        assert!(busy <= total_exec * 1.2, "{}: busy {busy}", policy.name());
    }
}
