//! The drift-watch projection of a simulation must conserve every
//! request and react to injected surges, mirroring how `flight()` is a
//! faithful lazy view of the same recorder.

use sched::policy::SplitCfg;
use sched::{simulate, ModelRuntime, ModelTable, Policy};
use split_watch::WatchCfg;
use workload::Arrival;

fn table() -> ModelTable {
    let mut t = ModelTable::new();
    t.insert(ModelRuntime::vanilla("short", 0, 8_000.0));
    t.insert(ModelRuntime::split(
        "mid",
        1,
        30_000.0,
        vec![16_000.0, 16_500.0],
    ));
    t
}

fn split_policy() -> Policy {
    Policy::Split(SplitCfg {
        alpha: 4.0,
        elastic: None,
    })
}

#[test]
fn drift_report_conserves_simulated_requests() {
    let arrivals: Vec<Arrival> = (0..40)
        .map(|i| Arrival {
            id: i,
            model: ["short", "mid"][(i % 2) as usize].into(),
            arrival_us: i as f64 * 12_000.0,
        })
        .collect();
    let r = simulate(&split_policy(), &arrivals, &table());
    let report = r.drift(WatchCfg {
        window_us: 100_000.0,
        ..WatchCfg::default()
    });
    assert!(report.conservation_holds(), "{report:?}");
    assert_eq!(report.fed.arrivals, 40);
    assert_eq!(report.fed.completions, r.completions.len() as u64);
    // Two projections of the same result are identical (pure replay).
    let again = r.drift(WatchCfg {
        window_us: 100_000.0,
        ..WatchCfg::default()
    });
    assert_eq!(again, report);
}

#[test]
fn drift_report_flags_injected_surge() {
    // 30 calm windows of one short request each, then a sustained 12×
    // arrival surge. Detectors warm up on the calm prefix and must fire
    // after the onset.
    let window_us = 50_000.0;
    let mut arrivals = Vec::new();
    let mut id = 0u64;
    for k in 0..60 {
        let n = if k < 30 { 1 } else { 12 };
        for i in 0..n {
            arrivals.push(Arrival {
                id,
                model: "short".into(),
                arrival_us: k as f64 * window_us + 10.0 + i as f64 * 100.0,
            });
            id += 1;
        }
    }
    let r = simulate(&split_policy(), &arrivals, &table());
    let report = r.drift(WatchCfg {
        window_us,
        ..WatchCfg::default()
    });
    assert!(
        !report.events.is_empty(),
        "12x surge left no regime events:\n{}",
        report.render_text()
    );
    let first = &report.events[0];
    assert!(
        (30..=33).contains(&(first.window as usize)),
        "first event at window {} not within 3 windows of onset 30",
        first.window
    );
}
