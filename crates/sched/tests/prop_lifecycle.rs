//! Property tests over the lifecycle telemetry every policy emits:
//! for arbitrary workloads the recording must be structurally
//! well-formed ([`split_telemetry::Recorder::validate`]), its block
//! spans must not overlap on a stream (checked again through
//! [`gpu_sim::Trace::first_overlap`]), and events must be conserved —
//! every arrival has exactly one arrival event and one completion
//! event.

use gpu_sim::Trace;
use proptest::prelude::*;
use sched::{simulate, ModelRuntime, ModelTable, Policy};
use split_telemetry::Event;
use workload::Arrival;

/// A deployment of 1-4 models with varied block structure.
fn table_strategy() -> impl Strategy<Value = ModelTable> {
    proptest::collection::vec((2_000.0f64..60_000.0, 1usize..4, 1.0f64..1.3), 1..4).prop_map(
        |models| {
            let mut t = ModelTable::new();
            for (i, (exec, blocks, overhead)) in models.into_iter().enumerate() {
                let name = format!("m{i}");
                if blocks == 1 {
                    t.insert(ModelRuntime::vanilla(name, i as u32, exec));
                } else {
                    let total = exec * overhead;
                    let blocks_us = vec![total / blocks as f64; blocks];
                    t.insert(ModelRuntime::split(name, i as u32, exec, blocks_us));
                }
            }
            t
        },
    )
}

fn workload_strategy() -> impl Strategy<Value = (ModelTable, Vec<Arrival>)> {
    (
        table_strategy(),
        proptest::collection::vec((0.0f64..400_000.0, 0usize..4), 1..50),
    )
        .prop_map(|(table, raw)| {
            let n_models = table.len();
            let mut arrivals: Vec<Arrival> = raw
                .into_iter()
                .map(|(at, m)| Arrival {
                    id: 0,
                    model: format!("m{}", m % n_models),
                    arrival_us: at,
                })
                .collect();
            arrivals.sort_by(|a, b| a.arrival_us.total_cmp(&b.arrival_us));
            for (i, a) in arrivals.iter_mut().enumerate() {
                a.id = i as u64;
            }
            (table, arrivals)
        })
}

/// The five serving policies the lifecycle recorder must cover.
fn all_policies() -> Vec<Policy> {
    let mut p = Policy::all_default();
    p.push(Policy::StreamParallel(Default::default()));
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn lifecycle_recording_is_well_formed_for_every_policy(
        (table, arrivals) in workload_strategy()
    ) {
        for policy in all_policies() {
            let r = simulate(&policy, &arrivals, &table);
            let errors = r.recorder.validate();
            prop_assert!(
                errors.is_empty(),
                "{}: lifecycle invariants violated: {errors:?}",
                policy.name()
            );

            // Conservation: one arrival and one completion event per
            // submitted request, covering exactly the submitted ids.
            let mut arrived: Vec<u64> = Vec::new();
            let mut completed: Vec<u64> = Vec::new();
            for e in r.recorder.events() {
                match e {
                    Event::Arrival { req, .. } => arrived.push(*req),
                    Event::Completion { req, .. } => completed.push(*req),
                    _ => {}
                }
            }
            arrived.sort_unstable();
            completed.sort_unstable();
            let want: Vec<u64> = (0..arrivals.len() as u64).collect();
            prop_assert_eq!(&arrived, &want, "{}: arrivals", policy.name());
            prop_assert_eq!(&completed, &want, "{}: completions", policy.name());

            // Re-check stream exclusivity through the trace machinery:
            // rebuilding a Trace from the recorded block spans must show
            // no same-stream overlap.
            let mut spans = Trace::new();
            let mut open: std::collections::HashMap<u64, f64> =
                std::collections::HashMap::new();
            for e in r.recorder.events() {
                match e {
                    Event::BlockStart { req, t_us, .. } => {
                        open.insert(*req, *t_us);
                    }
                    Event::BlockEnd { req, block, stream, t_us } => {
                        let start = open.remove(req).expect("validated pairing");
                        spans.record(
                            format!("req{req}/b{block}"),
                            *stream as usize,
                            start,
                            *t_us,
                        );
                    }
                    _ => {}
                }
            }
            let overlap = spans.first_overlap();
            prop_assert!(
                overlap.is_none(),
                "{}: same-stream overlap: {overlap:?}",
                policy.name()
            );
        }
    }

    #[test]
    fn split_decision_events_cover_every_arrival(
        (table, arrivals) in workload_strategy()
    ) {
        let r = simulate(&Policy::Split(Default::default()), &arrivals, &table);
        let decisions = r
            .recorder
            .events()
            .filter(|e| matches!(e, Event::PreemptDecision { .. }))
            .count();
        let enqueues = r
            .recorder
            .events()
            .filter(|e| matches!(e, Event::Enqueue { .. }))
            .count();
        prop_assert_eq!(decisions, arrivals.len());
        prop_assert_eq!(enqueues, arrivals.len());
        // Derived metrics see every decision.
        let reg = r.metrics();
        prop_assert_eq!(
            reg.histogram("sched.preempt.decision_ns").count(),
            arrivals.len() as u64
        );
    }
}
