//! Runtime model descriptions and completion records.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Everything a policy needs to know about one deployed model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelRuntime {
    /// Model name (matches the workload trace). Interned as `Arc<str>`
    /// once per deployment: every completion and scheduling decision that
    /// carries the name bumps a refcount instead of copying the string
    /// (the policies used to clone a `String` per scheduled request).
    pub name: Arc<str>,
    /// Dense task id — requests of one task stay FIFO under SPLIT.
    pub task: u32,
    /// Isolated vanilla execution time `Ext`, µs (the QoS baseline).
    pub exec_us: f64,
    /// Block times from the offline split plan, µs. A single entry means
    /// the model runs unsplit.
    pub blocks_us: Vec<f64>,
    /// Activation bytes crossing each block boundary (length
    /// `blocks_us.len() - 1`; empty for unsplit models or when the plan
    /// predates transfer accounting). The transfer *time* is already
    /// folded into the blocks' overhead — these sizes only attribute the
    /// traffic in telemetry.
    #[serde(default)]
    pub transfer_bytes: Vec<u64>,
}

impl ModelRuntime {
    /// An unsplit model.
    pub fn vanilla(name: impl Into<Arc<str>>, task: u32, exec_us: f64) -> Self {
        Self {
            name: name.into(),
            task,
            exec_us,
            blocks_us: vec![exec_us],
            transfer_bytes: Vec::new(),
        }
    }

    /// A split model with the given block times.
    pub fn split(name: impl Into<Arc<str>>, task: u32, exec_us: f64, blocks_us: Vec<f64>) -> Self {
        assert!(!blocks_us.is_empty(), "need at least one block");
        Self {
            name: name.into(),
            task,
            exec_us,
            blocks_us,
            transfer_bytes: Vec::new(),
        }
    }

    /// Attach per-boundary activation sizes (builder style).
    ///
    /// # Panics
    /// When the length is not `blocks_us.len() - 1` (one boundary
    /// between each pair of consecutive blocks).
    pub fn with_transfer_bytes(mut self, bytes: Vec<u64>) -> Self {
        assert_eq!(
            bytes.len(),
            self.blocks_us.len().saturating_sub(1),
            "one transfer per block boundary"
        );
        self.transfer_bytes = bytes;
        self
    }

    /// Total device time when run split, µs (≥ `exec_us` by the splitting
    /// overhead).
    pub fn split_total_us(&self) -> f64 {
        self.blocks_us.iter().sum()
    }
}

/// The deployment: model name → runtime description.
/// Kept in a `BTreeMap` so serialization and any future iteration are
/// deterministic (split-analyze audits scheduling paths for
/// iteration-order dependence).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ModelTable {
    map: BTreeMap<String, ModelRuntime>,
}

impl ModelTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a model (replacing an existing entry of the same name).
    pub fn insert(&mut self, m: ModelRuntime) {
        self.map.insert(m.name.to_string(), m);
    }

    /// Look up a model.
    ///
    /// # Panics
    /// Panics when the model is unknown — a trace referencing an
    /// undeployed model is a harness bug worth failing loudly on.
    pub fn get(&self, name: &str) -> &ModelRuntime {
        self.map
            .get(name)
            .unwrap_or_else(|| panic!("model {name:?} not deployed"))
    }

    /// Whether a model is deployed.
    pub fn contains(&self, name: &str) -> bool {
        self.map.contains_key(name)
    }

    /// Number of deployed models.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no models are deployed.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterate the deployed models in name order (the `BTreeMap` order),
    /// so anything derived from a full-table walk — e.g. the per-device
    /// rescaled tables a fleet builds — is deterministic.
    pub fn iter(&self) -> impl Iterator<Item = &ModelRuntime> {
        self.map.values()
    }
}

/// One served request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Completion {
    /// Request id from the trace.
    pub id: u64,
    /// Model name — a refcounted handle to the deployment's interned
    /// name, not a per-completion copy.
    pub model: Arc<str>,
    /// Task id.
    pub task: u32,
    /// Arrival time, µs.
    pub arrival_us: f64,
    /// First time the request made progress on the device, µs.
    pub start_us: f64,
    /// Completion time, µs.
    pub end_us: f64,
    /// Isolated execution time, µs (response-ratio denominator).
    pub exec_us: f64,
}

impl Completion {
    /// End-to-end latency (Eq. 3's `t_ete`), µs.
    #[inline]
    pub fn e2e_us(&self) -> f64 {
        self.end_us - self.arrival_us
    }

    /// Response ratio (Eq. 3).
    #[inline]
    pub fn response_ratio(&self) -> f64 {
        self.e2e_us() / self.exec_us
    }

    /// Convert to the metrics crate's outcome record.
    pub fn to_outcome(&self) -> qos_metrics::RequestOutcome {
        qos_metrics::RequestOutcome {
            id: self.id,
            model: self.model.to_string(),
            exec_us: self.exec_us,
            e2e_us: self.e2e_us(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_table_round_trip() {
        let mut t = ModelTable::new();
        assert!(t.is_empty());
        t.insert(ModelRuntime::vanilla("a", 0, 1000.0));
        t.insert(ModelRuntime::split("b", 1, 2000.0, vec![1100.0, 1200.0]));
        assert_eq!(t.len(), 2);
        assert!(t.contains("a"));
        assert_eq!(t.get("b").split_total_us(), 2300.0);
        assert_eq!(t.get("a").blocks_us, vec![1000.0]);
    }

    #[test]
    fn transfer_bytes_builder() {
        let m = ModelRuntime::split("b", 1, 2000.0, vec![1100.0, 1200.0])
            .with_transfer_bytes(vec![4096]);
        assert_eq!(m.transfer_bytes, vec![4096]);
        assert!(ModelRuntime::vanilla("a", 0, 10.0)
            .transfer_bytes
            .is_empty());
    }

    #[test]
    #[should_panic(expected = "one transfer per block boundary")]
    fn transfer_bytes_arity_checked() {
        ModelRuntime::split("b", 1, 2000.0, vec![1100.0, 1200.0]).with_transfer_bytes(vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "not deployed")]
    fn unknown_model_panics() {
        ModelTable::new().get("ghost");
    }

    #[test]
    fn completion_math() {
        let c = Completion {
            id: 1,
            model: "m".into(),
            task: 0,
            arrival_us: 100.0,
            start_us: 150.0,
            end_us: 400.0,
            exec_us: 100.0,
        };
        assert_eq!(c.e2e_us(), 300.0);
        assert_eq!(c.response_ratio(), 3.0);
        let o = c.to_outcome();
        assert_eq!(o.e2e_us, 300.0);
        assert_eq!(o.exec_us, 100.0);
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn empty_blocks_rejected() {
        ModelRuntime::split("x", 0, 10.0, vec![]);
    }
}
