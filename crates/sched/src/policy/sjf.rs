//! Shortest-Job-First baseline (non-preemptive).
//!
//! Not one of the paper's comparators, but the classical queueing-theory
//! reference point: SJF minimizes *mean* waiting time among
//! non-preemptive disciplines, yet it starves long requests under
//! pressure and cannot bound a short request's wait once a long model is
//! in flight. Comparing SPLIT against SJF separates how much of SPLIT's
//! win comes from *ordering* (which SJF also has, crudely) versus
//! *block-boundary preemption* (which only SPLIT has).

use crate::engine::SimResult;
use crate::request::{Completion, ModelTable};
use gpu_sim::Timeline;
use workload::Arrival;

/// Serve the trace shortest-job-first, whole models, non-preemptive.
/// Ties break by arrival order.
pub fn sjf(arrivals: &[Arrival], models: &ModelTable) -> SimResult {
    let mut tl = Timeline::new();
    let mut completions: Vec<Completion> = Vec::with_capacity(arrivals.len());
    let mut next = 0usize;
    let mut waiting: Vec<usize> = Vec::new(); // indices into arrivals
    let mut now = 0.0f64;

    while completions.len() < arrivals.len() {
        // Admit everything that has arrived.
        while next < arrivals.len() && arrivals[next].arrival_us <= now + 1e-9 {
            waiting.push(next);
            next += 1;
        }
        if waiting.is_empty() {
            now = arrivals[next].arrival_us;
            continue;
        }
        // Pick the shortest job (FIFO tie-break via stable ordering).
        let pick_pos = waiting
            .iter()
            .enumerate()
            .min_by(|(_, &a), (_, &b)| {
                let ea = models.get(&arrivals[a].model).exec_us;
                let eb = models.get(&arrivals[b].model).exec_us;
                ea.total_cmp(&eb).then(a.cmp(&b))
            })
            .map(|(i, _)| i)
            .expect("non-empty waiting set");
        let idx = waiting.remove(pick_pos);
        let a = &arrivals[idx];
        let m = models.get(&a.model);
        let (start, end) = tl.execute(
            format!("{}#{}", m.name, a.id),
            now.max(a.arrival_us),
            m.exec_us,
        );
        now = end;
        completions.push(Completion {
            id: a.id,
            model: m.name.clone(),
            task: m.task,
            arrival_us: a.arrival_us,
            start_us: start,
            end_us: end,
            exec_us: m.exec_us,
        });
    }

    completions.sort_by(|a, b| a.end_us.total_cmp(&b.end_us).then(a.id.cmp(&b.id)));
    SimResult {
        completions,
        trace: tl.into_trace(),
        recorder: Default::default(),
        flight: Default::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ModelRuntime;

    fn table() -> ModelTable {
        let mut t = ModelTable::new();
        t.insert(ModelRuntime::vanilla("short", 0, 10_000.0));
        t.insert(ModelRuntime::vanilla("long", 1, 60_000.0));
        t
    }

    fn arrival(id: u64, model: &str, at: f64) -> Arrival {
        Arrival {
            id,
            model: model.into(),
            arrival_us: at,
        }
    }

    #[test]
    fn short_jumps_queued_long() {
        // Long running; another long and a short both waiting: SJF runs
        // the short next.
        let arrivals = vec![
            arrival(0, "long", 0.0),
            arrival(1, "long", 1_000.0),
            arrival(2, "short", 2_000.0),
        ];
        let r = sjf(&arrivals, &table());
        let short = r.completions.iter().find(|c| c.id == 2).unwrap();
        let second_long = r.completions.iter().find(|c| c.id == 1).unwrap();
        assert!(short.end_us < second_long.end_us);
        // But it cannot preempt the in-flight long request.
        assert!(short.start_us >= 60_000.0);
    }

    #[test]
    fn equal_jobs_stay_fifo() {
        let arrivals: Vec<Arrival> = (0..5)
            .map(|i| arrival(i, "short", i as f64 * 100.0))
            .collect();
        let r = sjf(&arrivals, &table());
        let order: Vec<u64> = r.completions.iter().map(|c| c.id).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn long_requests_can_starve_under_pressure() {
        // A long request queued behind a steady stream of shorts waits for
        // all of them — the SJF pathology SPLIT's response-ratio aging
        // avoids.
        let mut arrivals = vec![arrival(0, "short", 0.0), arrival(1, "long", 1_000.0)];
        for i in 0..8 {
            arrivals.push(arrival(2 + i, "short", 2_000.0 + i as f64 * 1_000.0));
        }
        let r = sjf(&arrivals, &table());
        let long = r.completions.iter().find(|c| c.id == 1).unwrap();
        // The long runs only after all 9 shorts.
        assert!(long.start_us >= 9.0 * 10_000.0 - 1e-6, "{}", long.start_us);
    }

    #[test]
    fn conservation() {
        let arrivals: Vec<Arrival> = (0..40)
            .map(|i| {
                arrival(
                    i,
                    if i % 3 == 0 { "long" } else { "short" },
                    i as f64 * 8_000.0,
                )
            })
            .collect();
        let r = sjf(&arrivals, &table());
        assert_eq!(r.completions.len(), 40);
        assert!(r.trace.first_overlap().is_none());
        for c in &r.completions {
            assert!(c.e2e_us() >= c.exec_us - 1e-6);
        }
    }
}
