//! The SPLIT policy (paper §3): sequential block-granular execution with
//! greedy response-ratio preemption and elastic splitting.
//!
//! The device runs one *block* at a time (predictable latency, §6). The
//! waiting queue holds whole requests; on every arrival the greedy
//! preemption algorithm ([`split_core::greedy_preempt`]) decides the new
//! request's queue position — so a short request preempts a long one *at
//! the next block boundary*, never mid-kernel and never per-block
//! (full preemption, Figure 3b). The elastic controller downgrades
//! requests to vanilla execution during floods (§3.3).

use crate::engine::SimResult;
use crate::request::{Completion, ModelRuntime, ModelTable};
use gpu_sim::Trace;
use serde::{Deserialize, Serialize};
use split_core::{greedy_preempt, ElasticConfig, ElasticController, QueueEntry};
use split_telemetry::{Event, Recorder};
use std::collections::{BTreeMap, VecDeque};
use std::time::Instant;
use workload::Arrival;

/// SPLIT policy configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SplitCfg {
    /// Latency-target multiplier α used inside response-ratio comparisons
    /// (footnote 3; the evaluation sweeps the *metric's* α separately).
    pub alpha: f64,
    /// Elastic splitting thresholds; `None` disables elasticity (always
    /// split — used by the ablation bench).
    pub elastic: Option<ElasticConfig>,
}

impl Default for SplitCfg {
    fn default() -> Self {
        Self {
            alpha: 4.0,
            elastic: Some(ElasticConfig::default()),
        }
    }
}

/// Everything the policy tracks about one resident request, in a single
/// map entry. The model description is borrowed from the deployment
/// table, so admission copies no strings and the per-block transfer
/// lookup needs no name-keyed map walk.
struct ReqState<'a> {
    model: &'a ModelRuntime,
    blocks: VecDeque<f64>,
    arrival_us: f64,
    started: Option<f64>,
    blocks_done: usize,
}

/// Serve the trace with SPLIT.
pub fn split(arrivals: &[Arrival], models: &ModelTable, cfg: &SplitCfg) -> SimResult {
    let mut elastic = cfg.elastic.clone().map(ElasticController::new);

    // Per-request state (a BTreeMap: keyed lookups only, but a sorted map
    // keeps every path deterministic by construction — audited by
    // split-analyze).
    let mut states: BTreeMap<u64, ReqState<'_>> = BTreeMap::new();

    let mut queue: Vec<QueueEntry> = Vec::new();
    let mut running: Option<(u64, f64)> = None; // (request id, block end)
    let mut trace = Trace::new();
    let mut completions = Vec::with_capacity(arrivals.len());
    // Decision-level telemetry; the engine layer merges in the uniform
    // lifecycle events (arrivals, blocks, completions, queue depth).
    let mut recorder = Recorder::new();

    let mut now = 0.0f64;
    let mut next = 0usize;

    loop {
        // Dispatch: device idle and someone waiting → run queue head's next
        // block.
        if running.is_none() {
            if let Some(head) = queue.first_mut() {
                let id = head.id;
                let st = states.get_mut(&id).expect("queued request has state");
                let blk = st.blocks.pop_front().expect("queued request has blocks");
                // The in-flight block leaves the entry's `left_us`; future
                // preemption decisions see it as `base_wait` instead.
                head.left_us -= blk;
                let name = &st.model.name;
                // Index by blocks this request has actually executed — a
                // downgraded request runs one vanilla block labeled b0,
                // not the declared plan's last index (the split-analyze
                // schedule linter checks block indices are contiguous
                // from 0).
                let block_idx = st.blocks_done;
                st.blocks_done += 1;
                trace.record(format!("{name}#{id}/b{block_idx}"), 0, now, now + blk);
                // Entering block N crosses boundary N−1: attribute the
                // activation traffic. Zero duration — the transfer cost
                // is already folded into the block overhead (§4), so
                // schedules and latencies are unchanged.
                if block_idx > 0 {
                    if let Some(&bytes) = st.model.transfer_bytes.get(block_idx - 1) {
                        trace.record_transfer(id, bytes, now, 0.0);
                    }
                }
                st.started.get_or_insert(now);
                running = Some((id, now + blk));
                continue;
            }
        }

        let t_arrival = arrivals.get(next).map(|a| a.arrival_us);
        let t_block_end = running.map(|(_, e)| e);

        let arrival_first = match (t_arrival, t_block_end) {
            (None, None) => break,
            (Some(ta), Some(te)) => ta < te - 1e-12,
            (Some(_), None) => true,
            (None, Some(_)) => false,
        };
        if arrival_first {
            let ta = t_arrival.expect("arrival_first implies an arrival");
            {
                // Arrival first.
                now = ta;
                let a = &arrivals[next];
                next += 1;
                let m = models.get(&a.model);
                let use_split = match elastic.as_mut() {
                    Some(ctl) => ctl.on_arrival(now, m.task),
                    None => true,
                };
                let blocks: VecDeque<f64> = if use_split {
                    m.blocks_us.iter().copied().collect()
                } else {
                    std::iter::once(m.exec_us).collect()
                };
                if !use_split && m.blocks_us.len() > 1 {
                    recorder.record(Event::Downgrade {
                        req: a.id,
                        from_blocks: m.blocks_us.len(),
                        to_blocks: 1,
                        t_us: now,
                    });
                }
                let left: f64 = blocks.iter().sum();
                states.insert(
                    a.id,
                    ReqState {
                        model: m,
                        blocks,
                        arrival_us: now,
                        started: None,
                        blocks_done: 0,
                    },
                );
                let base_wait = running.map(|(_, e)| e - now).unwrap_or(0.0);
                let t0 = Instant::now();
                let decision = greedy_preempt(
                    &mut queue,
                    QueueEntry {
                        id: a.id,
                        task: m.task,
                        exec_us: m.exec_us,
                        left_us: left,
                        arrival_us: now,
                    },
                    base_wait,
                    now,
                    cfg.alpha,
                );
                let decision_ns = t0.elapsed().as_nanos() as u64;
                recorder.record(Event::PreemptDecision {
                    req: a.id,
                    position: decision.position,
                    comparisons: decision.comparisons,
                    stop: format!("{:?}", decision.stop),
                    decision_ns,
                    // The discrete-event simulator has no slot-publish
                    // step: the decision is applied synchronously, so
                    // publish-to-applied equals the greedy scan itself.
                    publish_ns: decision_ns,
                    t_us: now,
                });
                debug_assert!(
                    decision.position < queue.len(),
                    "greedy_preempt returned position {} past queue of {}",
                    decision.position,
                    queue.len()
                );
                recorder.record(Event::Enqueue {
                    req: a.id,
                    position: decision.position,
                    displaced: queue
                        .len()
                        .saturating_sub(1)
                        .saturating_sub(decision.position),
                    t_us: now,
                });
            }
        } else {
            {
                // Block completion first.
                let te = t_block_end.expect("block end exists");
                now = te;
                let (id, _) = running.take().expect("block end without running block");
                if states[&id].blocks.is_empty() {
                    // Request finished: drop its queue entry and record.
                    let pos = queue
                        .iter()
                        .position(|e| e.id == id)
                        .expect("running request is queued");
                    queue.remove(pos);
                    let st = states.remove(&id).expect("state");
                    completions.push(Completion {
                        id,
                        model: st.model.name.clone(),
                        task: st.model.task,
                        arrival_us: st.arrival_us,
                        start_us: st.started.expect("started"),
                        end_us: now,
                        exec_us: st.model.exec_us,
                    });
                }
                // Otherwise the request stays queued at its position; the
                // dispatch step picks whoever is at the head now — that is
                // exactly where block-boundary preemption happens.
            }
        }
    }

    completions.sort_by(|a, b| a.end_us.total_cmp(&b.end_us).then(a.id.cmp(&b.id)));
    SimResult {
        completions,
        trace,
        recorder,
        flight: Default::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ModelRuntime;

    /// Long model split into 3 even blocks with 10% overhead; short
    /// unsplit.
    fn table() -> ModelTable {
        let mut t = ModelTable::new();
        t.insert(ModelRuntime::vanilla("short", 0, 10_000.0));
        t.insert(ModelRuntime::split(
            "long",
            1,
            60_000.0,
            vec![22_000.0, 22_000.0, 22_000.0],
        ));
        t
    }

    fn arrival(id: u64, model: &str, t: f64) -> Arrival {
        Arrival {
            id,
            model: model.into(),
            arrival_us: t,
        }
    }

    fn cfg_no_elastic() -> SplitCfg {
        SplitCfg {
            alpha: 4.0,
            elastic: None,
        }
    }

    #[test]
    fn lone_request_runs_all_blocks_back_to_back() {
        let r = split(&[arrival(0, "long", 0.0)], &table(), &cfg_no_elastic());
        let c = &r.completions[0];
        assert_eq!(c.start_us, 0.0);
        assert!((c.end_us - 66_000.0).abs() < 1e-9);
        assert_eq!(r.trace.events().len(), 3);
        assert!(r.trace.first_overlap().is_none());
    }

    #[test]
    fn short_preempts_at_block_boundary() {
        // Long starts at 0; short arrives at 1 ms. It must wait only for
        // the in-flight block (ends at 22 ms), not the whole long model.
        let r = split(
            &[arrival(0, "long", 0.0), arrival(1, "short", 1_000.0)],
            &table(),
            &cfg_no_elastic(),
        );
        let short = r.completions.iter().find(|c| c.id == 1).unwrap();
        assert_eq!(short.start_us, 22_000.0);
        assert!((short.e2e_us() - 31_000.0).abs() < 1e-9);
        // The long request resumes after the short one.
        let long = r.completions.iter().find(|c| c.id == 0).unwrap();
        assert!((long.end_us - 76_000.0).abs() < 1e-9);
        // Full preemption: the long model's remaining blocks run
        // contiguously after the short request (no interleaving).
        let events: Vec<&str> = r.trace.events().iter().map(|e| e.label.as_str()).collect();
        assert_eq!(
            events,
            vec!["long#0/b0", "short#1/b0", "long#0/b1", "long#0/b2"]
        );
    }

    #[test]
    fn same_task_requests_stay_fifo() {
        let r = split(
            &[
                arrival(0, "short", 0.0),
                arrival(1, "short", 100.0),
                arrival(2, "short", 200.0),
            ],
            &table(),
            &cfg_no_elastic(),
        );
        let ends: Vec<(u64, f64)> = r.completions.iter().map(|c| (c.id, c.end_us)).collect();
        assert_eq!(ends.iter().map(|e| e.0).collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn long_cannot_preempt_short() {
        let r = split(
            &[
                arrival(0, "short", 0.0),
                arrival(1, "long", 10.0),
                arrival(2, "short", 20.0),
            ],
            &table(),
            &cfg_no_elastic(),
        );
        // Second short jumps the waiting long request.
        let c2 = r.completions.iter().find(|c| c.id == 2).unwrap();
        let c1 = r.completions.iter().find(|c| c.id == 1).unwrap();
        assert!(c2.end_us < c1.end_us);
    }

    #[test]
    fn elastic_flood_falls_back_to_vanilla() {
        // A dense same-type flood of long requests: elastic mode must
        // disable splitting, so no splitting overhead is paid.
        let arrivals: Vec<Arrival> = (0..12)
            .map(|i| arrival(i, "long", i as f64 * 1_000.0))
            .collect();
        let elastic = ElasticConfig {
            window_us: 1_000_000.0,
            density_off_per_s: 5.0,
            density_on_per_s: 2.0,
            same_type_frac: 0.9,
            min_samples: 4,
        };
        let r = split(
            &arrivals,
            &table(),
            &SplitCfg {
                alpha: 4.0,
                elastic: Some(elastic),
            },
        );
        assert_eq!(r.completions.len(), 12);
        // Later requests run vanilla (60 ms each, one trace event), so the
        // tail of the trace must contain unsplit long spans.
        let has_vanilla_span = r
            .trace
            .events()
            .iter()
            .any(|e| e.label.starts_with("long") && (e.duration_us() - 60_000.0).abs() < 1e-6);
        assert!(has_vanilla_span, "flood must trigger vanilla execution");
    }

    #[test]
    fn conservation_and_sanity_under_load() {
        let mut arrivals = Vec::new();
        for i in 0..100 {
            let m = if i % 3 == 0 { "long" } else { "short" };
            arrivals.push(arrival(i, m, i as f64 * 7_000.0));
        }
        let r = split(&arrivals, &table(), &SplitCfg::default());
        assert_eq!(r.completions.len(), 100);
        assert!(r.trace.first_overlap().is_none());
        for c in &r.completions {
            assert!(c.end_us > c.arrival_us);
            assert!(c.e2e_us() >= c.exec_us - 1e-6, "{c:?}");
        }
    }

    #[test]
    fn deterministic() {
        let arrivals: Vec<Arrival> = (0..50)
            .map(|i| {
                arrival(
                    i,
                    if i % 4 == 0 { "long" } else { "short" },
                    i as f64 * 6_500.0,
                )
            })
            .collect();
        let a = split(&arrivals, &table(), &SplitCfg::default());
        let b = split(&arrivals, &table(), &SplitCfg::default());
        assert_eq!(a.completions, b.completions);
    }
}
