//! Runtime-Aware (RT-A) baseline: concurrent multi-stream execution with
//! operator alignment (paper §5.3; Yu et al., ICCAD 2021).
//!
//! RT-A merges the resident models into one super-graph whose operators
//! are grouped by resource affinity and co-issued on multiple GPU streams.
//! Alignment is great for throughput — contention is low because aligned
//! operators have complementary demands — but it welds the residents'
//! schedules together: a short request admitted alongside a long one has
//! its operators spread across the whole merged execution and completes
//! only when the *group* completes (the paper's Figure 1: "request A has
//! to be aligned with request B and wait for the completion of request
//! B"). New arrivals join at the next alignment barrier (group end).
//!
//! We model this as gang execution: every waiting request is admitted as
//! one aligned group; the group's makespan is the summed work inflated by
//! the residual aligned-contention factor; all members finish at the
//! group's end.

use crate::engine::SimResult;
use crate::request::{Completion, ModelTable};
use gpu_sim::Trace;
use serde::{Deserialize, Serialize};
use workload::Arrival;

/// RT-A configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RtaCfg {
    /// Residual contention among aligned streams: a `k`-member group's
    /// makespan is `Σ work · (1 + c·(k−1)/k)` (1.0 for a lone request).
    pub aligned_coef: f64,
}

impl Default for RtaCfg {
    fn default() -> Self {
        Self {
            aligned_coef: gpu_sim::DeviceConfig::default().aligned_contention_coef,
        }
    }
}

/// Serve the trace with RT-A's aligned gang execution.
pub fn rta(arrivals: &[Arrival], models: &ModelTable, cfg: &RtaCfg) -> SimResult {
    let mut trace = Trace::new();
    let mut completions = Vec::with_capacity(arrivals.len());
    let mut now = 0.0f64;
    let mut next = 0usize;

    while next < arrivals.len() {
        if arrivals[next].arrival_us > now {
            now = arrivals[next].arrival_us;
        }
        // Admit every request that has arrived by the barrier: one group.
        let mut group = Vec::new();
        while next < arrivals.len() && arrivals[next].arrival_us <= now + 1e-9 {
            group.push(&arrivals[next]);
            next += 1;
        }
        let k = group.len();
        let total_work: f64 = group.iter().map(|a| models.get(&a.model).exec_us).sum();
        let stretch = 1.0 + cfg.aligned_coef * (k as f64 - 1.0) / k as f64;
        let makespan = total_work * stretch;
        let start = now;
        let end = now + makespan;
        for (lane, a) in group.iter().enumerate() {
            let m = models.get(&a.model);
            trace.record(format!("{}#{}", m.name, a.id), lane % 8, start, end);
            completions.push(Completion {
                id: a.id,
                model: m.name.clone(),
                task: m.task,
                arrival_us: a.arrival_us,
                start_us: start,
                end_us: end,
                exec_us: m.exec_us,
            });
        }
        now = end;
    }

    completions.sort_by(|a, b| a.end_us.total_cmp(&b.end_us).then(a.id.cmp(&b.id)));
    SimResult {
        completions,
        trace,
        recorder: Default::default(),
        flight: Default::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ModelRuntime;

    fn table() -> ModelTable {
        let mut t = ModelTable::new();
        t.insert(ModelRuntime::vanilla("short", 0, 10_000.0));
        t.insert(ModelRuntime::vanilla("long", 1, 60_000.0));
        t
    }

    fn arrival(id: u64, model: &str, t: f64) -> Arrival {
        Arrival {
            id,
            model: model.into(),
            arrival_us: t,
        }
    }

    #[test]
    fn lone_request_runs_unstretched() {
        let r = rta(
            &[arrival(0, "short", 3_000.0)],
            &table(),
            &RtaCfg::default(),
        );
        let c = &r.completions[0];
        assert_eq!(c.start_us, 3_000.0);
        assert!((c.e2e_us() - 10_000.0).abs() < 1e-9);
    }

    #[test]
    fn group_members_finish_together() {
        // Both waiting at t=0: admitted as one aligned group; the short is
        // welded to the long's schedule — the Figure 1 pathology.
        let cfg = RtaCfg { aligned_coef: 0.4 };
        let r = rta(
            &[arrival(0, "long", 0.0), arrival(1, "short", 0.0)],
            &table(),
            &cfg,
        );
        let (a, b) = (&r.completions[0], &r.completions[1]);
        assert_eq!(a.end_us, b.end_us, "aligned group must co-complete");
        // makespan = 70ms * (1 + 0.4/2) = 84 ms.
        assert!((a.end_us - 84_000.0).abs() < 1e-6, "got {}", a.end_us);
    }

    #[test]
    fn late_arrival_waits_for_the_barrier() {
        let cfg = RtaCfg { aligned_coef: 0.0 };
        let r = rta(
            &[arrival(0, "long", 0.0), arrival(1, "short", 2_000.0)],
            &table(),
            &cfg,
        );
        let short = r.completions.iter().find(|c| c.id == 1).unwrap();
        // Barrier at 60 ms (long group end), then runs alone 10 ms.
        assert_eq!(short.start_us, 60_000.0);
        assert!((short.e2e_us() - 68_000.0).abs() < 1e-6);
    }

    #[test]
    fn batching_boosts_throughput_but_spreads_latency() {
        // Five shorts at once: RT-A ends them all at the group end; the
        // *last* one beats sequential, the *first* one loses.
        let cfg = RtaCfg { aligned_coef: 0.25 };
        let arrivals: Vec<Arrival> = (0..5).map(|i| arrival(i, "short", 0.0)).collect();
        let r = rta(&arrivals, &table(), &cfg);
        let makespan = 50_000.0 * (1.0 + 0.25 * 4.0 / 5.0);
        for c in &r.completions {
            assert!((c.end_us - makespan).abs() < 1e-6);
        }
        // Sequential would finish the 5th at 50 ms; the gang ends at 60 ms
        // — but sequential's *first* ends at 10 ms vs the gang's 60 ms.
        assert!(makespan < 5.0 * 10_000.0 * 1.25);
    }

    #[test]
    fn all_complete_under_load() {
        let arrivals: Vec<Arrival> = (0..50)
            .map(|i| {
                arrival(
                    i,
                    if i % 4 == 0 { "long" } else { "short" },
                    i as f64 * 5_000.0,
                )
            })
            .collect();
        let r = rta(&arrivals, &table(), &RtaCfg::default());
        assert_eq!(r.completions.len(), 50);
        for c in &r.completions {
            assert!(c.e2e_us() >= c.exec_us - 1e-6);
        }
    }
}
