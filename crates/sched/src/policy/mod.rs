//! The four serving policies (SPLIT + the §5.3 baselines).

pub mod block_rr;
pub mod clockwork;
pub mod edf;
pub mod prema;
pub mod rta;
pub mod sjf;
pub mod split;
pub mod stream_parallel;

pub use block_rr::block_round_robin;
pub use clockwork::{clockwork, clockwork_with_dropping};
pub use edf::{edf, EdfCfg};
pub use prema::{prema, PremaCfg};
pub use rta::{rta, RtaCfg};
pub use sjf::sjf;
pub use split::{split, SplitCfg};
pub use stream_parallel::{stream_parallel, StreamParallelCfg};
