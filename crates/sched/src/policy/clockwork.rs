//! ClockWork baseline: sequential, non-preemptive, first-come-first-served
//! (paper §5.3).
//!
//! ClockWork's thesis is *predictability*: one request owns the GPU at a
//! time and runs its whole (unsplit) model. A short request arriving
//! behind a long one simply waits — the latency pathology SPLIT attacks
//! (Figure 1's "Sequential" lane).

use crate::engine::SimResult;
use crate::request::{Completion, ModelTable};
use gpu_sim::Timeline;
use workload::Arrival;

/// Serve the trace FCFS, whole models, no preemption.
pub fn clockwork(arrivals: &[Arrival], models: &ModelTable) -> SimResult {
    let mut tl = Timeline::new();
    let mut completions = Vec::with_capacity(arrivals.len());
    for a in arrivals {
        let m = models.get(&a.model);
        let (start, end) = tl.execute(format!("{}#{}", m.name, a.id), a.arrival_us, m.exec_us);
        completions.push(Completion {
            id: a.id,
            model: m.name.clone(),
            task: m.task,
            arrival_us: a.arrival_us,
            start_us: start,
            end_us: end,
            exec_us: m.exec_us,
        });
    }
    SimResult {
        completions,
        trace: tl.into_trace(),
        recorder: Default::default(),
        flight: Default::default(),
    }
}

/// ClockWork's signature admission control (§7: "dropping tasks predicted
/// to be stragglers upon arrival"): a request whose *predicted* response
/// ratio — queueing delay visible at arrival plus its own execution over
/// its isolated time — already exceeds `target_alpha` is dropped instead
/// of queued.
///
/// Returns the completions of admitted requests plus the ids of dropped
/// ones. The paper's Figure 6 comparison cannot drop (every request is
/// scored), which is why [`clockwork`] is the baseline there; this
/// variant backs the admission-control ablation.
pub fn clockwork_with_dropping(
    arrivals: &[Arrival],
    models: &ModelTable,
    target_alpha: f64,
) -> (SimResult, Vec<u64>) {
    assert!(
        target_alpha > 1.0,
        "a target below 1x isolated time drops everything"
    );
    let mut tl = Timeline::new();
    let mut completions = Vec::new();
    let mut dropped = Vec::new();
    for a in arrivals {
        let m = models.get(&a.model);
        let wait = (tl.busy_until_us() - a.arrival_us).max(0.0);
        let predicted_rr = (wait + m.exec_us) / m.exec_us;
        if predicted_rr > target_alpha {
            dropped.push(a.id);
            continue;
        }
        let (start, end) = tl.execute(format!("{}#{}", m.name, a.id), a.arrival_us, m.exec_us);
        completions.push(Completion {
            id: a.id,
            model: m.name.clone(),
            task: m.task,
            arrival_us: a.arrival_us,
            start_us: start,
            end_us: end,
            exec_us: m.exec_us,
        });
    }
    (
        SimResult {
            completions,
            trace: tl.into_trace(),
            recorder: Default::default(),
            flight: Default::default(),
        },
        dropped,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ModelRuntime;

    fn table() -> ModelTable {
        let mut t = ModelTable::new();
        t.insert(ModelRuntime::vanilla("short", 0, 10_000.0));
        t.insert(ModelRuntime::vanilla("long", 1, 60_000.0));
        t
    }

    fn arrival(id: u64, model: &str, t: f64) -> Arrival {
        Arrival {
            id,
            model: model.into(),
            arrival_us: t,
        }
    }

    #[test]
    fn fcfs_order_is_arrival_order() {
        let arrivals = vec![arrival(0, "long", 0.0), arrival(1, "short", 1_000.0)];
        let r = clockwork(&arrivals, &table());
        assert_eq!(r.completions.len(), 2);
        // Short waits for the whole long request.
        let short = &r.completions[1];
        assert_eq!(short.start_us, 60_000.0);
        assert_eq!(short.end_us, 70_000.0);
        assert!((short.response_ratio() - 6.9).abs() < 1e-9);
        assert!(r.trace.first_overlap().is_none());
    }

    #[test]
    fn idle_gaps_are_respected() {
        let arrivals = vec![arrival(0, "short", 0.0), arrival(1, "short", 100_000.0)];
        let r = clockwork(&arrivals, &table());
        assert_eq!(r.completions[1].start_us, 100_000.0);
        assert_eq!(r.completions[1].response_ratio(), 1.0);
    }

    #[test]
    fn empty_trace() {
        let r = clockwork(&[], &table());
        assert!(r.completions.is_empty());
    }

    #[test]
    fn dropping_rejects_predicted_stragglers() {
        // Short behind a long request: predicted RR = (59 + 10)/10 = 6.9,
        // over a target of 4 → dropped. A later short is admitted.
        let arrivals = vec![
            arrival(0, "long", 0.0),
            arrival(1, "short", 1_000.0),
            arrival(2, "short", 100_000.0),
        ];
        let (r, dropped) = clockwork_with_dropping(&arrivals, &table(), 4.0);
        assert_eq!(dropped, vec![1]);
        assert_eq!(r.completions.len(), 2);
        assert!(r.completions.iter().all(|c| c.response_ratio() <= 4.0));
    }

    #[test]
    fn dropping_admits_everything_when_idle() {
        let arrivals: Vec<Arrival> = (0..5)
            .map(|i| arrival(i, "short", i as f64 * 100_000.0))
            .collect();
        let (r, dropped) = clockwork_with_dropping(&arrivals, &table(), 2.0);
        assert!(dropped.is_empty());
        assert_eq!(r.completions.len(), 5);
    }

    #[test]
    fn admitted_requests_never_violate_the_admission_target() {
        // The whole point of ClockWork's predictability: if a request is
        // admitted, FCFS guarantees the prediction was exact.
        let arrivals: Vec<Arrival> = (0..60)
            .map(|i| {
                arrival(
                    i,
                    if i % 2 == 0 { "long" } else { "short" },
                    i as f64 * 12_000.0,
                )
            })
            .collect();
        let (r, dropped) = clockwork_with_dropping(&arrivals, &table(), 3.0);
        assert!(!dropped.is_empty(), "this load must drop something");
        for c in &r.completions {
            assert!(c.response_ratio() <= 3.0 + 1e-9, "{c:?}");
        }
    }

    #[test]
    #[should_panic(expected = "drops everything")]
    fn dropping_rejects_bad_target() {
        clockwork_with_dropping(&[], &table(), 0.5);
    }
}
