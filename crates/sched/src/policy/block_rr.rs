//! Block-level round-robin — the *partial preemption* strawman of the
//! paper's Figure 3(a).
//!
//! Splitting a model into blocks opens two scheduling choices: run a
//! preempting request's blocks **together** (SPLIT's rule, Figure 3b) or
//! time-slice blocks fairly among whoever is waiting. The fair-looking
//! round-robin turns out to be wrong: a request's completion time is the
//! end of its *last* block, so interleaving delays every participant's
//! last block and the total latency of the preemptor grows
//! ("the partial preemption produces straggler and increases total
//! latency of request A" — §3.4, observation 1). This module exists so
//! that claim is measured, not asserted.

use crate::engine::SimResult;
use crate::request::{Completion, ModelTable};
use gpu_sim::Trace;
use std::collections::VecDeque;
use std::sync::Arc;
use workload::Arrival;

struct Live {
    id: u64,
    model_idx: usize,
    arrival_us: f64,
    blocks: VecDeque<f64>,
    blocks_total: usize,
    started: Option<f64>,
}

/// Serve the trace with round-robin *block* scheduling: the device cycles
/// through the resident requests, one block each.
pub fn block_round_robin(arrivals: &[Arrival], models: &ModelTable) -> SimResult {
    let resolved: Vec<(Arc<str>, u32, f64, Vec<f64>)> = arrivals
        .iter()
        .map(|a| {
            let m = models.get(&a.model);
            (m.name.clone(), m.task, m.exec_us, m.blocks_us.clone())
        })
        .collect();

    let mut live: VecDeque<Live> = VecDeque::new();
    let mut completions = Vec::with_capacity(arrivals.len());
    let mut trace = Trace::new();
    let mut now = 0.0f64;
    let mut next = 0usize;

    loop {
        while next < arrivals.len() && arrivals[next].arrival_us <= now + 1e-9 {
            let a = &arrivals[next];
            live.push_back(Live {
                id: a.id,
                model_idx: next,
                arrival_us: a.arrival_us,
                blocks: resolved[next].3.iter().copied().collect(),
                blocks_total: resolved[next].3.len(),
                started: None,
            });
            next += 1;
        }
        let Some(mut r) = live.pop_front() else {
            if next >= arrivals.len() {
                break;
            }
            now = arrivals[next].arrival_us;
            continue;
        };

        let blk = r.blocks.pop_front().expect("live request has blocks");
        let (name, task, exec, _) = &resolved[r.model_idx];
        let idx = r.blocks_total - r.blocks.len() - 1;
        trace.record(format!("{name}#{}/b{idx}", r.id), 0, now, now + blk);
        r.started.get_or_insert(now);
        now += blk;

        // Admit anyone who arrived during this block *before* re-queueing
        // the current request, so newcomers join the rotation immediately.
        while next < arrivals.len() && arrivals[next].arrival_us <= now + 1e-9 {
            let a = &arrivals[next];
            live.push_back(Live {
                id: a.id,
                model_idx: next,
                arrival_us: a.arrival_us,
                blocks: resolved[next].3.iter().copied().collect(),
                blocks_total: resolved[next].3.len(),
                started: None,
            });
            next += 1;
        }

        if r.blocks.is_empty() {
            completions.push(Completion {
                id: r.id,
                model: name.clone(),
                task: *task,
                arrival_us: r.arrival_us,
                start_us: r.started.unwrap(),
                end_us: now,
                exec_us: *exec,
            });
        } else {
            // Back of the rotation: someone else's block runs next.
            live.push_back(r);
        }
    }

    completions.sort_by(|a, b| a.end_us.total_cmp(&b.end_us).then(a.id.cmp(&b.id)));
    SimResult {
        completions,
        trace,
        recorder: Default::default(),
        flight: Default::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ModelRuntime;

    fn table() -> ModelTable {
        let mut t = ModelTable::new();
        t.insert(ModelRuntime::split("a", 0, 28_000.0, vec![10_000.0; 3]));
        t.insert(ModelRuntime::split(
            "b",
            1,
            15_000.0,
            vec![8_000.0, 8_000.0],
        ));
        t
    }

    fn arrival(id: u64, model: &str, at: f64) -> Arrival {
        Arrival {
            id,
            model: model.into(),
            arrival_us: at,
        }
    }

    #[test]
    fn blocks_interleave_round_robin() {
        // A arrives first, B during A's first block: blocks alternate.
        let arrivals = vec![arrival(0, "a", 0.0), arrival(1, "b", 2_000.0)];
        let r = block_round_robin(&arrivals, &table());
        let labels: Vec<&str> = r.trace.events().iter().map(|e| e.label.as_str()).collect();
        assert_eq!(
            labels,
            vec!["a#0/b0", "b#1/b0", "a#0/b1", "b#1/b1", "a#0/b2"]
        );
    }

    #[test]
    fn partial_preemption_stretches_the_preemptor() {
        // Figure 3's comparison: under round-robin, B's last block lands
        // after A's interleaved blocks; under SPLIT's full preemption B
        // runs contiguously and finishes sooner.
        let arrivals = vec![arrival(0, "a", 0.0), arrival(1, "b", 2_000.0)];
        let t = table();
        let partial = block_round_robin(&arrivals, &t);
        let full = crate::policy::split(
            &arrivals,
            &t,
            &crate::policy::SplitCfg {
                alpha: 4.0,
                elastic: None,
            },
        );
        let b_partial = partial.completions.iter().find(|c| c.id == 1).unwrap();
        let b_full = full.completions.iter().find(|c| c.id == 1).unwrap();
        assert!(
            b_full.e2e_us() < b_partial.e2e_us(),
            "full {} must beat partial {}",
            b_full.e2e_us(),
            b_partial.e2e_us()
        );
    }

    #[test]
    fn conservation_and_no_overlap() {
        let arrivals: Vec<Arrival> = (0..30)
            .map(|i| arrival(i, if i % 2 == 0 { "a" } else { "b" }, i as f64 * 9_000.0))
            .collect();
        let r = block_round_robin(&arrivals, &table());
        assert_eq!(r.completions.len(), 30);
        assert!(r.trace.first_overlap().is_none());
        for c in &r.completions {
            assert!(c.e2e_us() >= c.exec_us - 1e-6);
        }
    }
}
