//! Stream-Parallel baseline: native GPU multi-stream concurrency
//! (paper Figure 1's first lane; NVIDIA CUDA streams, paper ref.\[24\]).
//!
//! Every request is launched on its own stream the moment it arrives. No
//! alignment, no scheduling — maximal concurrency and maximal resource
//! contention: with `k` resident requests each runs at `1/(1+c·(k−1))` of
//! isolated speed. Modeled exactly by the processor-sharing engine.

use crate::engine::SimResult;
use crate::request::{Completion, ModelTable};
use gpu_sim::{ContentionModel, FluidJob, FluidSim, Trace};
use serde::{Deserialize, Serialize};
use workload::Arrival;

/// Stream-Parallel configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamParallelCfg {
    /// Raw (unaligned) contention coefficient.
    pub contention_coef: f64,
}

impl Default for StreamParallelCfg {
    fn default() -> Self {
        Self {
            contention_coef: gpu_sim::DeviceConfig::default().contention_coef,
        }
    }
}

/// Serve the trace with one stream per request.
pub fn stream_parallel(
    arrivals: &[Arrival],
    models: &ModelTable,
    cfg: &StreamParallelCfg,
) -> SimResult {
    let jobs: Vec<FluidJob> = arrivals
        .iter()
        .map(|a| FluidJob {
            id: a.id,
            arrival_us: a.arrival_us,
            work_us: models.get(&a.model).exec_us,
        })
        .collect();
    let done = FluidSim::new(ContentionModel::new(cfg.contention_coef)).run(&jobs);

    let mut trace = Trace::new();
    let mut completions: Vec<Completion> = done
        .iter()
        .map(|d| {
            let a = &arrivals[d.id as usize];
            let m = models.get(&a.model);
            trace.record(
                format!("{}#{}", m.name, d.id),
                (d.id % 8) as usize,
                d.start_us,
                d.end_us,
            );
            Completion {
                id: d.id,
                model: m.name.clone(),
                task: m.task,
                arrival_us: a.arrival_us,
                start_us: d.start_us,
                end_us: d.end_us,
                exec_us: m.exec_us,
            }
        })
        .collect();
    completions.sort_by(|a, b| a.end_us.total_cmp(&b.end_us).then(a.id.cmp(&b.id)));
    SimResult {
        completions,
        trace,
        recorder: Default::default(),
        flight: Default::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ModelRuntime;

    fn table() -> ModelTable {
        let mut t = ModelTable::new();
        t.insert(ModelRuntime::vanilla("short", 0, 10_000.0));
        t.insert(ModelRuntime::vanilla("long", 1, 60_000.0));
        t
    }

    fn arrival(id: u64, model: &str, t: f64) -> Arrival {
        Arrival {
            id,
            model: model.into(),
            arrival_us: t,
        }
    }

    #[test]
    fn starts_immediately_but_contends() {
        let cfg = StreamParallelCfg {
            contention_coef: 1.0,
        };
        let r = stream_parallel(
            &[arrival(0, "long", 0.0), arrival(1, "short", 0.0)],
            &table(),
            &cfg,
        );
        let short = r.completions.iter().find(|c| c.id == 1).unwrap();
        assert_eq!(short.start_us, 0.0, "no admission delay");
        // Short does 10 ms of work at rate 1/2 → 20 ms.
        assert!((short.e2e_us() - 20_000.0).abs() < 1e-6);
    }

    #[test]
    fn heavy_contention_hurts_everyone() {
        let cfg = StreamParallelCfg {
            contention_coef: 0.85,
        };
        let arrivals: Vec<Arrival> = (0..4).map(|i| arrival(i, "short", 0.0)).collect();
        let r = stream_parallel(&arrivals, &table(), &cfg);
        for c in &r.completions {
            // slowdown(4) = 3.55: every request far above isolated time.
            assert!(c.e2e_us() > 2.0 * c.exec_us, "{c:?}");
        }
    }

    #[test]
    fn all_requests_complete() {
        let arrivals: Vec<Arrival> = (0..60)
            .map(|i| {
                arrival(
                    i,
                    if i % 5 == 0 { "long" } else { "short" },
                    i as f64 * 4_000.0,
                )
            })
            .collect();
        let r = stream_parallel(&arrivals, &table(), &StreamParallelCfg::default());
        assert_eq!(r.completions.len(), 60);
    }
}
