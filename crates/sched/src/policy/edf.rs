//! Earliest-Deadline-First baseline (non-preemptive).
//!
//! The deadline-aware discipline of the §7 related work (Planaria's
//! scheduler class): each request's deadline is its latency target
//! `arrival + α·exec`, and the device always runs the waiting request
//! whose deadline is nearest. EDF is optimal for meeting deadlines on a
//! single resource *when jobs are preemptible*; non-preemptive whole-model
//! execution (all a GPU offers without splitting) forfeits that
//! optimality — which is exactly the gap SPLIT's block-boundary
//! preemption closes.

use crate::engine::SimResult;
use crate::request::{Completion, ModelTable};
use gpu_sim::Timeline;
use serde::{Deserialize, Serialize};
use workload::Arrival;

/// EDF configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EdfCfg {
    /// Latency-target multiplier defining each deadline.
    pub alpha: f64,
}

impl Default for EdfCfg {
    fn default() -> Self {
        Self { alpha: 4.0 }
    }
}

/// Serve the trace earliest-deadline-first, whole models, non-preemptive.
pub fn edf(arrivals: &[Arrival], models: &ModelTable, cfg: &EdfCfg) -> SimResult {
    assert!(cfg.alpha > 0.0);
    let mut tl = Timeline::new();
    let mut completions: Vec<Completion> = Vec::with_capacity(arrivals.len());
    let mut waiting: Vec<usize> = Vec::new();
    let mut next = 0usize;
    let mut now = 0.0f64;

    while completions.len() < arrivals.len() {
        while next < arrivals.len() && arrivals[next].arrival_us <= now + 1e-9 {
            waiting.push(next);
            next += 1;
        }
        if waiting.is_empty() {
            now = arrivals[next].arrival_us;
            continue;
        }
        let deadline = |idx: usize| {
            let a = &arrivals[idx];
            a.arrival_us + cfg.alpha * models.get(&a.model).exec_us
        };
        let pick_pos = waiting
            .iter()
            .enumerate()
            .min_by(|(_, &a), (_, &b)| deadline(a).total_cmp(&deadline(b)).then(a.cmp(&b)))
            .map(|(i, _)| i)
            .expect("non-empty waiting set");
        let idx = waiting.remove(pick_pos);
        let a = &arrivals[idx];
        let m = models.get(&a.model);
        let (start, end) = tl.execute(
            format!("{}#{}", m.name, a.id),
            now.max(a.arrival_us),
            m.exec_us,
        );
        now = end;
        completions.push(Completion {
            id: a.id,
            model: m.name.clone(),
            task: m.task,
            arrival_us: a.arrival_us,
            start_us: start,
            end_us: end,
            exec_us: m.exec_us,
        });
    }

    completions.sort_by(|a, b| a.end_us.total_cmp(&b.end_us).then(a.id.cmp(&b.id)));
    SimResult {
        completions,
        trace: tl.into_trace(),
        recorder: Default::default(),
        flight: Default::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ModelRuntime;

    fn table() -> ModelTable {
        let mut t = ModelTable::new();
        t.insert(ModelRuntime::vanilla("short", 0, 10_000.0));
        t.insert(ModelRuntime::vanilla("long", 1, 60_000.0));
        t
    }

    fn arrival(id: u64, model: &str, at: f64) -> Arrival {
        Arrival {
            id,
            model: model.into(),
            arrival_us: at,
        }
    }

    #[test]
    fn tight_deadline_runs_first() {
        // Both waiting at t≈0: short's deadline (40 ms) beats long's
        // (240 ms), so the short runs first despite arriving second.
        let arrivals = vec![arrival(0, "long", 0.0), arrival(1, "short", 10.0)];
        // Make the long request wait for the decision point by occupying
        // the device: actually both are waiting at the first dispatch.
        let r = edf(&arrivals, &table(), &EdfCfg::default());
        let order: Vec<u64> = r.completions.iter().map(|c| c.id).collect();
        // At t=0 only the long has arrived → it runs; the short runs next.
        assert_eq!(order, vec![0, 1]);

        // Now let both arrive before the device frees.
        let arrivals = vec![
            arrival(0, "short", 0.0),
            arrival(1, "long", 10.0),
            arrival(2, "short", 20.0),
        ];
        let r = edf(&arrivals, &table(), &EdfCfg::default());
        let second = &r.completions[1];
        assert_eq!(second.id, 2, "tighter deadline jumps the queue");
    }

    #[test]
    fn deadlines_age_into_priority() {
        // A long request that has waited long enough overtakes a fresh
        // short (unlike SJF, EDF does not starve).
        let mut arrivals = vec![arrival(0, "short", 0.0), arrival(1, "long", 100.0)];
        // Shorts keep arriving, but late enough that the long's deadline
        // (100 + 240_000) comes first.
        for i in 0..5 {
            arrivals.push(arrival(2 + i, "short", 250_000.0 + i as f64 * 1_000.0));
        }
        let r = edf(&arrivals, &table(), &EdfCfg::default());
        let long = r.completions.iter().find(|c| c.id == 1).unwrap();
        let late_short = r.completions.iter().find(|c| c.id == 6).unwrap();
        assert!(
            long.end_us < late_short.end_us,
            "EDF must not starve the long"
        );
    }

    #[test]
    fn conservation() {
        let arrivals: Vec<Arrival> = (0..40)
            .map(|i| {
                arrival(
                    i,
                    if i % 3 == 0 { "long" } else { "short" },
                    i as f64 * 8_000.0,
                )
            })
            .collect();
        let r = edf(&arrivals, &table(), &EdfCfg::default());
        assert_eq!(r.completions.len(), 40);
        assert!(r.trace.first_overlap().is_none());
    }
}
