//! PREMA baseline: predictive token-based preemptive multi-tasking
//! (paper §5.3; Choi & Rhu, HPCA 2020).
//!
//! PREMA time-multiplexes the accelerator with *token-based dynamic
//! priority*: each waiting request accumulates tokens proportional to its
//! normalized waiting time (its "slowdown pressure"), scaled so short
//! models gain priority fast; whenever the device frees, the scheduler
//! hands it to the highest-token request. Switching to a different request
//! pays a state save/restore penalty.
//!
//! PREMA's native checkpointing is an **NPU hardware feature**; on the
//! paper's GPU testbed (Jetson + ONNX Runtime) a running model cannot be
//! suspended mid-graph, so the faithful GPU port preempts at *request*
//! granularity — the default here (`checkpoint_us = ∞`). Finite
//! checkpoints recreate the original NPU behaviour and are used by the
//! preemption-granularity ablation bench.

use crate::engine::SimResult;
use crate::request::{Completion, ModelTable};
use gpu_sim::Trace;
use serde::{Deserialize, Serialize};
use workload::Arrival;

/// PREMA configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PremaCfg {
    /// Preemption granularity: the device re-decides ownership this often.
    /// `f64::INFINITY` (the GPU-faithful default) means request
    /// granularity; finite values model PREMA's native NPU checkpointing.
    pub checkpoint_us: f64,
    /// Context save/restore penalty when the chosen request changes, µs.
    pub switch_overhead_us: f64,
}

impl Default for PremaCfg {
    fn default() -> Self {
        Self {
            checkpoint_us: f64::INFINITY,
            switch_overhead_us: 150.0,
        }
    }
}

impl PremaCfg {
    /// The original NPU-style configuration with hardware checkpointing
    /// (used by the preemption-granularity ablation).
    pub fn npu_style() -> Self {
        Self {
            checkpoint_us: 4_000.0,
            switch_overhead_us: 150.0,
        }
    }
}

struct Pending {
    id: u64,
    model_idx: usize,
    arrival_us: f64,
    remaining_us: f64,
    started: Option<f64>,
}

/// Serve the trace with PREMA's token scheduler.
pub fn prema(arrivals: &[Arrival], models: &ModelTable, cfg: &PremaCfg) -> SimResult {
    assert!(cfg.checkpoint_us > 0.0);
    // Resolve models once (name, task, exec) to avoid repeated lookups.
    let resolved: Vec<(std::sync::Arc<str>, u32, f64)> = arrivals
        .iter()
        .map(|a| {
            let m = models.get(&a.model);
            (m.name.clone(), m.task, m.exec_us)
        })
        .collect();

    let mut pending: Vec<Pending> = Vec::new();
    let mut completions = Vec::with_capacity(arrivals.len());
    let mut trace = Trace::new();
    let mut now = 0.0f64;
    let mut next_arrival = 0usize;
    let mut last_run: Option<u64> = None;

    loop {
        // Admit everything that has arrived.
        while next_arrival < arrivals.len() && arrivals[next_arrival].arrival_us <= now + 1e-9 {
            let a = &arrivals[next_arrival];
            pending.push(Pending {
                id: a.id,
                model_idx: next_arrival,
                arrival_us: a.arrival_us,
                remaining_us: resolved[next_arrival].2,
                started: None,
            });
            next_arrival += 1;
        }

        if pending.is_empty() {
            if next_arrival >= arrivals.len() {
                break;
            }
            now = arrivals[next_arrival].arrival_us;
            continue;
        }

        // Token = static priority (1/exec: shorter ⇒ higher) × waiting time.
        // Adding 1 keeps fresh arrivals schedulable.
        let pick = pending
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let exec = resolved[p.model_idx].2;
                let token = (1.0 + (now - p.arrival_us)) / exec;
                (i, token)
            })
            .max_by(|a, b| a.1.total_cmp(&b.1).then_with(|| b.0.cmp(&a.0)))
            .map(|(i, _)| i)
            .expect("non-empty pending");

        let switch = last_run != Some(pending[pick].id);
        let overhead = if switch { cfg.switch_overhead_us } else { 0.0 };
        let slice = pending[pick].remaining_us.min(cfg.checkpoint_us);

        // Run [now, now+overhead+slice); a new arrival mid-slice waits for
        // the checkpoint (PREMA cannot preempt inside a checkpoint).
        {
            let p = &mut pending[pick];
            let (name, _, _) = &resolved[p.model_idx];
            if p.started.is_none() {
                p.started = Some(now + overhead);
            }
            trace.record(format!("{}#{}", name, p.id), 0, now, now + overhead + slice);
            last_run = Some(p.id);
            p.remaining_us -= slice;
            now += overhead + slice;
        }

        if pending[pick].remaining_us <= 1e-9 {
            let p = pending.swap_remove(pick);
            let (name, task, exec) = &resolved[p.model_idx];
            completions.push(Completion {
                id: p.id,
                model: name.clone(),
                task: *task,
                arrival_us: p.arrival_us,
                start_us: p.started.unwrap(),
                end_us: now,
                exec_us: *exec,
            });
        }
    }

    completions.sort_by(|a, b| a.end_us.total_cmp(&b.end_us).then(a.id.cmp(&b.id)));
    SimResult {
        completions,
        trace,
        recorder: Default::default(),
        flight: Default::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ModelRuntime;

    fn table() -> ModelTable {
        let mut t = ModelTable::new();
        t.insert(ModelRuntime::vanilla("short", 0, 10_000.0));
        t.insert(ModelRuntime::vanilla("long", 1, 60_000.0));
        t
    }

    fn arrival(id: u64, model: &str, t: f64) -> Arrival {
        Arrival {
            id,
            model: model.into(),
            arrival_us: t,
        }
    }

    #[test]
    fn all_requests_complete() {
        let arrivals: Vec<Arrival> = (0..20)
            .map(|i| {
                arrival(
                    i,
                    if i % 3 == 0 { "long" } else { "short" },
                    i as f64 * 15_000.0,
                )
            })
            .collect();
        let r = prema(&arrivals, &table(), &PremaCfg::default());
        assert_eq!(r.completions.len(), 20);
        assert!(r.trace.first_overlap().is_none());
        for c in &r.completions {
            assert!(c.e2e_us() >= c.exec_us - 1e-6, "{c:?}");
        }
    }

    #[test]
    fn npu_checkpointing_lets_short_preempt() {
        // Long starts; short arrives mid-run. With NPU-style hardware
        // checkpointing, the short's wait is bounded by ~checkpoint.
        let arrivals = vec![arrival(0, "long", 0.0), arrival(1, "short", 1_000.0)];
        let cfg = PremaCfg {
            checkpoint_us: 4_000.0,
            switch_overhead_us: 100.0,
        };
        let r = prema(&arrivals, &table(), &cfg);
        let short = r.completions.iter().find(|c| c.id == 1).unwrap();
        // Far better than the 59 ms FCFS wait.
        assert!(
            short.e2e_us() < 25_000.0,
            "short e2e {} should beat FCFS",
            short.e2e_us()
        );
        let long = r.completions.iter().find(|c| c.id == 0).unwrap();
        assert!(long.e2e_us() >= 60_000.0);
    }

    #[test]
    fn gpu_default_cannot_preempt_midrun_but_reorders_queue() {
        // Default (request granularity): the short waits for the in-flight
        // long request, but jumps ahead of *queued* long requests thanks
        // to its faster token growth.
        let arrivals = vec![
            arrival(0, "long", 0.0),
            arrival(1, "long", 1_000.0),
            arrival(2, "short", 2_000.0),
        ];
        let r = prema(&arrivals, &table(), &PremaCfg::default());
        let short = r.completions.iter().find(|c| c.id == 2).unwrap();
        let second_long = r.completions.iter().find(|c| c.id == 1).unwrap();
        // Short runs right after the in-flight long, before the queued one.
        assert!(short.end_us < second_long.end_us);
        assert!(short.start_us >= 60_000.0, "cannot preempt mid-run");
    }

    #[test]
    fn switch_overhead_charged_only_on_switches() {
        // One lone request: exactly one switch.
        let arrivals = vec![arrival(0, "long", 0.0)];
        let cfg = PremaCfg {
            checkpoint_us: 10_000.0,
            switch_overhead_us: 500.0,
        };
        let r = prema(&arrivals, &table(), &cfg);
        let c = &r.completions[0];
        assert!((c.e2e_us() - 60_500.0).abs() < 1e-6, "got {}", c.e2e_us());
    }

    #[test]
    fn deterministic() {
        let arrivals: Vec<Arrival> = (0..30)
            .map(|i| {
                arrival(
                    i,
                    if i % 2 == 0 { "long" } else { "short" },
                    i as f64 * 9_000.0,
                )
            })
            .collect();
        let a = prema(&arrivals, &table(), &PremaCfg::default());
        let b = prema(&arrivals, &table(), &PremaCfg::default());
        assert_eq!(a.completions, b.completions);
    }
}
