//! Uniform entry point over the four policies.

use crate::policy::{
    clockwork, prema, rta, sjf, split, stream_parallel, PremaCfg, RtaCfg, SplitCfg,
    StreamParallelCfg,
};
use crate::request::{Completion, ModelTable};
use gpu_sim::Trace;
use workload::Arrival;

/// A policy choice with its configuration.
#[derive(Debug, Clone)]
pub enum Policy {
    /// SPLIT (§3).
    Split(SplitCfg),
    /// ClockWork baseline (§5.3).
    ClockWork,
    /// PREMA baseline (§5.3).
    Prema(PremaCfg),
    /// Runtime-Aware baseline (§5.3).
    Rta(RtaCfg),
    /// Native multi-stream concurrency (Figure 1's first lane; not part of
    /// the Figure 6/7 comparison set).
    StreamParallel(StreamParallelCfg),
    /// Shortest-Job-First (classical reference, not a paper comparator).
    Sjf,
}

impl Policy {
    /// Display name used in figures/tables.
    pub fn name(&self) -> &'static str {
        match self {
            Policy::Split(_) => "SPLIT",
            Policy::ClockWork => "ClockWork",
            Policy::Prema(_) => "PREMA",
            Policy::Rta(_) => "RT-A",
            Policy::StreamParallel(_) => "Stream-Parallel",
            Policy::Sjf => "SJF",
        }
    }

    /// The paper's Figure 6/7 comparison set (SPLIT + three baselines)
    /// with default configurations.
    pub fn all_default() -> Vec<Policy> {
        vec![
            Policy::Split(SplitCfg::default()),
            Policy::ClockWork,
            Policy::Prema(PremaCfg::default()),
            Policy::Rta(RtaCfg::default()),
        ]
    }
}

/// The result of serving a trace: completions, the device trace, and a
/// per-request lifecycle recording.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Completed requests in completion order.
    pub completions: Vec<Completion>,
    /// Device execution trace.
    pub trace: Trace,
    /// Lifecycle telemetry. Policies contribute their decision-level
    /// events (preemption decisions, elastic downgrades); [`simulate`]
    /// merges in the uniform events every policy shares — arrivals,
    /// block spans, completions, queue depth, utilization.
    pub recorder: split_telemetry::Recorder,
    /// Flight-recorder snapshot, projected lazily from the lifecycle on
    /// first access — read it through [`SimResult::flight`]. Whether
    /// recording is enabled is still decided at simulate time
    /// ([`attach_lifecycle`] pins the disabled snapshot when
    /// [`split_forensics::flight_enabled`] is off, e.g. under
    /// `SPLIT_FLIGHT=0` or a perfbench off-measurement).
    pub flight: std::sync::OnceLock<split_forensics::FlightSnapshot>,
}

impl SimResult {
    /// Convert completions into metric outcomes.
    pub fn outcomes(&self) -> Vec<qos_metrics::RequestOutcome> {
        self.completions
            .iter()
            .map(Completion::to_outcome)
            .collect()
    }

    /// Derive a metrics registry (decision latency, jump counts, e2e and
    /// wait histograms, …) from the lifecycle recording.
    pub fn metrics(&self) -> split_telemetry::Registry {
        split_telemetry::registry_from_events(&self.recorder)
    }

    /// Rebuild every request's causal span tree (arrival → queue →
    /// blocks → transfers → stalls → completion) from the lifecycle
    /// recording.
    pub fn spans(&self) -> Vec<split_obs::Span> {
        split_obs::build_spans(&self.recorder)
    }

    /// Critical-path attribution for every completed request: e2e
    /// latency decomposed into queue / compute / transfer / stall /
    /// sched components (sum = e2e within 1 ns; linted as `SA301`).
    pub fn attribution(&self) -> Vec<split_obs::Attribution> {
        split_obs::attribute(&self.recorder)
    }

    /// Flight-recorder view of this run: bit-for-bit the bounded-ring
    /// snapshot a quiescent [`split_forensics::FlightRing`] fed every
    /// causal event would return. The projection is computed here, on
    /// first access — the engine already retains the whole lifecycle in
    /// [`SimResult::recorder`], so the always-on recorder adds no work
    /// to the serving path itself (the perfbench on/off pair gates that
    /// at ≤ 5% p50). Live server threads, where writes race, record
    /// through the real ring instead.
    pub fn flight(&self) -> &split_forensics::FlightSnapshot {
        self.flight.get_or_init(|| {
            split_forensics::FlightSnapshot::from_events(
                self.recorder.events(),
                split_forensics::flight_capacity(),
            )
        })
    }

    /// Run the tail-latency forensics pipeline over this result: replay
    /// the SLO monitor, and build one incident bundle per fired
    /// burn-rate alert (outliers sampled, classified, and aggregated
    /// into a verdict).
    pub fn investigate(
        &self,
        cfg: &split_forensics::ForensicsCfg,
    ) -> split_forensics::Investigation {
        split_forensics::investigate(&self.recorder, self.flight(), Some(&self.trace), cfg)
    }

    /// FNV-1a fingerprint of the schedule: every completion's id and
    /// exact start/end bits, in completion order. Two runs produced the
    /// same schedule iff the digests match — the cheap equality the
    /// cluster determinism tests and SA601 compare across thread counts.
    pub fn schedule_digest(&self) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        let mut eat = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        };
        for c in &self.completions {
            eat(c.id);
            eat(c.start_us.to_bits());
            eat(c.end_us.to_bits());
        }
        h
    }

    /// Drift-watch view of this run: replay the lifecycle through a
    /// [`split_watch::DriftWatch`] (windowed sketches + change-point
    /// detectors) and return the finalized report. Like
    /// [`SimResult::flight`], the projection is computed on demand from
    /// the retained recorder, so simulation itself pays nothing for it.
    pub fn drift(&self, cfg: split_watch::WatchCfg) -> split_watch::DriftReport {
        let mut watch = split_watch::DriftWatch::new(cfg);
        for e in self.recorder.events() {
            watch.feed(e);
        }
        watch.finalize();
        watch.report()
    }
}

/// Ordering rank for events sharing a timestamp, so a merged recording
/// satisfies [`split_telemetry::Recorder::validate`]: a request arrives
/// before it is enqueued, a block ends before the next one starts at the
/// same boundary, and completion follows the final block end.
fn event_rank(e: &split_telemetry::Event) -> u8 {
    use split_telemetry::Event as E;
    match e {
        E::Arrival { .. } => 0,
        E::Downgrade { .. } => 1,
        E::PreemptDecision { .. } => 2,
        E::Enqueue { .. } => 3,
        E::QueueDepth { .. } => 4,
        E::BlockEnd { .. } => 5,
        E::BlockStart { .. } => 6,
        E::Transfer { .. } => 7,
        E::Completion { .. } => 8,
        E::Utilization { .. } | E::Mark { .. } => 9,
    }
}

/// Number of utilization samples synthesized over a trace's span.
const UTILIZATION_BUCKETS: usize = 64;

/// Rebuild `result.recorder` as the full lifecycle recording: the
/// policy's own decision events plus the uniform events derived from
/// arrivals, the device trace, and completions. Every policy goes
/// through [`simulate`], so recordings from SPLIT and the baselines
/// validate and export identically. Public so harnesses that call a
/// policy function directly (e.g. the Figure 3 round-robin ablation)
/// can still produce a full recording.
pub fn attach_lifecycle(arrivals: &[Arrival], mut result: SimResult) -> SimResult {
    // Compute the derived pieces first so the merged vector can be
    // allocated exactly once, then fill it in the same source order as
    // always: arrivals, trace lifecycle, completions, queue depth,
    // utilization, policy recorder. The stable sort below is what
    // actually orders the recording, but the concatenation order is the
    // tie-break *input* order, so it must not change.
    let trace_events = result.trace.lifecycle_events();
    let utilization = {
        let span = result
            .trace
            .events()
            .iter()
            .map(|e| e.end_us)
            .fold(None::<f64>, |m, e| Some(m.map_or(e, |m| m.max(e))));
        match span {
            Some(span) => {
                let t0 = result
                    .trace
                    .events()
                    .iter()
                    .map(|e| e.start_us)
                    .fold(f64::INFINITY, f64::min);
                let bucket = ((span - t0) / UTILIZATION_BUCKETS as f64).max(1.0);
                result.trace.utilization_series(bucket)
            }
            None => Vec::new(),
        }
    };
    // Move the policy's decision events out instead of cloning each one.
    let policy_events = std::mem::take(&mut result.recorder).into_events();

    // In-system request count: +1 on arrival, -1 on completion
    // (completions first on ties so an instant never over-counts).
    let mut deltas: Vec<(f64, i64)> = Vec::with_capacity(arrivals.len() + result.completions.len());
    deltas.extend(arrivals.iter().map(|a| (a.arrival_us, 1)));
    deltas.extend(result.completions.iter().map(|c| (c.end_us, -1)));
    deltas.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

    let mut events: Vec<split_telemetry::Event> = Vec::with_capacity(
        arrivals.len()
            + trace_events.len()
            + result.completions.len()
            + deltas.len()
            + utilization.len()
            + policy_events.len(),
    );
    events.extend(arrivals.iter().map(|a| split_telemetry::Event::Arrival {
        req: a.id,
        model: a.model.clone(),
        t_us: a.arrival_us,
    }));
    events.extend(trace_events);
    events.extend(
        result
            .completions
            .iter()
            .map(|c| split_telemetry::Event::Completion {
                req: c.id,
                t_us: c.end_us,
            }),
    );
    let mut depth = 0i64;
    events.extend(deltas.into_iter().map(|(t_us, d)| {
        depth += d;
        split_telemetry::Event::QueueDepth {
            depth: depth.max(0) as usize,
            t_us,
        }
    }));
    events.extend(utilization);
    events.extend(policy_events);
    events.sort_by(|a, b| {
        a.t_us()
            .total_cmp(&b.t_us())
            .then(event_rank(a).cmp(&event_rank(b)))
    });

    // Pin the recording decision now (scoped `with_flight` overrides
    // end with the caller): off pins the disabled snapshot; on leaves
    // the cell empty for `SimResult::flight` to project lazily.
    if !split_forensics::flight_enabled() {
        let _ = result
            .flight
            .set(split_forensics::FlightSnapshot::disabled());
    }

    result.recorder = split_telemetry::Recorder::from_events(events);
    result
}

/// Serve `arrivals` over `models` with the chosen policy.
pub fn simulate(policy: &Policy, arrivals: &[Arrival], models: &ModelTable) -> SimResult {
    let result = match policy {
        Policy::Split(cfg) => split(arrivals, models, cfg),
        Policy::ClockWork => clockwork(arrivals, models),
        Policy::Prema(cfg) => prema(arrivals, models, cfg),
        Policy::Rta(cfg) => rta(arrivals, models, cfg),
        Policy::StreamParallel(cfg) => stream_parallel(arrivals, models, cfg),
        Policy::Sjf => sjf(arrivals, models),
    };
    attach_lifecycle(arrivals, result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ModelRuntime;

    fn table() -> ModelTable {
        let mut t = ModelTable::new();
        t.insert(ModelRuntime::vanilla("short", 0, 10_000.0));
        t.insert(ModelRuntime::split("long", 1, 60_000.0, vec![21_000.0; 3]));
        t
    }

    fn arrivals(n: u64) -> Vec<Arrival> {
        (0..n)
            .map(|i| Arrival {
                id: i,
                model: (if i % 3 == 0 { "long" } else { "short" }).into(),
                arrival_us: i as f64 * 12_000.0,
            })
            .collect()
    }

    #[test]
    fn every_policy_serves_every_request() {
        let a = arrivals(40);
        let t = table();
        for p in Policy::all_default() {
            let r = simulate(&p, &a, &t);
            assert_eq!(r.completions.len(), 40, "{}", p.name());
            let mut ids: Vec<u64> = r.completions.iter().map(|c| c.id).collect();
            ids.sort_unstable();
            assert_eq!(ids, (0..40).collect::<Vec<_>>(), "{}", p.name());
        }
    }

    #[test]
    fn names_are_the_paper_names() {
        let names: Vec<&str> = Policy::all_default().iter().map(|p| p.name()).collect();
        assert_eq!(names, vec!["SPLIT", "ClockWork", "PREMA", "RT-A"]);
    }

    #[test]
    fn outcomes_match_completions() {
        let a = arrivals(10);
        let r = simulate(&Policy::ClockWork, &a, &table());
        let o = r.outcomes();
        assert_eq!(o.len(), r.completions.len());
        for (c, o) in r.completions.iter().zip(&o) {
            assert_eq!(c.id, o.id);
            assert!((c.response_ratio() - o.response_ratio()).abs() < 1e-12);
        }
    }

    /// The headline qualitative claim of Figure 1: with a short request
    /// arriving behind a long one, SPLIT's short-request latency beats all
    /// three baselines.
    #[test]
    fn split_wins_the_figure1_scenario() {
        let t = table();
        let a = vec![
            Arrival {
                id: 0,
                model: "long".into(),
                arrival_us: 0.0,
            },
            Arrival {
                id: 1,
                model: "short".into(),
                arrival_us: 2_000.0,
            },
        ];
        let e2e = |p: &Policy| {
            simulate(p, &a, &t)
                .completions
                .iter()
                .find(|c| c.id == 1)
                .unwrap()
                .e2e_us()
        };
        let split = e2e(&Policy::Split(crate::policy::SplitCfg {
            alpha: 4.0,
            elastic: None,
        }));
        for p in [
            Policy::ClockWork,
            Policy::Prema(Default::default()),
            Policy::Rta(Default::default()),
        ] {
            assert!(
                split < e2e(&p),
                "SPLIT {} must beat {} {}",
                split,
                p.name(),
                e2e(&p)
            );
        }
    }
}
