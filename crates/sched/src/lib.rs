#![warn(missing_docs)]
//! # sched — serving policies over the simulated shared GPU
//!
//! The deterministic evaluation path behind the paper's Figures 6 and 7:
//! a request trace (from `workload`) is served by one of four policies and
//! the completions are scored by `qos-metrics`.
//!
//! * [`policy::split`](mod@policy::split) — **SPLIT** (§3): block-granular sequential
//!   execution, greedy response-ratio preemption on every arrival, elastic
//!   splitting under floods;
//! * [`policy::clockwork`](mod@policy::clockwork) — **ClockWork**: non-preemptive sequential FCFS
//!   (§5.3);
//! * [`policy::prema`](mod@policy::prema) — **PREMA**: token-based preemptive multi-tasking
//!   at checkpoint granularity (§5.3);
//! * [`policy::rta`](mod@policy::rta) — **Runtime-Aware (RT-A)**: concurrent multi-stream
//!   execution with operator alignment (§5.3), modeled by the
//!   processor-sharing engine plus alignment-barrier admission.
//!
//! All four consume the same [`request::ModelTable`] built from offline
//! split plans, so comparisons are apples-to-apples.

pub mod engine;
pub mod policy;
pub mod request;

pub use engine::{attach_lifecycle, simulate, Policy, SimResult};
pub use request::{Completion, ModelRuntime, ModelTable};
