//! Tail sampling: keep the traces that matter, count the rest.
//!
//! Retaining every request's full span tree would make incident bundles
//! grow with offered load; retaining none would leave nothing to
//! diagnose. The tail sampler keeps the middle ground with one hard
//! invariant:
//!
//! > **Every QoS-violating request is retained.** Head sampling only
//! > ever drops requests that met their objective.
//!
//! Completions are bucketed into fixed windows of `window_us` simulated
//! time (by completion timestamp); within each window the sampler
//! retains all violating requests plus the `top_k` slowest (by e2e
//! latency) non-violating ones — the near-misses that show where the
//! tail is heading. `split-analyze` enforces the invariant as `SA402`.

use split_obs::Attribution;
use std::collections::BTreeMap;

/// Default sampling window: matches the SLO fast window (5 s).
pub const DEFAULT_WINDOW_US: f64 = 5_000_000.0;

/// Default per-window count of non-violating "slowest" traces to keep.
pub const DEFAULT_TOP_K: usize = 3;

/// Why a request's full trace was retained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Retain {
    /// The request violated QoS (`e2e > α × compute`). Always kept.
    Violating,
    /// Among the `top_k` slowest non-violating completions in its
    /// window.
    TopK,
}

/// Tail-sampling policy.
#[derive(Debug, Clone, PartialEq)]
pub struct TailSampler {
    /// Bucketing window for completions, µs of simulated time.
    pub window_us: f64,
    /// Non-violating slowest traces retained per window.
    pub top_k: usize,
}

impl Default for TailSampler {
    fn default() -> Self {
        TailSampler {
            window_us: DEFAULT_WINDOW_US,
            top_k: DEFAULT_TOP_K,
        }
    }
}

impl TailSampler {
    /// Decide which attributions to retain. Returns `(index, reason)`
    /// pairs into `attrs`, in input order. `alpha` is the QoS
    /// multiplier (violates iff `e2e > alpha × compute`, strict, with
    /// `compute > 0` — the same rule as
    /// `split_obs::SloMonitor::observe_outcome`).
    pub fn select(&self, attrs: &[Attribution], alpha: f64) -> Vec<(usize, Retain)> {
        // Bucket index → (e2e, attr index) of non-violating candidates.
        let mut candidates: BTreeMap<i64, Vec<(f64, usize)>> = BTreeMap::new();
        let mut kept: Vec<(usize, Retain)> = Vec::new();
        for (i, a) in attrs.iter().enumerate() {
            if violates(a, alpha) {
                kept.push((i, Retain::Violating));
            } else {
                let bucket = (a.completion_us / self.window_us).floor() as i64;
                candidates.entry(bucket).or_default().push((a.e2e_us(), i));
            }
        }
        for mut window in candidates.into_values() {
            window.sort_by(|a, b| b.0.total_cmp(&a.0));
            kept.extend(
                window
                    .iter()
                    .take(self.top_k)
                    .map(|&(_, i)| (i, Retain::TopK)),
            );
        }
        kept.sort_by_key(|&(i, _)| i);
        kept
    }
}

/// The strict QoS rule shared by the sampler, the SLO monitor, and the
/// bundle builder.
pub fn violates(a: &Attribution, alpha: f64) -> bool {
    a.compute_us > 0.0 && a.e2e_us() > alpha * a.compute_us
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attr(req: u64, completion_us: f64, compute_us: f64, e2e_us: f64) -> Attribution {
        Attribution {
            req,
            model: "m".into(),
            arrival_us: completion_us - e2e_us,
            completion_us,
            queue_us: e2e_us - compute_us,
            compute_us,
            transfer_us: 0.0,
            stall_us: 0.0,
            sched_us: 0.0,
        }
    }

    #[test]
    fn every_violating_request_is_retained() {
        // 50 requests, half violating (alpha 4, compute 10 → limit 40).
        let attrs: Vec<Attribution> = (0..50)
            .map(|i| {
                let e2e = if i % 2 == 0 { 100.0 } else { 20.0 };
                attr(i, i as f64 * 1_000.0, 10.0, e2e)
            })
            .collect();
        let sampler = TailSampler {
            window_us: 10_000.0,
            top_k: 1,
        };
        let kept = sampler.select(&attrs, 4.0);
        for (i, a) in attrs.iter().enumerate() {
            if violates(a, 4.0) {
                assert!(
                    kept.iter().any(|&(k, r)| k == i && r == Retain::Violating),
                    "violating request {} must be retained",
                    a.req
                );
            }
        }
    }

    #[test]
    fn top_k_slowest_non_violating_per_window() {
        // One window; compute high enough that nothing violates.
        let attrs: Vec<Attribution> = (0..6)
            .map(|i| attr(i, 100.0 + i as f64, 1_000.0, 10.0 + i as f64))
            .collect();
        let sampler = TailSampler {
            window_us: 1_000.0,
            top_k: 2,
        };
        let kept = sampler.select(&attrs, 4.0);
        assert_eq!(kept.len(), 2);
        // Slowest two are reqs 5 and 4.
        let reqs: Vec<u64> = kept.iter().map(|&(i, _)| attrs[i].req).collect();
        assert_eq!(reqs, vec![4, 5]);
        assert!(kept.iter().all(|&(_, r)| r == Retain::TopK));
    }

    #[test]
    fn windows_are_sampled_independently() {
        let attrs = vec![
            attr(0, 500.0, 1_000.0, 30.0),
            attr(1, 600.0, 1_000.0, 10.0),
            attr(2, 1_500.0, 1_000.0, 5.0),
        ];
        let sampler = TailSampler {
            window_us: 1_000.0,
            top_k: 1,
        };
        let kept = sampler.select(&attrs, 4.0);
        // One per window: req 0 (slowest in w0), req 2 (only in w1).
        assert_eq!(kept.iter().map(|&(i, _)| i).collect::<Vec<_>>(), vec![0, 2]);
    }

    #[test]
    fn zero_compute_never_violates() {
        let a = attr(0, 10.0, 0.0, 10.0);
        assert!(!violates(&a, 4.0));
    }
}
