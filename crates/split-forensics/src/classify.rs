//! Automatic root-cause classification for tail outliers.
//!
//! Every retained outlier gets one label, derived from its *exact*
//! critical-path attribution (the five components that sum to e2e
//! within 1 ns) plus a span-overlap pass against the rest of the
//! recording:
//!
//! 1. If compute dominates → **compute-bound** (the request was simply
//!    large; the scheduler is not at fault).
//! 2. If transfer dominates → **transfer-bound** (boundary activations
//!    cost more than the queueing they enable).
//! 3. Otherwise the request lost its time *waiting* (queue + stall +
//!    drain). Overlap its waiting intervals with the device time of
//!    *other models'* blocks: if at least half of the wait coincides
//!    with another model holding the device, the wait was imposed by a
//!    competing workload → **cross-model-interference**, with the
//!    model that overlapped most as the culprit.
//! 4. A self-inflicted wait is **preemption-stall** when mid-execution
//!    stalls dominate the wait (the request kept losing the device at
//!    block boundaries) and **queue-dominated** otherwise (it simply
//!    started late).
//!
//! The split between (3) and (4) is what makes bundle verdicts
//! actionable: "gpt2 is slow" becomes "gpt2 is slow *behind resnet50
//! bursts*".

use serde::{Deserialize, Serialize};
use split_obs::{Attribution, Span, SpanKind};
use std::collections::BTreeMap;

/// Fraction of an outlier's waiting time that must overlap other-model
/// device time before the wait is blamed on interference.
pub const INTERFERENCE_SHARE: f64 = 0.5;

/// Root-cause label for one outlier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RootCause {
    /// Waited in the queue with no single competing model to blame.
    QueueDominated,
    /// Lost the device at block boundaries after starting (preemption /
    /// downgrade stalls dominate the wait).
    PreemptionStall,
    /// Boundary activation transfers dominate the latency.
    TransferBound,
    /// The request's own device time dominates; not a scheduling
    /// problem.
    ComputeBound,
    /// Waiting time coincides with another model holding the device.
    CrossModelInterference,
}

impl RootCause {
    /// Hyphenated label used in verdict strings and CLI output.
    pub fn label(self) -> &'static str {
        match self {
            RootCause::QueueDominated => "queue-dominated",
            RootCause::PreemptionStall => "preemption-stall",
            RootCause::TransferBound => "transfer-bound",
            RootCause::ComputeBound => "compute-bound",
            RootCause::CrossModelInterference => "cross-model-interference",
        }
    }
}

/// Classification result for one outlier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Classification {
    /// The label.
    pub cause: RootCause,
    /// Waiting time (queue + stall) overlapped by other-model blocks,
    /// µs.
    pub interference_us: f64,
    /// Model whose blocks overlapped the most waiting time (empty when
    /// none did).
    pub culprit_model: String,
}

/// Classify one outlier given its attribution and the *full* span
/// forest of the recording (all requests — the other traces provide the
/// interference evidence).
pub fn classify(attr: &Attribution, all_spans: &[Span]) -> Classification {
    // The outlier's waiting intervals: queue + mid-execution stalls.
    let waits: Vec<(f64, f64)> = all_spans
        .iter()
        .filter(|s| {
            s.ctx.trace_id == attr.req && matches!(s.kind, SpanKind::Queue | SpanKind::Stall)
        })
        .map(|s| (s.start_us, s.end_us))
        .collect();

    // Overlap them with other models' device time, per model.
    let mut overlap_by_model: BTreeMap<&str, f64> = BTreeMap::new();
    for s in all_spans {
        if s.ctx.trace_id == attr.req
            || s.model == attr.model
            || !matches!(s.kind, SpanKind::Block { .. })
        {
            continue;
        }
        let mut overlap = 0.0;
        for &(w0, w1) in &waits {
            let lo = s.start_us.max(w0);
            let hi = s.end_us.min(w1);
            if hi > lo {
                overlap += hi - lo;
            }
        }
        if overlap > 0.0 {
            *overlap_by_model.entry(s.model.as_str()).or_default() += overlap;
        }
    }
    let interference_us: f64 = overlap_by_model.values().sum();
    let culprit_model = overlap_by_model
        .iter()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(m, _)| (*m).to_string())
        .unwrap_or_default();

    let wait_us = attr.queue_us + attr.stall_us;
    let cause = match attr.dominant() {
        "compute" => RootCause::ComputeBound,
        "transfer" => RootCause::TransferBound,
        _ if wait_us > 0.0
            && interference_us >= INTERFERENCE_SHARE * wait_us
            && !culprit_model.is_empty() =>
        {
            RootCause::CrossModelInterference
        }
        "stall" => RootCause::PreemptionStall,
        _ => RootCause::QueueDominated,
    };
    Classification {
        cause,
        interference_us,
        culprit_model,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use split_obs::{attribute, build_spans};
    use split_telemetry::{Event, Recorder};

    fn arrival(r: &mut Recorder, req: u64, model: &str, t: f64) {
        r.record(Event::Arrival {
            req,
            model: model.into(),
            t_us: t,
        });
    }

    fn block(r: &mut Recorder, req: u64, b: usize, s: f64, e: f64) {
        r.record(Event::BlockStart {
            req,
            block: b,
            stream: 0,
            t_us: s,
        });
        r.record(Event::BlockEnd {
            req,
            block: b,
            stream: 0,
            t_us: e,
        });
    }

    fn done(r: &mut Recorder, req: u64, t: f64) {
        r.record(Event::Completion { req, t_us: t });
    }

    #[test]
    fn compute_bound_when_own_blocks_dominate() {
        let mut r = Recorder::new();
        arrival(&mut r, 0, "bert", 0.0);
        block(&mut r, 0, 0, 1.0, 101.0);
        done(&mut r, 0, 102.0);
        let spans = build_spans(&r);
        let c = classify(&attribute(&r)[0], &spans);
        assert_eq!(c.cause, RootCause::ComputeBound);
        assert!(c.culprit_model.is_empty());
    }

    #[test]
    fn interference_when_wait_overlaps_other_model() {
        let mut r = Recorder::new();
        // resnet50 holds the device [0,90]; gpt2 arrives at 0, waits
        // until 90, runs [90,100].
        arrival(&mut r, 1, "resnet50", 0.0);
        block(&mut r, 1, 0, 0.0, 90.0);
        done(&mut r, 1, 90.0);
        arrival(&mut r, 2, "gpt2", 0.0);
        block(&mut r, 2, 0, 90.0, 100.0);
        done(&mut r, 2, 100.0);
        let spans = build_spans(&r);
        let attrs = attribute(&r);
        let gpt2 = attrs.iter().find(|a| a.model == "gpt2").unwrap();
        let c = classify(gpt2, &spans);
        assert_eq!(c.cause, RootCause::CrossModelInterference);
        assert_eq!(c.culprit_model, "resnet50");
        assert!((c.interference_us - 90.0).abs() < 1e-9);
    }

    #[test]
    fn same_model_contention_is_queueing_not_interference() {
        let mut r = Recorder::new();
        arrival(&mut r, 1, "resnet50", 0.0);
        block(&mut r, 1, 0, 0.0, 90.0);
        done(&mut r, 1, 90.0);
        arrival(&mut r, 2, "resnet50", 0.0);
        block(&mut r, 2, 0, 90.0, 100.0);
        done(&mut r, 2, 100.0);
        let spans = build_spans(&r);
        let attrs = attribute(&r);
        let late = attrs.iter().find(|a| a.req == 2).unwrap();
        let c = classify(late, &spans);
        assert_eq!(c.cause, RootCause::QueueDominated);
        assert_eq!(c.interference_us, 0.0);
    }

    #[test]
    fn preemption_stall_when_boundary_stalls_dominate_alone() {
        let mut r = Recorder::new();
        // Two blocks with a long idle gap between them and nothing else
        // on the device: a stall nobody else caused.
        arrival(&mut r, 3, "vgg19", 0.0);
        block(&mut r, 3, 0, 0.0, 10.0);
        block(&mut r, 3, 1, 80.0, 90.0);
        done(&mut r, 3, 90.0);
        let spans = build_spans(&r);
        let c = classify(&attribute(&r)[0], &spans);
        assert_eq!(c.cause, RootCause::PreemptionStall);
    }

    #[test]
    fn stall_overlapped_by_other_model_is_interference() {
        let mut r = Recorder::new();
        // vgg19 stalls [10,80] while resnet50 runs [10,80].
        arrival(&mut r, 3, "vgg19", 0.0);
        block(&mut r, 3, 0, 0.0, 10.0);
        block(&mut r, 3, 1, 80.0, 90.0);
        done(&mut r, 3, 90.0);
        arrival(&mut r, 4, "resnet50", 5.0);
        block(&mut r, 4, 0, 10.0, 80.0);
        done(&mut r, 4, 80.0);
        let spans = build_spans(&r);
        let attrs = attribute(&r);
        let vgg = attrs.iter().find(|a| a.model == "vgg19").unwrap();
        let c = classify(vgg, &spans);
        assert_eq!(c.cause, RootCause::CrossModelInterference);
        assert_eq!(c.culprit_model, "resnet50");
    }
}
