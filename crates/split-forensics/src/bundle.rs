//! Self-contained incident bundles.
//!
//! A bundle is everything a human (or the closed-loop controller of
//! ROADMAP item 5) needs to understand one burn-rate alert, in one
//! JSON document: the alert itself, the SLO config in force, the
//! flight-recorder ring scoped to the incident window, queue-depth and
//! device-utilization context, every retained outlier's full span tree
//! with its root-cause label, per-model head counters for everything
//! that was *not* retained, and an aggregated [`Verdict`].
//!
//! The schema is versioned ([`BUNDLE_SCHEMA`]) and flat enough for the
//! plain serde derive; `split-cli forensics <bundle>` renders it and
//! [`IncidentBundle::perfetto_events`] re-exports the captured spans as
//! a Chrome/Perfetto trace with the incident context overlaid.

use crate::classify::RootCause;
use crate::ring::FlightSnapshot;
use serde::{Deserialize, Serialize};
use serde_json::{Map, Number, Value};
use split_obs::{Alert, Attribution, Span, SpanContext, SpanKind};
use std::io;
use std::path::Path;

/// Bundle schema identifier (bump on breaking changes).
pub const BUNDLE_SCHEMA: &str = "split-forensics-bundle/v1";

/// Lifecycle phase of a captured span (flattened [`SpanKind`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PhaseKind {
    /// Root arrival → completion span.
    Request,
    /// Pre-first-block queueing.
    Queue,
    /// One block on the device.
    Block,
    /// Boundary activation transfer.
    Transfer,
    /// Preemption/downgrade stall at a block boundary.
    Stall,
    /// Post-last-block drain.
    Drain,
}

/// One span of an outlier's trace, flattened for serialization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Trace id (= request id).
    pub trace_id: u64,
    /// Span id, unique within the trace.
    pub span_id: u64,
    /// Parent span id (`None` for the root).
    pub parent: Option<u64>,
    /// Lifecycle phase.
    pub phase: PhaseKind,
    /// Block index (Block spans; 0 otherwise).
    pub index: u64,
    /// Stream (Block spans; 0 otherwise).
    pub stream: u64,
    /// Payload bytes (Transfer spans; 0 otherwise).
    pub bytes: u64,
    /// Model name.
    pub model: String,
    /// Start, µs.
    pub start_us: f64,
    /// End, µs.
    pub end_us: f64,
}

impl From<&Span> for SpanRecord {
    fn from(sp: &Span) -> Self {
        let (phase, index, stream, bytes) = match sp.kind {
            SpanKind::Request => (PhaseKind::Request, 0, 0, 0),
            SpanKind::Queue => (PhaseKind::Queue, 0, 0, 0),
            SpanKind::Block { index, stream } => (PhaseKind::Block, index as u64, stream as u64, 0),
            SpanKind::Transfer { bytes } => (PhaseKind::Transfer, 0, 0, bytes),
            SpanKind::Stall => (PhaseKind::Stall, 0, 0, 0),
            SpanKind::Drain => (PhaseKind::Drain, 0, 0, 0),
        };
        SpanRecord {
            trace_id: sp.ctx.trace_id,
            span_id: sp.ctx.span_id,
            parent: sp.ctx.parent,
            phase,
            index,
            stream,
            bytes,
            model: sp.model.clone(),
            start_us: sp.start_us,
            end_us: sp.end_us,
        }
    }
}

impl SpanRecord {
    /// Reconstruct the in-memory [`Span`].
    pub fn to_span(&self) -> Span {
        let kind = match self.phase {
            PhaseKind::Request => SpanKind::Request,
            PhaseKind::Queue => SpanKind::Queue,
            PhaseKind::Block => SpanKind::Block {
                index: self.index as usize,
                stream: self.stream as u32,
            },
            PhaseKind::Transfer => SpanKind::Transfer { bytes: self.bytes },
            PhaseKind::Stall => SpanKind::Stall,
            PhaseKind::Drain => SpanKind::Drain,
        };
        Span {
            ctx: SpanContext {
                trace_id: self.trace_id,
                span_id: self.span_id,
                parent: self.parent,
            },
            model: self.model.clone(),
            kind,
            start_us: self.start_us,
            end_us: self.end_us,
        }
    }

    /// Span duration, µs.
    pub fn dur_us(&self) -> f64 {
        self.end_us - self.start_us
    }
}

/// Why an outlier's full trace is in the bundle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SampleReason {
    /// Violated QoS (`e2e > α × compute`). The sampling invariant
    /// guarantees capture.
    Violating,
    /// Among the top-k slowest non-violating completions in its window.
    TopK,
    /// Rejected before execution (unknown model / admission drop).
    Dropped,
}

/// One retained outlier: exact attribution, root-cause label, and the
/// full span tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OutlierReport {
    /// Exact latency decomposition (components sum to e2e within 1 ns —
    /// the `SA401` invariant).
    pub attribution: Attribution,
    /// Whether the request violated QoS.
    pub violated: bool,
    /// Why it was retained.
    pub reason: SampleReason,
    /// Root-cause label.
    pub cause: RootCause,
    /// Waiting time overlapped by other-model device time, µs.
    pub interference_us: f64,
    /// Model blamed for the interference (empty when none).
    pub culprit_model: String,
    /// Full span tree (root first).
    pub spans: Vec<SpanRecord>,
}

/// Share of outliers carrying one root cause.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CauseShare {
    /// The cause.
    pub cause: RootCause,
    /// Outliers labeled with it.
    pub count: u64,
    /// `count / total outliers` (shares sum to 1 — the `SA404`
    /// invariant).
    pub share: f64,
}

/// Aggregated incident verdict.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Verdict {
    /// One-line human verdict, e.g. `p99 regression: 78%
    /// preemption-stall on gpt2 behind resnet50 bursts`.
    pub text: String,
    /// Cause histogram over all outliers, descending by count.
    pub cause_shares: Vec<CauseShare>,
    /// Model with the most violating outliers.
    pub top_model: String,
    /// Most-blamed interfering model (empty when interference played no
    /// role).
    pub culprit_model: String,
    /// Outliers in the bundle.
    pub outliers: u64,
    /// QoS-violating completions in the incident window.
    pub violating: u64,
    /// Violating completions whose traces are in the bundle. The
    /// sampling invariant requires `captured_violating == violating`
    /// (`SA402`).
    pub captured_violating: u64,
}

/// Queue-depth sample inside the incident window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DepthSample {
    /// Sample time, µs.
    pub t_us: f64,
    /// Wait-queue depth.
    pub depth: u64,
}

/// Head-sampled per-model counters for the incident window (the
/// requests that were *not* retained still count here).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelStat {
    /// Model name.
    pub model: String,
    /// Completions in the window.
    pub completed: u64,
    /// QoS violations among them.
    pub violated: u64,
    /// Traces retained in the bundle.
    pub captured: u64,
    /// Mean e2e latency, µs.
    pub mean_e2e_us: f64,
    /// Max e2e latency, µs.
    pub max_e2e_us: f64,
}

/// One self-contained incident.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IncidentBundle {
    /// Schema identifier ([`BUNDLE_SCHEMA`]).
    pub schema: String,
    /// The burn-rate alert that triggered the capture.
    pub alert: Alert,
    /// QoS multiplier in force.
    pub alpha: f64,
    /// Violation-rate objective in force.
    pub objective: f64,
    /// Incident window start (alert fire − slow window), µs.
    pub window_start_us: f64,
    /// Incident window end (alert resolve, or end of recording), µs.
    pub window_end_us: f64,
    /// Queue-depth samples inside the window.
    pub queue_depths: Vec<DepthSample>,
    /// Peak queue depth inside the window.
    pub peak_queue_depth: u64,
    /// Device busy fraction over the window, percent (0 when no
    /// execution trace was available).
    pub device_busy_pct: f64,
    /// Flight-recorder ring scoped to the window.
    pub flight: FlightSnapshot,
    /// Retained outliers with root-cause labels.
    pub outliers: Vec<OutlierReport>,
    /// Per-model head counters.
    pub models: Vec<ModelStat>,
    /// Aggregated verdict.
    pub verdict: Verdict,
}

impl IncidentBundle {
    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("bundle serializes")
    }

    /// Write the JSON document to `path`.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Load a bundle from `path`, verifying the schema tag.
    pub fn load(path: &Path) -> io::Result<IncidentBundle> {
        let text = std::fs::read_to_string(path)?;
        let bundle: IncidentBundle = serde_json::from_str(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        if bundle.schema != BUNDLE_SCHEMA {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unknown bundle schema {:?}", bundle.schema),
            ));
        }
        Ok(bundle)
    }

    /// Outlier span forest as in-memory [`Span`]s.
    pub fn spans(&self) -> Vec<Span> {
        self.outliers
            .iter()
            .flat_map(|o| o.spans.iter().map(SpanRecord::to_span))
            .collect()
    }

    /// Export as a Chrome/Perfetto `trace_events` document: one track
    /// per captured outlier (tid = 1000 + request id, cause in the root
    /// span's args), queue depth as a counter track, and an instant
    /// marker at alert fire/resolve.
    pub fn perfetto_events(&self) -> Value {
        let mut events: Vec<Value> = Vec::new();
        events.push(obj(vec![
            ("name", s("process_name")),
            ("ph", s("M")),
            ("pid", u(1)),
            ("args", obj(vec![("name", s("split-forensics incident"))])),
        ]));
        events.push(obj(vec![
            ("name", s("alert fired")),
            ("ph", s("i")),
            ("s", s("g")),
            ("ts", f(self.alert.fired_at_us)),
            ("pid", u(1)),
            ("tid", u(0)),
            ("args", obj(vec![("verdict", s(self.verdict.text.clone()))])),
        ]));
        if let Some(r) = self.alert.resolved_at_us {
            events.push(obj(vec![
                ("name", s("alert resolved")),
                ("ph", s("i")),
                ("s", s("g")),
                ("ts", f(r)),
                ("pid", u(1)),
                ("tid", u(0)),
            ]));
        }
        for d in &self.queue_depths {
            events.push(obj(vec![
                ("name", s("queue depth")),
                ("ph", s("C")),
                ("ts", f(d.t_us)),
                ("pid", u(1)),
                ("args", obj(vec![("depth", u(d.depth))])),
            ]));
        }
        for o in &self.outliers {
            for sp in &o.spans {
                let mut args = vec![
                    ("trace_id", u(sp.trace_id)),
                    ("span_id", u(sp.span_id)),
                    ("cause", s(o.cause.label())),
                ];
                if let Some(p) = sp.parent {
                    args.push(("parent", u(p)));
                }
                events.push(obj(vec![
                    ("name", s(sp.to_span().label())),
                    ("cat", s(o.cause.label())),
                    ("ph", s("X")),
                    ("ts", f(sp.start_us)),
                    ("dur", f(sp.dur_us())),
                    ("pid", u(1)),
                    ("tid", u(1_000 + sp.trace_id)),
                    ("args", obj(args)),
                ]));
            }
        }
        let mut root = Map::new();
        root.insert("traceEvents", Value::Array(events));
        root.insert("displayTimeUnit", s("ms"));
        Value::Object(root)
    }

    /// Serialize [`IncidentBundle::perfetto_events`] to a file.
    pub fn write_perfetto(&self, path: &Path) -> io::Result<()> {
        let text = serde_json::to_string(&self.perfetto_events())
            .map_err(|e| io::Error::other(e.to_string()))?;
        std::fs::write(path, text)
    }

    /// Multi-line human rendering for `split-cli forensics`.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let a = &self.alert;
        out.push_str(&format!("incident bundle ({})\n", self.schema));
        out.push_str(&format!(
            "  alert: fired {:.1} ms, {} (fast burn {:.2}, slow burn {:.2})\n",
            a.fired_at_us / 1_000.0,
            match a.resolved_at_us {
                Some(r) => format!("resolved {:.1} ms", r / 1_000.0),
                None => "still active".to_string(),
            },
            a.fast_burn_at_fire,
            a.slow_burn_at_fire,
        ));
        out.push_str(&format!(
            "  window: [{:.1}, {:.1}] ms  α={}  objective={:.0}%\n",
            self.window_start_us / 1_000.0,
            self.window_end_us / 1_000.0,
            self.alpha,
            self.objective * 100.0,
        ));
        out.push_str(&format!(
            "  context: peak queue depth {}, device busy {:.1}%, flight ring {}/{} records ({} dropped)\n",
            self.peak_queue_depth,
            self.device_busy_pct,
            self.flight.records.len(),
            self.flight.capacity,
            self.flight.dropped,
        ));
        out.push_str(&format!("  verdict: {}\n", self.verdict.text));
        for cs in &self.verdict.cause_shares {
            out.push_str(&format!(
                "    {:>5.1}%  {} ({} outliers)\n",
                cs.share * 100.0,
                cs.cause.label(),
                cs.count
            ));
        }
        out.push_str(&format!(
            "  capture: {} outliers, {}/{} violating requests retained\n",
            self.verdict.outliers, self.verdict.captured_violating, self.verdict.violating
        ));
        out.push_str("  models:\n");
        for m in &self.models {
            out.push_str(&format!(
                "    {:<12} {:>5} completed  {:>4} violated  {:>4} captured  mean {:>8.1} µs  max {:>8.1} µs\n",
                m.model, m.completed, m.violated, m.captured, m.mean_e2e_us, m.max_e2e_us
            ));
        }
        out
    }
}

fn s(v: impl Into<String>) -> Value {
    Value::String(v.into())
}

fn u(v: u64) -> Value {
    Value::Number(Number::PosInt(v))
}

fn f(v: f64) -> Value {
    Value::Number(Number::Float(v))
}

fn obj(pairs: Vec<(&str, Value)>) -> Value {
    let mut m = Map::new();
    for (k, v) in pairs {
        m.insert(k, v);
    }
    Value::Object(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::{FlightKind, FlightRing};

    fn sample_bundle() -> IncidentBundle {
        let ring = FlightRing::with_capacity(16);
        ring.record(5.0, 7, FlightKind::Arrival, 0, 0);
        ring.record(9.0, 7, FlightKind::Completion, 0, 0);
        let attribution = Attribution {
            req: 7,
            model: "gpt2".into(),
            arrival_us: 5.0,
            completion_us: 9.0,
            queue_us: 3.0,
            compute_us: 1.0,
            transfer_us: 0.0,
            stall_us: 0.0,
            sched_us: 0.0,
        };
        let spans = vec![
            SpanRecord {
                trace_id: 7,
                span_id: 1,
                parent: None,
                phase: PhaseKind::Request,
                index: 0,
                stream: 0,
                bytes: 0,
                model: "gpt2".into(),
                start_us: 5.0,
                end_us: 9.0,
            },
            SpanRecord {
                trace_id: 7,
                span_id: 2,
                parent: Some(1),
                phase: PhaseKind::Queue,
                index: 0,
                stream: 0,
                bytes: 0,
                model: "gpt2".into(),
                start_us: 5.0,
                end_us: 8.0,
            },
        ];
        IncidentBundle {
            schema: BUNDLE_SCHEMA.to_string(),
            alert: Alert {
                fired_at_us: 8.0,
                resolved_at_us: Some(20.0),
                fast_burn_at_fire: 2.0,
                slow_burn_at_fire: 1.5,
                source: Default::default(),
                detail: String::new(),
            },
            alpha: 4.0,
            objective: 0.10,
            window_start_us: 0.0,
            window_end_us: 20.0,
            queue_depths: vec![DepthSample {
                t_us: 6.0,
                depth: 2,
            }],
            peak_queue_depth: 2,
            device_busy_pct: 55.0,
            flight: ring.snapshot(),
            outliers: vec![OutlierReport {
                attribution,
                violated: false,
                reason: SampleReason::TopK,
                cause: RootCause::QueueDominated,
                interference_us: 0.0,
                culprit_model: String::new(),
                spans,
            }],
            models: vec![ModelStat {
                model: "gpt2".into(),
                completed: 1,
                violated: 0,
                captured: 1,
                mean_e2e_us: 4.0,
                max_e2e_us: 4.0,
            }],
            verdict: Verdict {
                text: "p99 regression: 100% queue-dominated on gpt2".into(),
                cause_shares: vec![CauseShare {
                    cause: RootCause::QueueDominated,
                    count: 1,
                    share: 1.0,
                }],
                top_model: "gpt2".into(),
                culprit_model: String::new(),
                outliers: 1,
                violating: 0,
                captured_violating: 0,
            },
        }
    }

    #[test]
    fn bundle_roundtrips_through_disk() {
        let dir = std::env::temp_dir().join("split-forensics-bundle-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bundle.json");
        let b = sample_bundle();
        b.save(&path).unwrap();
        let back = IncidentBundle::load(&path).unwrap();
        assert_eq!(back, b);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_unknown_schema() {
        let dir = std::env::temp_dir().join("split-forensics-bundle-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad-schema.json");
        let mut b = sample_bundle();
        b.schema = "other/v9".into();
        std::fs::write(&path, b.to_json()).unwrap();
        assert!(IncidentBundle::load(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn span_records_roundtrip_to_spans() {
        let b = sample_bundle();
        let spans = b.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].kind, SpanKind::Request);
        assert_eq!(spans[1].kind, SpanKind::Queue);
        assert_eq!(SpanRecord::from(&spans[1]), b.outliers[0].spans[1]);
    }

    #[test]
    fn perfetto_export_has_counter_and_instant_tracks() {
        let doc = sample_bundle().perfetto_events();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let phases: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("ph").and_then(Value::as_str))
            .collect();
        assert!(phases.contains(&"i"), "alert instant missing");
        assert!(phases.contains(&"C"), "queue-depth counter missing");
        assert!(phases.contains(&"X"), "outlier spans missing");
        let root_span = events
            .iter()
            .find(|e| e.get("cat").is_some() && e.get("ph").and_then(Value::as_str) == Some("X"))
            .unwrap();
        assert_eq!(
            root_span
                .get("args")
                .unwrap()
                .get("cause")
                .unwrap()
                .as_str(),
            Some("queue-dominated")
        );
    }

    #[test]
    fn render_text_carries_verdict_and_models() {
        let text = sample_bundle().render_text();
        assert!(text.contains("verdict: p99 regression"));
        assert!(text.contains("gpt2"));
        assert!(!text.contains("1/1 violating"));
        assert!(text.contains("0/0 violating requests retained"));
    }
}
