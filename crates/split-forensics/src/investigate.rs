//! The forensics driver: from a lifecycle recording to incident
//! bundles.
//!
//! [`investigate`] replays a recording through the burn-rate
//! [`SloMonitor`] exactly the way the live runtime feeds it (one
//! `observe_outcome` per completion, in completion order), then scopes
//! one [`IncidentBundle`] per fired alert: the incident window runs
//! from `fired_at − slow_window` (the data that burned the slow
//! window) to the alert's resolution (or the end of the recording).
//! Within the window the tail sampler picks the outliers, each outlier
//! is classified, per-model head counters summarize everything that
//! was *not* retained, and the verdict aggregates the labels.
//!
//! The bundle's flight ring is the provided snapshot filtered to the
//! window; its `capacity`/`appended`/`dropped` counters stay
//! ring-global so the reader can judge how much history the ring held.

use crate::bundle::{
    CauseShare, DepthSample, IncidentBundle, ModelStat, OutlierReport, SampleReason, SpanRecord,
    Verdict, BUNDLE_SCHEMA,
};
use crate::classify::{classify, RootCause};
use crate::ring::{FlightKind, FlightSnapshot};
use crate::sampling::{violates, Retain, TailSampler};
use split_obs::attribution::attribute_spans;
use split_obs::{build_spans, AlertLog, Attribution, SloCfg, SloMonitor, Span};
use split_telemetry::{Event, Recorder};
use std::collections::BTreeMap;

/// Forensics configuration: the SLO in force plus the sampling policy.
#[derive(Debug, Clone, Default)]
pub struct ForensicsCfg {
    /// SLO / burn-rate alert configuration.
    pub slo: SloCfg,
    /// Tail-sampling policy.
    pub sampler: TailSampler,
}

/// Everything [`investigate`] learned from one recording.
#[derive(Debug, Clone)]
pub struct Investigation {
    /// The replayed alert history.
    pub alerts: AlertLog,
    /// One bundle per fired alert, in fire order.
    pub bundles: Vec<IncidentBundle>,
    /// Attribution of every completed request (completion order).
    pub attributions: Vec<Attribution>,
}

impl Investigation {
    /// Total QoS-violating completions across the recording (not just
    /// inside incident windows).
    pub fn violating(&self, alpha: f64) -> usize {
        self.attributions
            .iter()
            .filter(|a| violates(a, alpha))
            .count()
    }
}

/// Replay `rec` through the SLO monitor and build one incident bundle
/// per fired alert. `flight` is the flight-recorder snapshot taken with
/// the recording (pass [`FlightSnapshot::disabled`] when the ring was
/// off); `trace` supplies device-busy context when available.
pub fn investigate(
    rec: &Recorder,
    flight: &FlightSnapshot,
    trace: Option<&gpu_sim::Trace>,
    cfg: &ForensicsCfg,
) -> Investigation {
    let spans = build_spans(rec);
    let mut attributions = attribute_spans(&spans);
    attributions.sort_by(|a, b| a.completion_us.total_cmp(&b.completion_us));

    let last_t = rec.events().map(Event::t_us).fold(0.0_f64, f64::max);

    let mut monitor = SloMonitor::new(cfg.slo.clone());
    for a in &attributions {
        monitor.observe_outcome(a.completion_us, a.e2e_us(), a.compute_us);
    }
    monitor.advance(last_t);
    let alerts = monitor.log().clone();

    let bundles = bundles_for_alerts(rec, flight, trace, cfg, &alerts);

    Investigation {
        alerts,
        bundles,
        attributions,
    }
}

/// Build one incident bundle per alert in `alerts`, against the given
/// recording. This is [`investigate`] without the SLO replay — the live
/// runtime calls it with the alert log its own monitor produced, so
/// bundles describe the alerts that *actually* fired, not a
/// reconstruction.
pub fn bundles_for_alerts(
    rec: &Recorder,
    flight: &FlightSnapshot,
    trace: Option<&gpu_sim::Trace>,
    cfg: &ForensicsCfg,
    alerts: &AlertLog,
) -> Vec<IncidentBundle> {
    if alerts.alerts.is_empty() {
        return Vec::new();
    }
    let spans = build_spans(rec);
    let mut attributions = attribute_spans(&spans);
    attributions.sort_by(|a, b| a.completion_us.total_cmp(&b.completion_us));
    let last_t = rec.events().map(Event::t_us).fold(0.0_f64, f64::max);

    // Model names for requests that never completed (drop forensics).
    let arrival_models: BTreeMap<u64, (String, f64)> = rec
        .events()
        .filter_map(|e| match e {
            Event::Arrival { req, model, t_us } => Some((*req, (model.clone(), *t_us))),
            _ => None,
        })
        .collect();

    alerts
        .alerts
        .iter()
        .map(|alert| {
            let start = (alert.fired_at_us - cfg.slo.slow_window_us).max(0.0);
            let end = alert
                .resolved_at_us
                .unwrap_or(last_t)
                .max(alert.fired_at_us);
            build_bundle(
                alert,
                start,
                end,
                &attributions,
                &spans,
                rec,
                flight,
                trace,
                cfg,
                &arrival_models,
            )
        })
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn build_bundle(
    alert: &split_obs::Alert,
    start: f64,
    end: f64,
    attributions: &[Attribution],
    spans: &[Span],
    rec: &Recorder,
    flight: &FlightSnapshot,
    trace: Option<&gpu_sim::Trace>,
    cfg: &ForensicsCfg,
    arrival_models: &BTreeMap<u64, (String, f64)>,
) -> IncidentBundle {
    let alpha = cfg.slo.alpha;
    let in_window: Vec<&Attribution> = attributions
        .iter()
        .filter(|a| a.completion_us >= start && a.completion_us <= end)
        .collect();

    // Spans grouped by request once, so outlier extraction is O(spans).
    let mut spans_by_req: BTreeMap<u64, Vec<SpanRecord>> = BTreeMap::new();
    for sp in spans {
        spans_by_req
            .entry(sp.ctx.trace_id)
            .or_default()
            .push(SpanRecord::from(sp));
    }

    let owned: Vec<Attribution> = in_window.iter().map(|a| (*a).clone()).collect();
    let mut outliers: Vec<OutlierReport> = cfg
        .sampler
        .select(&owned, alpha)
        .into_iter()
        .map(|(i, retain)| {
            let attr = owned[i].clone();
            let c = classify(&attr, spans);
            OutlierReport {
                violated: retain == Retain::Violating,
                reason: match retain {
                    Retain::Violating => SampleReason::Violating,
                    Retain::TopK => SampleReason::TopK,
                },
                cause: c.cause,
                interference_us: c.interference_us,
                culprit_model: c.culprit_model,
                spans: spans_by_req.get(&attr.req).cloned().unwrap_or_default(),
                attribution: attr,
            }
        })
        .collect();

    // Dropped requests (flight `Drop` records in the window) are always
    // retained: they are the most extreme tail of all.
    for r in &flight.records {
        if r.kind == FlightKind::Drop && r.t_us >= start && r.t_us <= end {
            let (model, arrival_us) = arrival_models
                .get(&r.req)
                .cloned()
                .unwrap_or((String::new(), r.t_us));
            outliers.push(OutlierReport {
                attribution: Attribution {
                    req: r.req,
                    model,
                    arrival_us,
                    completion_us: arrival_us,
                    queue_us: 0.0,
                    compute_us: 0.0,
                    transfer_us: 0.0,
                    stall_us: 0.0,
                    sched_us: 0.0,
                },
                violated: false,
                reason: SampleReason::Dropped,
                cause: RootCause::QueueDominated,
                interference_us: 0.0,
                culprit_model: String::new(),
                spans: Vec::new(),
            });
        }
    }

    // Head counters: the window's whole population, retained or not.
    let mut models: BTreeMap<&str, ModelStat> = BTreeMap::new();
    for a in &in_window {
        let m = models.entry(a.model.as_str()).or_insert_with(|| ModelStat {
            model: a.model.clone(),
            completed: 0,
            violated: 0,
            captured: 0,
            mean_e2e_us: 0.0,
            max_e2e_us: 0.0,
        });
        m.completed += 1;
        m.violated += u64::from(violates(a, alpha));
        m.mean_e2e_us += a.e2e_us();
        m.max_e2e_us = m.max_e2e_us.max(a.e2e_us());
    }
    for o in &outliers {
        if let Some(m) = models.get_mut(o.attribution.model.as_str()) {
            m.captured += 1;
        }
    }
    let models: Vec<ModelStat> = models
        .into_values()
        .map(|mut m| {
            m.mean_e2e_us /= m.completed.max(1) as f64;
            m
        })
        .collect();

    let violating = in_window.iter().filter(|a| violates(a, alpha)).count() as u64;
    let captured_violating = outliers.iter().filter(|o| o.violated).count() as u64;
    let verdict = build_verdict(&outliers, violating, captured_violating);

    let queue_depths: Vec<DepthSample> = rec
        .events()
        .filter_map(|e| match e {
            Event::QueueDepth { depth, t_us } if *t_us >= start && *t_us <= end => {
                Some(DepthSample {
                    t_us: *t_us,
                    depth: *depth as u64,
                })
            }
            _ => None,
        })
        .collect();
    let peak_queue_depth = queue_depths.iter().map(|d| d.depth).max().unwrap_or(0);

    let device_busy_pct = trace
        .filter(|_| end > start)
        .map(|t| 100.0 * t.busy_us_between(start, end) / (end - start))
        .unwrap_or(0.0);

    let scoped_flight = FlightSnapshot {
        capacity: flight.capacity,
        appended: flight.appended,
        dropped: flight.dropped,
        records: flight
            .records
            .iter()
            .filter(|r| r.t_us >= start && r.t_us <= end)
            .cloned()
            .collect(),
    };

    IncidentBundle {
        schema: BUNDLE_SCHEMA.to_string(),
        alert: alert.clone(),
        alpha,
        objective: cfg.slo.objective,
        window_start_us: start,
        window_end_us: end,
        queue_depths,
        peak_queue_depth,
        device_busy_pct,
        flight: scoped_flight,
        outliers,
        models,
        verdict,
    }
}

fn build_verdict(outliers: &[OutlierReport], violating: u64, captured_violating: u64) -> Verdict {
    let total = outliers.len() as u64;
    let mut counts: BTreeMap<RootCause, u64> = BTreeMap::new();
    for o in outliers {
        *counts.entry(o.cause).or_default() += 1;
    }
    let mut cause_shares: Vec<CauseShare> = counts
        .into_iter()
        .map(|(cause, count)| CauseShare {
            cause,
            count,
            share: count as f64 / total.max(1) as f64,
        })
        .collect();
    cause_shares.sort_by_key(|s| std::cmp::Reverse(s.count));

    // Model with the most violating outliers (all outliers as a
    // fallback so a TopK-only bundle still names its subject).
    let mut by_model: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
    for o in outliers {
        let e = by_model.entry(o.attribution.model.as_str()).or_default();
        e.0 += u64::from(o.violated);
        e.1 += 1;
    }
    let top_model = by_model
        .iter()
        .max_by_key(|(_, &(v, n))| (v, n))
        .map(|(m, _)| (*m).to_string())
        .unwrap_or_default();

    // Most-blamed interferer, weighted by overlapped time.
    let mut blame: BTreeMap<&str, f64> = BTreeMap::new();
    for o in outliers {
        if !o.culprit_model.is_empty() {
            *blame.entry(o.culprit_model.as_str()).or_default() += o.interference_us;
        }
    }
    let culprit_model = blame
        .iter()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(m, _)| (*m).to_string())
        .unwrap_or_default();

    let text = match cause_shares.first() {
        None => "no outliers captured in the incident window".to_string(),
        Some(top) => {
            let mut t = format!(
                "p99 regression: {:.0}% {} on {}",
                top.share * 100.0,
                top.cause.label(),
                if top_model.is_empty() {
                    "?"
                } else {
                    &top_model
                }
            );
            if !culprit_model.is_empty() {
                t.push_str(&format!(" behind {culprit_model} bursts"));
            }
            t
        }
    };

    Verdict {
        text,
        cause_shares,
        top_model,
        culprit_model,
        outliers: total,
        violating,
        captured_violating,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::FlightRing;

    fn small_cfg() -> ForensicsCfg {
        ForensicsCfg {
            slo: SloCfg {
                alpha: 4.0,
                objective: 0.10,
                fast_window_us: 100.0,
                slow_window_us: 1_000.0,
                fast_burn: 1.0,
                slow_burn: 1.0,
            },
            sampler: TailSampler {
                window_us: 1_000.0,
                top_k: 1,
            },
        }
    }

    /// Requests every 10 µs; `bad` ones queue 50 µs before a 1 µs block
    /// (e2e 51 > 4×1 → violation), good ones run immediately.
    fn recording(n: u64, bad: impl Fn(u64) -> bool) -> Recorder {
        let mut r = Recorder::new();
        for i in 0..n {
            let t0 = i as f64 * 10.0;
            let (bs, be) = if bad(i) {
                (t0 + 50.0, t0 + 51.0)
            } else {
                (t0, t0 + 1.0)
            };
            r.record(Event::Arrival {
                req: i,
                model: if i % 2 == 0 { "resnet50" } else { "gpt2" }.into(),
                t_us: t0,
            });
            r.record(Event::BlockStart {
                req: i,
                block: 0,
                stream: 0,
                t_us: bs,
            });
            r.record(Event::BlockEnd {
                req: i,
                block: 0,
                stream: 0,
                t_us: be,
            });
            r.record(Event::Completion { req: i, t_us: be });
        }
        r
    }

    #[test]
    fn clean_recording_produces_no_bundles() {
        let rec = recording(20, |_| false);
        let inv = investigate(&rec, &FlightSnapshot::disabled(), None, &small_cfg());
        assert_eq!(inv.alerts.fired(), 0);
        assert!(inv.bundles.is_empty());
        assert_eq!(inv.attributions.len(), 20);
    }

    #[test]
    fn burst_fires_alert_and_captures_every_violation() {
        // 30 requests, every one after #9 violating: burn rockets past
        // both thresholds.
        let rec = recording(30, |i| i >= 10);
        let inv = investigate(&rec, &FlightSnapshot::disabled(), None, &small_cfg());
        assert!(inv.alerts.fired() >= 1, "alert must fire");
        assert_eq!(inv.bundles.len(), inv.alerts.fired());
        let b = &inv.bundles[0];
        // Sampling invariant: every violating completion in the window
        // is captured.
        assert_eq!(b.verdict.captured_violating, b.verdict.violating);
        assert!(b.verdict.violating > 0);
        // Attribution exactness rides into the bundle (SA401).
        for o in &b.outliers {
            assert!(o.attribution.residual_us().abs() < split_obs::SUM_TOLERANCE_US);
        }
        assert!(
            b.verdict.text.starts_with("p99 regression:"),
            "{}",
            b.verdict.text
        );
        assert!(!b.models.is_empty());
    }

    #[test]
    fn dropped_requests_enter_the_bundle_from_the_flight_ring() {
        let rec = recording(30, |i| i >= 10);
        let ring = FlightRing::with_capacity(64);
        ring.record(150.0, 999, FlightKind::Drop, 0, 0);
        let inv = investigate(&rec, &ring.snapshot(), None, &small_cfg());
        let b = &inv.bundles[0];
        let dropped: Vec<&OutlierReport> = b
            .outliers
            .iter()
            .filter(|o| o.reason == SampleReason::Dropped)
            .collect();
        assert_eq!(dropped.len(), 1);
        assert_eq!(dropped[0].attribution.req, 999);
    }

    #[test]
    fn verdict_shares_sum_to_one() {
        let rec = recording(30, |i| i >= 10);
        let inv = investigate(&rec, &FlightSnapshot::disabled(), None, &small_cfg());
        let v = &inv.bundles[0].verdict;
        let total: f64 = v.cause_shares.iter().map(|c| c.share).sum();
        assert!((total - 1.0).abs() < 1e-9);
        let count: u64 = v.cause_shares.iter().map(|c| c.count).sum();
        assert_eq!(count, v.outliers);
    }
}
