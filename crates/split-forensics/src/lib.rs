#![warn(missing_docs)]
//! # split-forensics — tail-latency forensics for the SPLIT stack
//!
//! The observability layer (`split-obs`) can say *that* the p99 blew up;
//! this crate answers *why this specific request* did, mechanically:
//!
//! * [`ring`] — the **flight recorder**: a bounded, lock-free ring of
//!   compact per-request causal records (decisions, preemptions, block
//!   boundaries, transfers, queue transitions) cheap enough to stay on
//!   in production. Safe Rust throughout — the seqlock slots are plain
//!   atomics.
//! * [`sampling`] — **tail sampling**: full causal traces are retained
//!   only for outliers (QoS-violating, dropped, or top-k slowest per
//!   window); everything else collapses to head counters. Invariant:
//!   *every* violating request is retained — enforced by `SA402`.
//! * [`mod@classify`] — **root-cause classification**: each outlier is
//!   labeled queue-dominated / preemption-stall / transfer-bound /
//!   compute-bound / cross-model-interference directly from its exact
//!   e2e attribution decomposition plus span-overlap analysis against
//!   the other models' device time.
//! * [`bundle`] — **incident bundles**: when an
//!   [`split_obs::SloMonitor`] burn-rate alert fires, the ring, queue
//!   depths, device utilization, and the offending requests' full span
//!   trees are snapshotted into one self-contained JSON (+ Perfetto)
//!   document with an aggregated verdict, e.g. *"p99 regression: 78%
//!   preemption-stall on gpt2 behind resnet50 bursts"*.
//! * [`mod@investigate`] — the driver tying the above together over a
//!   lifecycle recording: replay the SLO monitor, scope one bundle per
//!   fired alert, sample, classify, aggregate.
//!
//! `split-analyze` verifies bundles with the `SA4xx` codes and
//! `perfbench` gates the recorder's overhead (on vs off) at ≤ 5% p50 on
//! the full `simulate/SPLIT` path.

pub mod bundle;
pub mod classify;
pub mod investigate;
pub mod ring;
pub mod sampling;

pub use bundle::{
    CauseShare, DepthSample, IncidentBundle, ModelStat, OutlierReport, PhaseKind, SampleReason,
    SpanRecord, Verdict, BUNDLE_SCHEMA,
};
pub use classify::{classify, Classification, RootCause};
pub use investigate::{bundles_for_alerts, investigate, ForensicsCfg, Investigation};
pub use ring::{FlightKind, FlightRecord, FlightRing, FlightSnapshot, DEFAULT_CAPACITY, NO_REQ};
pub use sampling::{TailSampler, DEFAULT_TOP_K, DEFAULT_WINDOW_US};

use std::cell::Cell;

thread_local! {
    /// Per-thread override for [`flight_enabled`] (used by perfbench to
    /// pair on/off measurements without touching the environment).
    static FLIGHT_OVERRIDE: Cell<Option<bool>> = const { Cell::new(None) };
}

/// Whether the flight recorder should run. Always on by default — the
/// whole point is that forensics data exists *before* the incident. A
/// thread-scoped [`with_flight`] override wins; otherwise the
/// `SPLIT_FLIGHT` environment variable (`0` / `off` / `false` disables).
pub fn flight_enabled() -> bool {
    if let Some(forced) = FLIGHT_OVERRIDE.with(Cell::get) {
        return forced;
    }
    !matches!(
        std::env::var("SPLIT_FLIGHT").as_deref(),
        Ok("0") | Ok("off") | Ok("false")
    )
}

/// Run `f` with the flight recorder forced on or off for the current
/// thread. Restores the previous override on exit (including panic
/// unwinding is not required here: measurement helpers only).
pub fn with_flight<T>(enabled: bool, f: impl FnOnce() -> T) -> T {
    let prev = FLIGHT_OVERRIDE.with(|o| o.replace(Some(enabled)));
    let out = f();
    FLIGHT_OVERRIDE.with(|o| o.set(prev));
    out
}

/// Ring capacity to use, from `SPLIT_FLIGHT_CAP` (entries; rounded up
/// to a power of two by the ring) or [`DEFAULT_CAPACITY`].
pub fn flight_capacity() -> usize {
    std::env::var("SPLIT_FLIGHT_CAP")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&c| c > 0)
        .unwrap_or(DEFAULT_CAPACITY)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flight_defaults_on_and_override_scopes() {
        // Default (no env override in the test environment): on.
        assert!(flight_enabled());
        let inside = with_flight(false, flight_enabled);
        assert!(!inside);
        assert!(flight_enabled(), "override must not leak");
        assert!(!with_flight(true, || with_flight(false, flight_enabled)));
    }
}
