//! The always-on flight recorder: a bounded, lock-free ring of compact
//! per-request causal records.
//!
//! The full lifecycle [`split_telemetry::Recorder`] is rich (owned
//! strings, nested enums) but writes behind a mutex; the flight ring is
//! its cheap, crash-forensics counterpart. Each record is six `u64`
//! words, a slot is claimed with one `fetch_add`, and publication uses a
//! per-slot seqlock stamp — writers never block each other or a reader,
//! and a reader detects (and skips) the rare slot it races with. The
//! ring therefore stays on in production: `perfbench` gates its
//! overhead on the full `simulate/SPLIT` path at ≤ 5% p50.
//!
//! Entirely safe Rust: the seqlock is built from `AtomicU64` fields
//! only, so a torn *slot* is impossible by construction and a torn
//! *record* (fields from two different writes) is rejected by the stamp
//! check.
//!
//! **Certified under weak memory.** The exact stamp/fence protocol
//! below — orderings included — is modeled by `split-analyze`'s
//! weak-memory checker (DESIGN.md §14) as the
//! `forensics.flightring.seqlock` (SA205, torn record) and
//! `forensics.flightring.cut` (SA206, inconsistent cut) machines, and
//! every execution reachable under C11 release/acquire semantics is
//! explored via DPOR. Two negative fixtures keep the certification
//! honest: deleting the writer's release fence fires exactly SA205,
//! and swapping the odd/even stamp order fires exactly SA206 — so if
//! you change this protocol, change the model with it or CI's
//! `analyze` job will tell you which bug you just reintroduced.

use serde::{Deserialize, Serialize};
use split_telemetry::Event;
use std::sync::atomic::{fence, AtomicU64, Ordering};

/// `req` value for records that belong to no request (queue-depth
/// samples).
pub const NO_REQ: u64 = u64::MAX;

/// What a flight record captures. Kind-specific payloads ride in the
/// record's `a`/`b` words (see [`FlightRecord`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlightKind {
    /// Request entered the system. `a`/`b` unused.
    Arrival,
    /// Greedy preemption decision. `a` = chosen queue position,
    /// `b` = decision cost in ns.
    Decision,
    /// Queue transition (insertion). `a` = position, `b` = entries
    /// displaced (jumped over).
    Enqueue,
    /// Block began executing. `a` = block index, `b` = stream.
    BlockStart,
    /// Block finished. `a` = block index, `b` = stream.
    BlockEnd,
    /// Boundary activation transfer. `a` = bytes, `b` = duration in ns.
    Transfer,
    /// Request finished. `a`/`b` unused.
    Completion,
    /// Elastic downgrade. `a` = blocks before, `b` = blocks after.
    Downgrade,
    /// Wait-queue depth sample (`req` = [`NO_REQ`]). `a` = depth.
    QueueDepth,
    /// Request rejected (unknown model). `a`/`b` unused.
    Drop,
}

impl FlightKind {
    const ALL: [FlightKind; 10] = [
        FlightKind::Arrival,
        FlightKind::Decision,
        FlightKind::Enqueue,
        FlightKind::BlockStart,
        FlightKind::BlockEnd,
        FlightKind::Transfer,
        FlightKind::Completion,
        FlightKind::Downgrade,
        FlightKind::QueueDepth,
        FlightKind::Drop,
    ];

    fn code(self) -> u64 {
        Self::ALL.iter().position(|&k| k == self).expect("listed") as u64
    }

    fn from_code(code: u64) -> Option<FlightKind> {
        Self::ALL.get(code as usize).copied()
    }
}

/// One published flight record. Fixed-size and flat so the ring slot is
/// six atomics and a bundle serializes it with the plain derive.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlightRecord {
    /// Global causal sequence number (allocation order across all
    /// writer threads). Strictly increasing in a snapshot — the `SA403`
    /// invariant.
    pub seq: u64,
    /// Timestamp, µs on the recording layer's clock.
    pub t_us: f64,
    /// Request id, or [`NO_REQ`].
    pub req: u64,
    /// Record kind.
    pub kind: FlightKind,
    /// First kind-specific payload word (see [`FlightKind`]).
    pub a: u64,
    /// Second kind-specific payload word.
    pub b: u64,
}

impl FlightRecord {
    /// Flight projection of a lifecycle event, or `None` for events
    /// with no causal projection (utilization samples and free-form
    /// marks are metrics, not causal records).
    pub fn from_event(seq: u64, e: &Event) -> Option<FlightRecord> {
        use split_telemetry::Event as E;
        let (t_us, req, kind, a, b) = match e {
            E::Arrival { req, t_us, .. } => (*t_us, *req, FlightKind::Arrival, 0, 0),
            E::PreemptDecision {
                req,
                position,
                decision_ns,
                t_us,
                ..
            } => (
                *t_us,
                *req,
                FlightKind::Decision,
                *position as u64,
                *decision_ns,
            ),
            E::Enqueue {
                req,
                position,
                displaced,
                t_us,
            } => (
                *t_us,
                *req,
                FlightKind::Enqueue,
                *position as u64,
                *displaced as u64,
            ),
            E::BlockStart {
                req,
                block,
                stream,
                t_us,
            } => (
                *t_us,
                *req,
                FlightKind::BlockStart,
                *block as u64,
                *stream as u64,
            ),
            E::BlockEnd {
                req,
                block,
                stream,
                t_us,
            } => (
                *t_us,
                *req,
                FlightKind::BlockEnd,
                *block as u64,
                *stream as u64,
            ),
            E::Transfer {
                req,
                bytes,
                t_us,
                dur_us,
            } => (
                *t_us,
                *req,
                FlightKind::Transfer,
                *bytes,
                (dur_us * 1_000.0).round().max(0.0) as u64,
            ),
            E::Completion { req, t_us } => (*t_us, *req, FlightKind::Completion, 0, 0),
            E::Downgrade {
                req,
                from_blocks,
                to_blocks,
                t_us,
            } => (
                *t_us,
                *req,
                FlightKind::Downgrade,
                *from_blocks as u64,
                *to_blocks as u64,
            ),
            E::QueueDepth { depth, t_us } => {
                (*t_us, NO_REQ, FlightKind::QueueDepth, *depth as u64, 0)
            }
            E::Utilization { .. } | E::Mark { .. } => return None,
        };
        Some(FlightRecord {
            seq,
            t_us,
            req,
            kind,
            a,
            b,
        })
    }
}

/// One ring slot: a seqlock stamp plus the record's five payload words.
///
/// Stamp protocol for the slot holding sequence `n`: `2n + 1` while the
/// writer is inside, `2n + 2` once published, `0` never written. A
/// reader accepts a slot only when it observes the same even stamp
/// before and after reading the payload.
#[derive(Debug)]
struct Slot {
    stamp: AtomicU64,
    t_bits: AtomicU64,
    req: AtomicU64,
    kind: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
}

impl Slot {
    fn new() -> Self {
        Slot {
            stamp: AtomicU64::new(0),
            t_bits: AtomicU64::new(0),
            req: AtomicU64::new(0),
            kind: AtomicU64::new(0),
            a: AtomicU64::new(0),
            b: AtomicU64::new(0),
        }
    }
}

/// Bounded, lock-free flight recorder shared by every scheduler and
/// server thread.
#[derive(Debug)]
pub struct FlightRing {
    slots: Box<[Slot]>,
    mask: u64,
    head: AtomicU64,
    /// Epoch base: sequence numbers below this belong to a previous
    /// recording (see [`FlightRing::reset`]) and are not reported.
    base: AtomicU64,
}

/// Default ring capacity (entries). Matches the runtime's lifecycle
/// ring: thousands of in-flight requests at ~6 records each.
pub const DEFAULT_CAPACITY: usize = 65_536;

impl FlightRing {
    /// Ring with `capacity` slots, rounded up to a power of two.
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        FlightRing {
            slots: (0..cap).map(|_| Slot::new()).collect(),
            mask: (cap - 1) as u64,
            head: AtomicU64::new(0),
            base: AtomicU64::new(0),
        }
    }

    /// Ring with [`DEFAULT_CAPACITY`] slots.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// Slot count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Records appended since construction (or the last
    /// [`FlightRing::reset`]); appended − capacity is a lower bound on
    /// overwrites.
    pub fn appended(&self) -> u64 {
        let head = self.head.load(Ordering::Relaxed);
        head.saturating_sub(self.base.load(Ordering::Relaxed))
    }

    /// Start a fresh recording epoch in O(1): existing records are
    /// excluded from subsequent snapshots without touching any slot (the
    /// engine reuses one thread-local ring across simulations this way).
    /// Call only while no writer is mid-[`FlightRing::record`] —
    /// concurrent records land safely but may straddle the epoch
    /// boundary.
    pub fn reset(&self) {
        self.base
            .store(self.head.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Append one record. Lock-free: one `fetch_add` claims a sequence
    /// number, then the slot is published through its seqlock stamp.
    /// When the ring is full the oldest slot is overwritten. The store
    /// orderings here are load-bearing and model-checked (SA205 —
    /// see the module docs); don't touch one without the other.
    pub fn record(&self, t_us: f64, req: u64, kind: FlightKind, a: u64, b: u64) {
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(seq & self.mask) as usize];
        slot.stamp.store(2 * seq + 1, Ordering::Relaxed);
        // Release fence: pairs with the reader's acquire fence, so any
        // reader that observes one of the payload stores below also
        // observes the odd stamp above on its re-check — a torn record
        // cannot pass the stamp comparison.
        fence(Ordering::Release);
        slot.t_bits.store(t_us.to_bits(), Ordering::Relaxed);
        slot.req.store(req, Ordering::Relaxed);
        slot.kind.store(kind.code(), Ordering::Relaxed);
        slot.a.store(a, Ordering::Relaxed);
        slot.b.store(b, Ordering::Relaxed);
        slot.stamp.store(2 * seq + 2, Ordering::Release);
    }

    /// Append the flight projection of a lifecycle event, if it has one
    /// (utilization samples and free-form marks are metrics, not causal
    /// records, and are skipped).
    pub fn record_event(&self, e: &Event) {
        if let Some(r) = FlightRecord::from_event(0, e) {
            self.record(r.t_us, r.req, r.kind, r.a, r.b);
        }
    }

    /// Copy out every currently-published record of the current epoch,
    /// oldest first. The scan walks sequence numbers (not slots), so it
    /// only touches occupied slots and needs no sort; a slot a writer is
    /// mid-publish on — or that gets lapped during the read — fails its
    /// stamp check and is counted as dropped rather than returned torn.
    pub fn snapshot(&self) -> FlightSnapshot {
        let head = self.head.load(Ordering::Relaxed);
        let base = self.base.load(Ordering::Relaxed);
        let lo = base.max(head.saturating_sub(self.slots.len() as u64));
        let mut records: Vec<FlightRecord> = Vec::with_capacity((head - lo) as usize);
        for seq in lo..head {
            let slot = &self.slots[(seq & self.mask) as usize];
            let expect = 2 * seq + 2;
            // Retry a bounded number of times; a slot under constant
            // rewrite is about to be overwritten anyway.
            for _ in 0..4 {
                let s1 = slot.stamp.load(Ordering::Acquire);
                if s1 > expect {
                    break; // lapped by a newer record
                }
                if s1 != expect {
                    continue; // writer still inside; retry
                }
                let t_bits = slot.t_bits.load(Ordering::Relaxed);
                let req = slot.req.load(Ordering::Relaxed);
                let kind = slot.kind.load(Ordering::Relaxed);
                let a = slot.a.load(Ordering::Relaxed);
                let b = slot.b.load(Ordering::Relaxed);
                // Acquire fence: pairs with the writer's release fence
                // (see `record`) so the stamp re-check below cannot miss
                // an in-progress write whose payload we just read.
                fence(Ordering::Acquire);
                let s2 = slot.stamp.load(Ordering::Relaxed);
                if s1 != s2 {
                    continue; // lapped mid-read; retry
                }
                if let Some(kind) = FlightKind::from_code(kind) {
                    records.push(FlightRecord {
                        seq,
                        t_us: f64::from_bits(t_bits),
                        req,
                        kind,
                        a,
                        b,
                    });
                }
                break;
            }
        }
        let appended = head.saturating_sub(base);
        let dropped = appended.saturating_sub(records.len() as u64);
        FlightSnapshot {
            capacity: self.capacity() as u64,
            appended,
            dropped,
            records,
        }
    }
}

impl Default for FlightRing {
    fn default() -> Self {
        Self::new()
    }
}

/// A point-in-time copy of a [`FlightRing`], in causal (sequence)
/// order. This is what rides inside simulation results and incident
/// bundles.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FlightSnapshot {
    /// Ring capacity at snapshot time (0 = recording was disabled).
    pub capacity: u64,
    /// Records ever appended to the ring.
    pub appended: u64,
    /// Records appended but not present in the snapshot (overwritten by
    /// newer ones, or skipped mid-publish). Counted, never silent.
    pub dropped: u64,
    /// Published records, oldest first; `seq` is strictly increasing.
    pub records: Vec<FlightRecord>,
}

impl FlightSnapshot {
    /// Snapshot representing "recording disabled".
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Build a snapshot directly from an in-order event stream, with
    /// the same bounded-ring semantics (capacity rounded up to a power
    /// of two, oldest records dropped and counted once it overflows).
    ///
    /// The single-threaded simulation engine already holds its whole
    /// lifecycle in memory, time-sorted — replaying it through the
    /// concurrent seqlock ring would buy nothing and cost ~20 ns/event,
    /// which at discrete-event-simulation speeds blows the ≤ 5%
    /// recorder-overhead budget. Live server threads, where writes race,
    /// go through [`FlightRing::record`] instead; this constructor is
    /// bit-for-bit equivalent for a quiescent ring.
    pub fn from_events<'a>(events: impl IntoIterator<Item = &'a Event>, capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        let events = events.into_iter();
        let mut records: Vec<FlightRecord> = Vec::with_capacity(events.size_hint().0);
        let mut seq = 0u64;
        for e in events {
            if let Some(r) = FlightRecord::from_event(seq, e) {
                records.push(r);
                seq += 1;
            }
        }
        let appended = records.len() as u64;
        let overflow = records.len().saturating_sub(cap);
        if overflow > 0 {
            records.drain(..overflow);
        }
        FlightSnapshot {
            capacity: cap as u64,
            appended,
            dropped: overflow as u64,
            records,
        }
    }

    /// Whether the recorder was on when this snapshot was taken.
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Records belonging to request `req`, in causal order.
    pub fn for_req(&self, req: u64) -> Vec<&FlightRecord> {
        self.records.iter().filter(|r| r.req == req).collect()
    }

    /// Union of two snapshots of the same ring, deduplicated by
    /// sequence number and re-sorted. The live server snapshots the
    /// ring the moment an alert fires (preserving pre-incident history
    /// the ring may later overwrite) and merges that with the shutdown
    /// snapshot (which has the post-fire records).
    pub fn merge(&self, other: &FlightSnapshot) -> FlightSnapshot {
        let mut records = self.records.clone();
        records.extend(other.records.iter().cloned());
        records.sort_by_key(|r| r.seq);
        records.dedup_by_key(|r| r.seq);
        let capacity = self.capacity.max(other.capacity);
        let appended = self.appended.max(other.appended);
        FlightSnapshot {
            capacity,
            appended,
            dropped: appended.saturating_sub(records.len() as u64),
            records,
        }
    }

    /// Queue-depth samples `(t_us, depth)` in causal order.
    pub fn queue_depth_series(&self) -> Vec<(f64, u64)> {
        self.records
            .iter()
            .filter(|r| r.kind == FlightKind::QueueDepth)
            .map(|r| (r.t_us, r.a))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use split_telemetry::Event;

    #[test]
    fn records_come_back_in_sequence_order() {
        let ring = FlightRing::with_capacity(64);
        for i in 0..10u64 {
            ring.record(i as f64, i, FlightKind::Arrival, 0, 0);
        }
        let snap = ring.snapshot();
        assert_eq!(snap.records.len(), 10);
        assert_eq!(snap.appended, 10);
        assert_eq!(snap.dropped, 0);
        for (i, r) in snap.records.iter().enumerate() {
            assert_eq!(r.seq, i as u64);
            assert_eq!(r.req, i as u64);
            assert_eq!(r.t_us, i as f64);
        }
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let ring = FlightRing::with_capacity(8);
        for i in 0..20u64 {
            ring.record(i as f64, i, FlightKind::Completion, 0, 0);
        }
        let snap = ring.snapshot();
        assert_eq!(snap.capacity, 8);
        assert_eq!(snap.appended, 20);
        assert_eq!(snap.records.len(), 8);
        assert_eq!(snap.dropped, 12);
        // The survivors are exactly the newest 8, still in order.
        let seqs: Vec<u64> = snap.records.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, (12..20).collect::<Vec<_>>());
    }

    #[test]
    fn event_projection_maps_payloads() {
        let ring = FlightRing::with_capacity(16);
        ring.record_event(&Event::PreemptDecision {
            req: 3,
            position: 1,
            comparisons: 4,
            stop: "won".into(),
            decision_ns: 750,
            publish_ns: 750,
            t_us: 9.0,
        });
        ring.record_event(&Event::Transfer {
            req: 3,
            bytes: 4096,
            t_us: 10.0,
            dur_us: 1.5,
        });
        ring.record_event(&Event::QueueDepth {
            depth: 7,
            t_us: 11.0,
        });
        // Non-causal events are skipped.
        ring.record_event(&Event::Utilization {
            busy: 0.5,
            t_us: 12.0,
        });
        let snap = ring.snapshot();
        assert_eq!(snap.records.len(), 3);
        assert_eq!(snap.records[0].kind, FlightKind::Decision);
        assert_eq!(snap.records[0].a, 1);
        assert_eq!(snap.records[0].b, 750);
        assert_eq!(snap.records[1].kind, FlightKind::Transfer);
        assert_eq!(snap.records[1].b, 1_500);
        assert_eq!(snap.records[2].req, NO_REQ);
        assert_eq!(snap.records[2].a, 7);
    }

    #[test]
    fn concurrent_writers_publish_consistent_records() {
        let ring = std::sync::Arc::new(FlightRing::with_capacity(1024));
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let ring = std::sync::Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..2_000u64 {
                        // Payload words are derived from req so a torn
                        // record is detectable below.
                        let req = t * 10_000 + i;
                        ring.record(req as f64, req, FlightKind::Arrival, req * 2, req * 3);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = ring.snapshot();
        assert_eq!(snap.appended, 8_000);
        assert!(snap.records.len() <= 1024);
        assert!(!snap.records.is_empty());
        let mut prev = None;
        for r in &snap.records {
            // Seq strictly increasing (SA403) and no field mixing.
            if let Some(p) = prev {
                assert!(r.seq > p, "seq not increasing: {} after {}", r.seq, p);
            }
            prev = Some(r.seq);
            assert_eq!(r.a, r.req * 2, "torn record: {r:?}");
            assert_eq!(r.b, r.req * 3, "torn record: {r:?}");
            assert_eq!(r.t_us, r.req as f64, "torn record: {r:?}");
        }
    }

    #[test]
    fn merge_recovers_records_a_later_snapshot_lost() {
        let ring = FlightRing::with_capacity(8);
        for i in 0..8u64 {
            ring.record(i as f64, i, FlightKind::Arrival, 0, 0);
        }
        let early = ring.snapshot();
        for i in 8..14u64 {
            ring.record(i as f64, i, FlightKind::Arrival, 0, 0);
        }
        let late = ring.snapshot();
        // The late snapshot lost seqs 0..6 to overwrites; the merge has
        // the full history.
        let merged = early.merge(&late);
        let seqs: Vec<u64> = merged.records.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, (0..14).collect::<Vec<_>>());
        assert_eq!(merged.appended, 14);
        assert_eq!(merged.dropped, 0);
    }

    #[test]
    fn reset_starts_a_fresh_epoch_in_place() {
        let ring = FlightRing::with_capacity(16);
        for i in 0..5u64 {
            ring.record(i as f64, i, FlightKind::Arrival, 0, 0);
        }
        ring.reset();
        assert_eq!(ring.appended(), 0);
        ring.record(100.0, 42, FlightKind::Completion, 0, 0);
        let snap = ring.snapshot();
        assert_eq!(snap.appended, 1);
        assert_eq!(snap.dropped, 0);
        assert_eq!(snap.records.len(), 1);
        assert_eq!(snap.records[0].req, 42);
        // Old records stay physically present but are never reported.
        assert_eq!(snap.records[0].seq, 5);
    }

    #[test]
    fn from_events_matches_ring_replay_bit_for_bit() {
        let events = vec![
            Event::Arrival {
                req: 1,
                model: "m".into(),
                t_us: 0.5,
            },
            Event::Enqueue {
                req: 1,
                position: 0,
                displaced: 0,
                t_us: 0.6,
            },
            Event::Utilization {
                busy: 0.9,
                t_us: 0.7,
            },
            Event::Transfer {
                req: 1,
                bytes: 2048,
                t_us: 1.0,
                dur_us: 0.25,
            },
            Event::Completion { req: 1, t_us: 2.0 },
        ];
        let ring = FlightRing::with_capacity(16);
        for e in &events {
            ring.record_event(e);
        }
        assert_eq!(
            FlightSnapshot::from_events(&events, 16),
            ring.snapshot(),
            "direct construction must be indistinguishable from a quiescent ring"
        );
        // Overflow keeps the newest records and counts the drop.
        let small = FlightSnapshot::from_events(&events, 2);
        assert_eq!(small.capacity, 2);
        assert_eq!(small.appended, 4);
        assert_eq!(small.dropped, 2);
        assert_eq!(small.records.len(), 2);
        assert_eq!(small.records[0].kind, FlightKind::Transfer);
        assert_eq!(small.records[1].kind, FlightKind::Completion);
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let ring = FlightRing::with_capacity(4);
        ring.record(1.5, 7, FlightKind::BlockStart, 2, 0);
        let snap = ring.snapshot();
        let text = serde_json::to_string(&snap).unwrap();
        let back: FlightSnapshot = serde_json::from_str(&text).unwrap();
        assert_eq!(back, snap);
    }
}
