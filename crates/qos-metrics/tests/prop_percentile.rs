//! Property tests for the percentile boundary/monotonicity contract
//! (the ISSUE-mandated checks that caught the old nearest-rank
//! implementation returning the 1st percentile for `p = 1.0`).

use proptest::prelude::*;
use qos_metrics::percentile;

fn samples() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1e6..1e6f64, 1..64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn p_zero_is_min(xs in samples()) {
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        prop_assert_eq!(percentile(&xs, 0.0), Some(min));
    }

    #[test]
    fn p_one_is_max(xs in samples()) {
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(percentile(&xs, 1.0), Some(max));
    }

    #[test]
    fn monotone_in_p(xs in samples(), a in 0.0..=1.0f64, b in 0.0..=1.0f64) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let plo = percentile(&xs, lo).unwrap();
        let phi = percentile(&xs, hi).unwrap();
        prop_assert!(plo <= phi, "percentile({lo}) = {plo} > percentile({hi}) = {phi}");
    }

    #[test]
    fn result_is_within_range(xs in samples(), p in 0.0..=1.0f64) {
        let v = percentile(&xs, p).unwrap();
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= min && v <= max, "{v} outside [{min}, {max}]");
    }
}
