//! Jitter: per-model standard deviation of execution latency (Figure 7).

use crate::violation::RequestOutcome;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Jitter statistics for one model under one policy/scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JitterRow {
    /// Model name.
    pub model: String,
    /// Requests observed.
    pub count: usize,
    /// Mean end-to-end latency, µs.
    pub mean_us: f64,
    /// Standard deviation of end-to-end latency, µs — the Figure 7 bar.
    pub std_us: f64,
}

/// Per-model latency dispersion, sorted by model name for stable output.
pub fn per_model_std(outcomes: &[RequestOutcome]) -> Vec<JitterRow> {
    let mut groups: BTreeMap<&str, Vec<f64>> = BTreeMap::new();
    for o in outcomes {
        groups.entry(o.model.as_str()).or_default().push(o.e2e_us);
    }
    groups
        .into_iter()
        .map(|(model, xs)| {
            let n = xs.len() as f64;
            let mean = xs.iter().sum::<f64>() / n;
            let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
            JitterRow {
                model: model.to_string(),
                count: xs.len(),
                mean_us: mean,
                std_us: var.sqrt(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(model: &str, e2e: f64) -> RequestOutcome {
        RequestOutcome {
            id: 0,
            model: model.into(),
            exec_us: 1.0,
            e2e_us: e2e,
        }
    }

    #[test]
    fn groups_by_model() {
        let os = vec![
            outcome("a", 10.0),
            outcome("b", 100.0),
            outcome("a", 14.0),
            outcome("b", 100.0),
        ];
        let rows = per_model_std(&os);
        assert_eq!(rows.len(), 2);
        let a = &rows[0];
        assert_eq!(a.model, "a");
        assert_eq!(a.count, 2);
        assert!((a.mean_us - 12.0).abs() < 1e-12);
        assert!((a.std_us - 2.0).abs() < 1e-12);
        let b = &rows[1];
        assert_eq!(b.std_us, 0.0, "identical latencies → zero jitter");
    }

    #[test]
    fn empty_input() {
        assert!(per_model_std(&[]).is_empty());
    }

    #[test]
    fn stable_order() {
        let os = vec![outcome("z", 1.0), outcome("a", 1.0), outcome("m", 1.0)];
        let rows = per_model_std(&os);
        let names: Vec<&str> = rows.iter().map(|r| r.model.as_str()).collect();
        assert_eq!(names, vec!["a", "m", "z"]);
    }
}
