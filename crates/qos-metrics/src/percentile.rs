//! Percentile helper, used by reports and tail-latency ablations.
//!
//! `p` is a fraction in `[0, 1]` and values between sample points are
//! linearly interpolated (the "linear" / type-7 estimator), so the
//! boundaries are exact: `percentile(xs, 0.0)` is the minimum,
//! `percentile(xs, 1.0)` is the maximum, and the result is monotone
//! non-decreasing in `p`. The previous nearest-rank version violated
//! both boundary identities (`p = 1.0` meant the 1st percentile on its
//! percent scale) which is why the scale changed with the fix.

/// Linearly-interpolated percentile of `xs` for `p ∈ [0, 1]`. Returns
/// `None` for empty input. The input need not be sorted.
///
/// # Panics
/// If `p` is outside `[0, 1]` or NaN.
pub fn percentile(xs: &[f64], p: f64) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    assert!((0.0..=1.0).contains(&p), "percentile {p} out of range");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let pos = p * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basics() {
        let xs = vec![5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 0.5), Some(3.0));
        assert_eq!(percentile(&xs, 1.0), Some(5.0));
        assert_eq!(percentile(&[], 0.5), None);
    }

    #[test]
    fn interpolates_between_ranks() {
        let xs = vec![10.0, 20.0];
        assert_eq!(percentile(&xs, 0.25), Some(12.5));
        assert_eq!(percentile(&xs, 0.75), Some(17.5));
        // Single element: every p hits it.
        assert_eq!(percentile(&[42.0], 0.0), Some(42.0));
        assert_eq!(percentile(&[42.0], 0.37), Some(42.0));
        assert_eq!(percentile(&[42.0], 1.0), Some(42.0));
    }

    #[test]
    fn tail_of_uniform() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        // pos = 0.99 · 99 = 98.01 → lerp(99, 100, 0.01) = 99.01
        let p99 = percentile(&xs, 0.99).unwrap();
        assert!((p99 - 99.01).abs() < 1e-9, "{p99}");
        let p95 = percentile(&xs, 0.95).unwrap();
        assert!((p95 - 95.05).abs() < 1e-9, "{p95}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_p() {
        percentile(&[1.0], 1.5);
    }
}
