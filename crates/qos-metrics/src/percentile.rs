//! Percentile helper (nearest-rank), used by reports and tail-latency
//! ablations.

/// Nearest-rank percentile of `xs` for `p ∈ [0, 100]`. Returns `None` for
/// empty input. The input need not be sorted.
pub fn percentile(xs: &[f64], p: f64) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    Some(sorted[rank.saturating_sub(1).min(sorted.len() - 1)])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basics() {
        let xs = vec![5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 50.0), Some(3.0));
        assert_eq!(percentile(&xs, 100.0), Some(5.0));
        assert_eq!(percentile(&[], 50.0), None);
    }

    #[test]
    fn p99_of_uniform() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&xs, 99.0), Some(99.0));
        assert_eq!(percentile(&xs, 95.0), Some(95.0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_p() {
        percentile(&[1.0], 150.0);
    }
}
