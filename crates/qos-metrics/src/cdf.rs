//! Empirical CDFs of response ratios / latencies — the view behind the
//! Figure 6 curves (a violation-rate-vs-α curve is one minus the response
//! ratio CDF sampled at integer α).

use crate::violation::RequestOutcome;
use serde::{Deserialize, Serialize};

/// An empirical cumulative distribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Build from raw samples (order irrelevant; NaNs rejected).
    pub fn new(mut samples: Vec<f64>) -> Self {
        assert!(samples.iter().all(|x| !x.is_nan()), "NaN sample");
        samples.sort_by(|a, b| a.total_cmp(b));
        Self { sorted: samples }
    }

    /// From outcomes' response ratios.
    pub fn of_response_ratios(outcomes: &[RequestOutcome]) -> Self {
        Self::new(
            outcomes
                .iter()
                .map(RequestOutcome::response_ratio)
                .collect(),
        )
    }

    /// `P(X <= x)`; 0 for an empty distribution.
    pub fn at(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Complementary CDF `P(X > x)` — the violation rate when `x = α`.
    pub fn exceedance(&self, x: f64) -> f64 {
        1.0 - self.at(x)
    }

    /// Evenly sampled `(x, P(X <= x))` points between min and max.
    pub fn sample_points(&self, count: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || count == 0 {
            return Vec::new();
        }
        let (lo, hi) = (self.sorted[0], *self.sorted.last().unwrap());
        (0..count)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (count.max(2) - 1) as f64;
                (x, self.at(x))
            })
            .collect()
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when the distribution has no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_function_semantics() {
        let cdf = Cdf::new(vec![3.0, 1.0, 2.0, 2.0]);
        assert_eq!(cdf.at(0.5), 0.0);
        assert_eq!(cdf.at(1.0), 0.25);
        assert_eq!(cdf.at(2.0), 0.75);
        assert_eq!(cdf.at(3.0), 1.0);
        assert_eq!(cdf.at(99.0), 1.0);
        assert_eq!(cdf.exceedance(2.0), 0.25);
    }

    #[test]
    fn matches_violation_rate() {
        let outcomes: Vec<RequestOutcome> = (1..=10)
            .map(|i| RequestOutcome {
                id: i,
                model: "m".into(),
                exec_us: 10.0,
                e2e_us: 10.0 * i as f64,
            })
            .collect();
        let cdf = Cdf::of_response_ratios(&outcomes);
        for alpha in [2.0, 4.0, 8.0] {
            let v = crate::violation::violation_rate(&outcomes, alpha);
            assert!((cdf.exceedance(alpha) - v).abs() < 1e-12, "α={alpha}");
        }
    }

    #[test]
    fn sample_points_monotone() {
        let cdf = Cdf::new((0..100).map(|i| (i as f64).sqrt()).collect());
        let pts = cdf.sample_points(20);
        assert_eq!(pts.len(), 20);
        for w in pts.windows(2) {
            assert!(w[1].1 >= w[0].1);
            assert!(w[1].0 >= w[0].0);
        }
        assert!((pts.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_cdf() {
        let cdf = Cdf::new(vec![]);
        assert!(cdf.is_empty());
        assert_eq!(cdf.at(1.0), 0.0);
        assert!(cdf.sample_points(5).is_empty());
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        Cdf::new(vec![1.0, f64::NAN]);
    }
}
