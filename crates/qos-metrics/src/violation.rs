//! Latency violation rate versus the latency-target multiplier α.

use serde::{Deserialize, Serialize};

/// The outcome of one served request, as the metrics see it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestOutcome {
    /// Request id.
    pub id: u64,
    /// Model name.
    pub model: String,
    /// Isolated (uninterrupted) execution time `Ext`, µs — the basis of
    /// the latency target (§2.1).
    pub exec_us: f64,
    /// End-to-end latency (arrival → completion), µs.
    pub e2e_us: f64,
}

impl RequestOutcome {
    /// Response ratio (Eq. 3): end-to-end latency over isolated execution.
    #[inline]
    pub fn response_ratio(&self) -> f64 {
        self.e2e_us / self.exec_us
    }

    /// Whether the request violates the target `α · exec`.
    #[inline]
    pub fn violates(&self, alpha: f64) -> bool {
        self.response_ratio() > alpha
    }
}

/// Fraction of requests violating the latency target at multiplier
/// `alpha`. Empty input yields 0.
pub fn violation_rate(outcomes: &[RequestOutcome], alpha: f64) -> f64 {
    if outcomes.is_empty() {
        return 0.0;
    }
    let v = outcomes.iter().filter(|o| o.violates(alpha)).count();
    v as f64 / outcomes.len() as f64
}

/// Figure 6 series: `(α, violation rate)` for α swept over
/// `alpha_from..=alpha_to` in unit steps (the paper sweeps 2..=20).
///
/// ```
/// use qos_metrics::{violation_curve, RequestOutcome};
///
/// let outcomes = vec![
///     RequestOutcome { id: 0, model: "m".into(), exec_us: 10.0, e2e_us: 30.0 },
///     RequestOutcome { id: 1, model: "m".into(), exec_us: 10.0, e2e_us: 80.0 },
/// ];
/// let curve = violation_curve(&outcomes, 2, 4);
/// assert_eq!(curve, vec![(2.0, 1.0), (3.0, 0.5), (4.0, 0.5)]);
/// ```
pub fn violation_curve(
    outcomes: &[RequestOutcome],
    alpha_from: u32,
    alpha_to: u32,
) -> Vec<(f64, f64)> {
    (alpha_from..=alpha_to)
        .map(|a| (a as f64, violation_rate(outcomes, a as f64)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(exec: f64, e2e: f64) -> RequestOutcome {
        RequestOutcome {
            id: 0,
            model: "m".into(),
            exec_us: exec,
            e2e_us: e2e,
        }
    }

    #[test]
    fn response_ratio_and_violation() {
        let o = outcome(10_000.0, 35_000.0); // RR = 3.5
        assert!((o.response_ratio() - 3.5).abs() < 1e-12);
        assert!(o.violates(3.0));
        assert!(!o.violates(4.0));
        assert!(!o.violates(3.5), "boundary is non-violating (strict >)");
    }

    #[test]
    fn rate_counts_fraction() {
        let os = vec![
            outcome(10.0, 15.0), // RR 1.5
            outcome(10.0, 45.0), // RR 4.5
            outcome(10.0, 95.0), // RR 9.5
            outcome(10.0, 11.0), // RR 1.1
        ];
        assert!((violation_rate(&os, 4.0) - 0.5).abs() < 1e-12);
        assert!((violation_rate(&os, 2.0) - 0.5).abs() < 1e-12);
        assert!((violation_rate(&os, 10.0) - 0.0).abs() < 1e-12);
        assert_eq!(violation_rate(&[], 4.0), 0.0);
    }

    #[test]
    fn curve_is_monotone_nonincreasing() {
        let os: Vec<RequestOutcome> = (1..50).map(|i| outcome(10.0, 10.0 * i as f64)).collect();
        let curve = violation_curve(&os, 2, 20);
        assert_eq!(curve.len(), 19);
        for w in curve.windows(2) {
            assert!(w[1].1 <= w[0].1);
        }
        assert_eq!(curve[0].0, 2.0);
        assert_eq!(curve.last().unwrap().0, 20.0);
    }
}
