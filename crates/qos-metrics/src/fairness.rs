//! Fairness across models — §5.5's closing observation, made a metric.
//!
//! The paper notes that under SPLIT "the standard deviation of long
//! requests is still slightly lower than short requests, indicating that
//! the stability of all requests is approximately at the same level".
//! Jain's fairness index over the per-model jitter values captures
//! "approximately the same level" in one number: 1.0 means perfectly
//! equal stability across models, 1/n means one model absorbs all the
//! instability.

use crate::jitter::JitterRow;

/// Jain's fairness index of a non-negative vector:
/// `(Σx)² / (n · Σx²)` ∈ `[1/n, 1]`. Returns 1.0 for empty or all-zero
/// input (nothing is unfair about nothing).
pub fn jain_index(xs: &[f64]) -> f64 {
    assert!(
        xs.iter().all(|&x| x >= 0.0),
        "Jain's index needs non-negative values"
    );
    if xs.is_empty() {
        return 1.0;
    }
    let sum: f64 = xs.iter().sum();
    let sum_sq: f64 = xs.iter().map(|x| x * x).sum();
    if sum_sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (xs.len() as f64 * sum_sq)
}

/// Fairness of *stability* across models: Jain's index over the per-model
/// jitter (std of end-to-end latency). High = every model enjoys similar
/// stability; low = some models are stable at others' expense.
pub fn stability_fairness(rows: &[JitterRow]) -> f64 {
    jain_index(&rows.iter().map(|r| r.std_us).collect::<Vec<_>>())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_and_extremes() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
        assert!((jain_index(&[5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
        // One model absorbs everything: 1/n.
        assert!((jain_index(&[9.0, 0.0, 0.0]) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn partial_skew() {
        // {1, 3}: (4)^2 / (2 * 10) = 0.8.
        assert!((jain_index(&[1.0, 3.0]) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn stability_fairness_over_rows() {
        let row = |model: &str, std_us: f64| JitterRow {
            model: model.into(),
            count: 10,
            mean_us: 1_000.0,
            std_us,
        };
        let even = vec![row("a", 5_000.0), row("b", 5_500.0), row("c", 4_800.0)];
        let skew = vec![row("a", 100.0), row("b", 20_000.0), row("c", 150.0)];
        assert!(stability_fairness(&even) > 0.99);
        assert!(stability_fairness(&skew) < 0.5);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_rejected() {
        jain_index(&[1.0, -1.0]);
    }
}
