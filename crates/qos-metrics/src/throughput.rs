//! Throughput and utilization — the metrics the *baselines* optimize
//! (§2.1 contrasts them with SPLIT's per-request QoS focus). Reported
//! alongside the QoS metrics so the trade-off is visible: SPLIT gives up
//! a little global throughput (splitting overhead) for a lot of
//! per-request latency stability.

use crate::violation::RequestOutcome;
use serde::{Deserialize, Serialize};

/// Aggregate throughput/utilization over one serving run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThroughputReport {
    /// Requests served.
    pub served: usize,
    /// Wall-clock span from first arrival to last completion, µs.
    pub span_us: f64,
    /// Served requests per second.
    pub requests_per_s: f64,
    /// Total isolated execution time of all served requests, µs — the
    /// *useful* work.
    pub useful_work_us: f64,
    /// Useful work over span: device *goodput* utilization (overheads and
    /// idle both depress it).
    pub goodput_utilization: f64,
}

/// Compute the report. `arrival_of` supplies each outcome's arrival time
/// (e2e is relative, so the span needs absolutes).
pub fn throughput_report(outcomes: &[RequestOutcome], arrivals_us: &[f64]) -> ThroughputReport {
    assert_eq!(outcomes.len(), arrivals_us.len(), "one arrival per outcome");
    if outcomes.is_empty() {
        return ThroughputReport {
            served: 0,
            span_us: 0.0,
            requests_per_s: 0.0,
            useful_work_us: 0.0,
            goodput_utilization: 0.0,
        };
    }
    let first_arrival = arrivals_us.iter().copied().fold(f64::INFINITY, f64::min);
    let last_end = outcomes
        .iter()
        .zip(arrivals_us)
        .map(|(o, a)| a + o.e2e_us)
        .fold(0.0f64, f64::max);
    let span_us = (last_end - first_arrival).max(1e-9);
    let useful_work_us: f64 = outcomes.iter().map(|o| o.exec_us).sum();
    ThroughputReport {
        served: outcomes.len(),
        span_us,
        requests_per_s: outcomes.len() as f64 / (span_us / 1e6),
        useful_work_us,
        goodput_utilization: useful_work_us / span_us,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(exec: f64, e2e: f64) -> RequestOutcome {
        RequestOutcome {
            id: 0,
            model: "m".into(),
            exec_us: exec,
            e2e_us: e2e,
        }
    }

    #[test]
    fn basic_accounting() {
        // Two requests: arrive at 0 and 100, each 50 exec, back to back.
        let outcomes = vec![outcome(50.0, 50.0), outcome(50.0, 50.0)];
        let arrivals = vec![0.0, 100.0];
        let r = throughput_report(&outcomes, &arrivals);
        assert_eq!(r.served, 2);
        assert!((r.span_us - 150.0).abs() < 1e-9);
        assert!((r.useful_work_us - 100.0).abs() < 1e-9);
        assert!((r.goodput_utilization - 100.0 / 150.0).abs() < 1e-9);
    }

    #[test]
    fn empty_run() {
        let r = throughput_report(&[], &[]);
        assert_eq!(r.served, 0);
        assert_eq!(r.requests_per_s, 0.0);
    }

    #[test]
    fn overhead_depresses_goodput() {
        // Same schedule, but the served time includes 20% splitting
        // overhead: goodput counts only isolated exec.
        let fast = throughput_report(&[outcome(100.0, 100.0)], &[0.0]);
        let padded = throughput_report(&[outcome(100.0, 120.0)], &[0.0]);
        assert!(padded.goodput_utilization < fast.goodput_utilization);
    }

    #[test]
    #[should_panic(expected = "one arrival per outcome")]
    fn mismatched_lengths_rejected() {
        throughput_report(&[outcome(1.0, 1.0)], &[]);
    }
}
