//! Table rendering: markdown for the terminal, CSV for downstream plotting.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Render a markdown table with the given header and rows. Every row must
/// have the header's arity.
pub fn markdown_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row arity mismatch");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let line = |cells: &[String]| {
        let mut s = String::from("|");
        for (i, c) in cells.iter().enumerate() {
            let _ = write!(s, " {:w$} |", c, w = widths[i]);
        }
        s.push('\n');
        s
    };
    out.push_str(&line(
        &header.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
    ));
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    out.push_str(&line(&sep));
    for row in rows {
        out.push_str(&line(row));
    }
    out
}

/// Write rows as CSV (naive quoting: fields containing commas or quotes are
/// double-quoted).
pub fn write_csv(path: &Path, header: &[&str], rows: &[Vec<String>]) -> io::Result<()> {
    let quote = |s: &str| {
        if s.contains(',') || s.contains('"') || s.contains('\n') {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_string()
        }
    };
    let mut out = String::new();
    out.push_str(
        &header
            .iter()
            .map(|h| quote(h))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    for row in rows {
        out.push_str(&row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
    }
    std::fs::write(path, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_alignment() {
        let t = markdown_table(
            &["Model", "Latency(ms)"],
            &[
                vec!["yolov2".into(), "10.8".into()],
                vec!["vgg19".into(), "67.5".into()],
            ],
        );
        assert!(t.contains("| Model "));
        assert!(t.contains("| yolov2"));
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines same width.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        markdown_table(&["a", "b"], &[vec!["1".into()]]);
    }

    #[test]
    fn csv_quoting() {
        let dir = std::env::temp_dir().join("qos_metrics_test_csv");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("t.csv");
        write_csv(&path, &["a", "b"], &[vec!["x,y".into(), "plain".into()]]).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body, "a,b\n\"x,y\",plain\n");
    }
}
