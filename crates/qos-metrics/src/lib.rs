#![warn(missing_docs)]
//! # qos-metrics — the paper's QoS metrics (§5.2)
//!
//! Two metrics gauge SPLIT's effectiveness:
//!
//! * the **latency violation rate**: a request violates when its response
//!   ratio (end-to-end latency over isolated execution time, Eq. 3)
//!   exceeds the latency target multiplier α; the paper sweeps α from 2 to
//!   20 (Figure 6);
//! * **jitter**: the standard deviation of execution latency per model
//!   (Figure 7) — dispersion means unstable request behaviour.
//!
//! Plus reporting helpers that print the same rows/series the paper's
//! tables and figures show.

pub mod breakdown;
pub mod cdf;
pub mod fairness;
pub mod jitter;
pub mod percentile;
pub mod report;
pub mod throughput;
pub mod violation;

pub use breakdown::{breakdown_markdown, BreakdownRow};
pub use cdf::Cdf;
pub use fairness::{jain_index, stability_fairness};
pub use jitter::{per_model_std, JitterRow};
pub use percentile::percentile;
pub use report::{markdown_table, write_csv};
pub use throughput::{throughput_report, ThroughputReport};
pub use violation::{violation_curve, violation_rate, RequestOutcome};
