//! Per-model latency breakdown rows (critical-path attribution).
//!
//! `split-obs` decomposes every completed request's end-to-end latency
//! into queueing / compute / transfer / stall / scheduler components;
//! this module holds the aggregate row type and its report rendering so
//! breakdowns print alongside the other QoS tables.

use serde::{Deserialize, Serialize};

/// Mean latency decomposition for one model (all times µs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BreakdownRow {
    /// Model name.
    pub model: String,
    /// Requests aggregated into this row.
    pub count: u64,
    /// Mean end-to-end latency.
    pub e2e_us: f64,
    /// Mean queueing time (arrival → first block).
    pub queue_us: f64,
    /// Mean device compute time.
    pub compute_us: f64,
    /// Mean boundary transfer time.
    pub transfer_us: f64,
    /// Mean preemption/downgrade stall time.
    pub stall_us: f64,
    /// Mean scheduler/drain time.
    pub sched_us: f64,
}

impl BreakdownRow {
    /// Sum of the five components (should equal `e2e_us` within noise).
    pub fn components_sum_us(&self) -> f64 {
        self.queue_us + self.compute_us + self.transfer_us + self.stall_us + self.sched_us
    }
}

/// Table header matching [`breakdown_rows`].
pub fn breakdown_header() -> [&'static str; 8] {
    [
        "model",
        "count",
        "e2e (ms)",
        "queue (ms)",
        "compute (ms)",
        "transfer (ms)",
        "stall (ms)",
        "sched (ms)",
    ]
}

/// Render rows as cells (ms, 3 decimals) for markdown/CSV.
pub fn breakdown_rows(rows: &[BreakdownRow]) -> Vec<Vec<String>> {
    rows.iter()
        .map(|r| {
            let ms = |v: f64| format!("{:.3}", v / 1e3);
            vec![
                r.model.clone(),
                r.count.to_string(),
                ms(r.e2e_us),
                ms(r.queue_us),
                ms(r.compute_us),
                ms(r.transfer_us),
                ms(r.stall_us),
                ms(r.sched_us),
            ]
        })
        .collect()
}

/// Render a markdown breakdown table.
pub fn breakdown_markdown(rows: &[BreakdownRow]) -> String {
    crate::report::markdown_table(&breakdown_header(), &breakdown_rows(rows))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> BreakdownRow {
        BreakdownRow {
            model: "resnet50".into(),
            count: 10,
            e2e_us: 5_000.0,
            queue_us: 1_000.0,
            compute_us: 3_200.0,
            transfer_us: 300.0,
            stall_us: 400.0,
            sched_us: 100.0,
        }
    }

    #[test]
    fn components_sum() {
        assert!((row().components_sum_us() - 5_000.0).abs() < 1e-9);
    }

    #[test]
    fn markdown_renders_all_columns() {
        let md = breakdown_markdown(&[row()]);
        assert!(md.contains("resnet50"));
        assert!(md.contains("compute (ms)"));
        assert!(md.contains("3.200"));
        assert!(md.contains("0.400"));
    }
}
