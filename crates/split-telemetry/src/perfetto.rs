//! Chrome/Perfetto `trace_events` export.
//!
//! Converts a [`Recorder`] into the JSON object format understood by
//! `chrome://tracing` and <https://ui.perfetto.dev>: block executions
//! become complete (`"X"`) spans on one track per GPU stream,
//! scheduler-side happenings (arrivals, preemption decisions and jumps,
//! elastic downgrades, completions) become instant (`"i"`) markers on a
//! dedicated scheduler track, and queue depth / device utilization
//! become counter (`"C"`) tracks. Timestamps pass through unchanged —
//! the recorder's microseconds are exactly the `ts` unit the format
//! expects.

use crate::lifecycle::{Event, Recorder};
use serde_json::{Map, Value};
use std::collections::BTreeMap;
use std::io;
use std::path::Path;

const PID: u64 = 1;
/// Track for scheduler instants (decisions, arrivals, completions).
const TID_SCHED: u64 = 1;
/// Track for transfer spans.
const TID_IO: u64 = 2;
/// Streams map to tids from this base upward.
const TID_STREAM_BASE: u64 = 100;

fn s(v: impl Into<String>) -> Value {
    Value::String(v.into())
}

fn u(v: u64) -> Value {
    Value::Number(serde_json::Number::PosInt(v))
}

fn f(v: f64) -> Value {
    Value::Number(serde_json::Number::Float(v))
}

fn obj(pairs: Vec<(&str, Value)>) -> Value {
    let mut m = Map::new();
    for (k, v) in pairs {
        m.insert(k, v);
    }
    Value::Object(m)
}

fn instant(name: &str, cat: &str, ts: f64, args: Vec<(&str, Value)>) -> Value {
    obj(vec![
        ("name", s(name)),
        ("cat", s(cat)),
        ("ph", s("i")),
        ("s", s("t")),
        ("ts", f(ts)),
        ("pid", u(PID)),
        ("tid", u(TID_SCHED)),
        ("args", obj(args)),
    ])
}

fn counter(name: &str, ts: f64, key: &str, value: Value) -> Value {
    obj(vec![
        ("name", s(name)),
        ("ph", s("C")),
        ("ts", f(ts)),
        ("pid", u(PID)),
        ("args", obj(vec![(key, value)])),
    ])
}

fn metadata(name: &str, tid: Option<u64>, value: &str) -> Value {
    let mut pairs = vec![
        ("name", s(name)),
        ("ph", s("M")),
        ("pid", u(PID)),
        ("args", obj(vec![("name", s(value))])),
    ];
    if let Some(tid) = tid {
        pairs.insert(3, ("tid", u(tid)));
    }
    obj(pairs)
}

/// Convert a recording into a `trace_events` JSON document
/// (`{"traceEvents": [...], "displayTimeUnit": "ms"}`). `process_name`
/// labels the single process track, e.g. `"split-sim"` or
/// `"split-runtime"`.
pub fn trace_events(rec: &Recorder, process_name: &str) -> Value {
    let mut events: Vec<Value> = Vec::with_capacity(rec.len() + 8);
    events.push(metadata("process_name", None, process_name));
    events.push(metadata("thread_name", Some(TID_SCHED), "scheduler"));

    // Model names per request, for span labels.
    let mut models: BTreeMap<u64, String> = BTreeMap::new();
    for e in rec.events() {
        if let Event::Arrival { req, model, .. } = e {
            models.insert(*req, model.clone());
        }
    }

    // Open BlockStart awaiting its end, keyed by request.
    let mut open: BTreeMap<u64, (usize, u32, f64)> = BTreeMap::new();
    let mut streams_seen: BTreeMap<u32, ()> = BTreeMap::new();
    let mut io_seen = false;

    for e in rec.events() {
        match e {
            Event::Arrival { req, model, t_us } => {
                events.push(instant(
                    "arrival",
                    "lifecycle",
                    *t_us,
                    vec![("req", u(*req)), ("model", s(model.clone()))],
                ));
            }
            Event::Enqueue {
                req,
                position,
                displaced,
                t_us,
            } => {
                if *displaced > 0 {
                    events.push(instant(
                        "preempt-jump",
                        "preemption",
                        *t_us,
                        vec![
                            ("req", u(*req)),
                            ("position", u(*position as u64)),
                            ("displaced", u(*displaced as u64)),
                        ],
                    ));
                }
            }
            Event::PreemptDecision {
                req,
                position,
                comparisons,
                stop,
                decision_ns,
                t_us,
            } => {
                events.push(instant(
                    "preempt-decision",
                    "preemption",
                    *t_us,
                    vec![
                        ("req", u(*req)),
                        ("position", u(*position as u64)),
                        ("comparisons", u(*comparisons as u64)),
                        ("stop", s(stop.clone())),
                        ("decision_ns", u(*decision_ns)),
                    ],
                ));
            }
            Event::BlockStart {
                req,
                block,
                stream,
                t_us,
            } => {
                open.insert(*req, (*block, *stream, *t_us));
            }
            Event::BlockEnd {
                req,
                block,
                stream,
                t_us,
            } => {
                let Some((b, strm, start)) = open.remove(req) else {
                    continue;
                };
                if b != *block || strm != *stream {
                    continue;
                }
                streams_seen.insert(*stream, ());
                let label = match models.get(req) {
                    Some(m) => format!("{m}#{req}/b{block}"),
                    None => format!("req{req}/b{block}"),
                };
                events.push(obj(vec![
                    ("name", s(label)),
                    ("cat", s("block")),
                    ("ph", s("X")),
                    ("ts", f(start)),
                    ("dur", f(t_us - start)),
                    ("pid", u(PID)),
                    ("tid", u(TID_STREAM_BASE + *stream as u64)),
                    (
                        "args",
                        obj(vec![("req", u(*req)), ("block", u(*block as u64))]),
                    ),
                ]));
            }
            Event::Transfer {
                req,
                bytes,
                t_us,
                dur_us,
            } => {
                io_seen = true;
                events.push(obj(vec![
                    ("name", s(format!("transfer#{req}"))),
                    ("cat", s("io")),
                    ("ph", s("X")),
                    ("ts", f(*t_us)),
                    ("dur", f(*dur_us)),
                    ("pid", u(PID)),
                    ("tid", u(TID_IO)),
                    ("args", obj(vec![("req", u(*req)), ("bytes", u(*bytes))])),
                ]));
            }
            Event::Completion { req, t_us } => {
                events.push(instant(
                    "completion",
                    "lifecycle",
                    *t_us,
                    vec![("req", u(*req))],
                ));
            }
            Event::Downgrade {
                req,
                from_blocks,
                to_blocks,
                t_us,
            } => {
                events.push(instant(
                    "elastic-downgrade",
                    "elastic",
                    *t_us,
                    vec![
                        ("req", u(*req)),
                        ("from_blocks", u(*from_blocks as u64)),
                        ("to_blocks", u(*to_blocks as u64)),
                    ],
                ));
            }
            Event::QueueDepth { depth, t_us } => {
                events.push(counter("queue_depth", *t_us, "depth", u(*depth as u64)));
            }
            Event::Utilization { busy, t_us } => {
                events.push(counter("utilization", *t_us, "busy", f(*busy)));
            }
            Event::Mark { label, t_us } => {
                events.push(instant(label, "mark", *t_us, vec![]));
            }
        }
    }

    for stream in streams_seen.keys() {
        events.push(metadata(
            "thread_name",
            Some(TID_STREAM_BASE + *stream as u64),
            &format!("stream {stream}"),
        ));
    }
    if io_seen {
        events.push(metadata("thread_name", Some(TID_IO), "io"));
    }

    let mut root = Map::new();
    root.insert("traceEvents", Value::Array(events));
    root.insert("displayTimeUnit", s("ms"));
    Value::Object(root)
}

/// Serialize [`trace_events`] to a file.
pub fn write_chrome_trace(rec: &Recorder, process_name: &str, path: &Path) -> io::Result<()> {
    let doc = trace_events(rec, process_name);
    let text = serde_json::to_string(&doc).map_err(|e| io::Error::other(e.to_string()))?;
    std::fs::write(path, text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Recorder {
        let mut r = Recorder::new();
        r.record(Event::Arrival {
            req: 3,
            model: "vgg19".into(),
            t_us: 0.0,
        });
        r.record(Event::Enqueue {
            req: 3,
            position: 0,
            displaced: 2,
            t_us: 0.0,
        });
        r.record(Event::PreemptDecision {
            req: 3,
            position: 0,
            comparisons: 2,
            stop: "Beaten".into(),
            decision_ns: 740,
            t_us: 0.0,
        });
        r.record(Event::QueueDepth {
            depth: 3,
            t_us: 0.0,
        });
        r.record(Event::BlockStart {
            req: 3,
            block: 0,
            stream: 1,
            t_us: 4.0,
        });
        r.record(Event::BlockEnd {
            req: 3,
            block: 0,
            stream: 1,
            t_us: 9.5,
        });
        r.record(Event::Completion { req: 3, t_us: 9.5 });
        r
    }

    #[test]
    fn document_shape_and_span_pairing() {
        let doc = trace_events(&sample(), "split-sim");
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        assert!(doc.get("displayTimeUnit").is_some());

        let spans: Vec<&Value> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
            .collect();
        assert_eq!(spans.len(), 1);
        let span = spans[0];
        assert_eq!(span.get("name").unwrap().as_str().unwrap(), "vgg19#3/b0");
        assert_eq!(span.get("ts").unwrap().as_f64().unwrap(), 4.0);
        assert!((span.get("dur").unwrap().as_f64().unwrap() - 5.5).abs() < 1e-9);
        assert_eq!(span.get("tid").unwrap().as_u64().unwrap(), 101);

        let kinds: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("name").and_then(Value::as_str))
            .collect();
        assert!(kinds.contains(&"preempt-decision"));
        assert!(kinds.contains(&"preempt-jump"));
        assert!(kinds.contains(&"queue_depth"));
        assert!(kinds.contains(&"arrival"));
        assert!(kinds.contains(&"completion"));

        // Stream track got a thread_name metadata record.
        assert!(events.iter().any(|e| {
            e.get("ph").and_then(Value::as_str) == Some("M")
                && e.get("tid").and_then(Value::as_u64) == Some(101)
        }));
    }

    #[test]
    fn counter_events_carry_args() {
        let doc = trace_events(&sample(), "p");
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let c = events
            .iter()
            .find(|e| e.get("ph").and_then(Value::as_str) == Some("C"))
            .unwrap();
        assert_eq!(
            c.get("args").unwrap().get("depth").unwrap().as_u64(),
            Some(3)
        );
    }

    #[test]
    fn file_roundtrip_parses() {
        let dir = std::env::temp_dir().join("split-telemetry-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        write_chrome_trace(&sample(), "split-sim", &path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let parsed: Value = serde_json::from_str(&text).unwrap();
        assert!(parsed.get("traceEvents").unwrap().as_array().unwrap().len() > 5);
        std::fs::remove_file(&path).ok();
    }
}
