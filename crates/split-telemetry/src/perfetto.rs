//! Chrome/Perfetto `trace_events` export.
//!
//! Converts a [`Recorder`] into the JSON object format understood by
//! `chrome://tracing` and <https://ui.perfetto.dev>: block executions
//! become complete (`"X"`) spans on one track per GPU stream,
//! scheduler-side happenings (arrivals, preemption decisions and jumps,
//! elastic downgrades, completions) become instant (`"i"`) markers on a
//! dedicated scheduler track, and queue depth / device utilization
//! become counter (`"C"`) tracks. Timestamps pass through unchanged —
//! the recorder's microseconds are exactly the `ts` unit the format
//! expects.

use crate::lifecycle::{Event, Recorder};
use serde_json::{Map, Value};
use std::collections::BTreeMap;
use std::io;
use std::path::Path;

const PID: u64 = 1;
/// Track for scheduler instants (decisions, arrivals, completions).
const TID_SCHED: u64 = 1;
/// Track for transfer spans.
const TID_IO: u64 = 2;
/// Streams map to tids from this base upward.
const TID_STREAM_BASE: u64 = 100;

fn s(v: impl Into<String>) -> Value {
    Value::String(v.into())
}

fn u(v: u64) -> Value {
    Value::Number(serde_json::Number::PosInt(v))
}

fn f(v: f64) -> Value {
    Value::Number(serde_json::Number::Float(v))
}

fn obj(pairs: Vec<(&str, Value)>) -> Value {
    let mut m = Map::new();
    for (k, v) in pairs {
        m.insert(k, v);
    }
    Value::Object(m)
}

fn instant(name: &str, cat: &str, ts: f64, args: Vec<(&str, Value)>) -> Value {
    obj(vec![
        ("name", s(name)),
        ("cat", s(cat)),
        ("ph", s("i")),
        ("s", s("t")),
        ("ts", f(ts)),
        ("pid", u(PID)),
        ("tid", u(TID_SCHED)),
        ("args", obj(args)),
    ])
}

fn counter(name: &str, ts: f64, key: &str, value: Value) -> Value {
    obj(vec![
        ("name", s(name)),
        ("ph", s("C")),
        ("ts", f(ts)),
        ("pid", u(PID)),
        ("args", obj(vec![(key, value)])),
    ])
}

fn metadata(name: &str, tid: Option<u64>, value: &str) -> Value {
    let mut pairs = vec![
        ("name", s(name)),
        ("ph", s("M")),
        ("pid", u(PID)),
        ("args", obj(vec![("name", s(value))])),
    ];
    if let Some(tid) = tid {
        pairs.insert(3, ("tid", u(tid)));
    }
    obj(pairs)
}

/// Convert a recording into a `trace_events` JSON document
/// (`{"traceEvents": [...], "displayTimeUnit": "ms"}`). `process_name`
/// labels the single process track, e.g. `"split-sim"` or
/// `"split-runtime"`.
pub fn trace_events(rec: &Recorder, process_name: &str) -> Value {
    let mut events: Vec<Value> = Vec::with_capacity(rec.len() + 8);
    events.push(metadata("process_name", None, process_name));
    events.push(metadata("thread_name", Some(TID_SCHED), "scheduler"));

    // Model names per request, for span labels.
    let mut models: BTreeMap<u64, String> = BTreeMap::new();
    for e in rec.events() {
        if let Event::Arrival { req, model, .. } = e {
            models.insert(*req, model.clone());
        }
    }

    // Open BlockStart awaiting its end, keyed by request.
    let mut open: BTreeMap<u64, (usize, u32, f64)> = BTreeMap::new();
    let mut streams_seen: BTreeMap<u32, ()> = BTreeMap::new();
    let mut io_seen = false;

    for e in rec.events() {
        match e {
            Event::Arrival { req, model, t_us } => {
                events.push(instant(
                    "arrival",
                    "lifecycle",
                    *t_us,
                    vec![("req", u(*req)), ("model", s(model.clone()))],
                ));
            }
            Event::Enqueue {
                req,
                position,
                displaced,
                t_us,
            } => {
                if *displaced > 0 {
                    events.push(instant(
                        "preempt-jump",
                        "preemption",
                        *t_us,
                        vec![
                            ("req", u(*req)),
                            ("position", u(*position as u64)),
                            ("displaced", u(*displaced as u64)),
                        ],
                    ));
                }
            }
            Event::PreemptDecision {
                req,
                position,
                comparisons,
                stop,
                decision_ns,
                publish_ns,
                t_us,
            } => {
                events.push(instant(
                    "preempt-decision",
                    "preemption",
                    *t_us,
                    vec![
                        ("req", u(*req)),
                        ("position", u(*position as u64)),
                        ("comparisons", u(*comparisons as u64)),
                        ("stop", s(stop.clone())),
                        ("decision_ns", u(*decision_ns)),
                        ("publish_ns", u(*publish_ns)),
                    ],
                ));
            }
            Event::BlockStart {
                req,
                block,
                stream,
                t_us,
            } => {
                open.insert(*req, (*block, *stream, *t_us));
            }
            Event::BlockEnd {
                req,
                block,
                stream,
                t_us,
            } => {
                let Some((b, strm, start)) = open.remove(req) else {
                    continue;
                };
                if b != *block || strm != *stream {
                    continue;
                }
                streams_seen.insert(*stream, ());
                let label = match models.get(req) {
                    Some(m) => format!("{m}#{req}/b{block}"),
                    None => format!("req{req}/b{block}"),
                };
                events.push(obj(vec![
                    ("name", s(label)),
                    ("cat", s("block")),
                    ("ph", s("X")),
                    ("ts", f(start)),
                    ("dur", f(t_us - start)),
                    ("pid", u(PID)),
                    ("tid", u(TID_STREAM_BASE + *stream as u64)),
                    (
                        "args",
                        obj(vec![("req", u(*req)), ("block", u(*block as u64))]),
                    ),
                ]));
            }
            Event::Transfer {
                req,
                bytes,
                t_us,
                dur_us,
            } => {
                io_seen = true;
                events.push(obj(vec![
                    ("name", s(format!("transfer#{req}"))),
                    ("cat", s("io")),
                    ("ph", s("X")),
                    ("ts", f(*t_us)),
                    ("dur", f(*dur_us)),
                    ("pid", u(PID)),
                    ("tid", u(TID_IO)),
                    ("args", obj(vec![("req", u(*req)), ("bytes", u(*bytes))])),
                ]));
            }
            Event::Completion { req, t_us } => {
                events.push(instant(
                    "completion",
                    "lifecycle",
                    *t_us,
                    vec![("req", u(*req))],
                ));
            }
            Event::Downgrade {
                req,
                from_blocks,
                to_blocks,
                t_us,
            } => {
                events.push(instant(
                    "elastic-downgrade",
                    "elastic",
                    *t_us,
                    vec![
                        ("req", u(*req)),
                        ("from_blocks", u(*from_blocks as u64)),
                        ("to_blocks", u(*to_blocks as u64)),
                    ],
                ));
            }
            Event::QueueDepth { depth, t_us } => {
                events.push(counter("queue_depth", *t_us, "depth", u(*depth as u64)));
            }
            Event::Utilization { busy, t_us } => {
                events.push(counter("utilization", *t_us, "busy", f(*busy)));
            }
            Event::Mark { label, t_us } => {
                events.push(instant(label, "mark", *t_us, vec![]));
            }
        }
    }

    for stream in streams_seen.keys() {
        events.push(metadata(
            "thread_name",
            Some(TID_STREAM_BASE + *stream as u64),
            &format!("stream {stream}"),
        ));
    }
    if io_seen {
        events.push(metadata("thread_name", Some(TID_IO), "io"));
    }

    let mut root = Map::new();
    root.insert("traceEvents", Value::Array(events));
    root.insert("displayTimeUnit", s("ms"));
    Value::Object(root)
}

/// Numeric field accessor tolerant of integer/float JSON encodings.
fn num(v: &Value) -> Option<f64> {
    v.as_f64().or_else(|| v.as_u64().map(|n| n as f64))
}

fn arg_u64(e: &Value, key: &str) -> Option<u64> {
    e.get("args")?.get(key)?.as_u64()
}

fn arg_f64(e: &Value, key: &str) -> Option<f64> {
    num(e.get("args")?.get(key)?)
}

/// Rebuild a [`Recorder`] from a `trace_events` document previously
/// produced by [`trace_events`] — the inverse mapping of the exporter
/// (instants by name, `"block"`/`"io"` complete spans back to
/// block/transfer events, counters back to samples; metadata records
/// are skipped). Events are re-sorted by time with the scheduler's
/// same-timestamp ordering so replays feed consumers causally. Returns
/// an error when the document lacks a `traceEvents` array.
pub fn recorder_from_trace_events(doc: &Value) -> Result<Recorder, String> {
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .ok_or_else(|| "missing traceEvents array".to_string())?;

    let mut out: Vec<Event> = Vec::with_capacity(events.len());
    for e in events {
        let ph = e.get("ph").and_then(Value::as_str).unwrap_or_default();
        let ts = e.get("ts").and_then(num).unwrap_or(0.0);
        let name = e.get("name").and_then(Value::as_str).unwrap_or_default();
        let cat = e.get("cat").and_then(Value::as_str).unwrap_or_default();
        match ph {
            "i" => match name {
                "arrival" => {
                    if let Some(req) = arg_u64(e, "req") {
                        let model = e
                            .get("args")
                            .and_then(|a| a.get("model"))
                            .and_then(Value::as_str)
                            .unwrap_or_default()
                            .to_string();
                        out.push(Event::Arrival {
                            req,
                            model,
                            t_us: ts,
                        });
                    }
                }
                "completion" => {
                    if let Some(req) = arg_u64(e, "req") {
                        out.push(Event::Completion { req, t_us: ts });
                    }
                }
                "preempt-decision" => {
                    if let Some(req) = arg_u64(e, "req") {
                        out.push(Event::PreemptDecision {
                            req,
                            position: arg_u64(e, "position").unwrap_or(0) as usize,
                            comparisons: arg_u64(e, "comparisons").unwrap_or(0) as usize,
                            stop: e
                                .get("args")
                                .and_then(|a| a.get("stop"))
                                .and_then(Value::as_str)
                                .unwrap_or_default()
                                .to_string(),
                            decision_ns: arg_u64(e, "decision_ns").unwrap_or(0),
                            publish_ns: arg_u64(e, "publish_ns").unwrap_or(0),
                            t_us: ts,
                        });
                    }
                }
                "preempt-jump" => {
                    if let Some(req) = arg_u64(e, "req") {
                        out.push(Event::Enqueue {
                            req,
                            position: arg_u64(e, "position").unwrap_or(0) as usize,
                            displaced: arg_u64(e, "displaced").unwrap_or(0) as usize,
                            t_us: ts,
                        });
                    }
                }
                "elastic-downgrade" => {
                    if let Some(req) = arg_u64(e, "req") {
                        out.push(Event::Downgrade {
                            req,
                            from_blocks: arg_u64(e, "from_blocks").unwrap_or(0) as usize,
                            to_blocks: arg_u64(e, "to_blocks").unwrap_or(0) as usize,
                            t_us: ts,
                        });
                    }
                }
                _ if cat == "mark" => out.push(Event::Mark {
                    label: name.to_string(),
                    t_us: ts,
                }),
                _ => {}
            },
            "X" if cat == "block" => {
                let (Some(req), Some(block)) = (arg_u64(e, "req"), arg_u64(e, "block")) else {
                    continue;
                };
                let tid = e.get("tid").and_then(Value::as_u64).unwrap_or(0);
                let stream = tid.saturating_sub(TID_STREAM_BASE) as u32;
                let dur = e.get("dur").and_then(num).unwrap_or(0.0);
                out.push(Event::BlockStart {
                    req,
                    block: block as usize,
                    stream,
                    t_us: ts,
                });
                out.push(Event::BlockEnd {
                    req,
                    block: block as usize,
                    stream,
                    t_us: ts + dur,
                });
            }
            "X" if cat == "io" => {
                if let (Some(req), Some(bytes)) = (arg_u64(e, "req"), arg_u64(e, "bytes")) {
                    out.push(Event::Transfer {
                        req,
                        bytes,
                        t_us: ts,
                        dur_us: e.get("dur").and_then(num).unwrap_or(0.0),
                    });
                }
            }
            "C" => match name {
                "queue_depth" => {
                    if let Some(d) = arg_u64(e, "depth") {
                        out.push(Event::QueueDepth {
                            depth: d as usize,
                            t_us: ts,
                        });
                    }
                }
                "utilization" => {
                    if let Some(b) = arg_f64(e, "busy") {
                        out.push(Event::Utilization { busy: b, t_us: ts });
                    }
                }
                _ => {}
            },
            _ => {}
        }
    }

    // Same same-timestamp ordering the scheduler uses when it merges
    // lifecycle streams, so a replay observes causally-ordered events.
    fn rank(e: &Event) -> u8 {
        match e {
            Event::Arrival { .. } => 0,
            Event::Downgrade { .. } => 1,
            Event::PreemptDecision { .. } => 2,
            Event::Enqueue { .. } => 3,
            Event::QueueDepth { .. } => 4,
            Event::BlockEnd { .. } => 5,
            Event::BlockStart { .. } => 6,
            Event::Transfer { .. } => 7,
            Event::Completion { .. } => 8,
            Event::Utilization { .. } | Event::Mark { .. } => 9,
        }
    }
    out.sort_by(|a, b| a.t_us().total_cmp(&b.t_us()).then(rank(a).cmp(&rank(b))));

    let mut rec = Recorder::new();
    for e in out {
        rec.record(e);
    }
    Ok(rec)
}

/// [`recorder_from_trace_events`] from a file on disk.
pub fn read_chrome_trace(path: &Path) -> Result<Recorder, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path:?}: {e}"))?;
    let doc: Value = serde_json::from_str(&text).map_err(|e| format!("parse {path:?}: {e:?}"))?;
    recorder_from_trace_events(&doc)
}

/// Serialize [`trace_events`] to a file.
pub fn write_chrome_trace(rec: &Recorder, process_name: &str, path: &Path) -> io::Result<()> {
    let doc = trace_events(rec, process_name);
    let text = serde_json::to_string(&doc).map_err(|e| io::Error::other(e.to_string()))?;
    std::fs::write(path, text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Recorder {
        let mut r = Recorder::new();
        r.record(Event::Arrival {
            req: 3,
            model: "vgg19".into(),
            t_us: 0.0,
        });
        r.record(Event::Enqueue {
            req: 3,
            position: 0,
            displaced: 2,
            t_us: 0.0,
        });
        r.record(Event::PreemptDecision {
            req: 3,
            position: 0,
            comparisons: 2,
            stop: "Beaten".into(),
            decision_ns: 740,
            publish_ns: 1_900,
            t_us: 0.0,
        });
        r.record(Event::QueueDepth {
            depth: 3,
            t_us: 0.0,
        });
        r.record(Event::BlockStart {
            req: 3,
            block: 0,
            stream: 1,
            t_us: 4.0,
        });
        r.record(Event::BlockEnd {
            req: 3,
            block: 0,
            stream: 1,
            t_us: 9.5,
        });
        r.record(Event::Completion { req: 3, t_us: 9.5 });
        r
    }

    #[test]
    fn document_shape_and_span_pairing() {
        let doc = trace_events(&sample(), "split-sim");
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        assert!(doc.get("displayTimeUnit").is_some());

        let spans: Vec<&Value> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
            .collect();
        assert_eq!(spans.len(), 1);
        let span = spans[0];
        assert_eq!(span.get("name").unwrap().as_str().unwrap(), "vgg19#3/b0");
        assert_eq!(span.get("ts").unwrap().as_f64().unwrap(), 4.0);
        assert!((span.get("dur").unwrap().as_f64().unwrap() - 5.5).abs() < 1e-9);
        assert_eq!(span.get("tid").unwrap().as_u64().unwrap(), 101);

        let kinds: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("name").and_then(Value::as_str))
            .collect();
        assert!(kinds.contains(&"preempt-decision"));
        assert!(kinds.contains(&"preempt-jump"));
        assert!(kinds.contains(&"queue_depth"));
        assert!(kinds.contains(&"arrival"));
        assert!(kinds.contains(&"completion"));

        // Stream track got a thread_name metadata record.
        assert!(events.iter().any(|e| {
            e.get("ph").and_then(Value::as_str) == Some("M")
                && e.get("tid").and_then(Value::as_u64) == Some(101)
        }));
    }

    #[test]
    fn counter_events_carry_args() {
        let doc = trace_events(&sample(), "p");
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let c = events
            .iter()
            .find(|e| e.get("ph").and_then(Value::as_str) == Some("C"))
            .unwrap();
        assert_eq!(
            c.get("args").unwrap().get("depth").unwrap().as_u64(),
            Some(3)
        );
    }

    #[test]
    fn import_inverts_export() {
        let rec = sample();
        let doc = trace_events(&rec, "split-sim");
        let back = recorder_from_trace_events(&doc).unwrap();
        // Same number of events (every original event has an inverse).
        assert_eq!(back.len(), rec.len());
        // Same multiset of events: the importer re-sorts same-timestamp
        // events into scheduler order, so compare order-insensitively.
        let key = |e: &Event| format!("{e:?}");
        let mut a: Vec<String> = rec.events().map(key).collect();
        let mut b: Vec<String> = back.events().map(key).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        // And the derived summary (e2e latency) survives the roundtrip.
        let e2e: Vec<f64> = back.summary().requests.iter().map(|r| r.e2e_us()).collect();
        assert_eq!(e2e, vec![9.5]);
    }

    #[test]
    fn import_rejects_non_trace_documents() {
        assert!(recorder_from_trace_events(&Value::Null).is_err());
        let empty = obj(vec![("traceEvents", Value::Array(vec![]))]);
        assert_eq!(recorder_from_trace_events(&empty).unwrap().len(), 0);
    }

    #[test]
    fn file_roundtrip_parses() {
        let dir = std::env::temp_dir().join("split-telemetry-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        write_chrome_trace(&sample(), "split-sim", &path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let parsed: Value = serde_json::from_str(&text).unwrap();
        assert!(parsed.get("traceEvents").unwrap().as_array().unwrap().len() > 5);
        std::fs::remove_file(&path).ok();
    }
}
