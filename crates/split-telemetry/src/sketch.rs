//! Mergeable relative-error quantile sketch (DDSketch-style).
//!
//! [`QuantileSketch`] buckets positive samples by `⌈ln(v)/ln(γ)⌉` with
//! `γ = (1+α)/(1−α)`, so bucket `i` covers `(γ^(i−1), γ^i]` and the
//! representative `2γ^i/(γ+1)` is within relative error `α` of every
//! value in the bucket — the classic DDSketch guarantee (Masson et al.,
//! VLDB 2019). Unlike [`crate::Histogram`]'s fixed 1/8-octave grid
//! (≤ 12.5% error), the sketch's accuracy is a constructor parameter
//! (default 1%), and it is a plain value type built for *aggregation*:
//!
//! * **Proven error bound** — `quantile(q)` returns an estimate `x̂`
//!   with `|x̂ − x_q| ≤ α·x_q` where `x_q` is the exact `q`-quantile of
//!   the recorded multiset under the same rank convention as
//!   [`crate::Histogram::quantile`] (`rank = max(1, ⌈q·n⌉)`). Clamping
//!   to the exact min/max can only shrink the error (the exact quantile
//!   always lies inside `[min, max]`). split-analyze's SA501 audit and
//!   the `sketch_props` proptests pin this bound against exact sorted
//!   data.
//! * **Commutative, associative `merge`** — buckets are integer counts
//!   keyed by index, so merging is a sorted merge-join of `+=`s; any
//!   merge tree over the same sketches yields bit-identical state
//!   (SA503). This is what lets per-window, per-model — and eventually
//!   per-device — sketches roll up into fleet quantiles.
//! * **Deterministic at any thread count** — the bucket index is a pure
//!   function of `(v, α)` and all state is integers plus the three
//!   constructor-derived floats, so a sketch's contents depend only on
//!   the multiset of recorded values, never on recording or merge
//!   order.
//!
//! Memory is bounded: with `α = 0.01`, the full `u64` range spans
//! ~2,220 buckets (`⌈ln(2⁶⁴)/ln(γ)⌉`), and only occupied buckets are
//! stored (sorted `Vec<(i32, u64)>`; insertion keeps it sorted, lookup
//! is binary search).

use serde::{Deserialize, Serialize};

/// Default relative-accuracy parameter `α` (1%).
pub const DEFAULT_SKETCH_ALPHA: f64 = 0.01;

/// Mergeable quantile sketch with a relative-error guarantee.
///
/// See the [module docs](self) for the accuracy proof sketch and the
/// determinism contract. Values are `u64` and unit-agnostic
/// (microseconds by convention in split-watch).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantileSketch {
    /// Relative-accuracy parameter `α`.
    alpha: f64,
    /// `γ = (1+α)/(1−α)`; bucket `i` covers `(γ^(i−1), γ^i]`.
    gamma: f64,
    /// Cached `ln(γ)`.
    ln_gamma: f64,
    /// Count of zero-valued samples (ln is undefined at 0, so zeros get
    /// their own exact bucket).
    zero: u64,
    /// Occupied buckets, sorted by index.
    buckets: Vec<(i32, u64)>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        Self::new(DEFAULT_SKETCH_ALPHA)
    }
}

impl QuantileSketch {
    /// Empty sketch with relative accuracy `alpha` (`0 < alpha < 1`).
    ///
    /// # Panics
    /// If `alpha` is not in `(0, 1)`.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha < 1.0,
            "sketch alpha must be in (0, 1), got {alpha}"
        );
        let gamma = (1.0 + alpha) / (1.0 - alpha);
        Self {
            alpha,
            gamma,
            ln_gamma: gamma.ln(),
            zero: 0,
            buckets: Vec::new(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The relative-accuracy parameter `α` this sketch was built with.
    pub fn relative_accuracy(&self) -> f64 {
        self.alpha
    }

    /// Bucket index for a positive value: `⌈ln(v)/ln(γ)⌉`.
    fn index_of(&self, v: u64) -> i32 {
        debug_assert!(v > 0);
        // v = 1 maps to index 0 (ln 1 = 0); u64::MAX to ~ln(2^64)/ln(γ).
        ((v as f64).ln() / self.ln_gamma).ceil() as i32
    }

    /// Representative value of bucket `i`: `2γ^i/(γ+1)`, the point whose
    /// worst-case relative error over `(γ^(i−1), γ^i]` is exactly `α`.
    fn value_of(&self, i: i32) -> f64 {
        2.0 * self.gamma.powi(i) / (self.gamma + 1.0)
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        if v == 0 {
            self.zero += 1;
        } else {
            let idx = self.index_of(v);
            match self.buckets.binary_search_by_key(&idx, |&(i, _)| i) {
                Ok(pos) => self.buckets[pos].1 += 1,
                Err(pos) => self.buckets.insert(pos, (idx, 1)),
            }
        }
        self.count += 1;
        self.sum = self.sum.wrapping_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all samples (wrapping at `u64::MAX`).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Exact smallest sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact largest sample, or 0 when empty.
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Number of occupied (non-zero) log buckets.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// The `q`-quantile estimate (`0.0..=1.0`), within relative error
    /// `α` of the exact quantile at rank `max(1, ⌈q·n⌉)`, clamped to
    /// the exact min/max. Returns 0.0 when empty — never NaN.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cum = self.zero;
        if cum >= target {
            return 0.0;
        }
        for &(idx, n) in &self.buckets {
            cum += n;
            if cum >= target {
                return self.value_of(idx).clamp(self.min as f64, self.max as f64);
            }
        }
        self.max as f64
    }

    /// Median estimate.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// 99.9th-percentile estimate.
    pub fn p999(&self) -> f64 {
        self.quantile(0.999)
    }

    /// Fold `other`'s samples into `self`.
    ///
    /// Pure integer adds on matching bucket indices (sorted merge-join),
    /// so merging is commutative and associative: any merge tree over
    /// the same set of sketches produces bit-identical state, which
    /// SA503 and the `sketch_props` proptests verify via `to_bits`.
    /// Merging an empty sketch is a no-op (its `min` sentinel never
    /// survives the `min()`).
    ///
    /// # Panics
    /// If the sketches were built with different `α` (their bucket
    /// grids are incompatible).
    pub fn merge(&mut self, other: &QuantileSketch) {
        assert!(
            self.alpha.to_bits() == other.alpha.to_bits(),
            "cannot merge sketches with different alpha ({} vs {})",
            self.alpha,
            other.alpha
        );
        if other.count == 0 {
            return;
        }
        let mut merged = Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut a, mut b) = (
            self.buckets.iter().peekable(),
            other.buckets.iter().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(ia, na)), Some(&&(ib, nb))) => match ia.cmp(&ib) {
                    std::cmp::Ordering::Less => {
                        merged.push((ia, na));
                        a.next();
                    }
                    std::cmp::Ordering::Greater => {
                        merged.push((ib, nb));
                        b.next();
                    }
                    std::cmp::Ordering::Equal => {
                        merged.push((ia, na + nb));
                        a.next();
                        b.next();
                    }
                },
                (Some(&&e), None) => {
                    merged.push(e);
                    a.next();
                }
                (None, Some(&&e)) => {
                    merged.push(e);
                    b.next();
                }
                (None, None) => break,
            }
        }
        self.buckets = merged;
        self.zero += other.zero;
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact quantile under the sketch's rank convention.
    fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
        let n = sorted.len() as f64;
        let target = ((q * n).ceil() as usize).max(1);
        sorted[target - 1]
    }

    fn assert_within_bound(samples: &[u64], alpha: f64, what: &str) {
        let mut s = QuantileSketch::new(alpha);
        for &v in samples {
            s.record(v);
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        for q in [0.0, 0.01, 0.1, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0] {
            let exact = exact_quantile(&sorted, q);
            let est = s.quantile(q);
            // Tiny slack on top of α for the two f64 ops in the index
            // computation (ln + divide) at bucket boundaries.
            let tol = alpha * exact as f64 * (1.0 + 1e-9) + 1e-9;
            assert!(
                (est - exact as f64).abs() <= tol,
                "{what}: q={q} exact={exact} est={est}"
            );
        }
    }

    #[test]
    fn bound_holds_on_uniform_constant_and_powers() {
        assert_within_bound(&(1..=10_000u64).collect::<Vec<_>>(), 0.01, "uniform");
        assert_within_bound(&[42; 1000], 0.01, "constant");
        assert_within_bound(
            &(0..60u32).map(|e| 1u64 << e).collect::<Vec<_>>(),
            0.01,
            "powers of two",
        );
        assert_within_bound(&[0, 0, 0, 1, 2, 3], 0.01, "zeros mixed in");
        assert_within_bound(&[7], 0.02, "single sample");
    }

    #[test]
    fn empty_sketch_yields_zero_not_nan() {
        let s = QuantileSketch::default();
        assert_eq!(s.count(), 0);
        assert!(s.is_empty());
        assert_eq!(s.quantile(0.99), 0.0);
        assert_eq!(s.p999(), 0.0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0);
        assert_eq!(s.max(), 0);
        assert!(!s.quantile(0.5).is_nan());
    }

    #[test]
    fn zeros_get_an_exact_bucket() {
        let mut s = QuantileSketch::default();
        for _ in 0..90 {
            s.record(0);
        }
        for _ in 0..10 {
            s.record(1_000_000);
        }
        assert_eq!(s.quantile(0.5), 0.0);
        assert!((s.quantile(0.99) - 1_000_000.0).abs() <= 0.01 * 1_000_000.0 + 1e-6);
        assert_eq!(s.min(), 0);
        assert_eq!(s.max(), 1_000_000);
    }

    #[test]
    fn merge_is_commutative_and_associative_bitwise() {
        let mk = |vals: &[u64]| {
            let mut s = QuantileSketch::default();
            for &v in vals {
                s.record(v);
            }
            s
        };
        let a = mk(&[1, 5, 5, 900, 1_000_000]);
        let b = mk(&[0, 7, 7, 7, 123_456_789]);
        let c = mk(&(100..200u64).collect::<Vec<_>>());

        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        let mut ca = c.clone();
        ca.merge(&a);
        ca.merge(&b);

        for other in [&a_bc, &ca] {
            assert_eq!(ab_c, *other);
            for q in [0.1, 0.5, 0.99, 0.999] {
                assert_eq!(ab_c.quantile(q).to_bits(), other.quantile(q).to_bits());
            }
        }
        assert_eq!(ab_c.count(), a.count() + b.count() + c.count());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = QuantileSketch::default();
        s.record(42);
        let before = s.clone();
        s.merge(&QuantileSketch::default());
        assert_eq!(s, before);
        assert_eq!(s.min(), 42, "empty min sentinel must not leak in");
        let mut acc = QuantileSketch::default();
        acc.merge(&s);
        assert_eq!((acc.count(), acc.min(), acc.max()), (1, 42, 42));
    }

    #[test]
    #[should_panic(expected = "different alpha")]
    fn merge_rejects_mismatched_alpha() {
        let mut a = QuantileSketch::new(0.01);
        a.merge(&QuantileSketch::new(0.02));
    }

    #[test]
    fn serde_roundtrip_is_exact() {
        let mut s = QuantileSketch::default();
        for v in [0u64, 1, 3, 999, 1 << 40] {
            s.record(v);
        }
        let json = serde_json::to_string(&s).unwrap();
        let back: QuantileSketch = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.p999().to_bits(), s.p999().to_bits());
    }

    #[test]
    fn quantiles_are_monotone_and_clamped() {
        let mut s = QuantileSketch::default();
        for i in 1..=1000u64 {
            s.record(i * 17);
        }
        assert!(s.p50() <= s.p95());
        assert!(s.p95() <= s.p99());
        assert!(s.p99() <= s.p999());
        assert!(s.p999() <= s.max() as f64);
        assert!(s.quantile(0.0) >= s.min() as f64);
    }
}
