//! Structured per-request lifecycle recording.
//!
//! Every layer of the serving pipeline emits the same [`Event`] model:
//! the discrete-event simulator replays a whole schedule into a
//! [`Recorder`] after the fact, while the threaded runtime records live
//! through a [`SharedRecorder`]. Timestamps are microseconds on the
//! recording layer's own clock (simulated time for `gpu-sim`/`sched`,
//! wall time for `split-runtime`); decision costs are nanoseconds so the
//! §3.4 "microsecond-scale preemption" claim can be checked directly.
//!
//! [`Recorder::validate`] checks the structural invariants a well-formed
//! recording must satisfy — phase monotonicity per request, one
//! completion per arrival, and no same-stream block overlap — and is the
//! backbone of the cross-policy property tests.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// One observation in a request's lifecycle, or a device-level sample.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A request entered the system.
    Arrival {
        /// Request id.
        req: u64,
        /// Model name.
        model: String,
        /// Time of arrival (µs).
        t_us: f64,
    },
    /// A request was placed into the wait queue.
    Enqueue {
        /// Request id.
        req: u64,
        /// Queue position after insertion (0 = head).
        position: usize,
        /// Number of queued requests it jumped over (preemption
        /// displacement; 0 for a plain tail insert).
        displaced: usize,
        /// Time of insertion (µs).
        t_us: f64,
    },
    /// A greedy preemption decision was evaluated (SPLIT §3.4).
    PreemptDecision {
        /// Request id the decision was made for.
        req: u64,
        /// Chosen queue position.
        position: usize,
        /// Queue entries examined.
        comparisons: usize,
        /// Why the scan stopped (policy-specific label).
        stop: String,
        /// Wall-clock cost of the decision itself (ns).
        decision_ns: u64,
        /// Wall-clock latency from the client publishing the request
        /// into its combining slot to the decision being applied (ns).
        /// This is the number §3.4's "microsecond-scale" claim is
        /// judged on: it includes the wait for the current combiner
        /// pass, not just the greedy scan. Engines with no publication
        /// step (the discrete-event simulator) set it to `decision_ns`.
        publish_ns: u64,
        /// Scheduler time at which the decision ran (µs).
        t_us: f64,
    },
    /// One model block started executing on a stream.
    BlockStart {
        /// Request id.
        req: u64,
        /// Block index within the request's split plan.
        block: usize,
        /// GPU stream (track) the block runs on.
        stream: u32,
        /// Start time (µs).
        t_us: f64,
    },
    /// The matching end of a [`Event::BlockStart`].
    BlockEnd {
        /// Request id.
        req: u64,
        /// Block index within the request's split plan.
        block: usize,
        /// GPU stream (track) the block ran on.
        stream: u32,
        /// End time (µs).
        t_us: f64,
    },
    /// A payload moved across a boundary (e.g. runtime codec framing).
    Transfer {
        /// Request id.
        req: u64,
        /// Payload size.
        bytes: u64,
        /// Transfer start (µs).
        t_us: f64,
        /// Transfer duration (µs).
        dur_us: f64,
    },
    /// The request finished; exactly one per arrival.
    Completion {
        /// Request id.
        req: u64,
        /// Completion time (µs).
        t_us: f64,
    },
    /// The elastic controller downgraded a request's split plan (§3.3).
    Downgrade {
        /// Request id.
        req: u64,
        /// Block count before.
        from_blocks: usize,
        /// Block count after.
        to_blocks: usize,
        /// Time of the downgrade (µs).
        t_us: f64,
    },
    /// Wait-queue depth sample (drives the Perfetto counter track).
    QueueDepth {
        /// Requests waiting (not including the one executing).
        depth: usize,
        /// Sample time (µs).
        t_us: f64,
    },
    /// Device busy-fraction sample over the preceding interval.
    Utilization {
        /// Busy fraction in `[0, 1]`.
        busy: f64,
        /// Sample time (µs).
        t_us: f64,
    },
    /// Free-form instant marker.
    Mark {
        /// Label shown in the trace viewer.
        label: String,
        /// Marker time (µs).
        t_us: f64,
    },
}

impl Event {
    /// The event's timestamp (µs).
    pub fn t_us(&self) -> f64 {
        match self {
            Event::Arrival { t_us, .. }
            | Event::Enqueue { t_us, .. }
            | Event::PreemptDecision { t_us, .. }
            | Event::BlockStart { t_us, .. }
            | Event::BlockEnd { t_us, .. }
            | Event::Transfer { t_us, .. }
            | Event::Completion { t_us, .. }
            | Event::Downgrade { t_us, .. }
            | Event::QueueDepth { t_us, .. }
            | Event::Utilization { t_us, .. }
            | Event::Mark { t_us, .. } => *t_us,
        }
    }

    /// The request this event belongs to, if any.
    pub fn req(&self) -> Option<u64> {
        match self {
            Event::Arrival { req, .. }
            | Event::Enqueue { req, .. }
            | Event::PreemptDecision { req, .. }
            | Event::BlockStart { req, .. }
            | Event::BlockEnd { req, .. }
            | Event::Transfer { req, .. }
            | Event::Completion { req, .. }
            | Event::Downgrade { req, .. } => Some(*req),
            Event::QueueDepth { .. } | Event::Utilization { .. } | Event::Mark { .. } => None,
        }
    }
}

/// Memory policy for a [`Recorder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecorderMode {
    /// Keep every event (offline simulation, tests).
    Unbounded,
    /// Keep at most this many events, dropping the oldest (long-running
    /// servers). Dropped events are counted, not silently lost.
    Ring(usize),
}

/// Collects [`Event`]s in arrival order.
#[derive(Debug, Clone)]
pub struct Recorder {
    events: VecDeque<Event>,
    mode: RecorderMode,
    dropped: u64,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    /// Unbounded recorder.
    pub fn new() -> Self {
        Self::with_mode(RecorderMode::Unbounded)
    }

    /// Recorder with an explicit memory policy.
    pub fn with_mode(mode: RecorderMode) -> Self {
        if let RecorderMode::Ring(cap) = mode {
            assert!(cap > 0, "ring capacity must be positive");
        }
        Self {
            events: VecDeque::new(),
            mode,
            dropped: 0,
        }
    }

    /// Append one event, evicting the oldest in ring mode.
    pub fn record(&mut self, event: Event) {
        if let RecorderMode::Ring(cap) = self.mode {
            while self.events.len() >= cap {
                self.events.pop_front();
                self.dropped += 1;
            }
        }
        self.events.push_back(event);
    }

    /// Events currently held, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are held.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted by ring mode so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Consume the recorder, yielding its events oldest-first. The
    /// engine's lifecycle-merge path uses this to move a policy's
    /// decision events into the merged recording without cloning them.
    pub fn into_events(self) -> Vec<Event> {
        self.events.into()
    }

    /// Build an unbounded recorder directly from a pre-ordered event
    /// vector (the inverse of [`Recorder::into_events`]), without the
    /// per-event ring bookkeeping of [`Recorder::record`].
    pub fn from_events(events: Vec<Event>) -> Self {
        Self {
            events: VecDeque::from(events),
            mode: RecorderMode::Unbounded,
            dropped: 0,
        }
    }

    /// Absorb another recorder's events (e.g. merging per-thread
    /// recordings); the result keeps this recorder's mode.
    pub fn merge(&mut self, other: &Recorder) {
        self.dropped += other.dropped;
        for e in other.events() {
            self.record(e.clone());
        }
    }

    /// Aggregate per-request and device-level statistics.
    pub fn summary(&self) -> Summary {
        let mut requests: BTreeMap<u64, RequestSummary> = BTreeMap::new();
        let mut queue_depth_peak = 0usize;
        let mut preempt_jumps = 0u64;
        for e in self.events() {
            if let Some(req) = e.req() {
                let r = requests.entry(req).or_insert_with(|| RequestSummary {
                    req,
                    model: String::new(),
                    arrival_us: f64::NAN,
                    completion_us: f64::NAN,
                    first_start_us: f64::NAN,
                    blocks: 0,
                    displaced: 0,
                });
                match e {
                    Event::Arrival { model, t_us, .. } => {
                        r.model = model.clone();
                        r.arrival_us = *t_us;
                    }
                    Event::Enqueue { displaced, .. } => {
                        r.displaced += *displaced as u64;
                        if *displaced > 0 {
                            preempt_jumps += 1;
                        }
                    }
                    Event::BlockStart { t_us, .. } => {
                        if r.first_start_us.is_nan() {
                            r.first_start_us = *t_us;
                        }
                        r.blocks += 1;
                    }
                    Event::Completion { t_us, .. } => r.completion_us = *t_us,
                    _ => {}
                }
            } else if let Event::QueueDepth { depth, .. } = e {
                queue_depth_peak = queue_depth_peak.max(*depth);
            }
        }
        Summary {
            requests: requests.into_values().collect(),
            queue_depth_peak,
            preempt_jumps,
            dropped_events: self.dropped,
        }
    }

    /// Check structural invariants; returns one message per violation
    /// (empty = well-formed). Only meaningful for unbounded recordings —
    /// a ring that has dropped events reports no conservation errors for
    /// requests whose arrivals were evicted.
    pub fn validate(&self) -> Vec<String> {
        let mut errors = Vec::new();
        let mut arrivals: BTreeMap<u64, f64> = BTreeMap::new();
        let mut completions: BTreeMap<u64, u32> = BTreeMap::new();
        let mut enqueues: BTreeMap<u64, f64> = BTreeMap::new();
        let mut open_blocks: BTreeMap<u64, (usize, u32, f64)> = BTreeMap::new();
        let mut spans: Vec<(u32, f64, f64, u64)> = Vec::new();
        let mut last_block_end: BTreeMap<u64, f64> = BTreeMap::new();

        for e in self.events() {
            match e {
                Event::Arrival { req, t_us, .. }
                    if arrivals.insert(*req, *t_us).is_some() => {
                        errors.push(format!("request {req}: duplicate arrival"));
                    }
                Event::Enqueue { req, t_us, .. } => {
                    enqueues.entry(*req).or_insert(*t_us);
                    match arrivals.get(req) {
                        None => errors.push(format!("request {req}: enqueue before arrival")),
                        Some(at) if *t_us + 1e-9 < *at => errors.push(format!(
                            "request {req}: enqueue at {t_us} precedes arrival at {at}"
                        )),
                        _ => {}
                    }
                }
                Event::BlockStart {
                    req,
                    block,
                    stream,
                    t_us,
                } => {
                    if let Some((b, _, _)) = open_blocks.get(req) {
                        errors.push(format!(
                            "request {req}: block {block} starts while block {b} is open"
                        ));
                    }
                    if let Some(at) = arrivals.get(req) {
                        if *t_us + 1e-9 < *at {
                            errors.push(format!(
                                "request {req}: block {block} starts at {t_us} before arrival {at}"
                            ));
                        }
                    } else {
                        errors.push(format!("request {req}: block start before arrival"));
                    }
                    if let Some(prev_end) = last_block_end.get(req) {
                        if *t_us + 1e-9 < *prev_end {
                            errors.push(format!(
                                "request {req}: block {block} starts at {t_us} before previous block ended at {prev_end}"
                            ));
                        }
                    }
                    open_blocks.insert(*req, (*block, *stream, *t_us));
                }
                Event::BlockEnd {
                    req,
                    block,
                    stream,
                    t_us,
                } => match open_blocks.remove(req) {
                    Some((b, s, start)) if b == *block && s == *stream => {
                        if *t_us + 1e-9 < start {
                            errors.push(format!(
                                "request {req}: block {block} ends at {t_us} before its start {start}"
                            ));
                        }
                        spans.push((*stream, start, *t_us, *req));
                        last_block_end.insert(*req, *t_us);
                    }
                    Some((b, s, _)) => errors.push(format!(
                        "request {req}: block end ({block}, stream {stream}) does not match open block ({b}, stream {s})"
                    )),
                    None => errors.push(format!(
                        "request {req}: block {block} ends without a matching start"
                    )),
                },
                Event::Completion { req, t_us } => {
                    *completions.entry(*req).or_insert(0) += 1;
                    if let Some(end) = last_block_end.get(req) {
                        if *t_us + 1e-9 < *end {
                            errors.push(format!(
                                "request {req}: completion at {t_us} precedes last block end {end}"
                            ));
                        }
                    }
                    if !arrivals.contains_key(req) {
                        errors.push(format!("request {req}: completion without arrival"));
                    }
                }
                _ => {}
            }
        }

        for (req, (block, _, _)) in &open_blocks {
            errors.push(format!("request {req}: block {block} never ended"));
        }
        for (req, _) in arrivals.iter() {
            match completions.get(req) {
                Some(1) => {}
                Some(n) => errors.push(format!("request {req}: {n} completions")),
                None => errors.push(format!("request {req}: no completion")),
            }
        }
        for req in completions.keys() {
            if !arrivals.contains_key(req) {
                // Already reported at the event, but keep the conservation
                // sweep symmetric for rings that evicted the arrival.
            }
        }

        // Same-stream block spans must not overlap.
        spans.sort_by(|a, b| (a.0, a.1).partial_cmp(&(b.0, b.1)).expect("finite times"));
        for w in spans.windows(2) {
            let (s1, _, end1, r1) = w[0];
            let (s2, start2, _, r2) = w[1];
            if s1 == s2 && start2 + 1e-9 < end1 {
                errors.push(format!(
                    "stream {s1}: request {r2} block starts at {start2} before request {r1}'s block ends at {end1}"
                ));
            }
        }
        errors
    }
}

/// Per-request aggregate extracted from a recording.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestSummary {
    /// Request id.
    pub req: u64,
    /// Model name (empty if the arrival was evicted from a ring).
    pub model: String,
    /// Arrival time (µs; NaN if unseen).
    pub arrival_us: f64,
    /// Completion time (µs; NaN if unseen).
    pub completion_us: f64,
    /// First block start (µs; NaN if the request never ran).
    pub first_start_us: f64,
    /// Blocks executed.
    pub blocks: usize,
    /// Total queued requests jumped over on its enqueues.
    pub displaced: u64,
}

impl RequestSummary {
    /// End-to-end latency (µs), NaN if incomplete.
    pub fn e2e_us(&self) -> f64 {
        self.completion_us - self.arrival_us
    }

    /// Queueing delay before first execution (µs), NaN if never ran.
    pub fn wait_us(&self) -> f64 {
        self.first_start_us - self.arrival_us
    }
}

/// Aggregates returned by [`Recorder::summary`].
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Per-request aggregates, ordered by request id.
    pub requests: Vec<RequestSummary>,
    /// Highest queue depth sampled.
    pub queue_depth_peak: usize,
    /// Enqueues that jumped over at least one queued request.
    pub preempt_jumps: u64,
    /// Events evicted by ring mode.
    pub dropped_events: u64,
}

/// Thread-safe wrapper used by the live runtime: clones share one
/// underlying [`Recorder`] behind a mutex.
#[derive(Debug, Clone, Default)]
pub struct SharedRecorder {
    inner: Arc<Mutex<Recorder>>,
}

impl SharedRecorder {
    /// Shared unbounded recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Shared recorder with an explicit memory policy.
    pub fn with_mode(mode: RecorderMode) -> Self {
        Self {
            inner: Arc::new(Mutex::new(Recorder::with_mode(mode))),
        }
    }

    /// Append one event.
    pub fn record(&self, event: Event) {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .record(event);
    }

    /// Copy out the current recording.
    pub fn snapshot(&self) -> Recorder {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn well_formed() -> Recorder {
        let mut r = Recorder::new();
        r.record(Event::Arrival {
            req: 0,
            model: "resnet50".into(),
            t_us: 0.0,
        });
        r.record(Event::Enqueue {
            req: 0,
            position: 0,
            displaced: 0,
            t_us: 0.0,
        });
        r.record(Event::QueueDepth {
            depth: 1,
            t_us: 0.0,
        });
        r.record(Event::BlockStart {
            req: 0,
            block: 0,
            stream: 0,
            t_us: 5.0,
        });
        r.record(Event::BlockEnd {
            req: 0,
            block: 0,
            stream: 0,
            t_us: 10.0,
        });
        r.record(Event::BlockStart {
            req: 0,
            block: 1,
            stream: 0,
            t_us: 10.0,
        });
        r.record(Event::BlockEnd {
            req: 0,
            block: 1,
            stream: 0,
            t_us: 22.0,
        });
        r.record(Event::Completion { req: 0, t_us: 22.0 });
        r
    }

    #[test]
    fn valid_recording_passes() {
        let r = well_formed();
        assert_eq!(r.validate(), Vec::<String>::new());
        let s = r.summary();
        assert_eq!(s.requests.len(), 1);
        assert_eq!(s.requests[0].blocks, 2);
        assert!((s.requests[0].e2e_us() - 22.0).abs() < 1e-9);
        assert!((s.requests[0].wait_us() - 5.0).abs() < 1e-9);
        assert_eq!(s.queue_depth_peak, 1);
    }

    #[test]
    fn missing_completion_detected() {
        let mut r = Recorder::new();
        r.record(Event::Arrival {
            req: 7,
            model: "m".into(),
            t_us: 1.0,
        });
        let errs = r.validate();
        assert_eq!(errs.len(), 1);
        assert!(errs[0].contains("no completion"), "{errs:?}");
    }

    #[test]
    fn same_stream_overlap_detected() {
        let mut r = well_formed();
        r.record(Event::Arrival {
            req: 1,
            model: "m".into(),
            t_us: 0.0,
        });
        // Overlaps request 0's block [5, 10] on stream 0.
        r.record(Event::BlockStart {
            req: 1,
            block: 0,
            stream: 0,
            t_us: 7.0,
        });
        r.record(Event::BlockEnd {
            req: 1,
            block: 0,
            stream: 0,
            t_us: 9.0,
        });
        r.record(Event::Completion { req: 1, t_us: 9.0 });
        let errs = r.validate();
        assert!(errs.iter().any(|e| e.contains("stream 0")), "{errs:?}");
    }

    #[test]
    fn unmatched_and_reordered_blocks_detected() {
        let mut r = Recorder::new();
        r.record(Event::Arrival {
            req: 0,
            model: "m".into(),
            t_us: 0.0,
        });
        r.record(Event::BlockEnd {
            req: 0,
            block: 0,
            stream: 0,
            t_us: 5.0,
        });
        r.record(Event::Completion { req: 0, t_us: 5.0 });
        let errs = r.validate();
        assert!(
            errs.iter().any(|e| e.contains("without a matching start")),
            "{errs:?}"
        );
    }

    #[test]
    fn ring_mode_bounds_memory() {
        let mut r = Recorder::with_mode(RecorderMode::Ring(4));
        for i in 0..10 {
            r.record(Event::Mark {
                label: format!("m{i}"),
                t_us: i as f64,
            });
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 6);
        let first = r.events().next().unwrap().t_us();
        assert_eq!(first, 6.0);
        assert_eq!(r.summary().dropped_events, 6);
    }

    #[test]
    fn shared_recorder_merges_across_threads() {
        let shared = SharedRecorder::new();
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let s = shared.clone();
                std::thread::spawn(move || {
                    for i in 0..100u64 {
                        s.record(Event::Mark {
                            label: format!("t{t}"),
                            t_us: i as f64,
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(shared.snapshot().len(), 400);
    }
}
