//! Unified observability for the SPLIT reproduction.
//!
//! Three layers, usable together or independently:
//!
//! * [`metrics`] — a lock-free registry of named counters, gauges, and
//!   log-bucketed latency histograms (p50/p95/p99/p999/max). Handles are
//!   `Arc`-shared and update with atomic operations, so the scheduler's
//!   microsecond-scale hot path ([§3.4] preemption decisions) can record
//!   without taking locks.
//! * [`sketch`] — a mergeable DDSketch-style quantile sketch with a
//!   proven γ-relative-error bound and a commutative/associative
//!   `merge`, the aggregation substrate for split-watch's sliding
//!   windows and (eventually) fleet-level quantile roll-ups.
//! * [`lifecycle`] — a structured per-request event recorder covering the
//!   whole serving pipeline: arrival → enqueue (with preemption
//!   displacement) → block execution → completion, plus queue-depth and
//!   device-utilization time series. Supports a bounded ring mode for
//!   long-running servers.
//! * [`perfetto`] — exports a lifecycle recording as Chrome/Perfetto
//!   `trace_events` JSON (one track per GPU stream plus a scheduler
//!   track), loadable in `chrome://tracing` or <https://ui.perfetto.dev>.
//!
//! The simulator (`gpu-sim`), the policy engine (`sched`), and the
//! serving runtime (`split-runtime`) all feed the same event model, so
//! a trace taken from any layer renders and validates identically.
//!
//! [§3.4]: https://doi.org/10.1145/3605573.3605627

#![warn(missing_docs)]

pub mod lifecycle;
pub mod metrics;
pub mod perfetto;
pub mod sketch;

pub use lifecycle::{Event, Recorder, RecorderMode, SharedRecorder};
pub use metrics::{
    registry_from_events, Counter, Gauge, Histogram, MetricEntry, MetricsSnapshot, Registry,
};
pub use perfetto::{
    read_chrome_trace, recorder_from_trace_events, trace_events, write_chrome_trace,
};
pub use sketch::QuantileSketch;
