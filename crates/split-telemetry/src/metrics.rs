//! Lock-free metrics: counters, gauges, and log-bucketed histograms.
//!
//! Handles returned by [`Registry`] are `Arc`s over atomics — recording
//! never takes a lock, so instrumenting the preemption decision path
//! (whose whole budget is microseconds, §3.4) costs a few atomic adds.
//! Registration itself takes a write lock but happens once per metric.
//!
//! Histograms use 8 sub-buckets per power-of-two octave (≤ 12.5%
//! relative error per bucket), with exact tracking of count, sum, and
//! max. Quantiles are read from the bucket boundaries and clamped to
//! the exact max, so `p99 <= max` always holds.
//!
//! The lock-free paths are model-checked under weak memory by
//! `split-analyze` (DESIGN.md §14): the `telemetry.counter` and
//! `telemetry.histogram.record` machines certify linearizability of
//! the relaxed RMWs (SA201), `telemetry.snapshot` certifies a reader
//! never observes a counter move backwards (SA202), and
//! `telemetry.histogram.merge` certifies merge order-independence
//! (SA203) — all at the `Relaxed` orderings used here, where stale
//! reads are part of the explored state space rather than an accident
//! of the host's coherence.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Monotone event counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Instantaneous signed level (queue depth, inflight requests, ...).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Overwrite the level.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adjust the level by `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Buckets 0..=7 hold exact values 0..=7; from 8 up, each power-of-two
/// octave is split into 8 sub-buckets. Index 8·63−16+7 = 495 is the top.
const BUCKETS: usize = 496;

/// Log-bucketed latency histogram over `u64` samples (nanoseconds by
/// convention, but unit-agnostic).
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    min: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
        }
    }
}

fn bucket_index(v: u64) -> usize {
    if v < 8 {
        return v as usize;
    }
    let log = 63 - v.leading_zeros() as u64; // >= 3
    let sub = (v >> (log - 3)) & 7;
    (8 * log - 16 + sub) as usize
}

/// Representative value (midpoint) of bucket `idx`.
fn bucket_value(idx: usize) -> u64 {
    if idx < 8 {
        return idx as u64;
    }
    let log = (idx as u64 + 16) / 8;
    let sub = (idx as u64 + 16) % 8;
    let width = 1u64 << (log - 3);
    (1u64 << log) + sub * width + width / 2
}

impl Histogram {
    /// Record one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Exact largest sample, or 0 when empty.
    pub fn max(&self) -> u64 {
        if self.count() == 0 {
            0
        } else {
            self.max.load(Ordering::Relaxed)
        }
    }

    /// Exact smallest sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count() == 0 {
            0
        } else {
            self.min.load(Ordering::Relaxed)
        }
    }

    /// The `q`-quantile (`0.0..=1.0`), read from bucket boundaries
    /// (≤ 12.5% relative error) and clamped to the exact min/max.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * n as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (idx, b) in self.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            if cum >= target {
                return bucket_value(idx).clamp(self.min(), self.max());
            }
        }
        self.max()
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// `(p50, p95, p99)` — see [`Histogram::p50_p95_p99_p999`].
    pub fn p50_p95_p99(&self) -> (u64, u64, u64) {
        let (p50, p95, p99, _) = self.p50_p95_p99_p999();
        (p50, p95, p99)
    }

    /// `(p50, p95, p99, p999)` from a single pass over the buckets.
    ///
    /// Value-identical to four [`Histogram::quantile`] calls — the
    /// targets are monotone in `q`, so one cumulative scan resolves all
    /// four in order — but reads the 496 buckets once instead of four
    /// times. [`Registry::snapshot`] uses this per histogram.
    pub fn p50_p95_p99_p999(&self) -> (u64, u64, u64, u64) {
        let n = self.count();
        if n == 0 {
            return (0, 0, 0, 0);
        }
        let targets = [0.50f64, 0.95, 0.99, 0.999].map(|q| ((q * n as f64).ceil() as u64).max(1));
        // Pre-fill with `quantile`'s fallthrough value; any target the
        // scan satisfies gets overwritten with its bucket's value.
        let mut out = [self.max(); 4];
        let (min, max) = (self.min(), self.max());
        let mut cum = 0u64;
        let mut next = 0usize;
        'scan: for (idx, b) in self.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            while cum >= targets[next] {
                out[next] = bucket_value(idx).clamp(min, max);
                next += 1;
                if next == 4 {
                    break 'scan;
                }
            }
        }
        (out[0], out[1], out[2], out[3])
    }

    /// Fold `other`'s samples into `self`.
    ///
    /// Every field update is a single commutative RMW (`fetch_add` for
    /// buckets/count/sum, `fetch_max`/`fetch_min` for the extrema), so the
    /// result is independent of merge order and of concurrent `record`
    /// calls — the property `split-analyze`'s interleaving checker
    /// verifies (`SA203`). Merging an empty histogram is a no-op: its
    /// `min` sentinel (`u64::MAX`) never wins `fetch_min` against a real
    /// sample, and its zero `max`/`sum`/counts are additive identities.
    pub fn merge(&self, other: &Histogram) {
        for (dst, src) in self.buckets.iter().zip(&other.buckets) {
            let n = src.load(Ordering::Relaxed);
            if n > 0 {
                dst.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min
            .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

#[derive(Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A named collection of metrics. Cheap to share (`Arc<Registry>`);
/// handle lookup takes a read lock, recording through a handle is
/// lock-free.
#[derive(Default)]
pub struct Registry {
    inner: RwLock<BTreeMap<String, Metric>>,
}

impl Registry {
    /// Fresh empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let metric = self.get_or_insert(name, || Metric::Counter(Arc::new(Counter::default())));
        match metric {
            Metric::Counter(c) => c,
            _ => panic!("metric `{name}` is not a counter"),
        }
    }

    /// Get or create the gauge `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let metric = self.get_or_insert(name, || Metric::Gauge(Arc::new(Gauge::default())));
        match metric {
            Metric::Gauge(g) => g,
            _ => panic!("metric `{name}` is not a gauge"),
        }
    }

    /// Get or create the histogram `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let metric = self.get_or_insert(name, || Metric::Histogram(Arc::new(Histogram::default())));
        match metric {
            Metric::Histogram(h) => h,
            _ => panic!("metric `{name}` is not a histogram"),
        }
    }

    fn get_or_insert(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        if let Some(m) = self.inner.read().expect("registry lock").get(name) {
            return m.clone();
        }
        let mut map = self.inner.write().expect("registry lock");
        map.entry(name.to_string()).or_insert_with(make).clone()
    }

    /// Fold every metric of `other` into `self`, creating missing names.
    ///
    /// Kind-wise semantics: counters add, histograms fold via
    /// [`Histogram::merge`] (order-independent, SA203), and gauges take
    /// the **max** — every gauge the engine emits is a peak level
    /// (`queue.depth.peak`), and a cluster's peak is the max over its
    /// shards. Each per-kind fold is commutative and associative, so any
    /// merge tree over per-shard registries yields the same result — the
    /// property the fleet engine leans on to stay bit-identical at any
    /// `SPLIT_THREADS`.
    ///
    /// # Panics
    /// If a name is registered with different kinds in the two registries.
    pub fn merge(&self, other: &Registry) {
        let src = other.inner.read().expect("registry lock");
        for (name, metric) in src.iter() {
            match metric {
                Metric::Counter(c) => self.counter(name).add(c.get()),
                Metric::Gauge(g) => {
                    let dst = self.gauge(name);
                    dst.set(dst.get().max(g.get()));
                }
                Metric::Histogram(h) => self.histogram(name).merge(h),
            }
        }
    }

    /// Point-in-time snapshot of every registered metric, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let map = self.inner.read().expect("registry lock");
        let entries = map
            .iter()
            .map(|(name, metric)| match metric {
                Metric::Counter(c) => MetricEntry {
                    name: name.clone(),
                    kind: "counter".into(),
                    count: c.get(),
                    value: c.get() as i64,
                    mean: 0.0,
                    p50: 0,
                    p95: 0,
                    p99: 0,
                    p999: 0,
                    max: 0,
                },
                Metric::Gauge(g) => MetricEntry {
                    name: name.clone(),
                    kind: "gauge".into(),
                    count: 0,
                    value: g.get(),
                    mean: 0.0,
                    p50: 0,
                    p95: 0,
                    p99: 0,
                    p999: 0,
                    max: 0,
                },
                Metric::Histogram(h) => {
                    let (p50, p95, p99, p999) = h.p50_p95_p99_p999();
                    MetricEntry {
                        name: name.clone(),
                        kind: "histogram".into(),
                        count: h.count(),
                        value: 0,
                        mean: h.mean(),
                        p50,
                        p95,
                        p99,
                        p999,
                        max: h.max(),
                    }
                }
            })
            .collect();
        MetricsSnapshot { entries }
    }
}

/// One metric's state inside a [`MetricsSnapshot`]. Fields that do not
/// apply to the metric's kind are zero.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricEntry {
    /// Registered name.
    pub name: String,
    /// `"counter"`, `"gauge"`, or `"histogram"`.
    pub kind: String,
    /// Counter value / histogram sample count.
    pub count: u64,
    /// Counter or gauge level.
    pub value: i64,
    /// Histogram mean.
    pub mean: f64,
    /// Histogram median.
    pub p50: u64,
    /// Histogram 95th percentile.
    pub p95: u64,
    /// Histogram 99th percentile.
    pub p99: u64,
    /// Histogram 99.9th percentile. Defaults to 0 when deserializing
    /// snapshots written before the field existed.
    #[serde(default)]
    pub p999: u64,
    /// Histogram exact max.
    pub max: u64,
}

/// Serializable point-in-time view of a [`Registry`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Entries sorted by metric name.
    pub entries: Vec<MetricEntry>,
}

impl MetricsSnapshot {
    /// Look up one entry by name.
    pub fn get(&self, name: &str) -> Option<&MetricEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Table header matching [`MetricsSnapshot::to_rows`].
    pub fn header() -> [&'static str; 10] {
        [
            "metric", "kind", "count", "value", "mean", "p50", "p95", "p99", "p999", "max",
        ]
    }

    /// One row of cells per metric, for markdown/CSV rendering.
    pub fn to_rows(&self) -> Vec<Vec<String>> {
        self.entries
            .iter()
            .map(|e| {
                let (stats_on, value_on) = match e.kind.as_str() {
                    "histogram" => (true, false),
                    "counter" | "gauge" => (false, true),
                    _ => (false, false),
                };
                let num = |on: bool, v: String| if on { v } else { "-".to_string() };
                vec![
                    e.name.clone(),
                    e.kind.clone(),
                    num(e.kind != "gauge", e.count.to_string()),
                    num(value_on, e.value.to_string()),
                    num(stats_on, format!("{:.1}", e.mean)),
                    num(stats_on, e.p50.to_string()),
                    num(stats_on, e.p95.to_string()),
                    num(stats_on, e.p99.to_string()),
                    num(stats_on, e.p999.to_string()),
                    num(stats_on, e.max.to_string()),
                ]
            })
            .collect()
    }

    /// Render as a markdown table.
    pub fn render_markdown(&self) -> String {
        qos_metrics::report::markdown_table(&Self::header(), &self.to_rows())
    }

    /// Write as CSV.
    pub fn write_csv(&self, path: &std::path::Path) -> std::io::Result<()> {
        qos_metrics::report::write_csv(path, &Self::header(), &self.to_rows())
    }

    /// Render in Prometheus text exposition format. Metric names are
    /// `<prefix>_<name>` with non-alphanumeric characters mapped to
    /// `_`; per-model latency series (`model.<m>.<metric>`) collapse
    /// into one labeled family (`<prefix>_model_<metric>{model="<m>"}`);
    /// histograms become summaries (p50/p95/p99/p999 quantiles plus
    /// `_sum`/`_count`), counters and gauges map directly. Conformance:
    /// every family gets exactly one `# HELP` and one `# TYPE` line,
    /// all its samples are grouped under that header, and label values
    /// are escaped per the exposition format (`\`, `"`, newline).
    pub fn render_prometheus(&self, prefix: &str) -> String {
        let sanitize = |s: &str| -> String {
            s.chars()
                .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
                .collect()
        };
        struct Family {
            kind: &'static str,
            help: String,
            lines: Vec<String>,
        }
        // The exposition format requires all samples of a family in one
        // block under its header, so group first, emit after.
        let mut order: Vec<String> = Vec::new();
        let mut families: std::collections::HashMap<String, Family> =
            std::collections::HashMap::new();
        for e in &self.entries {
            let (family, model_label, help) = match model_series(&e.name) {
                Some((model, metric)) => (
                    format!("{}_model_{}", sanitize(prefix), sanitize(metric)),
                    Some(model),
                    format!("Per-model {metric} (one series per model label)."),
                ),
                None => (
                    format!("{}_{}", sanitize(prefix), sanitize(&e.name)),
                    None,
                    format!("SPLIT telemetry metric {}.", e.name),
                ),
            };
            let kind = match e.kind.as_str() {
                "counter" => "counter",
                "gauge" => "gauge",
                "histogram" => "summary",
                _ => continue,
            };
            let labels = |extra: Option<(&str, &str)>| -> String {
                let mut pairs: Vec<String> = Vec::new();
                if let Some(model) = model_label {
                    pairs.push(format!("model=\"{}\"", escape_label_value(model)));
                }
                if let Some((k, v)) = extra {
                    pairs.push(format!("{k}=\"{}\"", escape_label_value(v)));
                }
                if pairs.is_empty() {
                    String::new()
                } else {
                    format!("{{{}}}", pairs.join(","))
                }
            };
            let fam = families.entry(family.clone()).or_insert_with(|| {
                order.push(family.clone());
                Family {
                    kind,
                    help,
                    lines: Vec::new(),
                }
            });
            match e.kind.as_str() {
                "counter" => fam
                    .lines
                    .push(format!("{family}{} {}", labels(None), e.count)),
                "gauge" => fam
                    .lines
                    .push(format!("{family}{} {}", labels(None), e.value)),
                "histogram" => {
                    for (q, v) in [
                        ("0.5", e.p50),
                        ("0.95", e.p95),
                        ("0.99", e.p99),
                        ("0.999", e.p999),
                    ] {
                        fam.lines
                            .push(format!("{family}{} {v}", labels(Some(("quantile", q)))));
                    }
                    let sum = e.mean * e.count as f64;
                    fam.lines
                        .push(format!("{family}_sum{} {sum}", labels(None)));
                    fam.lines
                        .push(format!("{family}_count{} {}", labels(None), e.count));
                }
                _ => {}
            }
        }
        let mut out = String::new();
        for name in order {
            let fam = &families[&name];
            out.push_str(&format!("# HELP {name} {}\n", escape_help(&fam.help)));
            out.push_str(&format!("# TYPE {name} {}\n", fam.kind));
            for l in &fam.lines {
                out.push_str(l);
                out.push('\n');
            }
        }
        out
    }
}

/// `model.<m>.<metric>` → `(<m>, <metric>)` for per-model series (the
/// metric is the final dot segment; the model may itself contain dots).
fn model_series(name: &str) -> Option<(&str, &str)> {
    let rest = name.strip_prefix("model.")?;
    let (model, metric) = rest.rsplit_once('.')?;
    if model.is_empty() || metric.is_empty() {
        return None;
    }
    Some((model, metric))
}

/// Escape a label value per the Prometheus text exposition format:
/// backslash, double quote, and newline.
fn escape_label_value(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Escape `# HELP` text per the exposition format: backslash and
/// newline (quotes are legal there).
fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Derive a [`Registry`] from a lifecycle recording.
///
/// This is the bridge between the two telemetry halves: replaying the
/// recorder's events populates the standard metric names —
/// `sched.preempt.decision_ns` / `sched.preempt.comparisons` histograms,
/// `request.e2e_us` / `request.wait_us` latency histograms (microsecond
/// values), `requests.arrived` / `requests.completed` / `preempt.jumps`
/// counters, and the `queue.depth.peak` gauge — so snapshots from an
/// offline simulation line up with ones recorded live.
pub fn registry_from_events(rec: &crate::lifecycle::Recorder) -> Registry {
    use crate::lifecycle::Event;
    let reg = Registry::new();
    let arrived = reg.counter("requests.arrived");
    let completed = reg.counter("requests.completed");
    let jumps = reg.counter("preempt.jumps");
    let downgrades = reg.counter("elastic.downgrades");
    let decision_ns = reg.histogram("sched.preempt.decision_ns");
    let comparisons = reg.histogram("sched.preempt.comparisons");
    let depth_peak = reg.gauge("queue.depth.peak");

    for e in rec.events() {
        match e {
            Event::Arrival { .. } => arrived.inc(),
            Event::Completion { .. } => completed.inc(),
            Event::Enqueue { displaced, .. } if *displaced > 0 => jumps.inc(),
            Event::Downgrade { .. } => downgrades.inc(),
            Event::PreemptDecision {
                decision_ns: ns,
                comparisons: cmp,
                ..
            } => {
                decision_ns.record(*ns);
                comparisons.record(*cmp as u64);
            }
            Event::QueueDepth { depth, .. } if *depth as i64 > depth_peak.get() => {
                depth_peak.set(*depth as i64);
            }
            _ => {}
        }
    }

    let e2e = reg.histogram("request.e2e_us");
    let wait = reg.histogram("request.wait_us");
    for r in rec.summary().requests {
        if r.e2e_us().is_finite() && r.e2e_us() >= 0.0 {
            e2e.record(r.e2e_us().round() as u64);
        }
        if r.wait_us().is_finite() && r.wait_us() >= 0.0 {
            wait.record(r.wait_us().round() as u64);
        }
    }
    reg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_bounded() {
        let mut samples: Vec<u64> = Vec::new();
        for exp in 0..64u32 {
            for off in [0u64, 1, 3] {
                samples.push((1u64 << exp).saturating_add(off << exp.saturating_sub(4)));
            }
        }
        samples.sort_unstable();
        let mut prev = 0usize;
        for v in samples {
            let idx = bucket_index(v);
            assert!(idx >= prev, "v={v} idx={idx} prev={prev}");
            assert!(idx < BUCKETS);
            prev = idx;
        }
        assert!(bucket_index(u64::MAX) < BUCKETS);
    }

    #[test]
    fn bucket_value_within_bucket() {
        for v in [0u64, 1, 7, 8, 100, 1_000, 123_456, u64::MAX / 2] {
            let idx = bucket_index(v);
            let rep = bucket_value(idx);
            // Representative stays within 12.5% of the sample.
            if v >= 8 {
                let rel = (rep as f64 - v as f64).abs() / v as f64;
                assert!(rel <= 0.125, "v={v} rep={rep} rel={rel}");
            } else {
                assert_eq!(rep, v);
            }
        }
    }

    #[test]
    fn histogram_quantiles_ordered() {
        let h = Histogram::default();
        for i in 1..=10_000u64 {
            h.record(i * 100);
        }
        assert_eq!(h.count(), 10_000);
        assert!(h.p50() <= h.p95());
        assert!(h.p95() <= h.p99());
        assert!(h.p99() <= h.p999());
        assert!(h.p999() <= h.max());
        assert_eq!(h.max(), 1_000_000);
        // p50 of uniform 100..=1_000_000 is ~500_000; allow bucket error.
        let p50 = h.p50() as f64;
        assert!((437_500.0..=562_500.0).contains(&p50), "{p50}");
    }

    #[test]
    fn single_scan_quantiles_match_individual_calls() {
        // Uniform, skewed, tiny, and single-sample shapes: the fused scan
        // must agree with three independent `quantile` calls everywhere,
        // including the fallthrough-to-max and clamp-to-min paths.
        let shapes: Vec<Vec<u64>> = vec![
            (1..=10_000u64).map(|i| i * 100).collect(),
            vec![5; 1000],
            vec![1, 2, 3],
            vec![123_456],
            (0..100u64).map(|i| 1u64 << (i % 30)).collect(),
        ];
        for samples in shapes {
            let h = Histogram::default();
            for v in &samples {
                h.record(*v);
            }
            assert_eq!(
                h.p50_p95_p99_p999(),
                (
                    h.quantile(0.50),
                    h.quantile(0.95),
                    h.quantile(0.99),
                    h.quantile(0.999)
                ),
                "samples len {}",
                samples.len()
            );
        }
        assert_eq!(Histogram::default().p50_p95_p99_p999(), (0, 0, 0, 0));
        assert_eq!(Histogram::default().p50_p95_p99(), (0, 0, 0));
    }

    #[test]
    fn empty_histogram_is_zeroed() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.min(), 0);
    }

    #[test]
    fn histogram_merge_is_order_independent() {
        let a = Histogram::default();
        let b = Histogram::default();
        for v in [100u64, 250, 7_000] {
            a.record(v);
        }
        for v in [3u64, 900_000] {
            b.record(v);
        }
        // Merge in both orders into fresh accumulators.
        let ab = Histogram::default();
        ab.merge(&a);
        ab.merge(&b);
        let ba = Histogram::default();
        ba.merge(&b);
        ba.merge(&a);
        for h in [&ab, &ba] {
            assert_eq!(h.count(), 5);
            assert_eq!(h.sum(), 100 + 250 + 7_000 + 3 + 900_000);
            assert_eq!(h.max(), 900_000);
            assert_eq!(h.min(), 3);
        }
        assert_eq!(ab.p50(), ba.p50());
        assert_eq!(ab.p99(), ba.p99());
    }

    #[test]
    fn histogram_merge_with_empty_is_identity() {
        let h = Histogram::default();
        h.record(42);
        h.merge(&Histogram::default());
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), 42, "empty min sentinel must not leak in");
        assert_eq!(h.max(), 42);
        // Merging into an empty accumulator adopts the source exactly.
        let acc = Histogram::default();
        acc.merge(&h);
        assert_eq!((acc.count(), acc.min(), acc.max()), (1, 42, 42));
    }

    #[test]
    fn registry_roundtrip_and_rendering() {
        let reg = Registry::new();
        reg.counter("sched.arrivals").add(3);
        reg.gauge("sched.queue_depth").set(-2);
        let h = reg.histogram("sched.decision_ns");
        h.record(1_000);
        h.record(2_000);
        // Same handle back on re-request.
        reg.counter("sched.arrivals").inc();
        let snap = reg.snapshot();
        assert_eq!(snap.get("sched.arrivals").unwrap().count, 4);
        assert_eq!(snap.get("sched.queue_depth").unwrap().value, -2);
        assert_eq!(snap.get("sched.decision_ns").unwrap().count, 2);
        let md = snap.render_markdown();
        assert!(md.contains("sched.decision_ns"));
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn prometheus_rendering_covers_all_kinds() {
        let reg = Registry::new();
        reg.counter("requests.arrived").add(7);
        reg.gauge("queue.depth").set(-1);
        let h = reg.histogram("request.e2e_us");
        h.record(100);
        h.record(300);
        let p = reg.snapshot().render_prometheus("split");
        assert!(p.contains("# HELP split_requests_arrived "));
        assert!(p.contains("# TYPE split_requests_arrived counter"));
        assert!(p.contains("split_requests_arrived 7"));
        assert!(p.contains("# TYPE split_queue_depth gauge"));
        assert!(p.contains("split_queue_depth -1"));
        assert!(p.contains("# TYPE split_request_e2e_us summary"));
        assert!(p.contains("split_request_e2e_us{quantile=\"0.5\"}"));
        assert!(p.contains("split_request_e2e_us_count 2"));
        assert!(p.contains("split_request_e2e_us_sum 400"));
        // Every non-comment line is `name[{labels}] value`.
        for l in p.lines().filter(|l| !l.starts_with('#')) {
            assert_eq!(l.split_whitespace().count(), 2, "bad line {l:?}");
        }
    }

    #[test]
    fn prometheus_conformance_families_labels_and_escaping() {
        let reg = Registry::new();
        reg.histogram("model.resnet50.e2e_us").record(100);
        reg.histogram("model.vgg19.e2e_us").record(200);
        // A hostile model name: backslash, quote, and newline must all
        // be escaped in the label value.
        reg.histogram("model.we\"ird\\mo\ndel.e2e_us").record(300);
        reg.counter("requests.arrived").add(1);
        let p = reg.snapshot().render_prometheus("split");

        // One labeled family for all models, with one HELP and one TYPE.
        assert_eq!(p.matches("# HELP split_model_e2e_us ").count(), 1);
        assert_eq!(p.matches("# TYPE split_model_e2e_us summary").count(), 1);
        assert!(p.contains("split_model_e2e_us{model=\"resnet50\",quantile=\"0.5\"} 100"));
        assert!(p.contains("split_model_e2e_us{model=\"vgg19\",quantile=\"0.5\"} 200"));
        assert!(p.contains("split_model_e2e_us_sum{model=\"resnet50\"}"));
        assert!(p.contains("split_model_e2e_us_count{model=\"vgg19\"} 1"));
        assert!(
            p.contains("{model=\"we\\\"ird\\\\mo\\ndel\",quantile=\"0.5\"}"),
            "label value not escaped: {p}"
        );
        // Structural conformance: headers precede their samples, all
        // samples of a family are contiguous, and no raw newline or
        // unescaped quote leaks into a label value.
        let mut current_family: Option<String> = None;
        let mut closed: std::collections::HashSet<String> = std::collections::HashSet::new();
        for l in p.lines() {
            if let Some(rest) = l.strip_prefix("# HELP ") {
                let fam = rest.split_whitespace().next().unwrap().to_string();
                if let Some(prev) = current_family.take() {
                    assert!(closed.insert(prev.clone()), "family {prev} split apart");
                }
                current_family = Some(fam);
                continue;
            }
            if l.starts_with("# TYPE ") {
                continue;
            }
            let name = l.split(['{', ' ']).next().unwrap();
            let fam = current_family.as_deref().expect("sample before any header");
            assert!(
                name == fam
                    || name
                        .strip_prefix(fam)
                        .is_some_and(|s| s == "_sum" || s == "_count"),
                "sample {name} outside its family block {fam}"
            );
            assert!(!closed.contains(fam), "family {fam} reopened");
        }
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let reg = Arc::new(Registry::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let reg = Arc::clone(&reg);
                std::thread::spawn(move || {
                    let c = reg.counter("hits");
                    let h = reg.histogram("lat");
                    for i in 0..10_000u64 {
                        c.inc();
                        h.record(i);
                    }
                })
            })
            .collect();
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(reg.counter("hits").get(), 40_000);
        assert_eq!(reg.histogram("lat").count(), 40_000);
    }

    #[test]
    fn registry_from_events_populates_standard_names() {
        use crate::lifecycle::{Event, Recorder};
        let mut rec = Recorder::new();
        rec.record(Event::Arrival {
            req: 0,
            model: "m".into(),
            t_us: 0.0,
        });
        rec.record(Event::PreemptDecision {
            req: 0,
            position: 0,
            comparisons: 2,
            stop: "QueueHead".into(),
            decision_ns: 800,
            publish_ns: 800,
            t_us: 0.0,
        });
        rec.record(Event::Enqueue {
            req: 0,
            position: 0,
            displaced: 1,
            t_us: 0.0,
        });
        rec.record(Event::QueueDepth {
            depth: 3,
            t_us: 0.0,
        });
        rec.record(Event::BlockStart {
            req: 0,
            block: 0,
            stream: 0,
            t_us: 10.0,
        });
        rec.record(Event::BlockEnd {
            req: 0,
            block: 0,
            stream: 0,
            t_us: 25.0,
        });
        rec.record(Event::Completion { req: 0, t_us: 25.0 });

        let reg = registry_from_events(&rec);
        assert_eq!(reg.counter("requests.arrived").get(), 1);
        assert_eq!(reg.counter("requests.completed").get(), 1);
        assert_eq!(reg.counter("preempt.jumps").get(), 1);
        assert_eq!(reg.gauge("queue.depth.peak").get(), 3);
        let h = reg.histogram("sched.preempt.decision_ns");
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), 800);
        assert_eq!(reg.histogram("request.e2e_us").max(), 25);
        assert_eq!(reg.histogram("request.wait_us").max(), 10);
    }

    #[test]
    fn registry_merge_is_order_independent() {
        let make = |counts: u64, gauge: i64, samples: &[u64]| {
            let r = Registry::new();
            r.counter("requests.completed").add(counts);
            r.gauge("queue.depth.peak").set(gauge);
            let h = r.histogram("request.e2e_us");
            for &s in samples {
                h.record(s);
            }
            r
        };
        let a = make(3, 7, &[10, 20]);
        let b = make(5, 4, &[30]);

        let ab = Registry::new();
        ab.merge(&a);
        ab.merge(&b);
        let ba = Registry::new();
        ba.merge(&b);
        ba.merge(&a);

        assert_eq!(ab.snapshot(), ba.snapshot());
        assert_eq!(ab.counter("requests.completed").get(), 8);
        assert_eq!(ab.gauge("queue.depth.peak").get(), 7);
        assert_eq!(ab.histogram("request.e2e_us").count(), 3);
        assert_eq!(ab.histogram("request.e2e_us").max(), 30);
    }
}
