//! Property tests for [`split_telemetry::QuantileSketch`]:
//!
//! 1. The γ-relative-error bound holds against exact sorted quantiles
//!    over adversarial distributions — heavy-tail (cubed uniform),
//!    constant, and bimodal — at every quantile in a fixed grid.
//! 2. `merge` is order-independent: folding per-chunk sketches in
//!    forward, reverse, and interleaved order yields bit-identical
//!    state (`PartialEq` on all fields plus `f64::to_bits` on the
//!    quantile estimates), the same contract split-analyze audits as
//!    SA503.

use proptest::prelude::*;
use split_telemetry::QuantileSketch;

const ALPHA: f64 = 0.01;
const QUANTILE_GRID: [f64; 9] = [0.0, 0.05, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0];

/// Map raw integers into one of three adversarial sample shapes.
fn shape_samples(shape: usize, raw: &[u64]) -> Vec<u64> {
    match shape % 3 {
        // Heavy tail: cube of a uniform draw spans seven orders of
        // magnitude with most mass at the low end.
        0 => raw.iter().map(|r| (1 + r % 2_000).pow(3)).collect(),
        // Constant: every sample identical (σ = 0; sketches must not
        // smear a point mass across buckets by more than α).
        1 => {
            let v = 1 + raw[0] % 1_000_000;
            raw.iter().map(|_| v).collect()
        }
        // Bimodal: two modes three decades apart with ±10% jitter.
        _ => raw
            .iter()
            .map(|r| {
                let jitter = 90 + r % 21; // 90..=110 percent
                if r % 2 == 0 {
                    1_000 * jitter / 100
                } else {
                    1_000_000 * jitter / 100
                }
            })
            .collect(),
    }
}

/// Exact quantile under the sketch's rank convention
/// (`rank = max(1, ⌈q·n⌉)`).
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let target = ((q * sorted.len() as f64).ceil() as usize).max(1);
    sorted[target - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Sketch quantiles stay within the γ bound of exact sorted
    /// quantiles for heavy-tail, constant, and bimodal sample sets.
    #[test]
    fn quantiles_within_gamma_bound(
        shape in 0usize..3,
        raw in proptest::collection::vec(0u64..u64::MAX, 1..300),
    ) {
        let samples = shape_samples(shape, &raw);
        let mut sketch = QuantileSketch::new(ALPHA);
        for &v in &samples {
            sketch.record(v);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for q in QUANTILE_GRID {
            let exact = exact_quantile(&sorted, q);
            let est = sketch.quantile(q);
            // ε slack for the two f64 ops (ln, divide) at bucket edges.
            let tol = ALPHA * exact as f64 * (1.0 + 1e-9) + 1e-9;
            prop_assert!(
                (est - exact as f64).abs() <= tol,
                "shape {} q {}: exact {} est {} (n={})",
                shape, q, exact, est, samples.len()
            );
        }
        prop_assert_eq!(sketch.count(), samples.len() as u64);
        prop_assert_eq!(sketch.min(), sorted[0]);
        prop_assert_eq!(sketch.max(), *sorted.last().unwrap());
    }

    /// Folding per-chunk sketches in any order produces bit-identical
    /// state and bit-identical quantile estimates.
    #[test]
    fn merge_is_order_independent_bitwise(
        shape in 0usize..3,
        raw in proptest::collection::vec(0u64..u64::MAX, 8..200),
        chunks in 2usize..6,
    ) {
        let samples = shape_samples(shape, &raw);
        let chunk_len = samples.len().div_ceil(chunks);
        let parts: Vec<QuantileSketch> = samples
            .chunks(chunk_len)
            .map(|c| {
                let mut s = QuantileSketch::new(ALPHA);
                for &v in c {
                    s.record(v);
                }
                s
            })
            .collect();

        let fold = |order: &[usize]| {
            let mut acc = QuantileSketch::new(ALPHA);
            for &i in order {
                acc.merge(&parts[i]);
            }
            acc
        };
        let forward: Vec<usize> = (0..parts.len()).collect();
        let reverse: Vec<usize> = forward.iter().rev().copied().collect();
        // Even indices first, then odd — a third distinct order.
        let interleaved: Vec<usize> = forward
            .iter()
            .filter(|i| *i % 2 == 0)
            .chain(forward.iter().filter(|i| *i % 2 == 1))
            .copied()
            .collect();

        let a = fold(&forward);
        let b = fold(&reverse);
        let c = fold(&interleaved);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&a, &c);
        for q in QUANTILE_GRID {
            prop_assert_eq!(a.quantile(q).to_bits(), b.quantile(q).to_bits());
            prop_assert_eq!(a.quantile(q).to_bits(), c.quantile(q).to_bits());
        }
        // And the fold agrees with recording everything into one sketch.
        let mut whole = QuantileSketch::new(ALPHA);
        for &v in &samples {
            whole.record(v);
        }
        prop_assert_eq!(&a, &whole);
    }
}
