//! The sharded cluster engine: route, then simulate every lane in
//! parallel, then merge.
//!
//! Each lane is an independent single-stream SPLIT (or baseline)
//! scheduler over its speed-scaled table, so the per-lane simulations
//! share no state and can run on the deterministic `SPLIT_THREADS` pool.
//! Determinism at any thread count follows from three properties:
//!
//! 1. routing is a sequential pass ([`crate::route`]) — the per-lane
//!    sub-traces do not depend on the pool at all;
//! 2. the parallel map collects shard results in lane-index order
//!    (the vendored pool's `ParIter::map` guarantee), so the shard
//!    vector is identical however the work was stolen;
//! 3. every merge (metrics via [`split_telemetry::Registry::merge`],
//!    sketches via [`split_telemetry::QuantileSketch::merge`], the FNV
//!    digest fold) is either order-independent or applied in fixed lane
//!    order over that vector.
//!
//! Memory stays bounded at fleet scale: each shard's full lifecycle
//! recording is reduced to a [`ShardReport`] (completions, aggregate
//! metrics, per-model sketches) inside the parallel closure and the
//! `SimResult` is dropped there — a 1M-request run never holds more
//! than a few shards' raw event streams at once.

use crate::fleet::{Fleet, Placement};
use crate::router::{route, RouteCfg, RouteReport};
use rayon::prelude::*;
use sched::{simulate, Completion, Policy};
use split_obs::DeviceSaturation;
use split_telemetry::{QuantileSketch, Registry};
use std::collections::BTreeMap;
use workload::Arrival;

/// Relative accuracy of the per-model e2e latency sketches.
const SKETCH_ALPHA: f64 = 0.01;

/// One lane's simulation, reduced to what the cluster keeps.
pub struct ShardReport {
    /// Lane index.
    pub lane: usize,
    /// Device the lane belongs to.
    pub device: usize,
    /// Partition index within the device.
    pub stream: usize,
    /// Requests routed to (and completed by) the lane.
    pub routed: u64,
    /// Completions with original trace ids, in completion order.
    pub completions: Vec<Completion>,
    /// FNV-1a fingerprint of the lane's schedule.
    pub digest: u64,
    /// Busy device time, µs.
    pub busy_us: f64,
    /// Lane timeline span (first start to last end), µs.
    pub span_us: f64,
    /// Peak queue depth observed by the lane's scheduler.
    pub queue_peak: i64,
    /// Aggregate lifecycle metrics for the lane.
    pub metrics: Registry,
    /// Per-model end-to-end latency sketches (µs samples).
    pub sketches: BTreeMap<String, QuantileSketch>,
}

/// The merged outcome of a fleet run.
pub struct ClusterResult {
    /// Scheduling policy each lane ran.
    pub policy: String,
    /// Routing telemetry.
    pub route: RouteReport,
    /// Per-lane shard reports, lane-major.
    pub shards: Vec<ShardReport>,
}

impl ClusterResult {
    /// Total requests completed across all shards.
    pub fn completed(&self) -> u64 {
        self.shards.iter().map(|s| s.completions.len() as u64).sum()
    }

    /// Cluster-level QoS outcomes, sorted by request id (deterministic
    /// regardless of shard interleaving).
    pub fn outcomes(&self) -> Vec<qos_metrics::RequestOutcome> {
        let mut out: Vec<qos_metrics::RequestOutcome> = self
            .shards
            .iter()
            .flat_map(|s| s.completions.iter().map(Completion::to_outcome))
            .collect();
        out.sort_by_key(|o| o.id);
        out
    }

    /// FNV-1a fold of the per-shard schedule digests in lane order —
    /// the single number two runs must agree on to have produced the
    /// same cluster schedule.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        let mut eat = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        };
        for s in &self.shards {
            eat(s.lane as u64);
            eat(s.digest);
        }
        h
    }

    /// Merge every shard's metrics registry (counters add, gauges take
    /// the peak, histograms fold bucket-wise).
    pub fn merged_metrics(&self) -> Registry {
        let merged = Registry::new();
        for s in &self.shards {
            merged.merge(&s.metrics);
        }
        merged
    }

    /// Merge the per-model latency sketches across shards, in lane
    /// order per model.
    pub fn merged_sketches(&self) -> BTreeMap<String, QuantileSketch> {
        let mut merged: BTreeMap<String, QuantileSketch> = BTreeMap::new();
        for s in &self.shards {
            for (model, sketch) in &s.sketches {
                merged
                    .entry(model.clone())
                    .and_modify(|m| m.merge(sketch))
                    .or_insert_with(|| sketch.clone());
            }
        }
        merged
    }

    /// Longest shard timeline span, µs — the cluster run's makespan.
    pub fn span_us(&self) -> f64 {
        self.shards.iter().map(|s| s.span_us).fold(0.0, f64::max)
    }

    /// Reduce the shards of each device into one saturation row.
    pub fn device_saturation(&self, fleet: &Fleet) -> Vec<DeviceSaturation> {
        fleet
            .devices()
            .iter()
            .enumerate()
            .map(|(device, gpu)| {
                let shards: Vec<&ShardReport> =
                    self.shards.iter().filter(|s| s.device == device).collect();
                let routed = shards.iter().map(|s| s.routed).sum();
                let completed = shards.iter().map(|s| s.completions.len() as u64).sum();
                let busy_us = shards.iter().map(|s| s.busy_us).sum();
                let span_us = shards.iter().map(|s| s.span_us).fold(0.0, f64::max);
                let queue_peak = shards.iter().map(|s| s.queue_peak).max().unwrap_or(0);
                let demand_us: f64 = self
                    .route
                    .lanes
                    .iter()
                    .filter(|l| l.device == device)
                    .map(|l| l.demand_us)
                    .sum();
                let offered_load =
                    demand_us / (gpu.streams.max(1) as f64 * self.route.span_us.max(1.0));
                let mut sketch: Option<QuantileSketch> = None;
                for s in &shards {
                    for m in s.sketches.values() {
                        match &mut sketch {
                            Some(acc) => acc.merge(m),
                            None => sketch = Some(m.clone()),
                        }
                    }
                }
                let (p50, p99) = sketch
                    .as_ref()
                    .filter(|s| s.count() > 0)
                    .map(|s| (s.p50().round() as u64, s.p99().round() as u64))
                    .unwrap_or((0, 0));
                DeviceSaturation {
                    device,
                    class: gpu.class.clone(),
                    streams: gpu.streams,
                    routed,
                    completed,
                    offered_load,
                    busy_us,
                    span_us,
                    queue_peak,
                    p50_e2e_us: p50,
                    p99_e2e_us: p99,
                }
            })
            .collect()
    }
}

/// Reduce one lane's `SimResult` into a [`ShardReport`], remapping the
/// renumbered completions back to original trace ids.
fn summarize(
    lane: usize,
    fleet: &Fleet,
    original_ids: &[u64],
    result: sched::SimResult,
) -> ShardReport {
    let info = fleet.lanes()[lane];
    let metrics = result.metrics();
    let queue_peak = metrics.gauge("queue.depth.peak").get();
    let mut completions = result.completions;
    for c in &mut completions {
        c.id = original_ids[c.id as usize];
    }
    let mut sketches: BTreeMap<String, QuantileSketch> = BTreeMap::new();
    for c in &completions {
        sketches
            .entry(c.model.to_string())
            .or_insert_with(|| QuantileSketch::new(SKETCH_ALPHA))
            .record(c.e2e_us().round() as u64);
    }
    let (busy_us, span_us) = {
        let events = result.trace.events();
        let busy = events.iter().map(|e| e.duration_us()).sum();
        let start = events
            .iter()
            .map(|e| e.start_us)
            .fold(f64::INFINITY, f64::min);
        let end = events.iter().map(|e| e.end_us).fold(0.0, f64::max);
        (busy, if events.is_empty() { 0.0 } else { end - start })
    };
    // Digest over the remapped completions so it is comparable across
    // routing policies and thread counts.
    let digest = {
        let mut h: u64 = 0xcbf29ce484222325;
        let mut eat = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        };
        for c in &completions {
            eat(c.id);
            eat(c.start_us.to_bits());
            eat(c.end_us.to_bits());
        }
        h
    };
    ShardReport {
        lane,
        device: info.device,
        stream: info.stream,
        routed: original_ids.len() as u64,
        completions,
        digest,
        busy_us,
        span_us,
        queue_peak,
        metrics,
        sketches,
    }
}

/// Serve `arrivals` across the fleet: route with `route_cfg`, run one
/// `policy` scheduler per lane in parallel on the deterministic pool,
/// and merge the shard results.
pub fn simulate_fleet(
    policy: &Policy,
    arrivals: &[Arrival],
    fleet: &Fleet,
    placement: &Placement,
    route_cfg: &RouteCfg,
) -> ClusterResult {
    let outcome = route(arrivals, fleet, placement, route_cfg);
    let report = outcome.report;
    // Renumber each lane's sub-trace to dense local ids (policies may
    // index arrivals by id) and keep the reverse map for the report.
    let shard_inputs: Vec<(usize, Vec<u64>, Vec<Arrival>)> = outcome
        .assignments
        .into_iter()
        .enumerate()
        .map(|(lane, arrs)| {
            let ids: Vec<u64> = arrs.iter().map(|a| a.id).collect();
            let local: Vec<Arrival> = arrs
                .into_iter()
                .enumerate()
                .map(|(i, mut a)| {
                    a.id = i as u64;
                    a
                })
                .collect();
            (lane, ids, local)
        })
        .collect();

    let shards: Vec<ShardReport> = shard_inputs
        .into_par_iter()
        .map(|(lane, ids, arrs)| {
            let result = simulate(policy, &arrs, fleet.lane_table(lane));
            summarize(lane, fleet, &ids, result)
        })
        .collect();

    ClusterResult {
        policy: policy.name().to_string(),
        route: report,
        shards,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::RoutePolicy;
    use gpu_sim::FleetSpec;
    use sched::{ModelRuntime, ModelTable};

    fn base_table() -> ModelTable {
        let mut t = ModelTable::new();
        t.insert(ModelRuntime::vanilla("small", 0, 8_000.0));
        t.insert(ModelRuntime::split("big", 1, 40_000.0, vec![15_000.0; 3]));
        t
    }

    fn arrivals(n: u64, gap_us: f64) -> Vec<Arrival> {
        (0..n)
            .map(|i| Arrival {
                id: i,
                model: (if i % 3 == 0 { "big" } else { "small" }).to_string(),
                arrival_us: i as f64 * gap_us,
            })
            .collect()
    }

    #[test]
    fn fleet_run_conserves_requests() {
        let fleet = Fleet::new(&FleetSpec::heterogeneous(4), &base_table());
        let placement = Placement::full(&fleet, &base_table());
        let a = arrivals(240, 1_500.0);
        for policy in RoutePolicy::all() {
            let res = simulate_fleet(
                &Policy::Split(Default::default()),
                &a,
                &fleet,
                &placement,
                &RouteCfg { policy, seed: 9 },
            );
            assert_eq!(res.completed(), 240, "{}", policy.name());
            let outcomes = res.outcomes();
            let ids: Vec<u64> = outcomes.iter().map(|o| o.id).collect();
            assert_eq!(ids, (0..240).collect::<Vec<_>>(), "{}", policy.name());
        }
    }

    #[test]
    fn merged_metrics_count_every_request() {
        let fleet = Fleet::new(&FleetSpec::heterogeneous(4), &base_table());
        let placement = Placement::full(&fleet, &base_table());
        let a = arrivals(150, 2_000.0);
        let res = simulate_fleet(
            &Policy::Split(Default::default()),
            &a,
            &fleet,
            &placement,
            &RouteCfg::default(),
        );
        let merged = res.merged_metrics();
        assert_eq!(merged.counter("requests.arrived").get(), 150);
        assert_eq!(merged.counter("requests.completed").get(), 150);
        assert_eq!(merged.histogram("request.e2e_us").count(), 150);
        let total_sketch: u64 = res.merged_sketches().values().map(|s| s.count()).sum();
        assert_eq!(total_sketch, 150);
    }

    #[test]
    fn same_inputs_same_digest_different_policy_not() {
        let fleet = Fleet::new(&FleetSpec::heterogeneous(4), &base_table());
        let placement = Placement::full(&fleet, &base_table());
        let a = arrivals(200, 1_200.0);
        let cfg = RouteCfg::default();
        let split = Policy::Split(Default::default());
        let x = simulate_fleet(&split, &a, &fleet, &placement, &cfg);
        let y = simulate_fleet(&split, &a, &fleet, &placement, &cfg);
        assert_eq!(x.digest(), y.digest());
        let z = simulate_fleet(&Policy::ClockWork, &a, &fleet, &placement, &cfg);
        assert_ne!(x.digest(), z.digest(), "schedules should differ");
    }

    #[test]
    fn device_saturation_covers_every_device() {
        let fleet = Fleet::new(&FleetSpec::heterogeneous(4), &base_table());
        let placement = Placement::full(&fleet, &base_table());
        let a = arrivals(200, 1_500.0);
        let res = simulate_fleet(
            &Policy::Split(Default::default()),
            &a,
            &fleet,
            &placement,
            &RouteCfg::default(),
        );
        let rows = res.device_saturation(&fleet);
        assert_eq!(rows.len(), 4);
        assert_eq!(rows.iter().map(|r| r.routed).sum::<u64>(), 200);
        assert_eq!(rows.iter().map(|r| r.completed).sum::<u64>(), 200);
        for r in &rows {
            assert!(r.utilization() >= 0.0 && r.utilization() <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn empty_lanes_are_harmless() {
        // A tiny trace on a big fleet leaves most lanes empty.
        let fleet = Fleet::new(&FleetSpec::heterogeneous(8), &base_table());
        let placement = Placement::full(&fleet, &base_table());
        let a = arrivals(3, 50_000.0);
        let res = simulate_fleet(
            &Policy::Split(Default::default()),
            &a,
            &fleet,
            &placement,
            &RouteCfg::default(),
        );
        assert_eq!(res.completed(), 3);
        assert!(res.shards.iter().any(|s| s.routed == 0));
    }
}
