#![warn(missing_docs)]
//! # split-cluster — fleet-scale sharded serving over simulated GPUs
//!
//! Scales the single-device SPLIT reproduction to a cluster: a
//! [`Fleet`] of heterogeneous simulated GPUs (instantiated from a
//! [`gpu_sim::FleetSpec`] via the [`gpu_sim::Backend`] trait), a
//! per-model replica [`Placement`], a deterministic [`route`] pass with
//! pluggable balancing policies ([`RoutePolicy`]), and a sharded engine
//! ([`simulate_fleet`]) that runs one SPLIT scheduler per spatial
//! partition in parallel on the deterministic `SPLIT_THREADS` pool and
//! merges telemetry with the existing bit-identical merge machinery.
//!
//! The design (and the argument for why results are reproducible at any
//! thread count) is documented in DESIGN.md §17; cluster schedules are
//! verified by `split-analyze`'s SA60x lints.

pub mod engine;
pub mod fleet;
pub mod router;

pub use engine::{simulate_fleet, ClusterResult, ShardReport};
pub use fleet::{mean_exec_us, offered_interval_us, scale_table, Fleet, Lane, Placement};
pub use router::{route, LaneLoad, RouteCfg, RouteOutcome, RoutePolicy, RouteReport};
