//! A fleet of simulated GPUs with per-device model tables, and the
//! per-model replica placement across it.
//!
//! Every device class runs the same deployed models, just faster or
//! slower: a device's table is the reference (Jetson-calibrated) table
//! with all time costs divided by the device's [`Backend::lane_speed`].
//! Scaling per *lane* (spatial partition) folds the class's
//! aligned-contention slowdown into the table once, so each lane can run
//! an independent single-stream SPLIT scheduler and still account for
//! its neighbours' interference.

use gpu_sim::{Backend, FleetSpec, SimGpu};
use sched::{ModelRuntime, ModelTable};
use std::collections::BTreeMap;

/// One scheduler lane: a spatial partition of a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lane {
    /// Device index within the fleet.
    pub device: usize,
    /// Partition index within the device.
    pub stream: usize,
}

/// A concrete fleet: devices instantiated from a [`FleetSpec`], one
/// speed-scaled [`ModelTable`] per device, and the flat lane list the
/// router balances over.
#[derive(Debug, Clone)]
pub struct Fleet {
    spec: FleetSpec,
    devices: Vec<SimGpu>,
    tables: Vec<ModelTable>,
    lanes: Vec<Lane>,
    lanes_by_device: Vec<Vec<usize>>,
}

impl Fleet {
    /// Instantiate `spec` and derive each device's table from the
    /// reference `base` table (costs calibrated to the Jetson Nano).
    pub fn new(spec: &FleetSpec, base: &ModelTable) -> Self {
        let devices = spec.instantiate();
        let tables: Vec<ModelTable> = devices
            .iter()
            .map(|d| scale_table(base, d.lane_speed()))
            .collect();
        let mut lanes = Vec::with_capacity(spec.lane_count());
        let mut lanes_by_device = Vec::with_capacity(devices.len());
        for (device, gpu) in devices.iter().enumerate() {
            let mut mine = Vec::with_capacity(gpu.streams);
            for stream in 0..gpu.streams.max(1) {
                mine.push(lanes.len());
                lanes.push(Lane { device, stream });
            }
            lanes_by_device.push(mine);
        }
        Self {
            spec: spec.clone(),
            devices,
            tables,
            lanes,
            lanes_by_device,
        }
    }

    /// The spec this fleet was built from.
    pub fn spec(&self) -> &FleetSpec {
        &self.spec
    }

    /// The instantiated devices, in spec order.
    pub fn devices(&self) -> &[SimGpu] {
        &self.devices
    }

    /// All scheduler lanes, device-major.
    pub fn lanes(&self) -> &[Lane] {
        &self.lanes
    }

    /// Lane indices belonging to one device.
    pub fn device_lanes(&self, device: usize) -> &[usize] {
        &self.lanes_by_device[device]
    }

    /// A device's speed-scaled model table (shared by its lanes).
    pub fn device_table(&self, device: usize) -> &ModelTable {
        &self.tables[device]
    }

    /// The table a lane schedules against.
    pub fn lane_table(&self, lane: usize) -> &ModelTable {
        &self.tables[self.lanes[lane].device]
    }

    /// Aggregate fleet capacity in Jetson units (sum of device
    /// [`Backend::capacity`]).
    pub fn capacity(&self) -> f64 {
        self.devices.iter().map(|d| d.capacity()).sum()
    }
}

/// Rescale a reference table by a lane speed: every time cost divides by
/// `speed`; names, task ids, and transfer sizes are preserved. Iterates
/// the table in its deterministic name order.
pub fn scale_table(base: &ModelTable, speed: f64) -> ModelTable {
    assert!(speed > 0.0, "lane speed must be positive");
    let mut out = ModelTable::new();
    for m in base.iter() {
        let scaled = if m.blocks_us.len() > 1 {
            let mut s = ModelRuntime::split(
                m.name.clone(),
                m.task,
                m.exec_us / speed,
                m.blocks_us.iter().map(|b| b / speed).collect(),
            );
            if m.transfer_bytes.len() == m.blocks_us.len() - 1 {
                s = s.with_transfer_bytes(m.transfer_bytes.clone());
            }
            s
        } else {
            ModelRuntime::vanilla(m.name.clone(), m.task, m.exec_us / speed)
        };
        out.insert(scaled);
    }
    out
}

/// Mean isolated execution time across a table's models, µs — the mean
/// service demand of a uniform-mix request in reference (Jetson) units.
pub fn mean_exec_us(table: &ModelTable) -> f64 {
    assert!(!table.is_empty(), "empty model table");
    table.iter().map(|m| m.exec_us).sum::<f64>() / table.len() as f64
}

/// The Poisson inter-arrival interval (µs) that offers `load` × the
/// fleet's aggregate capacity, for a uniform model mix drawn from the
/// reference `base` table.
pub fn offered_interval_us(base: &ModelTable, fleet: &Fleet, load: f64) -> f64 {
    assert!(load > 0.0, "offered load must be positive");
    mean_exec_us(base) / (fleet.capacity() * load)
}

/// Per-model replica placement: which devices may serve each model.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    replicas: BTreeMap<String, Vec<usize>>,
}

impl Placement {
    /// Place every model of `table` on every device (full replication —
    /// the router alone decides balance).
    pub fn full(fleet: &Fleet, table: &ModelTable) -> Self {
        let all: Vec<usize> = (0..fleet.devices().len()).collect();
        let replicas = table
            .iter()
            .map(|m| (m.name.to_string(), all.clone()))
            .collect();
        Self { replicas }
    }

    /// Place each model on `r` devices, spreading replicas round-robin
    /// over the devices sorted by capacity (largest first) so every
    /// model gets at least one fast replica slot and no device hosts a
    /// model twice. Deterministic in the table's name order.
    pub fn replicated(fleet: &Fleet, table: &ModelTable, r: usize) -> Self {
        let n = fleet.devices().len();
        let r = r.clamp(1, n);
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            let (ca, cb) = (fleet.devices()[a].capacity(), fleet.devices()[b].capacity());
            cb.partial_cmp(&ca)
                .expect("capacities are finite")
                .then(a.cmp(&b))
        });
        let mut replicas = BTreeMap::new();
        for (k, m) in table.iter().enumerate() {
            let mut devs: Vec<usize> = (0..r).map(|j| order[(k + j) % n]).collect();
            devs.sort_unstable();
            devs.dedup();
            replicas.insert(m.name.to_string(), devs);
        }
        Self { replicas }
    }

    /// Devices hosting `model`.
    ///
    /// # Panics
    /// Panics when the model was never placed — routing a trace that
    /// references an unplaced model is a harness bug.
    pub fn devices_for(&self, model: &str) -> &[usize] {
        self.replicas
            .get(model)
            .unwrap_or_else(|| panic!("model {model:?} has no placement"))
    }

    /// Iterate `(model, replica devices)` in model-name order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Vec<usize>)> {
        self.replicas.iter()
    }

    /// Number of placed models.
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// True when nothing is placed.
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_table() -> ModelTable {
        let mut t = ModelTable::new();
        t.insert(ModelRuntime::vanilla("small", 0, 10_000.0));
        t.insert(
            ModelRuntime::split("big", 1, 60_000.0, vec![22_000.0; 3])
                .with_transfer_bytes(vec![1024, 2048]),
        );
        t
    }

    #[test]
    fn scale_table_divides_every_cost() {
        let scaled = scale_table(&base_table(), 4.0);
        assert_eq!(scaled.get("small").exec_us, 2_500.0);
        let big = scaled.get("big");
        assert_eq!(big.exec_us, 15_000.0);
        assert_eq!(big.blocks_us, vec![5_500.0; 3]);
        assert_eq!(big.transfer_bytes, vec![1024, 2048]);
        assert_eq!(big.task, 1);
    }

    #[test]
    fn fleet_builds_lane_major_layout() {
        let spec = FleetSpec::parse("jetson*2,nx:2*1").unwrap();
        let fleet = Fleet::new(&spec, &base_table());
        assert_eq!(fleet.devices().len(), 3);
        assert_eq!(fleet.lanes().len(), 4);
        assert_eq!(
            fleet.lanes()[0],
            Lane {
                device: 0,
                stream: 0
            }
        );
        assert_eq!(
            fleet.lanes()[2],
            Lane {
                device: 2,
                stream: 0
            }
        );
        assert_eq!(
            fleet.lanes()[3],
            Lane {
                device: 2,
                stream: 1
            }
        );
        assert_eq!(fleet.device_lanes(2), &[2, 3]);
        // The nx lanes run faster tables than the jetson lanes.
        assert!(
            fleet.lane_table(2).get("small").exec_us < fleet.lane_table(0).get("small").exec_us
        );
        assert!(fleet.capacity() > 2.0);
    }

    #[test]
    fn full_placement_covers_all_devices() {
        let spec = FleetSpec::heterogeneous(4);
        let fleet = Fleet::new(&spec, &base_table());
        let p = Placement::full(&fleet, &base_table());
        assert_eq!(p.len(), 2);
        assert_eq!(p.devices_for("big"), &[0, 1, 2, 3]);
    }

    #[test]
    fn replicated_placement_is_spread_and_deduped() {
        let spec = FleetSpec::heterogeneous(8);
        let fleet = Fleet::new(&spec, &base_table());
        let p = Placement::replicated(&fleet, &base_table(), 3);
        for (_, devs) in p.iter() {
            assert_eq!(devs.len(), 3);
            let mut sorted = devs.clone();
            sorted.dedup();
            assert_eq!(&sorted, devs, "replica list must be sorted+unique");
            for &d in devs {
                assert!(d < 8);
            }
        }
        // The two models don't land on identical replica sets.
        let sets: Vec<_> = p.iter().map(|(_, d)| d.clone()).collect();
        assert_ne!(sets[0], sets[1]);
    }

    #[test]
    fn offered_interval_matches_capacity() {
        let spec = FleetSpec::uniform("jetson", 4);
        let fleet = Fleet::new(&spec, &base_table());
        // mean exec = 35 ms, capacity 4, load 1.0 → 8.75 ms between arrivals.
        let interval = offered_interval_us(&base_table(), &fleet, 1.0);
        assert!((interval - 8_750.0).abs() < 1e-9);
    }
}
