//! The cluster router: assign each arrival to one scheduler lane.
//!
//! Routing is a single deterministic pass over the time-ordered arrival
//! stream. For every lane the router maintains a fluid view of its
//! outstanding work — the estimated virtual time at which its queued
//! requests finish — using the lane's own speed-scaled table, so a
//! request "weighs" more on a slow Jetson lane than on an edge-server
//! lane. The balancing policies consult that saturation telemetry:
//!
//! * [`RoutePolicy::LeastOutstandingWork`] — pick the candidate lane
//!   with the least pending work (µs).
//! * [`RoutePolicy::JoinShortestQueue`] — pick the candidate lane with
//!   the fewest requests still queued/running.
//! * [`RoutePolicy::PowerOfTwoChoices`] — sample two candidate lanes
//!   with a seeded xorshift generator and keep the less-loaded one.
//!
//! Ties always break toward the lowest lane index, and the random
//! policy draws from its own deterministic stream, so a `(arrivals,
//! fleet, placement, cfg)` tuple routes identically on every run and at
//! every `SPLIT_THREADS`.

use crate::fleet::{Fleet, Placement};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use workload::Arrival;

/// Balancing policy used by [`route`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RoutePolicy {
    /// Send to the candidate lane with the least outstanding work (µs).
    LeastOutstandingWork,
    /// Send to the candidate lane with the shortest queue (requests).
    JoinShortestQueue,
    /// Sample two candidate lanes; send to the less loaded.
    PowerOfTwoChoices,
}

impl RoutePolicy {
    /// Display name used in figures and CLI output.
    pub fn name(&self) -> &'static str {
        match self {
            RoutePolicy::LeastOutstandingWork => "least-outstanding-work",
            RoutePolicy::JoinShortestQueue => "join-shortest-queue",
            RoutePolicy::PowerOfTwoChoices => "power-of-two-choices",
        }
    }

    /// All policies, in a fixed order.
    pub fn all() -> Vec<RoutePolicy> {
        vec![
            RoutePolicy::LeastOutstandingWork,
            RoutePolicy::JoinShortestQueue,
            RoutePolicy::PowerOfTwoChoices,
        ]
    }

    /// Parse a CLI spelling (`low`, `jsq`, `p2c`, or the full name).
    pub fn parse(text: &str) -> Option<RoutePolicy> {
        match text {
            "low" | "least-outstanding-work" => Some(RoutePolicy::LeastOutstandingWork),
            "jsq" | "join-shortest-queue" => Some(RoutePolicy::JoinShortestQueue),
            "p2c" | "power-of-two-choices" => Some(RoutePolicy::PowerOfTwoChoices),
            _ => None,
        }
    }
}

/// Router configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RouteCfg {
    /// Balancing policy.
    pub policy: RoutePolicy,
    /// Seed for the power-of-two-choices sampler (unused by the
    /// deterministic-argmin policies, but part of the reproducibility
    /// tuple either way).
    pub seed: u64,
}

impl Default for RouteCfg {
    fn default() -> Self {
        Self {
            policy: RoutePolicy::LeastOutstandingWork,
            seed: 0x51C,
        }
    }
}

/// Per-lane routing telemetry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LaneLoad {
    /// Lane index.
    pub lane: usize,
    /// Device the lane belongs to.
    pub device: usize,
    /// Partition index within the device.
    pub stream: usize,
    /// Requests routed to the lane.
    pub routed: u64,
    /// Estimated work routed to the lane, µs of lane time.
    pub demand_us: f64,
    /// Peak number of requests simultaneously outstanding (router's
    /// fluid estimate).
    pub peak_queue: usize,
    /// `demand_us` over the arrival span — sustained saturation of the
    /// lane; above 1.0 the lane cannot drain what it was sent.
    pub saturation: f64,
}

/// Routing summary kept after the per-lane arrival lists are consumed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouteReport {
    /// Balancing policy name.
    pub policy: String,
    /// Per-lane telemetry, lane-major.
    pub lanes: Vec<LaneLoad>,
    /// Arrival span (first to last arrival), µs.
    pub span_us: f64,
    /// Total requests routed.
    pub routed: u64,
}

/// Full routing outcome: the report plus each lane's sub-trace.
#[derive(Debug, Clone)]
pub struct RouteOutcome {
    /// Summary telemetry.
    pub report: RouteReport,
    /// Per-lane arrival lists (time-ordered, original request ids).
    pub assignments: Vec<Vec<Arrival>>,
}

/// xorshift64* — tiny deterministic sampler for power-of-two-choices.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545F4914F6CDD1D)
}

struct LaneState {
    /// Virtual time at which the lane's queued work is estimated to
    /// finish.
    work_end_us: f64,
    /// Estimated finish time of each outstanding request.
    finishes: VecDeque<f64>,
    routed: u64,
    demand_us: f64,
    peak_queue: usize,
}

impl LaneState {
    fn outstanding_us(&self, now_us: f64) -> f64 {
        (self.work_end_us - now_us).max(0.0)
    }

    fn drain(&mut self, now_us: f64) {
        while self.finishes.front().is_some_and(|&f| f <= now_us) {
            self.finishes.pop_front();
        }
    }
}

/// Route `arrivals` over the fleet's lanes.
///
/// # Panics
/// Panics when an arrival references a model with no placement, or when
/// the placement names a device outside the fleet.
pub fn route(
    arrivals: &[Arrival],
    fleet: &Fleet,
    placement: &Placement,
    cfg: &RouteCfg,
) -> RouteOutcome {
    let lane_count = fleet.lanes().len();
    // model → candidate lane list (all lanes of every replica device).
    let mut candidates: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (model, devices) in placement.iter() {
        let mut lanes = Vec::new();
        for &d in devices {
            assert!(
                d < fleet.devices().len(),
                "placement names device {d} outside the {}-device fleet",
                fleet.devices().len()
            );
            lanes.extend_from_slice(fleet.device_lanes(d));
        }
        candidates.insert(model.as_str(), lanes);
    }

    let mut states: Vec<LaneState> = (0..lane_count)
        .map(|_| LaneState {
            work_end_us: 0.0,
            finishes: VecDeque::new(),
            routed: 0,
            demand_us: 0.0,
            peak_queue: 0,
        })
        .collect();
    let mut assignments: Vec<Vec<Arrival>> = vec![Vec::new(); lane_count];
    let mut rng = cfg.seed ^ 0x9E3779B97F4A7C15;
    if rng == 0 {
        rng = 0x9E3779B97F4A7C15;
    }

    for a in arrivals {
        let cands = candidates
            .get(a.model.as_str())
            .unwrap_or_else(|| panic!("model {:?} has no placement", a.model));
        let t = a.arrival_us;
        for &lane in cands {
            states[lane].drain(t);
        }
        let pick = match cfg.policy {
            RoutePolicy::LeastOutstandingWork => {
                argmin_by(cands, |lane| states[lane].outstanding_us(t))
            }
            RoutePolicy::JoinShortestQueue => {
                argmin_by(cands, |lane| states[lane].finishes.len() as f64)
            }
            RoutePolicy::PowerOfTwoChoices => {
                let i = (xorshift(&mut rng) % cands.len() as u64) as usize;
                let j = (xorshift(&mut rng) % cands.len() as u64) as usize;
                let (a_lane, b_lane) = (cands[i], cands[j]);
                let (sa, sb) = (
                    states[a_lane].outstanding_us(t),
                    states[b_lane].outstanding_us(t),
                );
                if sb < sa || (sb == sa && b_lane < a_lane) {
                    b_lane
                } else {
                    a_lane
                }
            }
        };
        let exec = fleet.lane_table(pick).get(&a.model).exec_us;
        let st = &mut states[pick];
        st.work_end_us = st.work_end_us.max(t) + exec;
        st.finishes.push_back(st.work_end_us);
        st.peak_queue = st.peak_queue.max(st.finishes.len());
        st.routed += 1;
        st.demand_us += exec;
        assignments[pick].push(a.clone());
    }

    let span_us = match (arrivals.first(), arrivals.last()) {
        (Some(first), Some(last)) => (last.arrival_us - first.arrival_us).max(1.0),
        _ => 1.0,
    };
    let lanes = states
        .iter()
        .enumerate()
        .map(|(i, st)| LaneLoad {
            lane: i,
            device: fleet.lanes()[i].device,
            stream: fleet.lanes()[i].stream,
            routed: st.routed,
            demand_us: st.demand_us,
            peak_queue: st.peak_queue,
            saturation: st.demand_us / span_us,
        })
        .collect();
    RouteOutcome {
        report: RouteReport {
            policy: cfg.policy.name().to_string(),
            lanes,
            span_us,
            routed: arrivals.len() as u64,
        },
        assignments,
    }
}

/// Index of the candidate minimizing `key`, ties toward the lowest lane
/// index. `key` must return finite values.
fn argmin_by(cands: &[usize], key: impl Fn(usize) -> f64) -> usize {
    let mut best = cands[0];
    let mut best_key = key(best);
    for &lane in &cands[1..] {
        let k = key(lane);
        if k < best_key || (k == best_key && lane < best) {
            best = lane;
            best_key = k;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::FleetSpec;
    use sched::{ModelRuntime, ModelTable};

    fn base_table() -> ModelTable {
        let mut t = ModelTable::new();
        t.insert(ModelRuntime::vanilla("small", 0, 10_000.0));
        t.insert(ModelRuntime::vanilla("big", 1, 40_000.0));
        t
    }

    fn arrivals(n: u64, gap_us: f64) -> Vec<Arrival> {
        (0..n)
            .map(|i| Arrival {
                id: i,
                model: (if i % 4 == 0 { "big" } else { "small" }).to_string(),
                arrival_us: i as f64 * gap_us,
            })
            .collect()
    }

    fn fleet() -> Fleet {
        Fleet::new(&FleetSpec::parse("jetson*2,nx:2*1").unwrap(), &base_table())
    }

    #[test]
    fn every_policy_conserves_requests() {
        let f = fleet();
        let p = Placement::full(&f, &base_table());
        let a = arrivals(200, 3_000.0);
        for policy in RoutePolicy::all() {
            let out = route(&a, &f, &p, &RouteCfg { policy, seed: 7 });
            let total: usize = out.assignments.iter().map(Vec::len).sum();
            assert_eq!(total, 200, "{}", policy.name());
            assert_eq!(out.report.routed, 200);
            let mut ids: Vec<u64> = out
                .assignments
                .iter()
                .flat_map(|l| l.iter().map(|a| a.id))
                .collect();
            ids.sort_unstable();
            assert_eq!(ids, (0..200).collect::<Vec<_>>(), "{}", policy.name());
        }
    }

    #[test]
    fn lane_sub_traces_stay_time_ordered() {
        let f = fleet();
        let p = Placement::full(&f, &base_table());
        let a = arrivals(300, 1_000.0);
        let out = route(&a, &f, &p, &RouteCfg::default());
        for lane in &out.assignments {
            for w in lane.windows(2) {
                assert!(w[0].arrival_us <= w[1].arrival_us);
            }
        }
    }

    #[test]
    fn least_outstanding_work_prefers_fast_lanes_under_pressure() {
        let f = fleet();
        let p = Placement::full(&f, &base_table());
        // Arrivals far faster than the jetson lanes can drain: the two
        // nx lanes (speed 4/lane pre-contention) must absorb more work.
        let a = arrivals(400, 2_000.0);
        let out = route(&a, &f, &p, &RouteCfg::default());
        let jetson: u64 = out.report.lanes[..2].iter().map(|l| l.routed).sum();
        let nx: u64 = out.report.lanes[2..].iter().map(|l| l.routed).sum();
        assert!(nx > jetson, "nx {nx} vs jetson {jetson}");
    }

    #[test]
    fn routing_is_reproducible() {
        let f = fleet();
        let p = Placement::full(&f, &base_table());
        let a = arrivals(200, 2_500.0);
        for policy in RoutePolicy::all() {
            let cfg = RouteCfg { policy, seed: 42 };
            let x = route(&a, &f, &p, &cfg);
            let y = route(&a, &f, &p, &cfg);
            assert_eq!(x.report, y.report);
        }
    }

    #[test]
    fn p2c_seed_changes_the_sample_stream() {
        let f = fleet();
        let p = Placement::full(&f, &base_table());
        let a = arrivals(300, 2_000.0);
        let policy = RoutePolicy::PowerOfTwoChoices;
        let x = route(&a, &f, &p, &RouteCfg { policy, seed: 1 });
        let y = route(&a, &f, &p, &RouteCfg { policy, seed: 2 });
        let rx: Vec<u64> = x.report.lanes.iter().map(|l| l.routed).collect();
        let ry: Vec<u64> = y.report.lanes.iter().map(|l| l.routed).collect();
        assert_ne!(rx, ry, "different seeds should route differently");
    }

    #[test]
    fn respects_partial_placement() {
        let f = fleet();
        let p = Placement::replicated(&f, &base_table(), 1);
        let a = arrivals(100, 5_000.0);
        let out = route(&a, &f, &p, &RouteCfg::default());
        for (lane, assigned) in out.assignments.iter().enumerate() {
            let device = f.lanes()[lane].device;
            for arr in assigned {
                assert!(
                    p.devices_for(&arr.model).contains(&device),
                    "request routed off-replica"
                );
            }
        }
    }

    #[test]
    fn policy_parse_roundtrips() {
        for policy in RoutePolicy::all() {
            assert_eq!(RoutePolicy::parse(policy.name()), Some(policy));
        }
        assert_eq!(
            RoutePolicy::parse("p2c"),
            Some(RoutePolicy::PowerOfTwoChoices)
        );
        assert_eq!(RoutePolicy::parse("fifo"), None);
    }
}
