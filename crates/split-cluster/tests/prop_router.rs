//! Property tests over the cluster router and sharded engine: every
//! routing policy must conserve requests — no drops, no duplicates, and
//! every completion on a replica device — for arbitrary heterogeneous
//! fleets, placements, and arrival processes.

use gpu_sim::{device_class_labels, FleetEntry, FleetSpec};
use proptest::prelude::*;
use sched::{ModelRuntime, ModelTable, Policy};
use split_cluster::{route, simulate_fleet, Fleet, Placement, RouteCfg, RoutePolicy};
use std::collections::BTreeSet;
use workload::Arrival;

/// 1–5 devices drawn from every backend class, with 1–4 spatial
/// partitions each.
fn spec_strategy() -> impl Strategy<Value = FleetSpec> {
    proptest::collection::vec((0usize..device_class_labels().len(), 1usize..4), 1..5).prop_map(
        |entries| FleetSpec {
            entries: entries
                .into_iter()
                .map(|(class, streams)| FleetEntry {
                    class: device_class_labels()[class].to_string(),
                    count: 1,
                    streams,
                })
                .collect(),
        },
    )
}

fn table_strategy() -> impl Strategy<Value = ModelTable> {
    proptest::collection::vec((3_000.0f64..40_000.0, 1usize..4), 1..4).prop_map(|models| {
        let mut t = ModelTable::new();
        for (i, (exec, blocks)) in models.into_iter().enumerate() {
            let name = format!("m{i}");
            if blocks == 1 {
                t.insert(ModelRuntime::vanilla(name, i as u32, exec));
            } else {
                t.insert(ModelRuntime::split(
                    name,
                    i as u32,
                    exec,
                    vec![exec * 1.1 / blocks as f64; blocks],
                ));
            }
        }
        t
    })
}

#[allow(clippy::type_complexity)]
fn cluster_strategy() -> impl Strategy<Value = (FleetSpec, ModelTable, Vec<Arrival>, usize, u64)> {
    (
        spec_strategy(),
        table_strategy(),
        proptest::collection::vec((0.0f64..600_000.0, 0usize..4), 1..80),
        1usize..5,
        0u64..u64::MAX,
    )
        .prop_map(|(spec, table, raw, replicas, seed)| {
            let n_models = table.len();
            let mut arrivals: Vec<Arrival> = raw
                .into_iter()
                .map(|(at, m)| Arrival {
                    id: 0,
                    model: format!("m{}", m % n_models),
                    arrival_us: at,
                })
                .collect();
            arrivals.sort_by(|a, b| a.arrival_us.total_cmp(&b.arrival_us));
            for (i, a) in arrivals.iter_mut().enumerate() {
                a.id = i as u64;
            }
            (spec, table, arrivals, replicas, seed)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The router assigns every arrival to exactly one lane of a replica
    /// device, and the totals it reports agree with the assignments.
    #[test]
    fn every_policy_conserves_routed_requests(
        (spec, table, arrivals, replicas, seed) in cluster_strategy()
    ) {
        let fleet = Fleet::new(&spec, &table);
        let placement = Placement::replicated(&fleet, &table, replicas);
        for policy in RoutePolicy::all() {
            let out = route(&arrivals, &fleet, &placement, &RouteCfg { policy, seed });
            let assigned: usize = out.assignments.iter().map(Vec::len).sum();
            prop_assert_eq!(assigned, arrivals.len(), "{} dropped or duplicated", policy.name());
            prop_assert_eq!(out.report.routed, arrivals.len() as u64);
            let mut seen = BTreeSet::new();
            for (lane, assigned) in out.assignments.iter().enumerate() {
                let device = fleet.lanes()[lane].device;
                for a in assigned {
                    prop_assert!(seen.insert(a.id), "request {} routed twice", a.id);
                    prop_assert!(
                        placement.devices_for(&a.model).contains(&device),
                        "request {} routed off-replica to device {device}",
                        a.id
                    );
                }
            }
        }
    }

    /// End to end: the sharded engine completes exactly the routed set,
    /// once each, under every policy.
    #[test]
    fn every_policy_conserves_completions(
        (spec, table, arrivals, replicas, seed) in cluster_strategy()
    ) {
        let fleet = Fleet::new(&spec, &table);
        let placement = Placement::replicated(&fleet, &table, replicas);
        for policy in RoutePolicy::all() {
            let result = simulate_fleet(
                &Policy::Split(Default::default()),
                &arrivals,
                &fleet,
                &placement,
                &RouteCfg { policy, seed },
            );
            prop_assert_eq!(result.completed(), arrivals.len() as u64, "{}", policy.name());
            let ids: BTreeSet<u64> = result
                .shards
                .iter()
                .flat_map(|s| s.completions.iter().map(|c| c.id))
                .collect();
            prop_assert_eq!(
                ids.len(),
                arrivals.len(),
                "{}: duplicate or missing completion ids",
                policy.name()
            );
            prop_assert!(arrivals.iter().all(|a| ids.contains(&a.id)));
        }
    }
}
