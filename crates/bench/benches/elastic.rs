//! Elastic-controller overhead: the on-arrival decision must be cheap
//! enough to sit on the request hot path (§3.3).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use split_core::{ElasticConfig, ElasticController};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("elastic");

    group.bench_function("on_arrival/steady_mixed", |b| {
        b.iter_batched(
            || {
                let mut ctl = ElasticController::new(ElasticConfig::default());
                for i in 0..64 {
                    ctl.on_arrival(i as f64 * 30_000.0, (i % 5) as u32);
                }
                ctl
            },
            |mut ctl| black_box(ctl.on_arrival(64.0 * 30_000.0, 2)),
            BatchSize::SmallInput,
        )
    });

    group.bench_function("on_arrival/window_churn", |b| {
        // A big stale window forces maximal eviction work.
        b.iter_batched(
            || {
                let mut ctl = ElasticController::new(ElasticConfig::default());
                for i in 0..512 {
                    ctl.on_arrival(i as f64 * 900.0, (i % 5) as u32);
                }
                ctl
            },
            |mut ctl| black_box(ctl.on_arrival(10_000_000.0, 0)),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
