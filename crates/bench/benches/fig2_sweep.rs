//! Criterion bench behind Figure 2: how fast the cut-point sweep machinery
//! profiles split candidates. On the authors' testbed one profile costs an
//! on-device run; here a full strided two-cut grid of ResNet-50 is the
//! workload for the rayon-parallel sweep.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use gpu_sim::DeviceConfig;
use model_zoo::ModelId;
use profiler::{sweep_one_cut, sweep_two_cuts};
use std::hint::black_box;

fn bench_sweeps(c: &mut Criterion) {
    let dev = DeviceConfig::jetson_nano();
    let resnet = ModelId::ResNet50.build_calibrated(&dev);
    let vgg = ModelId::Vgg19.build_calibrated(&dev);

    let mut group = c.benchmark_group("fig2_sweep");
    group.sample_size(20);

    group.bench_function("one_cut/resnet50", |b| {
        b.iter(|| black_box(sweep_one_cut(&resnet, &dev, 1)))
    });
    group.bench_function("one_cut/vgg19", |b| {
        b.iter(|| black_box(sweep_one_cut(&vgg, &dev, 1)))
    });
    group.bench_function("two_cut_stride4/resnet50", |b| {
        b.iter(|| black_box(sweep_two_cuts(&resnet, &dev, 4)))
    });
    group.bench_function("profile_single_candidate/resnet50", |b| {
        b.iter_batched(
            || dnn_graph::SplitSpec::new(&resnet, vec![40, 81]).unwrap(),
            |spec| black_box(profiler::profile_split(&resnet, &spec, &dev)),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_sweeps);
criterion_main!(benches);
