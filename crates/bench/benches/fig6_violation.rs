//! Criterion bench behind Figures 6–7: serving a full 1000-request
//! Table 2 scenario with each policy, plus the metric computation.

use criterion::{criterion_group, criterion_main, Criterion};
use gpu_sim::DeviceConfig;
use qos_metrics::{per_model_std, violation_curve};
use sched::{simulate, Policy};
use split_repro::experiment::{self, PAPER_MODEL_NAMES};
use std::hint::black_box;
use workload::{RequestTrace, Scenario};

fn bench_scenarios(c: &mut Criterion) {
    let dev = DeviceConfig::jetson_nano();
    let deployment = experiment::paper_deployment(&dev);
    let trace = RequestTrace::generate(Scenario::table2(3), &PAPER_MODEL_NAMES);

    let mut group = c.benchmark_group("fig6_scenario3_1000req");
    group.sample_size(20);
    for policy in Policy::all_default() {
        group.bench_function(policy.name(), |b| {
            b.iter(|| black_box(simulate(&policy, &trace.arrivals, deployment.table())))
        });
    }
    group.finish();

    let outcomes =
        experiment::scenario_outcomes(&Policy::ClockWork, Scenario::table2(3), &deployment);
    let mut metrics = c.benchmark_group("metrics");
    metrics.bench_function("violation_curve_alpha2to20", |b| {
        b.iter(|| black_box(violation_curve(&outcomes, 2, 20)))
    });
    metrics.bench_function("per_model_std", |b| {
        b.iter(|| black_box(per_model_std(&outcomes)))
    });
    metrics.finish();
}

criterion_group!(benches, bench_scenarios);
criterion_main!(benches);
