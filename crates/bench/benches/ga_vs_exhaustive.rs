//! §2.2's argument, measured: the GA explores a sliver of the candidate
//! space; exhaustive profiling explodes combinatorially. Uses the real
//! ResNet-50 at 2 cuts (7,260 candidates — still exhaustible on the
//! simulator) so the two are directly comparable.

use criterion::{criterion_group, criterion_main, Criterion};
use gpu_sim::DeviceConfig;
use model_zoo::ModelId;
use split_core::{evolve, exhaustive_best, GaConfig};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let dev = DeviceConfig::jetson_nano();
    let resnet = ModelId::ResNet50.build_calibrated(&dev);

    let mut group = c.benchmark_group("ga_vs_exhaustive");
    group.sample_size(10);

    group.bench_function("ga/resnet50_3blocks", |b| {
        b.iter(|| black_box(evolve(&resnet, &dev, &GaConfig::new(3))))
    });
    group.bench_function("exhaustive/resnet50_3blocks_7260cand", |b| {
        b.iter(|| black_box(exhaustive_best(&resnet, &dev, 3, 10_000).unwrap()))
    });
    group.bench_function("exhaustive/resnet50_2blocks_121cand", |b| {
        b.iter(|| black_box(exhaustive_best(&resnet, &dev, 2, 10_000).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
