//! The §3.4 claim, measured: greedy preemption decisions are
//! microsecond-scale with O(n) worst case — versus the "recalculate every
//! priority and re-sort" strawman the paper argues against (§2.3).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use split_core::{greedy_preempt, response_ratio, QueueEntry};
use std::hint::black_box;

fn queue(n: usize) -> Vec<QueueEntry> {
    (0..n)
        .map(|i| QueueEntry {
            id: i as u64,
            // Distinct tasks, execution times spread 5..65 ms.
            task: i as u32,
            exec_us: 5_000.0 + (i as f64 * 7_919.0) % 60_000.0,
            left_us: 5_000.0 + (i as f64 * 7_919.0) % 60_000.0,
            arrival_us: i as f64 * 100.0,
        })
        .collect()
}

fn newcomer(n: usize) -> QueueEntry {
    QueueEntry {
        id: n as u64 + 1,
        task: u32::MAX,
        exec_us: 1_000.0,
        left_us: 1_000.0,
        arrival_us: (n as f64) * 100.0,
    }
}

/// The strawman: recompute every request's response ratio and fully
/// re-sort on each arrival (the "dynamic priority recalculation" §2.3
/// deems too slow).
fn full_resort(queue: &mut Vec<QueueEntry>, new: QueueEntry, now: f64, alpha: f64) {
    queue.push(new);
    // Score by response ratio assuming each request ran next.
    queue.sort_by(|a, b| {
        let ra = response_ratio(a, 0.0, now, alpha);
        let rb = response_ratio(b, 0.0, now, alpha);
        rb.total_cmp(&ra)
    });
}

fn bench_preempt(c: &mut Criterion) {
    let mut group = c.benchmark_group("preempt_latency");
    for n in [8usize, 64, 512, 4096] {
        group.bench_function(format!("greedy/queue{n}"), |b| {
            b.iter_batched(
                || (queue(n), newcomer(n)),
                |(mut q, new)| black_box(greedy_preempt(&mut q, new, 500.0, n as f64 * 100.0, 4.0)),
                BatchSize::SmallInput,
            )
        });
        group.bench_function(format!("full_resort/queue{n}"), |b| {
            b.iter_batched(
                || (queue(n), newcomer(n)),
                |(mut q, new)| {
                    full_resort(&mut q, new, n as f64 * 100.0, 4.0);
                    black_box(q.len())
                },
                BatchSize::SmallInput,
            )
        });
    }
    // The O(k)-average case: only 5 distinct task types in a long queue,
    // so the bubble stops at the first same-task neighbor.
    group.bench_function("greedy/queue512_5tasks", |b| {
        b.iter_batched(
            || {
                let mut q = queue(512);
                for (i, e) in q.iter_mut().enumerate() {
                    e.task = (i % 5) as u32;
                }
                let mut new = newcomer(512);
                new.task = 3;
                (q, new)
            },
            |(mut q, new)| black_box(greedy_preempt(&mut q, new, 500.0, 51_200.0, 4.0)),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_preempt);
criterion_main!(benches);
