//! Criterion bench behind Figure 5 / Table 3: the offline genetic
//! algorithm, including the guided-vs-uniform initialization ablation.

use criterion::{criterion_group, criterion_main, Criterion};
use gpu_sim::DeviceConfig;
use model_zoo::ModelId;
use split_core::{evolve, GaConfig, InitStrategy};
use std::hint::black_box;

fn bench_ga(c: &mut Criterion) {
    let dev = DeviceConfig::jetson_nano();
    let resnet = ModelId::ResNet50.build_calibrated(&dev);
    let vgg = ModelId::Vgg19.build_calibrated(&dev);

    let mut group = c.benchmark_group("fig5_ga");
    group.sample_size(10);

    for blocks in [2usize, 3, 4] {
        group.bench_function(format!("resnet50/{blocks}blocks"), |b| {
            b.iter(|| black_box(evolve(&resnet, &dev, &GaConfig::new(blocks))))
        });
    }
    group.bench_function("vgg19/3blocks", |b| {
        b.iter(|| black_box(evolve(&vgg, &dev, &GaConfig::new(3))))
    });
    group.bench_function("resnet50/3blocks/uniform_init", |b| {
        b.iter(|| {
            black_box(evolve(
                &resnet,
                &dev,
                &GaConfig::new(3).with_init(InitStrategy::Uniform),
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ga);
criterion_main!(benches);
