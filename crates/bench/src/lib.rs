#![warn(missing_docs)]
//! # bench — experiment harnesses for every table and figure
//!
//! One binary per paper artifact (see DESIGN.md §4 for the index):
//!
//! | Artifact | Binary |
//! |---|---|
//! | Table 1 (models) | `table1` |
//! | Table 2 (scenarios) | `table2` |
//! | Table 3 (optimal splits) | `table3` |
//! | Figure 2 (cut-point sweeps) | `fig2` |
//! | Figure 5 (GA convergence) | `fig5` |
//! | Figure 6 (violation rate vs α) | `fig6` |
//! | Figure 7 (per-model jitter) | `fig7` |
//! | Ablations (§DESIGN.md) | `ablations` |
//!
//! Each binary prints the paper-shaped table/series and writes CSV to
//! `results/` for plotting. Criterion micro-benchmarks live in
//! `benches/`.

use std::path::PathBuf;

/// Directory where harness binaries drop their CSV output (created on
/// demand).
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Format a ratio as a percent string with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Format microseconds as milliseconds with the given precision.
pub fn ms(us: f64, decimals: usize) -> String {
    format!("{:.*}", decimals, us / 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting() {
        assert_eq!(pct(0.154), "15.4%");
        assert_eq!(ms(28_350.0, 2), "28.35");
    }

    #[test]
    fn results_dir_is_creatable() {
        let d = results_dir();
        assert!(d.exists());
    }
}
