#![warn(missing_docs)]
//! # bench — experiment harnesses for every table and figure
//!
//! One binary per paper artifact (see DESIGN.md §4 for the index):
//!
//! | Artifact | Binary |
//! |---|---|
//! | Table 1 (models) | `table1` |
//! | Table 2 (scenarios) | `table2` |
//! | Table 3 (optimal splits) | `table3` |
//! | Figure 2 (cut-point sweeps) | `fig2` |
//! | Figure 5 (GA convergence) | `fig5` |
//! | Figure 6 (violation rate vs α) | `fig6` |
//! | Figure 7 (per-model jitter) | `fig7` |
//! | Ablations (§DESIGN.md) | `ablations` |
//!
//! Each binary prints the paper-shaped table/series and writes CSV to
//! `results/` for plotting. Criterion micro-benchmarks live in
//! `benches/`.

use sched::{ModelTable, Policy, SimResult};
use split_analyze::{lint_attribution, lint_schedule, ScheduleLintCfg};
use std::path::PathBuf;
use workload::Arrival;

/// Directory where harness binaries drop their CSV output (created on
/// demand).
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Run the schedule analyzer over a simulation result and abort the
/// harness when any invariant fails — a figure drawn from a corrupt
/// schedule is worse than no figure.
///
/// # Panics
/// Panics (after printing the full diagnostic report) when the analyzer
/// reports any finding.
pub fn verify_schedule(
    policy: &Policy,
    arrivals: &[Arrival],
    models: &ModelTable,
    result: &SimResult,
) {
    let cfg = match policy {
        Policy::Split(_) => ScheduleLintCfg::block_granular(models),
        Policy::Rta(_) | Policy::StreamParallel(_) => ScheduleLintCfg::concurrent(models),
        _ => ScheduleLintCfg::structural(models),
    };
    verify_with(policy.name(), &cfg, arrivals, result);
}

/// [`verify_schedule`] for block-granular schedules produced by calling a
/// policy function directly (e.g. `block_round_robin`), where no
/// [`Policy`] value exists. The result must carry full lifecycle events —
/// run it through `sched::attach_lifecycle` first.
///
/// # Panics
/// Panics (after printing the full diagnostic report) when the analyzer
/// reports any finding.
pub fn verify_block_granular(
    label: &str,
    arrivals: &[Arrival],
    models: &ModelTable,
    result: &SimResult,
) {
    verify_with(
        label,
        &ScheduleLintCfg::block_granular(models),
        arrivals,
        result,
    );
}

fn verify_with(label: &str, cfg: &ScheduleLintCfg, arrivals: &[Arrival], result: &SimResult) {
    let mut report = lint_schedule(arrivals, result, cfg);
    // Figures that quote latency components need the attribution
    // invariant (SA3xx) as much as the schedule ones.
    report.merge(lint_attribution(result));
    if !report.is_empty() {
        eprintln!("{}", report.render_text());
        panic!("schedule verification failed for {label} — refusing to write results");
    }
}

/// Format a ratio as a percent string with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Format microseconds as milliseconds with the given precision.
pub fn ms(us: f64, decimals: usize) -> String {
    format!("{:.*}", decimals, us / 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting() {
        assert_eq!(pct(0.154), "15.4%");
        assert_eq!(ms(28_350.0, 2), "28.35");
    }

    #[test]
    fn results_dir_is_creatable() {
        let d = results_dir();
        assert!(d.exists());
    }
}
