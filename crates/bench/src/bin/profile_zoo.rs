//! The §3.1 large-scale evaluation: profile all eleven model-zoo
//! architectures — structure, per-kind time breakdown, and the
//! single-cut evenness/overhead landscape for each.
//!
//! The paper ran this on a Jetson Nano over ONNX exports to derive the
//! §2.4 observations; this harness derives the same observations from the
//! reconstruction and writes per-model curves for plotting.

use bench::ms;
use dnn_graph::graph_stats;
use gpu_sim::{block_time_us, DeviceConfig};
use model_zoo::profiling_models;
use profiler::{op_report, sweep_one_cut};
use qos_metrics::markdown_table;
use rayon::prelude::*;

fn main() {
    let dev = DeviceConfig::jetson_nano();

    // Each model's calibration + cut sweep is independent; run the eleven
    // models through the pool. par_iter collects in zoo order, so the
    // table and CSV match the sequential run at any SPLIT_THREADS.
    let per_model: Vec<(Vec<String>, Vec<Vec<String>>)> = profiling_models()
        .to_vec()
        .into_par_iter()
        .map(|id| {
            let g = id.build_calibrated(&dev);
            let stats = graph_stats(&g);
            let report = op_report(&g, &dev);
            let latency = block_time_us(&g, &dev);

            let sweep = sweep_one_cut(&g, &dev, (g.op_count() / 120).max(1));
            let best = sweep
                .iter()
                .min_by(|a, b| a.std_us.total_cmp(&b.std_us))
                .expect("non-trivial model");
            let best_frac = best.cuts[0] as f64 / g.op_count() as f64;

            let row = vec![
                stats.model.clone(),
                stats.op_count.to_string(),
                format!("{:.1}", stats.total_flops as f64 / 1e9),
                format!("{:.1}", stats.total_weight_bytes as f64 / 4e6),
                ms(latency, 2),
                format!(
                    "{} ({:.0}%)",
                    report.kinds[0].kind,
                    100.0 * report.kinds[0].share
                ),
                format!("{:.0}%", 100.0 * best_frac),
                format!("{:.1}%", 100.0 * best.overhead_ratio),
            ];

            let curves = sweep
                .iter()
                .map(|p| {
                    vec![
                        stats.model.clone(),
                        p.cuts[0].to_string(),
                        format!("{:.4}", p.overhead_ratio),
                        format!("{:.3}", p.std_us / 1e3),
                    ]
                })
                .collect();
            (row, curves)
        })
        .collect();

    let mut rows = Vec::new();
    let mut curve_rows = Vec::new();
    for (row, curves) in per_model {
        rows.push(row);
        curve_rows.extend(curves);
    }

    println!("§3.1 large-scale evaluation over the eleven-model zoo\n");
    println!(
        "{}",
        markdown_table(
            &[
                "Model",
                "Ops",
                "GFLOPs",
                "MParams",
                "Latency(ms)",
                "Dominant kind",
                "Even-cut pos",
                "Even-cut ovhd"
            ],
            &rows
        )
    );
    qos_metrics::write_csv(
        &bench::results_dir().join("profile_zoo_curves.csv"),
        &["model", "cut", "overhead_ratio", "std_ms"],
        &curve_rows,
    )
    .expect("write csv");
    println!("Per-model single-cut curves written to results/profile_zoo_curves.csv");
    println!("\nMost CNNs put their even cut in the 20-50% region (observation 2);");
    println!("YOLOv2's heavy detection head and GPT-2's LM-head matmul pull their");
    println!("time-midpoints later, which is where the even cut follows.");
}
