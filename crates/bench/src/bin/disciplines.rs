//! The full discipline ladder on one scenario — every scheduling idea in
//! the repository side by side, from naive concurrency through classical
//! queueing theory to SPLIT. A capstone table for orientation; the
//! per-figure harnesses make the individual comparisons rigorously.

use gpu_sim::DeviceConfig;
use qos_metrics::{markdown_table, per_model_std, violation_rate};
use sched::policy::{block_round_robin, edf, sjf, EdfCfg, SplitCfg};
use sched::{simulate, Policy, SimResult};
use split_repro::experiment;
use workload::{RequestTrace, Scenario};

fn main() {
    let dev = DeviceConfig::jetson_nano();
    let deployment = experiment::paper_deployment(&dev);
    let sc = Scenario::table2(5);
    let trace = RequestTrace::generate(sc, &experiment::PAPER_MODEL_NAMES);
    let shorts = experiment::short_model_names();

    let score = |r: &SimResult| -> (f64, f64, f64) {
        let o = r.outcomes();
        let v4 = violation_rate(&o, 4.0);
        let mean_rr = o.iter().map(|x| x.response_ratio()).sum::<f64>() / o.len() as f64;
        let jitter = per_model_std(&o)
            .iter()
            .filter(|x| shorts.contains(&x.model.as_str()))
            .map(|x| x.std_us)
            .sum::<f64>()
            / shorts.len() as f64;
        (v4, mean_rr, jitter)
    };

    let table = deployment.table();
    let runs: Vec<(&str, SimResult)> = vec![
        (
            "Stream-Parallel (naive concurrency)",
            simulate(
                &Policy::StreamParallel(Default::default()),
                &trace.arrivals,
                table,
            ),
        ),
        (
            "RT-A (aligned concurrency)",
            simulate(&Policy::Rta(Default::default()), &trace.arrivals, table),
        ),
        (
            "ClockWork (FCFS)",
            simulate(&Policy::ClockWork, &trace.arrivals, table),
        ),
        ("SJF", sjf(&trace.arrivals, table)),
        ("EDF", edf(&trace.arrivals, table, &EdfCfg::default())),
        (
            "PREMA (token priority)",
            simulate(&Policy::Prema(Default::default()), &trace.arrivals, table),
        ),
        (
            "Block round-robin (partial preempt)",
            block_round_robin(&trace.arrivals, table),
        ),
        (
            "SPLIT (even blocks + greedy preempt)",
            simulate(
                &Policy::Split(SplitCfg {
                    alpha: 4.0,
                    elastic: None,
                }),
                &trace.arrivals,
                table,
            ),
        ),
    ];

    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|(name, r)| {
            let (v4, rr, j) = score(r);
            vec![
                name.to_string(),
                format!("{:.1}%", 100.0 * v4),
                format!("{rr:.2}"),
                format!("{:.2}", j / 1e3),
            ]
        })
        .collect();

    println!(
        "Discipline ladder on scenario {} (λ = {:.0} ms, 1000 requests)\n",
        sc.index, sc.lambda_ms
    );
    println!(
        "{}",
        markdown_table(
            &["Discipline", "viol@α=4", "mean RR", "short jitter (ms)"],
            &rows
        )
    );
    qos_metrics::write_csv(
        &bench::results_dir().join("disciplines.csv"),
        &["discipline", "viol_at_4", "mean_rr", "short_jitter_ms"],
        &rows,
    )
    .expect("write csv");
    println!("(CSV written to results/disciplines.csv)");
}
