//! Search-method comparison (§2.3): the observation-guided GA versus
//! simulated annealing (guided and cold), random sampling, and — where
//! tractable — exhaustive search, all on the same Eq. 2 fitness and the
//! same profile-count budget.

use dnn_graph::SplitSpec;
use gpu_sim::DeviceConfig;
use model_zoo::ModelId;
use rand::prelude::*;
use split_core::{anneal, evolve, exhaustive_best, fitness, AnnealConfig, GaConfig, InitStrategy};

fn main() {
    let dev = DeviceConfig::jetson_nano();
    let seeds = [11u64, 22, 33, 44, 55];

    for (id, blocks) in [
        (ModelId::ResNet50, 3usize),
        (ModelId::Vgg19, 3),
        (ModelId::ResNet50, 4),
    ] {
        let g = id.build_calibrated(&dev);
        println!("== {} into {} blocks", g.name, blocks);

        // Exhaustive optimum where the space allows (3 blocks only).
        let optimum = exhaustive_best(&g, &dev, blocks, 50_000).map(|(_, p)| fitness(&p));
        if let Some(f) = optimum {
            println!("  exhaustive optimum fitness: {f:.5}");
        }

        let report = |name: &str, results: Vec<(f64, usize)>| {
            let n = results.len() as f64;
            let mean_f = results.iter().map(|r| r.0).sum::<f64>() / n;
            let mean_evals = results.iter().map(|r| r.1).sum::<usize>() as f64 / n;
            let gap = optimum.map(|o| o - mean_f).unwrap_or(f64::NAN);
            println!(
                "  {name:24} mean fitness {mean_f:.5} (gap {gap:+.5}), mean profiles {mean_evals:.0}"
            );
        };

        report(
            "GA (guided)",
            seeds
                .iter()
                .map(|&s| {
                    let out = evolve(&g, &dev, &GaConfig::new(blocks).with_seed(s));
                    (
                        fitness(&out.best_profile),
                        out.history.last().unwrap().candidates_profiled,
                    )
                })
                .collect(),
        );
        report(
            "GA (uniform init)",
            seeds
                .iter()
                .map(|&s| {
                    let cfg = GaConfig::new(blocks)
                        .with_seed(s)
                        .with_init(InitStrategy::Uniform);
                    let out = evolve(&g, &dev, &cfg);
                    (
                        fitness(&out.best_profile),
                        out.history.last().unwrap().candidates_profiled,
                    )
                })
                .collect(),
        );
        report(
            "SA (guided)",
            seeds
                .iter()
                .map(|&s| {
                    let out = anneal(&g, &dev, &AnnealConfig::new(blocks).with_seed(s));
                    (out.best_fitness, out.candidates_profiled)
                })
                .collect(),
        );
        report(
            "SA (cold uniform)",
            seeds
                .iter()
                .map(|&s| {
                    let cfg = AnnealConfig::new(blocks)
                        .with_seed(s)
                        .with_init(InitStrategy::Uniform);
                    let out = anneal(&g, &dev, &cfg);
                    (out.best_fitness, out.candidates_profiled)
                })
                .collect(),
        );
        // Random sampling at the same budget (~300 profiles).
        report(
            "random sampling",
            seeds
                .iter()
                .map(|&s| {
                    let mut rng = StdRng::seed_from_u64(s);
                    let m = g.op_count();
                    let best = (0..300)
                        .map(|_| {
                            let mut cuts: Vec<usize> = Vec::new();
                            while cuts.len() < blocks - 1 {
                                let c = rng.random_range(1..m);
                                if !cuts.contains(&c) {
                                    cuts.push(c);
                                }
                            }
                            cuts.sort_unstable();
                            let spec = SplitSpec::new(&g, cuts).unwrap();
                            fitness(&profiler::profile_split(&g, &spec, &dev))
                        })
                        .fold(f64::NEG_INFINITY, f64::max);
                    (best, 300)
                })
                .collect(),
        );
        println!();
    }
    println!("Reading (§2.3): the guided GA reaches the exhaustive optimum's");
    println!("neighbourhood with the smallest profiling budget (70-160 profiles");
    println!("vs ~220 for annealing and 300 for random sampling, which also lands");
    println!("measurably farther away); observation-guided initialization matters");
    println!("most where the fitness landscape is front-loaded (VGG-19).");
}
