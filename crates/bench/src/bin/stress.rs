//! Stress extension: bursty (MMPP) versus smooth Poisson arrivals at the
//! same long-run rate.
//!
//! The paper's Poisson scenarios spread load uniformly; the §1 motivation
//! (pedestrian volleys) is burstier. Burstiness concentrates queueing and
//! should *widen* the gap between SPLIT and the non-preemptive baselines:
//! during a volley every short request lands behind whatever long block is
//! in flight, so block evenness is exercised hardest.

use gpu_sim::DeviceConfig;
use qos_metrics::{per_model_std, violation_rate};
use rand::prelude::*;
use sched::{simulate, Policy};
use split_repro::experiment;
use workload::{Arrival, BurstConfig, BurstGen, PoissonGen};

fn mk_arrivals(times: Vec<f64>, seed: u64) -> Vec<Arrival> {
    let mut rng = StdRng::seed_from_u64(seed);
    times
        .into_iter()
        .enumerate()
        .map(|(i, t)| Arrival {
            id: i as u64,
            model: experiment::PAPER_MODEL_NAMES
                [rng.random_range(0..experiment::PAPER_MODEL_NAMES.len())]
            .to_string(),
            arrival_us: t,
        })
        .collect()
}

fn main() {
    let dev = DeviceConfig::jetson_nano();
    let deployment = experiment::paper_deployment(&dev);
    let n = 1000;
    let seed = 2024;

    let burst_cfg = BurstConfig {
        calm_interval_us: 220_000.0,
        burst_interval_us: 18_000.0,
        calm_dwell_us: 1_500_000.0,
        burst_dwell_us: 250_000.0,
    };
    let mean = burst_cfg.mean_interval_us();
    let bursty = mk_arrivals(BurstGen::new(burst_cfg, seed).take(n), seed);
    let smooth = mk_arrivals(PoissonGen::new(mean, seed).take(n), seed);

    println!(
        "Bursty vs smooth arrivals at the same mean interval ({:.0} ms), {n} requests\n",
        mean / 1e3
    );
    println!(
        "{:12} {:>22} {:>22}",
        "policy", "smooth viol@4 / jitter", "bursty viol@4 / jitter"
    );

    let shorts = experiment::short_model_names();
    for policy in Policy::all_default() {
        let eval = |arrivals: &[Arrival]| {
            let r = simulate(&policy, arrivals, deployment.table());
            let o = r.outcomes();
            let v = violation_rate(&o, 4.0);
            let j = per_model_std(&o)
                .iter()
                .filter(|x| shorts.contains(&x.model.as_str()))
                .map(|x| x.std_us)
                .sum::<f64>()
                / shorts.len() as f64;
            (v, j)
        };
        let (vs, js) = eval(&smooth);
        let (vb, jb) = eval(&bursty);
        println!(
            "{:12} {:>10.1}% / {:>6.2}ms {:>10.1}% / {:>6.2}ms",
            policy.name(),
            100.0 * vs,
            js / 1e3,
            100.0 * vb,
            jb / 1e3
        );
    }
    println!("\nBurstiness hurts everyone, but the non-preemptive baselines lose");
    println!("the most: volleys of shorts pile up behind in-flight long models.");
}
