//! Figure 5: genetic-algorithm convergence — the minimum block-time
//! standard deviation (a) and its splitting overhead (b) per generation,
//! for ResNet-50 and VGG-19 split into 2/3/4 blocks (the paper's RES-1..3
//! and VGG-1..3 series).

use gpu_sim::DeviceConfig;
use model_zoo::ModelId;
use split_core::{evolve, GaConfig};
use split_repro::experiment::OFFLINE_SEED;

fn main() {
    let dev = DeviceConfig::jetson_nano();
    let mut rows = Vec::new();
    println!("Figure 5: GA convergence (σ and overhead of each generation's best)\n");
    for id in [ModelId::ResNet50, ModelId::Vgg19] {
        let g = id.build_calibrated(&dev);
        let tag = if id == ModelId::ResNet50 {
            "RES"
        } else {
            "VGG"
        };
        for blocks in [2usize, 3, 4] {
            let series = format!("{tag}-{}", blocks - 1);
            let cfg = GaConfig::new(blocks).with_seed(OFFLINE_SEED ^ blocks as u64);
            let out = evolve(&g, &dev, &cfg);
            println!(
                "{series}: converged in {} generations (paper: nearly all within 12, all by 15)",
                out.generations_run
            );
            print!("  σ(ms):");
            for s in &out.history {
                print!(" {:.2}", s.best_std_us / 1e3);
            }
            println!();
            print!("  ovhd%:");
            for s in &out.history {
                print!(" {:.1}", 100.0 * s.best_overhead);
            }
            println!("\n");
            for s in &out.history {
                rows.push(vec![
                    series.clone(),
                    s.generation.to_string(),
                    format!("{:.3}", s.best_std_us / 1e3),
                    format!("{:.4}", s.best_overhead),
                    s.candidates_profiled.to_string(),
                ]);
            }
        }
    }
    qos_metrics::write_csv(
        &bench::results_dir().join("fig5.csv"),
        &[
            "series",
            "generation",
            "best_std_ms",
            "best_overhead_ratio",
            "candidates_profiled",
        ],
        &rows,
    )
    .expect("write csv");
    println!("(CSV written to results/fig5.csv)");
}
