//! Figure 1, quantified: one short request A arriving behind one long
//! request B, under each scheduling scheme, reporting the *average
//! response ratio* the figure annotates. The arrival offset is swept so
//! the comparison doesn't hinge on one lucky phase.

use qos_metrics::markdown_table;
use rayon::prelude::*;
use sched::policy::{SplitCfg, StreamParallelCfg};
use sched::{simulate, ModelRuntime, ModelTable, Policy};
use workload::Arrival;

fn table(blocks: Vec<f64>) -> ModelTable {
    let mut t = ModelTable::new();
    t.insert(ModelRuntime::split("B-long", 0, 60_000.0, blocks));
    t.insert(ModelRuntime::vanilla("A-short", 1, 10_000.0));
    t
}

fn main() {
    // Sweep A's arrival across B's busy period.
    let offsets: Vec<f64> = (1..=29).map(|i| i as f64 * 2_000.0).collect();

    let lanes: Vec<(&str, Policy, ModelTable)> = vec![
        (
            "Stream-Parallel",
            Policy::StreamParallel(StreamParallelCfg::default()),
            table(vec![60_000.0]),
        ),
        (
            "Runtime-Aware",
            Policy::Rta(Default::default()),
            table(vec![60_000.0]),
        ),
        ("Sequential", Policy::ClockWork, table(vec![60_000.0])),
        (
            "Uneven split (48+6+6)",
            Policy::Split(SplitCfg {
                alpha: 4.0,
                elastic: None,
            }),
            table(vec![48_000.0, 6_000.0, 6_000.0]),
        ),
        (
            "SPLIT even (3 x 20)",
            Policy::Split(SplitCfg {
                alpha: 4.0,
                elastic: None,
            }),
            table(vec![20_000.0, 20_000.0, 20_000.0]),
        ),
    ];

    // Lanes are independent simulations; run them through the pool.
    // par_iter collects in lane order, so the table (and fig1.csv) is
    // byte-identical to the sequential sweep at any SPLIT_THREADS.
    let rows: Vec<Vec<String>> = lanes
        .par_iter()
        .map(|(name, policy, t)| {
            let mut rr_a = 0.0;
            let mut rr_b = 0.0;
            let mut worst_a = 0.0f64;
            for &off in &offsets {
                let arrivals = vec![
                    Arrival {
                        id: 0,
                        model: "B-long".into(),
                        arrival_us: 0.0,
                    },
                    Arrival {
                        id: 1,
                        model: "A-short".into(),
                        arrival_us: off,
                    },
                ];
                let r = simulate(policy, &arrivals, t);
                bench::verify_schedule(policy, &arrivals, t, &r);
                let a = r.completions.iter().find(|c| c.id == 1).unwrap();
                let b = r.completions.iter().find(|c| c.id == 0).unwrap();
                rr_a += a.response_ratio();
                rr_b += b.response_ratio();
                worst_a = worst_a.max(a.response_ratio());
            }
            let n = offsets.len() as f64;
            vec![
                name.to_string(),
                format!("{:.2}", rr_a / n),
                format!("{:.2}", worst_a),
                format!("{:.2}", rr_b / n),
                format!("{:.2}", (rr_a + rr_b) / (2.0 * n)),
            ]
        })
        .collect();

    println!("Figure 1, averaged over A's arrival phase (B = 60 ms, A = 10 ms):\n");
    println!(
        "{}",
        markdown_table(
            &["Scheme", "A mean RR", "A worst RR", "B mean RR", "Avg RR"],
            &rows
        )
    );
    qos_metrics::write_csv(
        &bench::results_dir().join("fig1.csv"),
        &["scheme", "a_mean_rr", "a_worst_rr", "b_mean_rr", "avg_rr"],
        &rows,
    )
    .expect("write csv");
    println!("(CSV written to results/fig1.csv)");

    // One representative run per lane as a Perfetto trace: A arriving
    // mid-way through B, the exact schedule the figure draws.
    let mid = 14_000.0;
    for (name, policy, t) in &lanes {
        let arrivals = vec![
            Arrival {
                id: 0,
                model: "B-long".into(),
                arrival_us: 0.0,
            },
            Arrival {
                id: 1,
                model: "A-short".into(),
                arrival_us: mid,
            },
        ];
        let r = simulate(policy, &arrivals, t);
        bench::verify_schedule(policy, &arrivals, t, &r);
        let slug: String = name
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '_'
                }
            })
            .collect();
        let path = bench::results_dir().join(format!("fig1_{slug}.trace.json"));
        split_repro::split_telemetry::write_chrome_trace(&r.recorder, name, &path)
            .expect("write trace");
    }
    println!("(Perfetto traces written to results/fig1_*.trace.json)");
    println!("\nPaper claim: even splitting minimizes the average response ratio —");
    println!("the last column — among the sequential/aligned schemes, and caps A's");
    println!("worst case at one block. Stream-Parallel looks competitive with only");
    println!("two requests because contention is mild at k=2; Figure 6's full");
    println!("workloads are where its interference compounds.");
}
