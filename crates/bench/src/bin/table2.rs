//! Table 2: the six DLI scenarios, plus the realized workload statistics
//! of each generated trace (the paper fixes 1000 requests per scenario).

use qos_metrics::markdown_table;
use split_repro::experiment::PAPER_MODEL_NAMES;
use workload::{all_scenarios, Load, RequestTrace};

fn main() {
    let mut rows = Vec::new();
    for sc in all_scenarios() {
        let trace = RequestTrace::generate(sc, &PAPER_MODEL_NAMES);
        let realized = trace.span_us() / trace.arrivals.len() as f64 / 1e3;
        rows.push(vec![
            format!("Scenario{}", sc.index),
            format!("{:.0}ms", sc.lambda_ms),
            match sc.load {
                Load::Low => "Low",
                Load::High => "High",
            }
            .to_string(),
            sc.requests.to_string(),
            format!("{realized:.1}ms"),
        ]);
    }
    println!("Table 2: Scenarios that simulate various DLI applications.\n");
    println!(
        "{}",
        markdown_table(
            &[
                "Name",
                "Average arrival interval(λ)",
                "Load",
                "Requests",
                "Realized interval"
            ],
            &rows
        )
    );
    qos_metrics::write_csv(
        &bench::results_dir().join("table2.csv"),
        &[
            "name",
            "lambda_ms",
            "load",
            "requests",
            "realized_interval_ms",
        ],
        &rows,
    )
    .expect("write csv");
    println!("(CSV written to results/table2.csv)");
}
