//! Table 3: optimal model splitting options for different block counts.
//!
//! Runs the observation-guided GA on ResNet-50 and VGG-19 for 2, 3, and 4
//! blocks and reports σ, splitting overhead, and the block-time range —
//! the same columns the paper prints, with its values alongside.

use bench::ms;
use gpu_sim::DeviceConfig;
use model_zoo::ModelId;
use qos_metrics::markdown_table;
use split_core::{evolve, GaConfig};
use split_repro::experiment::OFFLINE_SEED;

fn main() {
    let dev = DeviceConfig::jetson_nano();
    // The paper's Table 3 values for side-by-side comparison.
    let paper: &[(&str, usize, f64, f64, f64)] = &[
        ("resnet50", 2, 0.62, 15.4, 5.69),
        ("resnet50", 3, 1.33, 42.4, 14.70),
        ("resnet50", 4, 2.0, 50.3, 23.40),
        ("vgg19", 2, 0.02, 19.8, 0.09),
        ("vgg19", 3, 1.1, 18.1, 5.37),
        ("vgg19", 4, 5.03, 27.6, 24.8),
    ];

    let mut rows = Vec::new();
    for id in [ModelId::ResNet50, ModelId::Vgg19] {
        let g = id.build_calibrated(&dev);
        for blocks in [2usize, 3, 4] {
            let cfg = GaConfig::new(blocks).with_seed(OFFLINE_SEED ^ blocks as u64);
            let out = evolve(&g, &dev, &cfg);
            let p = &out.best_profile;
            let (_, _, pstd, pov, prange) = paper
                .iter()
                .find(|r| r.0 == g.name && r.1 == blocks)
                .copied()
                .expect("paper row");
            rows.push(vec![
                g.name.clone(),
                blocks.to_string(),
                ms(p.std_us, 2),
                format!("{pstd}"),
                format!("{:.1}%", 100.0 * p.overhead_ratio),
                format!("{pov}%"),
                format!("{:.2}%", p.range_pct),
                format!("{prange}%"),
            ]);
        }
    }
    println!("Table 3: Optimal model splitting options (ours vs paper).\n");
    println!(
        "{}",
        markdown_table(
            &[
                "Model",
                "Blocks",
                "Std.Dev(ms)",
                "paper",
                "Overhead",
                "paper",
                "Range(Pct)",
                "paper"
            ],
            &rows
        )
    );
    qos_metrics::write_csv(
        &bench::results_dir().join("table3.csv"),
        &[
            "model",
            "blocks",
            "std_ms",
            "paper_std_ms",
            "overhead_pct",
            "paper_overhead_pct",
            "range_pct",
            "paper_range_pct",
        ],
        &rows,
    )
    .expect("write csv");
    println!("(CSV written to results/table3.csv)");
}
