//! Figure 6: latency violation rate for all requests as a function of the
//! latency target α (swept 2..=20, §5.2), across the six Table 2
//! scenarios and the four systems.

use gpu_sim::DeviceConfig;
use qos_metrics::{violation_curve, violation_rate};
use sched::Policy;
use split_repro::experiment;
use workload::all_scenarios;

fn main() {
    let dev = DeviceConfig::jetson_nano();
    let deployment = experiment::paper_deployment(&dev);
    let mut rows = Vec::new();

    println!("Figure 6: latency violation rate vs latency target α\n");
    for sc in all_scenarios() {
        println!(
            "Scenario {} (λ = {:.0} ms) — violation rate at α = 2 / 4 / 8 / 16:",
            sc.index, sc.lambda_ms
        );
        for policy in Policy::all_default() {
            let outcomes = experiment::scenario_outcomes(&policy, sc, &deployment);
            let curve = violation_curve(&outcomes, 2, 20);
            for (alpha, rate) in &curve {
                rows.push(vec![
                    sc.index.to_string(),
                    policy.name().to_string(),
                    format!("{alpha}"),
                    format!("{rate:.4}"),
                ]);
            }
            println!(
                "  {:10} {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}%",
                policy.name(),
                100.0 * violation_rate(&outcomes, 2.0),
                100.0 * violation_rate(&outcomes, 4.0),
                100.0 * violation_rate(&outcomes, 8.0),
                100.0 * violation_rate(&outcomes, 16.0),
            );
        }
        println!();
    }

    qos_metrics::write_csv(
        &bench::results_dir().join("fig6.csv"),
        &["scenario", "policy", "alpha", "violation_rate"],
        &rows,
    )
    .expect("write csv");
    println!("Full α ∈ [2,20] curves written to results/fig6.csv");
    println!("\nPaper check: SPLIT stays below 10% beyond α = 4 in every scenario,");
    println!("and RT-A is the worst offender (26% at α = 4 in the paper's run).");
}
