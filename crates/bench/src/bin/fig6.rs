//! Figure 6: latency violation rate for all requests as a function of the
//! latency target α (swept 2..=20, §5.2), across the six Table 2
//! scenarios and the four systems.

use gpu_sim::DeviceConfig;
use qos_metrics::{markdown_table, violation_curve, violation_rate};
use rayon::prelude::*;
use sched::{simulate, Policy};
use split_repro::experiment;
use workload::{all_scenarios, RequestTrace};

/// Everything one scenario contributes to the figure, computed in
/// parallel and printed in scenario order afterwards.
struct ScenarioOut {
    header: String,
    policy_lines: Vec<String>,
    rows: Vec<Vec<String>>,
    decision_rows: Vec<Vec<String>>,
    s3_breakdown: Option<String>,
}

fn main() {
    let dev = DeviceConfig::jetson_nano();
    let deployment = experiment::paper_deployment(&dev);

    println!("Figure 6: latency violation rate vs latency target α\n");
    // The six Table 2 scenarios are independent simulations; fan them out
    // over the pool and stitch the output back in scenario order so the
    // printed report and fig6.csv are byte-identical to the sequential
    // run at any SPLIT_THREADS.
    let per_scenario: Vec<ScenarioOut> = all_scenarios()
        .into_par_iter()
        .map(|sc| {
            let header = format!(
                "Scenario {} (λ = {:.0} ms) — violation rate at α = 2 / 4 / 8 / 16:",
                sc.index, sc.lambda_ms
            );
            let workload = RequestTrace::generate(sc, &experiment::PAPER_MODEL_NAMES);
            let mut policy_lines = Vec::new();
            let mut rows = Vec::new();
            let mut decision_rows = Vec::new();
            let mut s3_breakdown = None;
            for policy in Policy::all_default() {
                let r = simulate(&policy, &workload.arrivals, deployment.table());
                // The figure's numbers are only as good as the schedule they
                // summarize — verify it before anything is written.
                bench::verify_schedule(&policy, &workload.arrivals, deployment.table(), &r);
                let outcomes = r.outcomes();
                let curve = violation_curve(&outcomes, 2, 20);
                for (alpha, rate) in &curve {
                    rows.push(vec![
                        sc.index.to_string(),
                        policy.name().to_string(),
                        format!("{alpha}"),
                        format!("{rate:.4}"),
                    ]);
                }
                policy_lines.push(format!(
                    "  {:10} {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}%",
                    policy.name(),
                    100.0 * violation_rate(&outcomes, 2.0),
                    100.0 * violation_rate(&outcomes, 4.0),
                    100.0 * violation_rate(&outcomes, 8.0),
                    100.0 * violation_rate(&outcomes, 16.0),
                ));
                if matches!(policy, Policy::Split(_)) {
                    let reg = r.metrics();
                    let h = reg.histogram("sched.preempt.decision_ns");
                    decision_rows.push(vec![
                        sc.index.to_string(),
                        h.count().to_string(),
                        h.quantile(0.50).to_string(),
                        h.quantile(0.99).to_string(),
                        h.quantile(0.999).to_string(),
                        h.max().to_string(),
                    ]);
                    if sc.index == 3 {
                        let path = bench::results_dir().join("fig6_split_s3.trace.json");
                        split_repro::split_telemetry::write_chrome_trace(
                            &r.recorder,
                            "fig6 SPLIT scenario 3",
                            &path,
                        )
                        .expect("write trace");
                        s3_breakdown = Some(qos_metrics::breakdown_markdown(
                            &split_repro::split_obs::rollup_by_model(&r.attribution()),
                        ));
                    }
                }
            }
            ScenarioOut {
                header,
                policy_lines,
                rows,
                decision_rows,
                s3_breakdown,
            }
        })
        .collect();

    let mut rows = Vec::new();
    let mut decision_rows = Vec::new();
    let mut s3_breakdown = None;
    for out in per_scenario {
        println!("{}", out.header);
        for line in &out.policy_lines {
            println!("{line}");
        }
        println!();
        rows.extend(out.rows);
        decision_rows.extend(out.decision_rows);
        s3_breakdown = s3_breakdown.or(out.s3_breakdown);
    }

    println!("SPLIT preemption-decision latency per scenario (§3.4 claims µs-scale):\n");
    println!(
        "{}",
        markdown_table(
            &[
                "scenario",
                "decisions",
                "p50 (ns)",
                "p99 (ns)",
                "p999 (ns)",
                "max (ns)",
            ],
            &decision_rows
        )
    );
    println!(
        "(Perfetto trace of SPLIT on scenario 3 written to results/fig6_split_s3.trace.json)\n"
    );

    if let Some(table) = s3_breakdown {
        println!("SPLIT scenario 3 — mean e2e latency by critical-path component (ms):\n");
        println!("{table}");
    }

    qos_metrics::write_csv(
        &bench::results_dir().join("fig6.csv"),
        &["scenario", "policy", "alpha", "violation_rate"],
        &rows,
    )
    .expect("write csv");
    println!("Full α ∈ [2,20] curves written to results/fig6.csv");
    println!("\nPaper check: SPLIT stays below 10% beyond α = 4 in every scenario,");
    println!("and RT-A is the worst offender (26% at α = 4 in the paper's run).");
}
