//! The §2.1 tension, quantified: throughput-oriented systems versus
//! SPLIT's per-request QoS. Serves a heavy scenario and reports goodput
//! utilization next to the violation rate — the two columns the related
//! work and SPLIT respectively optimize.

use gpu_sim::DeviceConfig;
use qos_metrics::{throughput_report, violation_rate};
use sched::{simulate, Policy};
use split_repro::experiment;
use workload::{RequestTrace, Scenario};

fn main() {
    let dev = DeviceConfig::jetson_nano();
    let deployment = experiment::paper_deployment(&dev);
    // Heavier than Table 2 so throughput actually differentiates.
    let mut sc = Scenario::table2(6);
    sc.lambda_ms = 25.0;
    let trace = RequestTrace::generate(sc, &experiment::PAPER_MODEL_NAMES);
    let arrivals_by_id: Vec<f64> = trace.arrivals.iter().map(|a| a.arrival_us).collect();

    println!(
        "Throughput vs QoS at λ = {:.0} ms ({} requests)\n",
        sc.lambda_ms, sc.requests
    );
    println!(
        "{:16} {:>10} {:>12} {:>12} {:>10}",
        "policy", "req/s", "goodput", "viol@α=4", "mean RR"
    );

    let mut policies = Policy::all_default();
    policies.push(Policy::StreamParallel(Default::default()));
    for policy in policies {
        let r = simulate(&policy, &trace.arrivals, deployment.table());
        let outcomes = r.outcomes();
        // Outcomes arrive in completion order; line arrivals up by id.
        let arrivals: Vec<f64> = outcomes
            .iter()
            .map(|o| arrivals_by_id[o.id as usize])
            .collect();
        let tp = throughput_report(&outcomes, &arrivals);
        let mean_rr =
            outcomes.iter().map(|o| o.response_ratio()).sum::<f64>() / outcomes.len() as f64;
        println!(
            "{:16} {:>10.1} {:>11.1}% {:>11.1}% {:>10.2}",
            policy.name(),
            tp.requests_per_s,
            100.0 * tp.goodput_utilization,
            100.0 * violation_rate(&outcomes, 4.0),
            mean_rr
        );
    }
    println!("\nReading (§2.1/§6): in overload, Stream-Parallel's concurrency buys");
    println!("the highest aggregate goodput (>100% = overlapped streams) and RT-A's");
    println!("alignment loses it to barrier waits, yet every baseline violates the");
    println!("latency target on >90% of requests. SPLIT gives up ~1% of sequential");
    println!("goodput to splitting overhead and is the only discipline keeping the");
    println!("violation rate in the double digits — the paper's §2.1 distinction");
    println!("between throughput metrics and per-request QoS, quantified.");
}
