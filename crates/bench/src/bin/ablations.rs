//! Ablations of SPLIT's design choices (DESIGN.md §4):
//!
//! 1. **Even vs uneven splitting** — validates Eq. 1 end to end: same
//!    block count, same overhead budget, different evenness.
//! 2. **Observation-guided vs uniform GA initialization** — what the §2.4
//!    observations buy the search.
//! 3. **Elastic splitting on/off** — under a same-type flood, splitting
//!    overhead with nothing to preempt is pure loss.
//! 4. **Greedy preemption vs FIFO insert vs full re-sort** — QoS of the
//!    queue discipline (the decision-latency side lives in the
//!    `preempt_latency` criterion bench).

use gpu_sim::DeviceConfig;
use model_zoo::ModelId;
use qos_metrics::{per_model_std, violation_rate};
use sched::policy::SplitCfg;
use sched::{simulate, ModelRuntime, ModelTable, Policy};
use split_core::{evolve, expected_waiting_us, ElasticConfig, GaConfig, InitStrategy};
use split_repro::experiment;
use workload::{Arrival, RequestTrace, Scenario};

fn main() {
    let dev = DeviceConfig::jetson_nano();
    ablation_even_vs_uneven(&dev);
    ablation_ga_init(&dev);
    ablation_elastic(&dev);
    ablation_queue_discipline(&dev);
    ablation_admission_control(&dev);
}

/// ClockWork's admission control vs serving everything: dropping
/// stragglers buys a perfect violation score *for the admitted* at the
/// price of not answering at all — SPLIT keeps both.
fn ablation_admission_control(dev: &DeviceConfig) {
    println!("\n== Ablation 5: straggler dropping (ClockWork) vs preemption (SPLIT)\n");
    let deployment = experiment::paper_deployment(dev);
    let trace = RequestTrace::generate(Scenario::table2(6), &experiment::PAPER_MODEL_NAMES);
    let alpha = 4.0;

    let plain = simulate(&Policy::ClockWork, &trace.arrivals, deployment.table());
    let (dropping, dropped) =
        sched::policy::clockwork_with_dropping(&trace.arrivals, deployment.table(), alpha);
    let split = simulate(
        &Policy::Split(SplitCfg {
            alpha,
            elastic: None,
        }),
        &trace.arrivals,
        deployment.table(),
    );

    let row = |name: &str, outcomes: &[qos_metrics::RequestOutcome], dropped: usize| {
        // Score drops as violations: the user never got an answer.
        let served_viol = outcomes.iter().filter(|o| o.violates(alpha)).count();
        let total = outcomes.len() + dropped;
        println!(
            "  {name:24}: answered {:>4}/{total}, violation+drop rate {:>5.1}%",
            outcomes.len(),
            100.0 * (served_viol + dropped) as f64 / total as f64
        );
    };
    row("ClockWork (serve all)", &plain.outcomes(), 0);
    row(
        "ClockWork (drop stragglers)",
        &dropping.outcomes(),
        dropped.len(),
    );
    row("SPLIT", &split.outcomes(), 0);
    println!("  (dropping trades answers for predictability; preemption keeps both)");
}

/// Eq. 1 made operational: two 3-block plans for VGG19 with the same
/// total time, one even and one skewed; measure short-request waiting.
fn ablation_even_vs_uneven(_dev: &DeviceConfig) {
    println!("== Ablation 1: even vs uneven splitting (Eq. 1 end to end)\n");
    let table = |blocks: Vec<f64>| {
        let mut t = ModelTable::new();
        t.insert(ModelRuntime::vanilla("short", 0, 10_000.0));
        t.insert(ModelRuntime::split("long", 1, 67_500.0, blocks));
        t
    };
    let even = vec![25_000.0, 25_000.0, 25_000.0];
    let uneven = vec![60_000.0, 7_500.0, 7_500.0];
    println!(
        "predicted mean wait (Eq. 1): even {:.1} ms, uneven {:.1} ms",
        expected_waiting_us(&even) / 1e3,
        expected_waiting_us(&uneven) / 1e3
    );

    let trace =
        RequestTrace::generate_weighted(Scenario::table2(3), &[("short", 3.0), ("long", 2.0)]);
    let cfg = Policy::Split(SplitCfg {
        alpha: 4.0,
        elastic: None,
    });
    for (name, blocks) in [("even", even), ("uneven", uneven)] {
        let r = simulate(&cfg, &trace.arrivals, &table(blocks));
        let shorts: Vec<f64> = r
            .completions
            .iter()
            .filter(|c| &*c.model == "short")
            .map(|c| c.e2e_us() - c.exec_us)
            .collect();
        let mean_wait = shorts.iter().sum::<f64>() / shorts.len() as f64;
        let outcomes = r.outcomes();
        println!(
            "  {name:7} plan: short mean wait {:>7.1} ms, violation@4 {:>5.1}%",
            mean_wait / 1e3,
            100.0 * violation_rate(&outcomes, 4.0)
        );
    }
    println!();
}

/// Guided vs uniform initialization at equal budget.
fn ablation_ga_init(dev: &DeviceConfig) {
    println!("== Ablation 2: observation-guided vs uniform GA initialization\n");
    let g = ModelId::ResNet50.build_calibrated(dev);
    for blocks in [3usize, 4] {
        for init in [InitStrategy::Guided, InitStrategy::Uniform] {
            // Average over several seeds — initialization is a distributional
            // effect, not a single-run one.
            let seeds = [1u64, 2, 3, 4, 5];
            let mut gens = 0usize;
            let mut fit = 0.0f64;
            let mut first_gen_fit = 0.0f64;
            for s in seeds {
                let mut cfg = GaConfig::new(blocks).with_seed(s).with_init(init);
                cfg.generations = 40;
                let out = evolve(&g, dev, &cfg);
                gens += out.generations_run;
                fit += split_core::fitness(&out.best_profile);
                first_gen_fit += out.history[0].best_fitness;
            }
            let n = seeds.len() as f64;
            println!(
                "  {blocks}-block {:?}: gen-0 best fitness {:.4}, final {:.4}, avg {:.1} generations",
                init,
                first_gen_fit / n,
                fit / n,
                gens as f64 / n
            );
        }
    }
    println!("  (guided init starts from fitter populations — §3.2's claim)\n");
}

/// Elastic splitting under a same-type flood.
fn ablation_elastic(dev: &DeviceConfig) {
    println!("== Ablation 3: elastic splitting under a same-type flood\n");
    let deployment = experiment::paper_deployment(dev);
    // 300 back-to-back ResNet50 requests, 30 ms apart: same task type,
    // FIFO anyway, so splitting overhead buys nothing.
    let arrivals: Vec<Arrival> = (0..300)
        .map(|i| Arrival {
            id: i,
            model: "resnet50".into(),
            arrival_us: i as f64 * 30_000.0,
        })
        .collect();
    for (name, elastic) in [
        ("elastic ON ", Some(ElasticConfig::default())),
        ("elastic OFF", None),
    ] {
        let r = simulate(
            &Policy::Split(SplitCfg {
                alpha: 4.0,
                elastic,
            }),
            &arrivals,
            deployment.table(),
        );
        let outcomes = r.outcomes();
        let mean_rr =
            outcomes.iter().map(|o| o.response_ratio()).sum::<f64>() / outcomes.len() as f64;
        println!(
            "  {name}: mean RR {:.2}, violation@2 {:>5.1}%, makespan {:.1} s",
            mean_rr,
            100.0 * violation_rate(&outcomes, 2.0),
            r.completions.iter().map(|c| c.end_us).fold(0.0, f64::max) / 1e6
        );
    }
    println!("  (with one task type the FIFO rule makes splitting pure overhead)\n");
}

/// Queue discipline: greedy response-ratio preemption vs plain FIFO.
fn ablation_queue_discipline(dev: &DeviceConfig) {
    println!("== Ablation 4: greedy preemption vs FIFO queueing\n");
    let deployment = experiment::paper_deployment(dev);
    let trace = RequestTrace::generate(Scenario::table2(5), &experiment::PAPER_MODEL_NAMES);

    // Greedy (SPLIT proper).
    let greedy = simulate(
        &Policy::Split(SplitCfg {
            alpha: 4.0,
            elastic: None,
        }),
        &trace.arrivals,
        deployment.table(),
    );
    // FIFO baseline: the same split plans, served in arrival order with no
    // preemption — i.e. ClockWork over each model's summed block time.
    let mut fifo_table = ModelTable::new();
    for name in experiment::PAPER_MODEL_NAMES {
        let m = deployment.table().get(name);
        fifo_table.insert(ModelRuntime::vanilla(name, m.task, m.split_total_us()));
    }
    let fifo = simulate(&Policy::ClockWork, &trace.arrivals, &fifo_table);
    let sjf = simulate(&Policy::Sjf, &trace.arrivals, &fifo_table);

    for (name, r, table) in [
        ("greedy preemption", &greedy, deployment.table()),
        ("FIFO (split, no preemption)", &fifo, &fifo_table),
        ("SJF (no preemption)", &sjf, &fifo_table),
    ] {
        let _ = table;
        let outcomes = r.outcomes();
        let shorts = experiment::short_model_names();
        let short_std = per_model_std(&outcomes)
            .iter()
            .filter(|x| shorts.contains(&x.model.as_str()))
            .map(|x| x.std_us)
            .sum::<f64>()
            / shorts.len() as f64;
        println!(
            "  {name:28}: violation@4 {:>5.1}%, short jitter {:>6.2} ms",
            100.0 * violation_rate(&outcomes, 4.0),
            short_std / 1e3
        );
    }
    println!("  (block-level preemption, not splitting alone, delivers the QoS win)");
}
