//! Figure 3, quantified: partial versus full preemption.
//!
//! Request A (3 × 10 ms blocks) is preempted by request B (2 × 8 ms
//! blocks). Under *partial* preemption (block-level round-robin) B's
//! blocks interleave with A's and B's last block becomes a straggler;
//! under SPLIT's *full* preemption B's blocks run together. The offset of
//! B's arrival is swept across A's first block.

use qos_metrics::markdown_table;
use sched::policy::{block_round_robin, split, SplitCfg};
use sched::{attach_lifecycle, ModelRuntime, ModelTable};
use workload::Arrival;

fn main() {
    let mut t = ModelTable::new();
    t.insert(ModelRuntime::split("A", 0, 28_000.0, vec![10_000.0; 3]));
    t.insert(ModelRuntime::split(
        "B",
        1,
        15_000.0,
        vec![8_000.0, 8_000.0],
    ));

    let mut rows = Vec::new();
    for off_ms in [1.0f64, 3.0, 5.0, 7.0, 9.0] {
        let arrivals = vec![
            Arrival {
                id: 0,
                model: "A".into(),
                arrival_us: 0.0,
            },
            Arrival {
                id: 1,
                model: "B".into(),
                arrival_us: off_ms * 1e3,
            },
        ];
        // Attach the uniform lifecycle events so the analyzer can check
        // the full recording, then gate the figure's numbers on it.
        let partial = attach_lifecycle(&arrivals, block_round_robin(&arrivals, &t));
        let full = attach_lifecycle(
            &arrivals,
            split(
                &arrivals,
                &t,
                &SplitCfg {
                    alpha: 4.0,
                    elastic: None,
                },
            ),
        );
        bench::verify_block_granular("block round-robin", &arrivals, &t, &partial);
        bench::verify_block_granular("SPLIT", &arrivals, &t, &full);
        let get = |r: &sched::SimResult, id: u64| {
            r.completions.iter().find(|c| c.id == id).unwrap().e2e_us() / 1e3
        };
        rows.push(vec![
            format!("{off_ms:.0} ms"),
            format!("{:.1}", get(&partial, 1)),
            format!("{:.1}", get(&full, 1)),
            format!("{:.1}", get(&partial, 0)),
            format!("{:.1}", get(&full, 0)),
        ]);
    }

    println!("Figure 3: partial (round-robin blocks) vs full preemption (SPLIT)\n");
    println!(
        "{}",
        markdown_table(
            &[
                "B arrives",
                "B e2e partial",
                "B e2e full",
                "A e2e partial",
                "A e2e full"
            ],
            &rows
        )
    );
    qos_metrics::write_csv(
        &bench::results_dir().join("fig3.csv"),
        &[
            "b_arrival_ms",
            "b_e2e_partial_ms",
            "b_e2e_full_ms",
            "a_e2e_partial_ms",
            "a_e2e_full_ms",
        ],
        &rows,
    )
    .expect("write csv");
    println!("(CSV written to results/fig3.csv)");

    // Perfetto traces of the mid-sweep case (B at 5 ms) for both modes.
    // The policy functions are called directly above, bypassing
    // `sched::simulate`, so attach the uniform lifecycle events here.
    let arrivals = vec![
        Arrival {
            id: 0,
            model: "A".into(),
            arrival_us: 0.0,
        },
        Arrival {
            id: 1,
            model: "B".into(),
            arrival_us: 5_000.0,
        },
    ];
    for (mode, r) in [
        ("partial", block_round_robin(&arrivals, &t)),
        (
            "full",
            split(
                &arrivals,
                &t,
                &SplitCfg {
                    alpha: 4.0,
                    elastic: None,
                },
            ),
        ),
    ] {
        let r = attach_lifecycle(&arrivals, r);
        let path = bench::results_dir().join(format!("fig3_{mode}.trace.json"));
        split_repro::split_telemetry::write_chrome_trace(
            &r.recorder,
            &format!("fig3 {mode} preemption"),
            &path,
        )
        .expect("write trace");
    }
    println!("(Perfetto traces written to results/fig3_{{partial,full}}.trace.json)");
    println!("\nPaper claim (§3.4, obs. 1): all blocks of one request executing");
    println!("preemption together beats partial preemption — B's column drops,");
    println!("and A pays nothing for it (its last block ends at the same time).");
}
