//! Figure 7: standard deviation of execution latency per model (jitter),
//! across the six scenarios and the four systems — plus the paper's
//! headline reductions (SPLIT vs each baseline, short models, low and
//! high load).

use gpu_sim::DeviceConfig;
use qos_metrics::{per_model_std, stability_fairness};
use sched::Policy;
use split_repro::experiment;
use std::collections::HashMap;
use workload::{all_scenarios, Load};

fn main() {
    let dev = DeviceConfig::jetson_nano();
    let deployment = experiment::paper_deployment(&dev);
    let shorts = experiment::short_model_names();
    let mut rows = Vec::new();
    // (load, policy) → mean short-model std, for the headline numbers.
    let mut short_std: HashMap<(&'static str, &'static str), Vec<f64>> = HashMap::new();

    println!("Figure 7: per-model std of execution latency (ms)\n");
    for sc in all_scenarios() {
        println!("Scenario {} (λ = {:.0} ms):", sc.index, sc.lambda_ms);
        println!(
            "  {:10} {:>9} {:>9} {:>9} {:>9} {:>9}",
            "policy", "yolov2", "googlenet", "resnet50", "vgg19", "gpt2"
        );
        for policy in Policy::all_default() {
            let outcomes = experiment::scenario_outcomes(&policy, sc, &deployment);
            let stats = per_model_std(&outcomes);
            let by_name: HashMap<&str, f64> =
                stats.iter().map(|r| (r.model.as_str(), r.std_us)).collect();
            print!("  {:10}", policy.name());
            for m in experiment::PAPER_MODEL_NAMES {
                print!(" {:>9.2}", by_name.get(m).copied().unwrap_or(0.0) / 1e3);
            }
            println!();
            for r in &stats {
                rows.push(vec![
                    sc.index.to_string(),
                    policy.name().to_string(),
                    r.model.clone(),
                    format!("{:.3}", r.std_us / 1e3),
                    format!("{:.3}", r.mean_us / 1e3),
                ]);
            }
            let mean_short = shorts
                .iter()
                .map(|m| by_name.get(*m).copied().unwrap_or(0.0))
                .sum::<f64>()
                / shorts.len() as f64;
            let load = if sc.load == Load::Low { "low" } else { "high" };
            short_std
                .entry((load, policy.name()))
                .or_default()
                .push(mean_short);
        }
        println!();
    }

    // §5.5's closing claim: under SPLIT "the stability of all requests is
    // approximately at the same level" — Jain's index over per-model
    // jitter, averaged across scenarios.
    println!("Stability fairness across models (Jain's index, 1.0 = equal):");
    for policy in Policy::all_default() {
        let mut acc = 0.0;
        for sc in all_scenarios() {
            let outcomes = experiment::scenario_outcomes(&policy, sc, &deployment);
            acc += stability_fairness(&per_model_std(&outcomes));
        }
        println!("  {:10} {:.3}", policy.name(), acc / 6.0);
    }
    println!("  (§5.5 claims SPLIT levels stability across requests; we measure the");
    println!("  opposite skew — SPLIT concentrates the residual jitter on the long");
    println!("  models it splits. See EXPERIMENTS.md, known divergences.)");
    println!();

    println!("Headline: SPLIT's short-model jitter reduction vs baselines");
    println!("(paper: low load 55.3/46.8/68.9%, high load 56.0/50.3/69.3%)\n");
    for load in ["low", "high"] {
        let avg = |p: &str| {
            let v = &short_std[&(load, p)];
            v.iter().sum::<f64>() / v.len() as f64
        };
        let s = avg("SPLIT");
        println!(
            "  {:4} load: vs ClockWork {:.1}%, vs PREMA {:.1}%, vs RT-A {:.1}%",
            load,
            100.0 * (1.0 - s / avg("ClockWork")),
            100.0 * (1.0 - s / avg("PREMA")),
            100.0 * (1.0 - s / avg("RT-A")),
        );
    }

    qos_metrics::write_csv(
        &bench::results_dir().join("fig7.csv"),
        &["scenario", "policy", "model", "std_ms", "mean_ms"],
        &rows,
    )
    .expect("write csv");
    println!("\n(CSV written to results/fig7.csv)");
}
