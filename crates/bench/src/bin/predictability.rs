//! §6's "Predictability of DLI latency", quantified.
//!
//! The paper argues SPLIT's sequential execution keeps latency
//! *predictable*: at arrival, the queue state determines a request's
//! completion time up to future preemptions, whereas concurrent execution
//! makes completion depend on everything that co-runs later.
//!
//! At each arrival we issue the naive prediction a serving system would
//! (device backlog at arrival + own service time) and compare with the
//! realized end-to-end latency. The error distribution per policy is the
//! predictability measurement.

use gpu_sim::DeviceConfig;
use qos_metrics::percentile;
use sched::{simulate, Policy};
use split_repro::experiment;
use workload::{RequestTrace, Scenario};

fn main() {
    let dev = DeviceConfig::jetson_nano();
    let deployment = experiment::paper_deployment(&dev);
    let trace = RequestTrace::generate(Scenario::table2(4), &experiment::PAPER_MODEL_NAMES);

    println!("Prediction error of arrival-time latency estimates (scenario 4)\n");
    println!(
        "{:16} {:>12} {:>12} {:>12}",
        "policy", "median |err|", "p95 |err|", "worst |err|"
    );

    let mut policies = Policy::all_default();
    policies.push(Policy::StreamParallel(Default::default()));
    for policy in policies {
        let r = simulate(&policy, &trace.arrivals, deployment.table());

        // Reconstruct the backlog visible at each arrival from the realized
        // schedule: remaining device work of requests arrived-but-not-done.
        // For SPLIT-like policies the service time is the split total.
        let mut errors = Vec::with_capacity(trace.arrivals.len());
        for a in &trace.arrivals {
            let m = deployment.table().get(&a.model);
            let own = m.split_total_us();
            // Backlog: for each earlier-arrived, not-yet-finished request,
            // the work it still owes at time `a.arrival_us` (approximated
            // by its busy span overlap).
            let mut backlog = 0.0;
            for c in &r.completions {
                if c.arrival_us < a.arrival_us && c.end_us > a.arrival_us {
                    let served_so_far = (a.arrival_us - c.start_us).max(0.0);
                    let total = deployment.table().get(&c.model).split_total_us();
                    backlog += (total - served_so_far).max(0.0);
                }
            }
            let predicted = backlog + own;
            let actual = r
                .completions
                .iter()
                .find(|c| c.id == a.id)
                .expect("served")
                .e2e_us();
            errors.push((predicted - actual).abs() / 1e3);
        }
        println!(
            "{:16} {:>9.1} ms {:>9.1} ms {:>9.1} ms",
            policy.name(),
            percentile(&errors, 0.50).unwrap(),
            percentile(&errors, 0.95).unwrap(),
            errors.iter().copied().fold(0.0f64, f64::max),
        );
    }
    println!("\nReading (§6): ClockWork is the most predictable end to end — exactly");
    println!("its design goal — because nothing ever reorders. SPLIT is *perfectly*");
    println!("predictable at the median (the backlog at arrival IS the latency) and");
    println!("pays a bounded tail only where a long request is preempted by future");
    println!("shorts — the trade SPLIT makes deliberately. The concurrent schemes'");
    println!("tails miss by whole request-lengths: completion depends on who else");
    println!("shows up, which no arrival-time estimate can know.");
}
