//! Figure 2: splitting overhead and block-time standard deviation as
//! functions of the two cut-point positions.
//!
//! Sweeps every (c1, c2) pair (strided) over ResNet-50, writes the full
//! grid to CSV (for heatmap plotting), and prints the marginal profiles
//! that exhibit the paper's two observations:
//!
//! * (a) cutting at *earlier* operators costs more overhead, and
//! * (b) cutting at the extremes yields *uneven* blocks; the even optimum
//!   sits near — slightly before — the middle.

use gpu_sim::DeviceConfig;
use model_zoo::ModelId;
use profiler::{sweep_one_cut, sweep_two_cuts};

fn main() {
    let dev = DeviceConfig::jetson_nano();
    let g = ModelId::ResNet50.build_calibrated(&dev);
    let m = g.op_count();

    // Full 2-cut grid (the Figure 2 heatmap), stride 2 → ~1800 candidates.
    let stride = 2;
    let grid = sweep_two_cuts(&g, &dev, stride);
    let rows: Vec<Vec<String>> = grid
        .iter()
        .map(|p| {
            vec![
                p.cuts[0].to_string(),
                p.cuts[1].to_string(),
                format!("{:.4}", p.overhead_ratio),
                format!("{:.2}", p.std_us / 1e3),
            ]
        })
        .collect();
    qos_metrics::write_csv(
        &bench::results_dir().join("fig2_grid.csv"),
        &["cut1", "cut2", "overhead_ratio", "std_ms"],
        &rows,
    )
    .expect("write csv");
    println!(
        "Figure 2 grid: {} two-cut candidates of {} profiled (resnet50, {m} ops);",
        grid.len(),
        (m - 1) * (m - 2) / 2
    );
    println!("full grid written to results/fig2_grid.csv\n");

    // Marginal single-cut profile — the readable slice of both panels.
    let one = sweep_one_cut(&g, &dev, 1);
    println!("Single-cut marginals (position, overhead, std):");
    println!("{:>8} {:>10} {:>10}", "cut", "overhead", "std(ms)");
    for p in one.iter().step_by(8) {
        println!(
            "{:>8} {:>9.1}% {:>10.2}",
            p.cuts[0],
            100.0 * p.overhead_ratio,
            p.std_us / 1e3
        );
    }

    // Observation (a): average overhead of the earliest vs latest decile.
    let decile = one.len() / 10;
    let early: f64 = one[..decile].iter().map(|p| p.overhead_ratio).sum::<f64>() / decile as f64;
    let late: f64 = one[one.len() - decile..]
        .iter()
        .map(|p| p.overhead_ratio)
        .sum::<f64>()
        / decile as f64;
    println!(
        "\nObservation (a): early-decile overhead {:.1}% vs late-decile {:.1}% — {}",
        100.0 * early,
        100.0 * late,
        if early > late {
            "early cuts cost more ✓"
        } else {
            "UNEXPECTED"
        }
    );

    // Observation (b): where the evenness optimum sits.
    let best = one
        .iter()
        .min_by(|a, b| a.std_us.total_cmp(&b.std_us))
        .expect("non-empty sweep");
    println!(
        "Observation (b): minimum σ at cut {} = {:.0}% of the operator index — {}",
        best.cuts[0],
        100.0 * best.cuts[0] as f64 / m as f64,
        if (0.25..0.55).contains(&(best.cuts[0] as f64 / m as f64)) {
            "near the middle, slightly toward the beginning ✓"
        } else {
            "UNEXPECTED"
        }
    );
}
