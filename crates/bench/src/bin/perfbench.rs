//! Performance benchmark for the reproduction's hot paths, writing
//! machine-readable timings to `BENCH_core.json` at the repo root.
//!
//! Five families are timed (schema in DESIGN.md §10):
//!
//! * `profile_candidate_direct/<model>` vs `profile_candidate/<model>` —
//!   profiling a fixed batch of split candidates from scratch (rebuilding
//!   the per-op cost arithmetic each call) vs through a memoized
//!   [`gpu_sim::CostTable`] built once; their p50 ratio is the table's
//!   per-candidate speedup;
//! * `ga_split/<model>` — the offline GA split search per model;
//! * `ga_split_seq/gpt2` vs `ga_split_par<N>/gpt2` — the same search
//!   pinned to one pool worker vs the ambient `SPLIT_THREADS` width
//!   (their p50 ratio is the pool's speedup on population profiling);
//! * `simulate/<policy>` — one full `sched::simulate` of the Figure 6
//!   scenario-3 workload per serving policy;
//! * `telemetry/*` — deriving the metrics registry + snapshot from a
//!   lifecycle recording, and critical-path attribution over it;
//! * `sketch/*`, `window/rotate`, `drift/replay` — the drift-watch hot
//!   paths: quantile-sketch insert and merge, window-ring rotation, and
//!   replaying a full schedule through the windowed detectors (gated at
//!   ≤ 5% of simulate/SPLIT p50 in `--check` mode).
//!
//! Every entry runs `iters/5` (min 1) untimed warmup iterations, then
//! ≥ 5 timed ones, and reports `{name, p50_ns, mean_ns, iters}` plus
//! `ns_per_item` where an entry processes a counted batch. With
//! `--check`, the binary instead compares fresh p50s against the
//! committed `BENCH_core.json` and exits non-zero if any entry regressed
//! more than 3× — the CI perf-smoke gate. Without it, this is a trend
//! tool: the file is rewritten and CI only fails on a panic.

use dnn_graph::{Graph, SplitSpec};
use gpu_sim::{CostTable, DeviceConfig};
use model_zoo::ModelId;
use profiler::{profile_split, profile_split_on};
use sched::{simulate, Policy};
use serde_json::{Map, Number, Value};
use split_core::{evolve, GaConfig};
use split_repro::experiment;
use std::time::Instant;
use workload::{RequestTrace, Scenario};

/// Iterations for the slower, simulation-scale benchmarks.
const ITERS: usize = 5;
/// Iterations for the cheap telemetry + per-candidate paths.
const FAST_ITERS: usize = 100;
/// `--check` failure threshold: fresh p50 vs committed p50.
const REGRESSION_FACTOR: u64 = 3;
/// Iteration pairs for the interleaved flight-recorder on/off entries.
/// The signal (tens of µs per simulate) sits well below the per-sample
/// noise (hundreds of µs on a shared host), so the ≤ 5% gate needs
/// enough pairs for the median paired difference to converge; at ~4 ms
/// a pair this is still under a second of wall clock.
const FLIGHT_ITERS: usize = 101;
/// Ceiling on the flight recorder's p50 overhead over the same
/// simulation with the ring off (the tentpole's "measured overhead
/// budget").
const FLIGHT_OVERHEAD_LIMIT: f64 = 0.05;
/// Ceiling on the live drift-recording cost: the per-request observe
/// pair (arrival + judged completion) the serving threads pay must stay
/// ≤ 5% of simulate/SPLIT's per-request p50, so always-on drift
/// recording never becomes the serving path's bottleneck. (The full
/// `drift/replay` projection is an offline analysis and is tracked as a
/// trend entry, not gated against simulate.)
const DRIFT_OVERHEAD_LIMIT: f64 = 0.05;

struct Entry {
    name: String,
    p50_ns: u64,
    mean_ns: f64,
    iters: usize,
    /// Work items processed per iteration, when the entry times a
    /// counted batch (candidate profiles, served requests); `None` for
    /// single-artifact entries.
    items: Option<u64>,
}

/// Time `iters` runs of `f` after `iters/5` (min 1) untimed warmup runs
/// (first-touch effects — lazy allocations, cold caches — land in the
/// warmup, not the samples). The result is consumed via `drop` so the
/// optimizer cannot elide the work.
fn time<T>(name: impl Into<String>, iters: usize, mut f: impl FnMut() -> T) -> Entry {
    for _ in 0..(iters / 5).max(1) {
        drop(f());
    }
    let mut samples_ns: Vec<u64> = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        let out = f();
        samples_ns.push(t0.elapsed().as_nanos() as u64);
        drop(out);
    }
    Entry::from_samples(name, samples_ns)
}

impl Entry {
    /// Summarize already-collected samples (the interleaved forensics
    /// pair times its own loop) and print the same report line as
    /// [`time`].
    fn from_samples(name: impl Into<String>, mut samples_ns: Vec<u64>) -> Self {
        let iters = samples_ns.len();
        samples_ns.sort_unstable();
        let p50_ns = samples_ns[samples_ns.len() / 2];
        let mean_ns = samples_ns.iter().sum::<u64>() as f64 / samples_ns.len() as f64;
        let name = name.into();
        println!(
            "{name:32} p50 {:>12} ns   mean {:>14.0} ns   ({iters} iters)",
            p50_ns, mean_ns
        );
        Entry {
            name,
            p50_ns,
            mean_ns,
            iters,
            items: None,
        }
    }
    fn with_items(mut self, items: u64) -> Self {
        self.items = Some(items);
        self
    }

    fn ns_per_item(&self) -> Option<f64> {
        self.items
            .filter(|&n| n > 0)
            .map(|n| self.p50_ns as f64 / n as f64)
    }
}

/// A deterministic batch of valid split candidates spanning the arities
/// the GA explores: strided single cuts plus evenly spaced 2–4-way
/// splits. Same batch every run, so entries are comparable across runs.
fn candidate_specs(graph: &Graph) -> Vec<SplitSpec> {
    let m = graph.op_count();
    let stride = (m / 48).max(1);
    let mut specs: Vec<SplitSpec> = (1..m)
        .step_by(stride)
        .filter_map(|c| SplitSpec::new(graph, vec![c]).ok())
        .collect();
    for k in 2..=4usize {
        let cuts: Vec<usize> = (1..k).map(|i| (i * m / k).max(i)).collect();
        if let Ok(spec) = SplitSpec::new(graph, cuts) {
            specs.push(spec);
        }
    }
    specs
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let dev = DeviceConfig::jetson_nano();
    let mut entries: Vec<Entry> = Vec::new();

    // --- Candidate profiling: direct arithmetic vs the memoized cost
    // table, over the same fixed candidate batch. ---
    for id in [ModelId::ResNet50, ModelId::Gpt2] {
        let graph = id.build_calibrated(&dev);
        let name = id.info().name;
        let specs = candidate_specs(&graph);
        let n = specs.len() as u64;
        let direct = time(
            format!("profile_candidate_direct/{name}"),
            FAST_ITERS,
            || {
                specs
                    .iter()
                    .map(|s| profile_split(&graph, s, &dev).total_us())
                    .sum::<f64>()
            },
        )
        .with_items(n);
        let table = CostTable::build(&graph, &dev);
        let memoized = time(format!("profile_candidate/{name}"), FAST_ITERS, || {
            specs
                .iter()
                .map(|s| profile_split_on(&table, s).total_us())
                .sum::<f64>()
        })
        .with_items(n);
        println!(
            "    cost-table speedup ({name}, {n} candidates): {:.2}x",
            direct.p50_ns as f64 / memoized.p50_ns.max(1) as f64
        );
        entries.push(direct);
        entries.push(memoized);
    }

    // --- Offline: GA split search on a representative long model pair. ---
    for id in [ModelId::ResNet50, ModelId::Vgg19] {
        let graph = id.build_calibrated(&dev);
        let name = id.info().name;
        entries.push(time(format!("ga_split/{name}"), ITERS, || {
            evolve(
                &graph,
                &dev,
                &GaConfig::new(3).with_seed(experiment::OFFLINE_SEED),
            )
        }));
    }

    // --- Pool: the same GA search pinned to one worker vs the ambient
    // pool width, on the op-heaviest zoo model. The ratio is the
    // work-stealing pool's speedup on population profiling; at
    // SPLIT_THREADS=1 (or on a 1-core host) the two entries coincide.
    {
        let graph = ModelId::Gpt2.build_calibrated(&dev);
        let cfg = GaConfig::new(3).with_seed(experiment::OFFLINE_SEED);
        let seq = time("ga_split_seq/gpt2", ITERS, || {
            rayon::with_threads(1, || evolve(&graph, &dev, &cfg))
        });
        let par = time(
            format!("ga_split_par{}/gpt2", rayon::current_threads()),
            ITERS,
            || evolve(&graph, &dev, &cfg),
        );
        println!(
            "    pool speedup (seq p50 / par p50, {} workers): {:.2}x",
            rayon::current_threads(),
            seq.p50_ns as f64 / par.p50_ns.max(1) as f64
        );
        entries.push(seq);
        entries.push(par);
    }

    // --- Online: one simulate() of the fig6 scenario-3 workload per policy. ---
    let deployment = experiment::paper_deployment(&dev);
    let workload = RequestTrace::generate(Scenario::table2(3), &experiment::PAPER_MODEL_NAMES);
    let requests = workload.arrivals.len() as u64;
    let mut simulate_split_p50 = 0u64;
    for policy in Policy::all_default() {
        let e = time(format!("simulate/{}", policy.name()), ITERS, || {
            simulate(&policy, &workload.arrivals, deployment.table())
        })
        .with_items(requests);
        if matches!(policy, Policy::Split(_)) {
            simulate_split_p50 = e.p50_ns;
        }
        entries.push(e);
    }

    // --- Forensics: the flight recorder's overhead on the full serving
    // path, measured as an interleaved on/off pair over the same
    // workload: samples alternate off/on so clock drift and cache state
    // hit both sides equally, and the overhead is the median of the
    // paired per-iteration differences (robust to the odd slow sample,
    // unlike a ratio of independent p50s). The subsystem's always-on
    // claim rests on this number staying ≤ 5% of p50 (checked in
    // --check mode, gated in CI). ---
    {
        let split = Policy::Split(Default::default());
        let run = |flight: bool| {
            drop(split_forensics::with_flight(flight, || {
                simulate(&split, &workload.arrivals, deployment.table())
            }));
        };
        for _ in 0..(FLIGHT_ITERS / 5).max(1) {
            run(false);
            run(true);
        }
        let mut off_ns: Vec<u64> = Vec::with_capacity(FLIGHT_ITERS);
        let mut on_ns: Vec<u64> = Vec::with_capacity(FLIGHT_ITERS);
        let mut diff_ns: Vec<i64> = Vec::with_capacity(FLIGHT_ITERS);
        for i in 0..FLIGHT_ITERS {
            // Alternate which leg goes first: the second run of a pair
            // is systematically slower (allocator and cache state left
            // by the first), and that position bias would otherwise
            // masquerade as recorder overhead.
            let first_on = i % 2 == 1;
            let t0 = Instant::now();
            run(first_on);
            let a = t0.elapsed().as_nanos() as u64;
            let t0 = Instant::now();
            run(!first_on);
            let b = t0.elapsed().as_nanos() as u64;
            let (off, on) = if first_on { (b, a) } else { (a, b) };
            off_ns.push(off);
            on_ns.push(on);
            diff_ns.push(on as i64 - off as i64);
        }
        let off = Entry::from_samples("simulate_flight_off/SPLIT", off_ns).with_items(requests);
        let on = Entry::from_samples("simulate_flight_on/SPLIT", on_ns).with_items(requests);
        diff_ns.sort_unstable();
        let overhead = diff_ns[diff_ns.len() / 2] as f64 / off.p50_ns.max(1) as f64;
        println!(
            "    flight-recorder overhead on simulate/SPLIT: {:+.2}% p50 (median paired diff)",
            100.0 * overhead
        );
        if check && overhead > FLIGHT_OVERHEAD_LIMIT {
            eprintln!(
                "\nperf-smoke FAILED: flight recorder costs {:.2}% p50 on simulate/SPLIT \
                 (limit {:.0}%)",
                100.0 * overhead,
                100.0 * FLIGHT_OVERHEAD_LIMIT
            );
            std::process::exit(1);
        }
        entries.push(off);
        entries.push(on);
    }

    // --- Forensics: the raw seqlock write path — what a live server
    // thread pays per causal event it pushes into the shared ring
    // (simulate's flight view is a lazy projection and never touches
    // it). ---
    {
        let ring = split_forensics::FlightRing::with_capacity(8_192);
        let n = 8_192u64;
        entries.push(
            time("flight_ring/record", FAST_ITERS, || {
                for i in 0..n {
                    ring.record(i as f64, i, split_forensics::FlightKind::BlockStart, i, i);
                }
            })
            .with_items(n),
        );
    }

    // --- Telemetry: registry/snapshot and attribution over one recording. ---
    let result = simulate(
        &Policy::Split(Default::default()),
        &workload.arrivals,
        deployment.table(),
    );
    entries.push(time("telemetry/registry_snapshot", FAST_ITERS, || {
        result.metrics().snapshot()
    }));
    entries.push(time("telemetry/attribution", FAST_ITERS, || {
        result.attribution()
    }));

    // --- Drift watch: the sketch and window hot paths, plus the full
    // drift projection's cost relative to the simulate it watches. ---
    {
        use split_repro::split_telemetry::sketch::QuantileSketch;
        use split_repro::split_watch::{WatchCfg, WindowRing};
        // Deterministic sample stream (xorshift64*): same values every
        // run, so entries are comparable across runs.
        let mut state = 0x5EED_1234_ABCDu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % 1_000_000
        };
        let samples: Vec<u64> = (0..65_536).map(|_| next()).collect();
        entries.push(
            time("sketch/insert", FAST_ITERS, || {
                let mut s = QuantileSketch::default();
                for &v in &samples {
                    s.record(v);
                }
                s
            })
            .with_items(samples.len() as u64),
        );
        let shards: Vec<QuantileSketch> = samples
            .chunks(1_024)
            .map(|c| {
                let mut s = QuantileSketch::default();
                for &v in c {
                    s.record(v);
                }
                s
            })
            .collect();
        entries.push(
            time("sketch/merge", FAST_ITERS, || {
                let mut out = QuantileSketch::default();
                for s in &shards {
                    out.merge(s);
                }
                out
            })
            .with_items(shards.len() as u64),
        );
        // 256 windows × 4 observations each; the entry times the whole
        // feed, the per-item figure is the cost of one rotation.
        let windows = 256u64;
        entries.push(
            time("window/rotate", FAST_ITERS, || {
                let mut ring = WindowRing::new(1_000.0, 64, 0.01);
                for w in 0..windows {
                    for i in 0..4u64 {
                        let t = w as f64 * 1_000.0 + 1.0 + i as f64 * 200.0;
                        ring.observe_arrival(t, "m");
                        ring.observe_completion(t, "m", 2_000.0, false);
                    }
                }
                ring.finalize()
            })
            .with_items(windows),
        );
        // The live recording path: what a serving thread pays per
        // request (one arrival + one judged completion) with the model
        // mix the paper serves. One huge window isolates the record
        // cost; rotation is amortized and timed by window/rotate.
        let record_pairs = 4_096u64;
        let record = time("drift/record", FAST_ITERS, || {
            let mut ring = WindowRing::new(1e12, 64, 0.01);
            for i in 0..record_pairs {
                let model = experiment::PAPER_MODEL_NAMES
                    [(i % experiment::PAPER_MODEL_NAMES.len() as u64) as usize];
                let t = i as f64 * 10.0;
                ring.observe_arrival(t, model);
                ring.observe_completion(
                    t + 5.0,
                    model,
                    2_000.0 + (i % 7) as f64 * 900.0,
                    i % 9 == 0,
                );
            }
            ring
        })
        .with_items(record_pairs);
        let per_request = record.ns_per_item().unwrap_or(0.0);
        let sim_per_request = simulate_split_p50 as f64 / requests.max(1) as f64;
        let overhead = per_request / sim_per_request.max(1.0);
        println!(
            "    drift-recording cost per request: {per_request:.0} ns \
             ({:.2}% of simulate/SPLIT per-request p50)",
            100.0 * overhead
        );
        if check && overhead > DRIFT_OVERHEAD_LIMIT {
            eprintln!(
                "\nperf-smoke FAILED: drift recording costs {:.2}% of simulate/SPLIT \
                 per-request p50 (limit {:.0}%)",
                100.0 * overhead,
                100.0 * DRIFT_OVERHEAD_LIMIT
            );
            std::process::exit(1);
        }
        entries.push(record);
        entries.push(
            time("drift/replay", ITERS, || result.drift(WatchCfg::default())).with_items(requests),
        );
    }

    let path = bench::results_dir().join("../BENCH_core.json");
    if check {
        check_against_committed(&path, &entries);
        return;
    }

    let doc = Value::Array(
        entries
            .iter()
            .map(|e| {
                let mut m = Map::new();
                m.insert("name", Value::String(e.name.clone()));
                m.insert("p50_ns", Value::Number(Number::PosInt(e.p50_ns)));
                m.insert("mean_ns", Value::Number(Number::Float(e.mean_ns)));
                m.insert("iters", Value::Number(Number::PosInt(e.iters as u64)));
                if let Some(per_item) = e.ns_per_item() {
                    m.insert("ns_per_item", Value::Number(Number::Float(per_item)));
                }
                Value::Object(m)
            })
            .collect(),
    );
    let text = serde_json::to_string_pretty(&doc).expect("serialize");
    std::fs::write(&path, text + "\n").expect("write BENCH_core.json");
    println!("\n{} entries written to BENCH_core.json", entries.len());
}

/// `--check` mode: every fresh entry whose name exists in the committed
/// baseline must have p50 within [`REGRESSION_FACTOR`]× of the committed
/// p50. Names missing from the baseline (new entries) are skipped, and
/// the file is never rewritten, so the gate cannot ratchet itself.
fn check_against_committed(path: &std::path::Path, entries: &[Entry]) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("read {} for --check: {e}", path.display()));
    let committed = serde_json::parse(&text).expect("parse committed BENCH_core.json");
    let baseline = committed.as_array().expect("baseline is a JSON array");
    let p50_of = |name: &str| -> Option<u64> {
        baseline
            .iter()
            .find(|v| v.get("name").and_then(Value::as_str) == Some(name))
            .and_then(|v| v.get("p50_ns"))
            .and_then(Value::as_u64)
    };
    let mut failures = Vec::new();
    for e in entries {
        let Some(base) = p50_of(&e.name).filter(|&b| b > 0) else {
            println!("    (no committed baseline for {}, skipped)", e.name);
            continue;
        };
        if e.p50_ns > REGRESSION_FACTOR * base {
            failures.push(format!(
                "{}: fresh p50 {} ns is {:.1}x the committed {} ns (limit {}x)",
                e.name,
                e.p50_ns,
                e.p50_ns as f64 / base as f64,
                base,
                REGRESSION_FACTOR
            ));
        }
    }
    if failures.is_empty() {
        println!(
            "\nperf-smoke: all {} baselined entries within {}x of committed p50",
            entries.len(),
            REGRESSION_FACTOR
        );
    } else {
        eprintln!("\nperf-smoke FAILED:");
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
}
