//! Performance benchmark for the reproduction's hot paths, writing
//! machine-readable timings to `BENCH_core.json` at the repo root.
//!
//! Five families are timed (schema in DESIGN.md §10):
//!
//! * `profile_candidate_direct/<model>` vs `profile_candidate/<model>` —
//!   profiling a fixed batch of split candidates from scratch (rebuilding
//!   the per-op cost arithmetic each call) vs through a memoized
//!   [`gpu_sim::CostTable`] built once; their p50 ratio is the table's
//!   per-candidate speedup;
//! * `ga_split/<model>` — the offline GA split search per model;
//! * `ga_split_seq/gpt2` vs `ga_split_par<N>/gpt2` — the same search
//!   pinned to one pool worker vs the ambient `SPLIT_THREADS` width
//!   (their p50 ratio is the pool's speedup on population profiling);
//! * `simulate/<policy>` — one full `sched::simulate` of the Figure 6
//!   scenario-3 workload per serving policy;
//! * `telemetry/*` — deriving the metrics registry + snapshot from a
//!   lifecycle recording, and critical-path attribution over it;
//! * `sketch/*`, `window/rotate`, `drift/replay` — the drift-watch hot
//!   paths: quantile-sketch insert and merge, window-ring rotation, and
//!   replaying a full schedule through the windowed detectors (gated at
//!   ≤ 5% of simulate/SPLIT p50 in `--check` mode);
//! * `decision_core/contend{8,16,32,64}` (and `…_mutex` controls) — the
//!   combining decision core under client-thread contention: N threads
//!   hammer scheduler decisions and every operation's publish→applied
//!   latency lands in a shared histogram, reported as p50/p99/p999. The
//!   `…_mutex` twins run the identical handler through the old
//!   lock-per-operation path, so the committed pair is the measured
//!   combining-vs-lock-handoff gap.
//!
//! Every entry runs `iters/5` (min 1) untimed warmup iterations, then
//! ≥ 5 timed ones, and reports `{name, p50_ns, mean_ns, iters}` plus
//! `ns_per_item` where an entry processes a counted batch (the
//! decision-core entries add `p99_ns`/`p999_ns` from their latency
//! histogram). With `--check`, the binary instead compares fresh p50s
//! against the committed `BENCH_core.json` and exits non-zero if any
//! entry regressed more than 3× — the CI perf-smoke gate. Without it,
//! this is a trend tool: the file is rewritten and CI only fails on a
//! panic.
//!
//! * `fleet/route` and `fleet/simulate{4,16}` — the cluster router over
//!   a 16-device fleet, and the sharded engine serving one fixed
//!   absolute offered load on a 4-shard vs a 16-shard fleet. The load
//!   oversubscribes the small fleet 1.8× while the large one runs at
//!   0.45, so the committed `ns_per_item` ratio is the sharded engine's
//!   4→16 throughput scaling (gated ≥ 2× in CI's `fleet` job).
//!
//! Positional arguments are name-prefix filters (`perfbench
//! decision_core/contend8` runs just that contention pair). Neither a
//! filtered run nor a `--smoke` run ever rewrites `BENCH_core.json`:
//! `--smoke` shrinks the contention and fleet workloads for CI
//! functional coverage, and those shrunk timings must never become the
//! committed baseline (a filtered smoke run like `perfbench fleet
//! --smoke` is the intended cheap pre-merge probe).

use dnn_graph::{Graph, SplitSpec};
use gpu_sim::{CostTable, DeviceConfig};
use model_zoo::ModelId;
use profiler::{profile_split, profile_split_on};
use sched::{simulate, Policy};
use serde_json::{Map, Number, Value};
use split_core::{evolve, GaConfig};
use split_repro::experiment;
use std::time::Instant;
use workload::{RequestTrace, Scenario};

/// Iterations for the slower, simulation-scale benchmarks.
const ITERS: usize = 5;
/// Iterations for the cheap telemetry + per-candidate paths.
const FAST_ITERS: usize = 100;
/// `--check` failure threshold: fresh p50 vs committed p50.
const REGRESSION_FACTOR: u64 = 3;
/// Iteration pairs for the interleaved flight-recorder on/off entries.
/// The signal (tens of µs per simulate) sits well below the per-sample
/// noise (hundreds of µs on a shared host), so the ≤ 5% gate needs
/// enough pairs for the median paired difference to converge; at ~4 ms
/// a pair this is still under a second of wall clock.
const FLIGHT_ITERS: usize = 101;
/// Ceiling on the flight recorder's p50 overhead over the same
/// simulation with the ring off (the tentpole's "measured overhead
/// budget").
const FLIGHT_OVERHEAD_LIMIT: f64 = 0.05;
/// Ceiling on the live drift-recording cost: the per-request observe
/// pair (arrival + judged completion) the serving threads pay must stay
/// ≤ 5% of simulate/SPLIT's per-request p50, so always-on drift
/// recording never becomes the serving path's bottleneck. (The full
/// `drift/replay` projection is an offline analysis and is tracked as a
/// trend entry, not gated against simulate.)
const DRIFT_OVERHEAD_LIMIT: f64 = 0.05;

struct Entry {
    name: String,
    p50_ns: u64,
    mean_ns: f64,
    iters: usize,
    /// Work items processed per iteration, when the entry times a
    /// counted batch (candidate profiles, served requests); `None` for
    /// single-artifact entries.
    items: Option<u64>,
    /// Tail percentiles, for entries backed by a per-operation latency
    /// histogram (the decision-core contention family) rather than
    /// per-iteration wall samples.
    p99_ns: Option<u64>,
    p999_ns: Option<u64>,
}

/// Time `iters` runs of `f` after `iters/5` (min 1) untimed warmup runs
/// (first-touch effects — lazy allocations, cold caches — land in the
/// warmup, not the samples). The result is consumed via `drop` so the
/// optimizer cannot elide the work.
fn time<T>(name: impl Into<String>, iters: usize, mut f: impl FnMut() -> T) -> Entry {
    for _ in 0..(iters / 5).max(1) {
        drop(f());
    }
    let mut samples_ns: Vec<u64> = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        let out = f();
        samples_ns.push(t0.elapsed().as_nanos() as u64);
        drop(out);
    }
    Entry::from_samples(name, samples_ns)
}

impl Entry {
    /// Summarize already-collected samples (the interleaved forensics
    /// pair times its own loop) and print the same report line as
    /// [`time`].
    fn from_samples(name: impl Into<String>, mut samples_ns: Vec<u64>) -> Self {
        let iters = samples_ns.len();
        samples_ns.sort_unstable();
        let p50_ns = samples_ns[samples_ns.len() / 2];
        let mean_ns = samples_ns.iter().sum::<u64>() as f64 / samples_ns.len() as f64;
        let name = name.into();
        println!(
            "{name:32} p50 {:>12} ns   mean {:>14.0} ns   ({iters} iters)",
            p50_ns, mean_ns
        );
        Entry {
            name,
            p50_ns,
            mean_ns,
            iters,
            items: None,
            p99_ns: None,
            p999_ns: None,
        }
    }

    /// Summarize a per-operation latency histogram (publish→applied
    /// decision latencies): p50/p99/p999 come from the histogram's
    /// log-bucketed quantiles, `iters` is the operation count.
    fn from_decision_stats(name: impl Into<String>, stats: &split_runtime::DecisionStats) -> Self {
        let name = name.into();
        let (p50, p99, p999) = (stats.p50_ns(), stats.p99_ns(), stats.p999_ns());
        println!(
            "{name:32} p50 {:>9} ns   p99 {:>9} ns   p999 {:>9} ns   ({} ops)",
            p50,
            p99,
            p999,
            stats.count()
        );
        Entry {
            name,
            p50_ns: p50,
            mean_ns: stats.mean_ns(),
            iters: stats.count() as usize,
            items: None,
            p99_ns: Some(p99),
            p999_ns: Some(p999),
        }
    }

    fn with_items(mut self, items: u64) -> Self {
        self.items = Some(items);
        self
    }

    fn ns_per_item(&self) -> Option<f64> {
        self.items
            .filter(|&n| n > 0)
            .map(|n| self.p50_ns as f64 / n as f64)
    }
}

/// A deterministic batch of valid split candidates spanning the arities
/// the GA explores: strided single cuts plus evenly spaced 2–4-way
/// splits. Same batch every run, so entries are comparable across runs.
fn candidate_specs(graph: &Graph) -> Vec<SplitSpec> {
    let m = graph.op_count();
    let stride = (m / 48).max(1);
    let mut specs: Vec<SplitSpec> = (1..m)
        .step_by(stride)
        .filter_map(|c| SplitSpec::new(graph, vec![c]).ok())
        .collect();
    for k in 2..=4usize {
        let cuts: Vec<usize> = (1..k).map(|i| (i * m / k).max(i)).collect();
        if let Ok(spec) = SplitSpec::new(graph, cuts) {
            specs.push(spec);
        }
    }
    specs
}

/// Shared state for the decision-core contention benchmark: the
/// scheduler queue the decision scans plus the latency histogram every
/// operation lands in.
struct DecisionBenchState {
    queue: Vec<u64>,
    stats: split_runtime::DecisionStats,
}

/// The SPLIT decision shape on the combining core's hot path: scan the
/// deadline-ordered queue for the preemption position, insert, keep the
/// queue at serving depth — then account the operation's
/// publish→applied latency. Identical for both cores, so the committed
/// pair isolates the synchronization discipline.
fn decision_bench_handler(st: &mut DecisionBenchState, deadline: u64, publish: Instant) -> usize {
    let pos = st
        .queue
        .iter()
        .position(|&d| d > deadline)
        .unwrap_or(st.queue.len());
    st.queue.insert(pos, deadline);
    if st.queue.len() > 32 {
        st.queue.pop();
    }
    st.stats.record(publish.elapsed().as_nanos() as u64);
    pos
}

/// Run `threads` client threads, each submitting `ops` decisions
/// through `submit`, after a warmup round whose latencies `reset`
/// discards.
/// Closed-loop contention harness: `threads` clients split `total_ops`
/// submissions between them, each sleeping a pseudo-random think time
/// after every response before issuing the next request.
///
/// Think time scales with the thread count so the *aggregate* offered
/// load stays roughly constant as threads grow — the standard
/// closed-loop discipline for isolating synchronization cost. Without
/// it, N busy-loop clients oversubscribe the host's cores and the
/// benchmark measures OS lock-holder preemption (any thread
/// descheduled mid-decision strands the rest for whole scheduling
/// quanta), not the decision path under contention.
fn contend(threads: usize, total_ops: usize, submit: &(dyn Fn(u64) + Sync), reset: impl FnOnce()) {
    let per_thread = (total_ops / threads).max(1);
    let round = |per_thread: usize| {
        std::thread::scope(|s| {
            for t in 0..threads {
                s.spawn(move || {
                    // Deterministic per-thread deadline stream so the
                    // queue scan does real ordering work.
                    let mut x = 0x9E37_79B9u64.wrapping_mul(t as u64 + 1);
                    for _ in 0..per_thread {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        submit(x % 1_000_000);
                        std::thread::sleep(std::time::Duration::from_micros(
                            1 + x % (16 * threads as u64),
                        ));
                    }
                });
            }
        });
    };
    round((per_thread / 5).max(1));
    reset();
    round(per_thread);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    let smoke = args.iter().any(|a| a == "--smoke");
    let filters: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .collect();
    // Two-way prefix match so `decision_core` selects the whole family
    // and `decision_core/contend8` narrows to one pair; called with
    // family prefixes below, so either direction may be the longer one.
    let selected = |name: &str| {
        filters.is_empty()
            || filters
                .iter()
                .any(|f| name.starts_with(f.as_str()) || f.starts_with(name))
    };
    let dev = DeviceConfig::jetson_nano();
    let mut entries: Vec<Entry> = Vec::new();

    // --- Candidate profiling: direct arithmetic vs the memoized cost
    // table, over the same fixed candidate batch. ---
    if selected("profile_candidate") {
        for id in [ModelId::ResNet50, ModelId::Gpt2] {
            let graph = id.build_calibrated(&dev);
            let name = id.info().name;
            let specs = candidate_specs(&graph);
            let n = specs.len() as u64;
            let direct = time(
                format!("profile_candidate_direct/{name}"),
                FAST_ITERS,
                || {
                    specs
                        .iter()
                        .map(|s| profile_split(&graph, s, &dev).total_us())
                        .sum::<f64>()
                },
            )
            .with_items(n);
            let table = CostTable::build(&graph, &dev);
            let memoized = time(format!("profile_candidate/{name}"), FAST_ITERS, || {
                specs
                    .iter()
                    .map(|s| profile_split_on(&table, s).total_us())
                    .sum::<f64>()
            })
            .with_items(n);
            println!(
                "    cost-table speedup ({name}, {n} candidates): {:.2}x",
                direct.p50_ns as f64 / memoized.p50_ns.max(1) as f64
            );
            entries.push(direct);
            entries.push(memoized);
        }
    }

    // --- Offline: GA split search on a representative long model pair. ---
    if selected("ga_split") {
        for id in [ModelId::ResNet50, ModelId::Vgg19] {
            let graph = id.build_calibrated(&dev);
            let name = id.info().name;
            entries.push(time(format!("ga_split/{name}"), ITERS, || {
                evolve(
                    &graph,
                    &dev,
                    &GaConfig::new(3).with_seed(experiment::OFFLINE_SEED),
                )
            }));
        }
    }

    // --- Pool: the same GA search pinned to one worker vs the ambient
    // pool width, on the op-heaviest zoo model. The ratio is the
    // work-stealing pool's speedup on population profiling; at
    // SPLIT_THREADS=1 (or on a 1-core host) the two entries coincide.
    if selected("ga_split_seq") || selected("ga_split_par") {
        let graph = ModelId::Gpt2.build_calibrated(&dev);
        let cfg = GaConfig::new(3).with_seed(experiment::OFFLINE_SEED);
        let seq = time("ga_split_seq/gpt2", ITERS, || {
            rayon::with_threads(1, || evolve(&graph, &dev, &cfg))
        });
        let par = time(
            format!("ga_split_par{}/gpt2", rayon::current_threads()),
            ITERS,
            || evolve(&graph, &dev, &cfg),
        );
        println!(
            "    pool speedup (seq p50 / par p50, {} workers): {:.2}x",
            rayon::current_threads(),
            seq.p50_ns as f64 / par.p50_ns.max(1) as f64
        );
        entries.push(seq);
        entries.push(par);
    }

    // --- The simulation-backed families share one deployment and
    // workload; none of it is built when the filters skip them all. ---
    let need_workload = selected("simulate")
        || selected("simulate_flight")
        || selected("telemetry")
        || selected("sketch")
        || selected("window")
        || selected("drift");
    let mut simulate_split_p50 = 0u64;
    if need_workload {
        // --- Online: one simulate() of the fig6 scenario-3 workload per policy. ---
        let deployment = experiment::paper_deployment(&dev);
        let workload = RequestTrace::generate(Scenario::table2(3), &experiment::PAPER_MODEL_NAMES);
        let requests = workload.arrivals.len() as u64;
        if selected("simulate") {
            for policy in Policy::all_default() {
                let e = time(format!("simulate/{}", policy.name()), ITERS, || {
                    simulate(&policy, &workload.arrivals, deployment.table())
                })
                .with_items(requests);
                if matches!(policy, Policy::Split(_)) {
                    simulate_split_p50 = e.p50_ns;
                }
                entries.push(e);
            }
        }

        // --- Forensics: the flight recorder's overhead on the full serving
        // path, measured as an interleaved on/off pair over the same
        // workload: samples alternate off/on so clock drift and cache state
        // hit both sides equally, and the overhead is the median of the
        // paired per-iteration differences (robust to the odd slow sample,
        // unlike a ratio of independent p50s). The subsystem's always-on
        // claim rests on this number staying ≤ 5% of p50 (checked in
        // --check mode, gated in CI). ---
        if selected("simulate_flight") {
            let split = Policy::Split(Default::default());
            let run = |flight: bool| {
                drop(split_forensics::with_flight(flight, || {
                    simulate(&split, &workload.arrivals, deployment.table())
                }));
            };
            for _ in 0..(FLIGHT_ITERS / 5).max(1) {
                run(false);
                run(true);
            }
            let mut off_ns: Vec<u64> = Vec::with_capacity(FLIGHT_ITERS);
            let mut on_ns: Vec<u64> = Vec::with_capacity(FLIGHT_ITERS);
            let mut diff_ns: Vec<i64> = Vec::with_capacity(FLIGHT_ITERS);
            for i in 0..FLIGHT_ITERS {
                // Alternate which leg goes first: the second run of a pair
                // is systematically slower (allocator and cache state left
                // by the first), and that position bias would otherwise
                // masquerade as recorder overhead.
                let first_on = i % 2 == 1;
                let t0 = Instant::now();
                run(first_on);
                let a = t0.elapsed().as_nanos() as u64;
                let t0 = Instant::now();
                run(!first_on);
                let b = t0.elapsed().as_nanos() as u64;
                let (off, on) = if first_on { (b, a) } else { (a, b) };
                off_ns.push(off);
                on_ns.push(on);
                diff_ns.push(on as i64 - off as i64);
            }
            let off = Entry::from_samples("simulate_flight_off/SPLIT", off_ns).with_items(requests);
            let on = Entry::from_samples("simulate_flight_on/SPLIT", on_ns).with_items(requests);
            diff_ns.sort_unstable();
            let overhead = diff_ns[diff_ns.len() / 2] as f64 / off.p50_ns.max(1) as f64;
            println!(
                "    flight-recorder overhead on simulate/SPLIT: {:+.2}% p50 (median paired diff)",
                100.0 * overhead
            );
            if check && overhead > FLIGHT_OVERHEAD_LIMIT {
                eprintln!(
                    "\nperf-smoke FAILED: flight recorder costs {:.2}% p50 on simulate/SPLIT \
                 (limit {:.0}%)",
                    100.0 * overhead,
                    100.0 * FLIGHT_OVERHEAD_LIMIT
                );
                std::process::exit(1);
            }
            entries.push(off);
            entries.push(on);
        }

        // --- Telemetry and drift share one recorded simulation. ---
        if selected("telemetry") || selected("sketch") || selected("window") || selected("drift") {
            let result = simulate(
                &Policy::Split(Default::default()),
                &workload.arrivals,
                deployment.table(),
            );
            if selected("telemetry") {
                entries.push(time("telemetry/registry_snapshot", FAST_ITERS, || {
                    result.metrics().snapshot()
                }));
                entries.push(time("telemetry/attribution", FAST_ITERS, || {
                    result.attribution()
                }));
            }

            // --- Drift watch: the sketch and window hot paths, plus the full
            // drift projection's cost relative to the simulate it watches. ---
            if selected("sketch") || selected("window") || selected("drift") {
                use split_repro::split_telemetry::sketch::QuantileSketch;
                use split_repro::split_watch::{WatchCfg, WindowRing};
                // Deterministic sample stream (xorshift64*): same values every
                // run, so entries are comparable across runs.
                let mut state = 0x5EED_1234_ABCDu64;
                let mut next = move || {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    state % 1_000_000
                };
                let samples: Vec<u64> = (0..65_536).map(|_| next()).collect();
                entries.push(
                    time("sketch/insert", FAST_ITERS, || {
                        let mut s = QuantileSketch::default();
                        for &v in &samples {
                            s.record(v);
                        }
                        s
                    })
                    .with_items(samples.len() as u64),
                );
                let shards: Vec<QuantileSketch> = samples
                    .chunks(1_024)
                    .map(|c| {
                        let mut s = QuantileSketch::default();
                        for &v in c {
                            s.record(v);
                        }
                        s
                    })
                    .collect();
                entries.push(
                    time("sketch/merge", FAST_ITERS, || {
                        let mut out = QuantileSketch::default();
                        for s in &shards {
                            out.merge(s);
                        }
                        out
                    })
                    .with_items(shards.len() as u64),
                );
                // 256 windows × 4 observations each; the entry times the whole
                // feed, the per-item figure is the cost of one rotation.
                let windows = 256u64;
                entries.push(
                    time("window/rotate", FAST_ITERS, || {
                        let mut ring = WindowRing::new(1_000.0, 64, 0.01);
                        for w in 0..windows {
                            for i in 0..4u64 {
                                let t = w as f64 * 1_000.0 + 1.0 + i as f64 * 200.0;
                                ring.observe_arrival(t, "m");
                                ring.observe_completion(t, "m", 2_000.0, false);
                            }
                        }
                        ring.finalize()
                    })
                    .with_items(windows),
                );
                // The live recording path: what a serving thread pays per
                // request (one arrival + one judged completion) with the model
                // mix the paper serves. One huge window isolates the record
                // cost; rotation is amortized and timed by window/rotate.
                let record_pairs = 4_096u64;
                let record = time("drift/record", FAST_ITERS, || {
                    let mut ring = WindowRing::new(1e12, 64, 0.01);
                    for i in 0..record_pairs {
                        let model = experiment::PAPER_MODEL_NAMES
                            [(i % experiment::PAPER_MODEL_NAMES.len() as u64) as usize];
                        let t = i as f64 * 10.0;
                        ring.observe_arrival(t, model);
                        ring.observe_completion(
                            t + 5.0,
                            model,
                            2_000.0 + (i % 7) as f64 * 900.0,
                            i % 9 == 0,
                        );
                    }
                    ring
                })
                .with_items(record_pairs);
                let per_request = record.ns_per_item().unwrap_or(0.0);
                let sim_per_request = simulate_split_p50 as f64 / requests.max(1) as f64;
                let overhead = per_request / sim_per_request.max(1.0);
                if simulate_split_p50 > 0 {
                    println!(
                        "    drift-recording cost per request: {per_request:.0} ns \
                 ({:.2}% of simulate/SPLIT per-request p50)",
                        100.0 * overhead
                    );
                }
                if check && simulate_split_p50 > 0 && overhead > DRIFT_OVERHEAD_LIMIT {
                    eprintln!(
                        "\nperf-smoke FAILED: drift recording costs {:.2}% of simulate/SPLIT \
                 per-request p50 (limit {:.0}%)",
                        100.0 * overhead,
                        100.0 * DRIFT_OVERHEAD_LIMIT
                    );
                    std::process::exit(1);
                }
                entries.push(record);
                entries.push(
                    time("drift/replay", ITERS, || result.drift(WatchCfg::default()))
                        .with_items(requests),
                );
            }
        }
    }

    // --- Forensics: the raw seqlock write path — what a live server
    // thread pays per causal event it pushes into the shared ring
    // (simulate's flight view is a lazy projection and never touches
    // it). ---
    if selected("flight_ring") {
        let ring = split_forensics::FlightRing::with_capacity(8_192);
        let n = 8_192u64;
        entries.push(
            time("flight_ring/record", FAST_ITERS, || {
                for i in 0..n {
                    ring.record(i as f64, i, split_forensics::FlightKind::BlockStart, i, i);
                }
            })
            .with_items(n),
        );
    }

    // --- Decision core under contention: N client threads hammer
    // scheduler decisions through the combining core and through the
    // old lock-per-operation path, identical handlers. The entries'
    // p50/p99/p999 are publish→applied latencies from the shared
    // histogram — the microsecond-decision claim of §3.4 measured under
    // the thread counts the paper's serving tier sees. ---
    if selected("decision_core") {
        let ops = if smoke { 3_200 } else { 16_000 };
        for threads in [8usize, 16, 32, 64] {
            let pair_name = format!("decision_core/contend{threads}");
            if !selected(&pair_name) {
                continue;
            }
            let combining = split_runtime::CombiningCore::new(
                DecisionBenchState {
                    queue: Vec::with_capacity(64),
                    stats: split_runtime::DecisionStats::new(),
                },
                decision_bench_handler,
            );
            contend(
                threads,
                ops,
                &|deadline| {
                    combining.submit(deadline);
                },
                || {
                    combining.with_state(|st| st.stats = split_runtime::DecisionStats::new());
                },
            );
            let comb = combining.with_state(|st| Entry::from_decision_stats(&pair_name, &st.stats));

            let mutexed = split_runtime::MutexCore::new(
                DecisionBenchState {
                    queue: Vec::with_capacity(64),
                    stats: split_runtime::DecisionStats::new(),
                },
                decision_bench_handler,
            );
            contend(
                threads,
                ops,
                &|deadline| {
                    mutexed.submit(deadline);
                },
                || {
                    mutexed.with_state(|st| st.stats = split_runtime::DecisionStats::new());
                },
            );
            let ctrl = mutexed.with_state(|st| {
                Entry::from_decision_stats(format!("{pair_name}_mutex"), &st.stats)
            });
            println!(
                "    combining-core p99 advantage over the lock path \
                 ({threads} threads): {:.1}x",
                ctrl.p99_ns.unwrap_or(0) as f64 / comb.p99_ns.unwrap_or(1).max(1) as f64
            );
            entries.push(comb);
            entries.push(ctrl);
        }
    }

    // --- Fleet: the sharded cluster engine. One fixed absolute offered
    // load (18 jetson-units of work per unit time) is served by a
    // 4-shard fleet (capacity 10 units → 1.8× oversubscribed, so lane
    // queues and the O(queue) greedy-preempt scans grow without bound)
    // and by a 16-shard fleet (capacity 40 units → 0.45 load, queues
    // stay shallow). The request stream is identical, so the committed
    // simulate4/simulate16 ns_per_item ratio is the sharded engine's
    // 4→16 throughput scaling, gated ≥ 2× by CI's `fleet` job. ---
    if selected("fleet") {
        use split_repro::split_cluster as cluster;
        const OFFERED_JETSON_UNITS: f64 = 18.0;
        let deployment = experiment::paper_deployment(&dev);
        let table = deployment.table();
        let requests = if smoke { 2_000 } else { 20_000 };
        let interval_us = cluster::mean_exec_us(table) / OFFERED_JETSON_UNITS;
        let trace = RequestTrace::generate(
            Scenario::fleet(interval_us, requests),
            &experiment::PAPER_MODEL_NAMES,
        );
        let n = trace.arrivals.len() as u64;
        let policy = Policy::Split(Default::default());
        let build = |spec: &str| {
            let spec = gpu_sim::FleetSpec::parse(spec).expect("bench fleet spec");
            let fleet = cluster::Fleet::new(&spec, table);
            let placement = cluster::Placement::full(&fleet, table);
            (fleet, placement)
        };
        if selected("fleet/route") {
            let (fleet, placement) = build("jetson*8,nx:1*8");
            entries.push(
                time("fleet/route", FAST_ITERS, || {
                    cluster::route(
                        &trace.arrivals,
                        &fleet,
                        &placement,
                        &cluster::RouteCfg::default(),
                    )
                })
                .with_items(n),
            );
        }
        for (shards, spec) in [(4usize, "jetson*2,nx:1*2"), (16, "jetson*8,nx:1*8")] {
            let name = format!("fleet/simulate{shards}");
            if !selected(&name) {
                continue;
            }
            let (fleet, placement) = build(spec);
            assert_eq!(fleet.devices().len(), shards, "bench spec drifted");
            entries.push(
                time(name, ITERS, || {
                    cluster::simulate_fleet(
                        &policy,
                        &trace.arrivals,
                        &fleet,
                        &placement,
                        &cluster::RouteCfg::default(),
                    )
                })
                .with_items(n),
            );
        }
        if let (Some(small), Some(big)) = (
            entries.iter().find(|e| e.name == "fleet/simulate4"),
            entries.iter().find(|e| e.name == "fleet/simulate16"),
        ) {
            println!(
                "    4→16-shard throughput scaling on a fixed offered load: {:.2}x",
                small.p50_ns as f64 / big.p50_ns.max(1) as f64
            );
        }
    }

    let path = bench::results_dir().join("../BENCH_core.json");
    if check {
        check_against_committed(&path, &entries);
        return;
    }
    // Shrunk (--smoke) timings must never become the committed
    // baseline, and a filtered run measures only a slice of it.
    if !filters.is_empty() || smoke {
        let kind = match (filters.is_empty(), smoke) {
            (false, true) => "filtered smoke",
            (false, false) => "filtered",
            _ => "smoke",
        };
        println!(
            "\n{} entries from a {kind} run — BENCH_core.json left untouched",
            entries.len()
        );
        return;
    }

    let doc = Value::Array(
        entries
            .iter()
            .map(|e| {
                let mut m = Map::new();
                m.insert("name", Value::String(e.name.clone()));
                m.insert("p50_ns", Value::Number(Number::PosInt(e.p50_ns)));
                m.insert("mean_ns", Value::Number(Number::Float(e.mean_ns)));
                m.insert("iters", Value::Number(Number::PosInt(e.iters as u64)));
                if let Some(per_item) = e.ns_per_item() {
                    m.insert("ns_per_item", Value::Number(Number::Float(per_item)));
                }
                if let Some(p99) = e.p99_ns {
                    m.insert("p99_ns", Value::Number(Number::PosInt(p99)));
                }
                if let Some(p999) = e.p999_ns {
                    m.insert("p999_ns", Value::Number(Number::PosInt(p999)));
                }
                Value::Object(m)
            })
            .collect(),
    );
    let text = serde_json::to_string_pretty(&doc).expect("serialize");
    std::fs::write(&path, text + "\n").expect("write BENCH_core.json");
    println!("\n{} entries written to BENCH_core.json", entries.len());
}

/// `--check` mode: every fresh entry whose name exists in the committed
/// baseline must have p50 within [`REGRESSION_FACTOR`]× of the committed
/// p50. Names missing from the baseline (new entries) are skipped, and
/// the file is never rewritten, so the gate cannot ratchet itself.
fn check_against_committed(path: &std::path::Path, entries: &[Entry]) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("read {} for --check: {e}", path.display()));
    let committed = serde_json::parse(&text).expect("parse committed BENCH_core.json");
    let baseline = committed.as_array().expect("baseline is a JSON array");
    let p50_of = |name: &str| -> Option<u64> {
        baseline
            .iter()
            .find(|v| v.get("name").and_then(Value::as_str) == Some(name))
            .and_then(|v| v.get("p50_ns"))
            .and_then(Value::as_u64)
    };
    let mut failures = Vec::new();
    for e in entries {
        // The `_mutex` entries are experimental controls (the replaced
        // architecture), kept for the p99-ratio comparison, not product
        // performance: their latency is context-switch dominated and
        // swings several-fold with host scheduler noise, so gating them
        // would only make the check flaky.
        if e.name.ends_with("_mutex") {
            continue;
        }
        let Some(base) = p50_of(&e.name).filter(|&b| b > 0) else {
            println!("    (no committed baseline for {}, skipped)", e.name);
            continue;
        };
        if e.p50_ns > REGRESSION_FACTOR * base {
            failures.push(format!(
                "{}: fresh p50 {} ns is {:.1}x the committed {} ns (limit {}x)",
                e.name,
                e.p50_ns,
                e.p50_ns as f64 / base as f64,
                base,
                REGRESSION_FACTOR
            ));
        }
    }
    if failures.is_empty() {
        println!(
            "\nperf-smoke: all {} baselined entries within {}x of committed p50",
            entries.len(),
            REGRESSION_FACTOR
        );
    } else {
        eprintln!("\nperf-smoke FAILED:");
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
}
