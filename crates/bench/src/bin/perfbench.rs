//! Performance benchmark for the reproduction's hot paths, writing
//! machine-readable timings to `BENCH_core.json` at the repo root.
//!
//! Three families are timed (schema in DESIGN.md §10):
//!
//! * `ga_split/<model>` — the offline GA split search per model;
//! * `ga_split_seq/gpt2` vs `ga_split_par<N>/gpt2` — the same search
//!   pinned to one pool worker vs the ambient `SPLIT_THREADS` width
//!   (their p50 ratio is the pool's speedup on population profiling);
//! * `simulate/<policy>` — one full `sched::simulate` of the Figure 6
//!   scenario-3 workload per serving policy;
//! * `telemetry/*` — deriving the metrics registry + snapshot from a
//!   lifecycle recording, and critical-path attribution over it.
//!
//! Every entry runs ≥ 5 iterations and reports `{name, p50_ns,
//! mean_ns, iters}`. This is a trend tool, not a gate: CI only fails
//! the job when the binary panics.

use gpu_sim::DeviceConfig;
use model_zoo::ModelId;
use sched::{simulate, Policy};
use serde_json::{Map, Number, Value};
use split_core::{evolve, GaConfig};
use split_repro::experiment;
use std::time::Instant;
use workload::{RequestTrace, Scenario};

/// Iterations for the slower, simulation-scale benchmarks.
const ITERS: usize = 5;
/// Iterations for the cheap telemetry paths.
const FAST_ITERS: usize = 100;

struct Entry {
    name: String,
    p50_ns: u64,
    mean_ns: f64,
    iters: usize,
}

/// Time `iters` runs of `f` (its result is consumed via `drop` so the
/// optimizer cannot elide the work).
fn time<T>(name: impl Into<String>, iters: usize, mut f: impl FnMut() -> T) -> Entry {
    let mut samples_ns: Vec<u64> = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        let out = f();
        samples_ns.push(t0.elapsed().as_nanos() as u64);
        drop(out);
    }
    samples_ns.sort_unstable();
    let p50_ns = samples_ns[samples_ns.len() / 2];
    let mean_ns = samples_ns.iter().sum::<u64>() as f64 / samples_ns.len() as f64;
    let name = name.into();
    println!(
        "{name:32} p50 {:>12} ns   mean {:>14.0} ns   ({iters} iters)",
        p50_ns, mean_ns
    );
    Entry {
        name,
        p50_ns,
        mean_ns,
        iters,
    }
}

fn main() {
    let dev = DeviceConfig::jetson_nano();
    let mut entries: Vec<Entry> = Vec::new();

    // --- Offline: GA split search on a representative long model pair. ---
    for id in [ModelId::ResNet50, ModelId::Vgg19] {
        let graph = id.build_calibrated(&dev);
        let name = id.info().name;
        entries.push(time(format!("ga_split/{name}"), ITERS, || {
            evolve(
                &graph,
                &dev,
                &GaConfig::new(3).with_seed(experiment::OFFLINE_SEED),
            )
        }));
    }

    // --- Pool: the same GA search pinned to one worker vs the ambient
    // pool width, on the op-heaviest zoo model. The ratio is the
    // work-stealing pool's speedup on population profiling; at
    // SPLIT_THREADS=1 (or on a 1-core host) the two entries coincide.
    {
        let graph = ModelId::Gpt2.build_calibrated(&dev);
        let cfg = GaConfig::new(3).with_seed(experiment::OFFLINE_SEED);
        let seq = time("ga_split_seq/gpt2", ITERS, || {
            rayon::with_threads(1, || evolve(&graph, &dev, &cfg))
        });
        let par = time(
            format!("ga_split_par{}/gpt2", rayon::current_threads()),
            ITERS,
            || evolve(&graph, &dev, &cfg),
        );
        println!(
            "    pool speedup (seq p50 / par p50, {} workers): {:.2}x",
            rayon::current_threads(),
            seq.p50_ns as f64 / par.p50_ns.max(1) as f64
        );
        entries.push(seq);
        entries.push(par);
    }

    // --- Online: one simulate() of the fig6 scenario-3 workload per policy. ---
    let deployment = experiment::paper_deployment(&dev);
    let workload = RequestTrace::generate(Scenario::table2(3), &experiment::PAPER_MODEL_NAMES);
    for policy in Policy::all_default() {
        entries.push(time(format!("simulate/{}", policy.name()), ITERS, || {
            simulate(&policy, &workload.arrivals, deployment.table())
        }));
    }

    // --- Telemetry: registry/snapshot and attribution over one recording. ---
    let result = simulate(
        &Policy::Split(Default::default()),
        &workload.arrivals,
        deployment.table(),
    );
    entries.push(time("telemetry/registry_snapshot", FAST_ITERS, || {
        result.metrics().snapshot()
    }));
    entries.push(time("telemetry/attribution", FAST_ITERS, || {
        result.attribution()
    }));

    let doc = Value::Array(
        entries
            .iter()
            .map(|e| {
                let mut m = Map::new();
                m.insert("name", Value::String(e.name.clone()));
                m.insert("p50_ns", Value::Number(Number::PosInt(e.p50_ns)));
                m.insert("mean_ns", Value::Number(Number::Float(e.mean_ns)));
                m.insert("iters", Value::Number(Number::PosInt(e.iters as u64)));
                Value::Object(m)
            })
            .collect(),
    );
    let path = bench::results_dir().join("../BENCH_core.json");
    let text = serde_json::to_string_pretty(&doc).expect("serialize");
    std::fs::write(&path, text + "\n").expect("write BENCH_core.json");
    println!("\n{} entries written to BENCH_core.json", entries.len());
}
