//! Preemption granularity — the §6 discussion, run as an experiment.
//!
//! The paper positions SPLIT's block granularity between two extremes:
//! request-level scheduling (ClockWork; cheap but shorts wait out whole
//! long models) and kernel-level preemption (REEF; near-zero waiting but
//! "at the cost of higher hardware dependency"). PREMA's NPU checkpoints
//! sit in between. This harness serves the same Table 2 scenario at all
//! four granularities:
//!
//! * request-level — ClockWork;
//! * checkpoint (4 ms + switch cost) — PREMA in `npu_style`;
//! * **block-level (GA plans) — SPLIT**;
//! * operator-level — an idealized REEF: preemption allowed after every
//!   operator with zero extra overhead (the hardware-assisted upper
//!   bound).

use gpu_sim::{op_times_us, DeviceConfig};
use model_zoo::{benchmark_models, ModelId};
use qos_metrics::{per_model_std, violation_rate};
use sched::policy::{PremaCfg, SplitCfg};
use sched::{simulate, ModelRuntime, ModelTable, Policy};
use split_repro::experiment;
use workload::{RequestTrace, Scenario};

fn main() {
    let dev = DeviceConfig::jetson_nano();
    let deployment = experiment::paper_deployment(&dev);

    // Operator-granularity table: every op is a "block", no added cost —
    // what REEF's hardware support would buy.
    let mut op_table = ModelTable::new();
    for (task, id) in benchmark_models().iter().enumerate() {
        let g = id.build_calibrated(&dev);
        let exec = gpu_sim::block_time_us(&g, &dev);
        if matches!(id, ModelId::ResNet50 | ModelId::Vgg19) {
            let blocks: Vec<f64> = op_times_us(&g, &dev)
                .into_iter()
                .filter(|t| *t > 0.0)
                .collect();
            op_table.insert(ModelRuntime::split(
                g.name.clone(),
                task as u32,
                exec,
                blocks,
            ));
        } else {
            op_table.insert(ModelRuntime::vanilla(g.name.clone(), task as u32, exec));
        }
    }

    let trace = RequestTrace::generate(Scenario::table2(5), &experiment::PAPER_MODEL_NAMES);
    let shorts = experiment::short_model_names();

    println!("Preemption granularity on scenario 5 (λ = 120 ms, 1000 requests)\n");
    println!(
        "{:34} {:>10} {:>10} {:>14}",
        "granularity", "viol@α=2", "viol@α=4", "short jitter"
    );

    let runs: Vec<(&str, Policy, &ModelTable)> = vec![
        (
            "request-level (ClockWork)",
            Policy::ClockWork,
            deployment.table(),
        ),
        (
            "checkpoint 4ms (PREMA, NPU hw)",
            Policy::Prema(PremaCfg::npu_style()),
            deployment.table(),
        ),
        (
            "block-level GA plans (SPLIT)",
            Policy::Split(SplitCfg {
                alpha: 4.0,
                elastic: None,
            }),
            deployment.table(),
        ),
        (
            "operator-level, free (REEF-like)",
            Policy::Split(SplitCfg {
                alpha: 4.0,
                elastic: None,
            }),
            &op_table,
        ),
    ];

    for (name, policy, table) in runs {
        let r = simulate(&policy, &trace.arrivals, table);
        let outcomes = r.outcomes();
        let short_std = per_model_std(&outcomes)
            .iter()
            .filter(|x| shorts.contains(&x.model.as_str()))
            .map(|x| x.std_us)
            .sum::<f64>()
            / shorts.len() as f64;
        println!(
            "{:34} {:>9.1}% {:>9.1}% {:>11.2} ms",
            name,
            100.0 * violation_rate(&outcomes, 2.0),
            100.0 * violation_rate(&outcomes, 4.0),
            short_std / 1e3
        );
    }

    println!("\nReading: finer granularity helps the shorts monotonically; the");
    println!("operator-level row is the zero-overhead upper bound that needs");
    println!("REEF's hardware support, while SPLIT's block row gets most of the");
    println!("benefit from software alone — the §6 positioning.");
}
