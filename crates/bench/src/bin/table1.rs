//! Table 1: the evaluated deep learning models.
//!
//! Prints our reconstruction next to the paper's reported values —
//! operator counts are matched exactly, latencies by calibration.

use bench::ms;
use gpu_sim::{block_time_us, DeviceConfig};
use model_zoo::{benchmark_models, Domain, LengthClass};
use qos_metrics::markdown_table;

fn main() {
    let dev = DeviceConfig::jetson_nano();
    let mut rows = Vec::new();
    for id in benchmark_models() {
        let info = id.info();
        let g = id.build_calibrated(&dev);
        let measured = block_time_us(&g, &dev);
        rows.push(vec![
            info.name.to_string(),
            g.op_count().to_string(),
            match info.domain {
                Domain::Classification => "Image Classification",
                Domain::Detection => "Object Detection",
                Domain::TextGeneration => "Text Generation",
            }
            .to_string(),
            ms(measured, 2),
            format!("{:.2}", info.latency_ms),
            match info.class {
                LengthClass::Short => "Short",
                LengthClass::Long => "Long",
            }
            .to_string(),
        ]);
    }
    println!("Table 1: Evaluated deep learning models.\n");
    println!(
        "{}",
        markdown_table(
            &[
                "Model",
                "Operators",
                "Domain",
                "Latency(ms) measured",
                "paper",
                "Type"
            ],
            &rows
        )
    );
    qos_metrics::write_csv(
        &bench::results_dir().join("table1.csv"),
        &[
            "model",
            "operators",
            "domain",
            "latency_ms_measured",
            "latency_ms_paper",
            "type",
        ],
        &rows,
    )
    .expect("write csv");
    println!("(CSV written to results/table1.csv)");
}
