//! Device-sensitivity ablation: do the paper's conclusions survive a
//! different hardware point?
//!
//! Re-runs the offline stage *and* the Figure 6/7 comparison on the
//! `edge_server` device preset (17× the compute, 12× the boundary
//! bandwidth, lower launch overhead). The split plans change — faster
//! transfers move the GA's optimum — but the qualitative ranking must
//! not. Workload intensity is rescaled so utilization matches the
//! Jetson-class scenario.

use gpu_sim::{block_time_us, DeviceConfig};
use model_zoo::{benchmark_models, ModelId};
use qos_metrics::{per_model_std, violation_rate};
use sched::{simulate, ModelRuntime, ModelTable, Policy};
use split_core::SplitPlan;
use split_repro::experiment;
use workload::{RequestTrace, Scenario};

fn build_deployment(dev: &DeviceConfig) -> ModelTable {
    let mut table = ModelTable::new();
    for (task, id) in benchmark_models().iter().enumerate() {
        let mut g = id.build();
        // Keep relative speeds from the architecture; don't calibrate to
        // Table 1 (that was the Nano's latency). Scale so the mix stays
        // interesting: ResNet-50 pinned at 8 ms on this device.
        if *id == ModelId::ResNet50 {
            model_zoo::calibrate_to_ms(&mut g, dev, 8.0);
        } else {
            let ratio = id.info().latency_ms / ModelId::ResNet50.info().latency_ms;
            model_zoo::calibrate_to_ms(&mut g, dev, 8.0 * ratio);
        }
        let exec = block_time_us(&g, dev);
        let rt = if matches!(id, ModelId::ResNet50 | ModelId::Vgg19) {
            let (plan, _) = SplitPlan::offline(&g, dev, 2..=4, 7);
            println!(
                "  plan {}: {} blocks, overhead {:.1}%",
                g.name,
                plan.block_count(),
                100.0 * plan.overhead_ratio
            );
            ModelRuntime::split(
                g.name.clone(),
                task as u32,
                exec,
                plan.block_times_us.clone(),
            )
        } else {
            ModelRuntime::vanilla(g.name.clone(), task as u32, exec)
        };
        table.insert(rt);
    }
    table
}

fn main() {
    let dev = DeviceConfig::edge_server();
    println!("== offline stage on the edge_server device preset");
    let table = build_deployment(&dev);

    // Jetson scenario 3 runs λ=140 ms against a ~28 ms mean service time;
    // keep the same utilization against the ~8 ms mean here.
    let mut sc = Scenario::table2(3);
    sc.lambda_ms = 40.0;
    let trace = RequestTrace::generate(sc, &experiment::PAPER_MODEL_NAMES);

    println!("\n== online comparison (λ = 40 ms, matched utilization)\n");
    println!(
        "{:12} {:>10} {:>10} {:>14}",
        "policy", "viol@α=2", "viol@α=4", "short jitter"
    );
    let shorts = experiment::short_model_names();
    let mut split_rate = f64::NAN;
    for policy in Policy::all_default() {
        let r = simulate(&policy, &trace.arrivals, &table);
        let o = r.outcomes();
        let v4 = violation_rate(&o, 4.0);
        if policy.name() == "SPLIT" {
            split_rate = v4;
        }
        let j = per_model_std(&o)
            .iter()
            .filter(|x| shorts.contains(&x.model.as_str()))
            .map(|x| x.std_us)
            .sum::<f64>()
            / shorts.len() as f64;
        println!(
            "{:12} {:>9.1}% {:>9.1}% {:>11.2} ms",
            policy.name(),
            100.0 * violation_rate(&o, 2.0),
            100.0 * v4,
            j / 1e3
        );
    }
    println!(
        "\nConclusion holds off the Nano: SPLIT still leads (viol@4 = {:.1}%).",
        100.0 * split_rate
    );
}
