//! In-terminal dashboard frames for `split-cli monitor`.
//!
//! A [`Frame`] is a point-in-time snapshot of the serving system
//! (queue depth, utilization, per-model latency quantiles, burn-rate
//! gauges, alert state); [`render_frame`] draws it as a fixed-width
//! ASCII panel. Rendering is pure — the [`crate::monitor::Monitor`]
//! produces frames, the CLI decides when and where to print them.

use serde::{Deserialize, Serialize};

/// Per-model latency summary line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelLatencyRow {
    /// Model name.
    pub model: String,
    /// Completed requests observed so far.
    pub count: u64,
    /// Median end-to-end latency, ms.
    pub p50_ms: f64,
    /// Tail end-to-end latency, ms.
    pub p99_ms: f64,
}

/// One dashboard frame: everything the terminal panel shows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Frame {
    /// Simulated time of the snapshot, µs.
    pub now_us: f64,
    /// Requests currently queued.
    pub queue_depth: i64,
    /// Device busy percentage (0–100).
    pub utilization_pct: i64,
    /// Requests that have arrived.
    pub arrived: u64,
    /// Requests that have completed.
    pub completed: u64,
    /// Per-model latency rows, sorted by model name.
    pub models: Vec<ModelLatencyRow>,
    /// Fast-window burn rate.
    pub fast_burn: f64,
    /// Slow-window burn rate.
    pub slow_burn: f64,
    /// Violation rate over the slow window.
    pub violation_rate: f64,
    /// Whether a burn-rate alert is currently firing.
    pub alert_active: bool,
    /// Total alerts fired since monitoring began.
    pub alerts_fired: usize,
    /// Drift-watch windows closed so far (absent in old frames → 0).
    #[serde(default)]
    pub drift_windows: u64,
    /// Regime-shift events detected so far.
    #[serde(default)]
    pub regime_events: usize,
    /// Rendered line of the most recent regime event, if any.
    #[serde(default)]
    pub last_regime: Option<String>,
}

const WIDTH: usize = 62;

/// Render a frame as a fixed-width ASCII panel (one `String`, trailing
/// newline included).
pub fn render_frame(f: &Frame) -> String {
    let mut out = String::new();
    let hr = format!("+{}+\n", "-".repeat(WIDTH));
    out.push_str(&hr);
    line(
        &mut out,
        &format!(
            "SPLIT monitor                      t = {:>14.1} us",
            f.now_us
        ),
    );
    line(
        &mut out,
        &format!(
            "requests  arrived {:>6}   completed {:>6}   in-flight {:>4}",
            f.arrived,
            f.completed,
            f.arrived.saturating_sub(f.completed)
        ),
    );
    line(
        &mut out,
        &format!(
            "queue depth {:>4} {}",
            f.queue_depth,
            bar(f.queue_depth.max(0) as f64, 16.0, 24)
        ),
    );
    line(
        &mut out,
        &format!(
            "utilization {:>3}% {}",
            f.utilization_pct,
            bar(f.utilization_pct.max(0) as f64, 100.0, 24)
        ),
    );
    line(&mut out, "");
    line(
        &mut out,
        &format!(
            "{:<14} {:>8} {:>12} {:>12}",
            "model", "count", "p50 (ms)", "p99 (ms)"
        ),
    );
    if f.models.is_empty() {
        line(&mut out, "  (no completions yet)");
    }
    for m in &f.models {
        line(
            &mut out,
            &format!(
                "{:<14} {:>8} {:>12.3} {:>12.3}",
                trunc(&m.model, 14),
                m.count,
                m.p50_ms,
                m.p99_ms
            ),
        );
    }
    line(&mut out, "");
    line(
        &mut out,
        &format!(
            "burn  fast {:>6.2}x {}  slow {:>6.2}x {}",
            f.fast_burn,
            bar(f.fast_burn, 2.0, 8),
            f.slow_burn,
            bar(f.slow_burn, 2.0, 8)
        ),
    );
    line(
        &mut out,
        &format!(
            "violation rate {:>6.2}%   alerts fired {:>3}   {}",
            f.violation_rate * 100.0,
            f.alerts_fired,
            if f.alert_active {
                "** ALERT ACTIVE **"
            } else {
                "ok"
            }
        ),
    );
    line(
        &mut out,
        &format!(
            "drift  windows {:>4}   regime events {:>3}   {}",
            f.drift_windows,
            f.regime_events,
            if f.regime_events > 0 {
                "** SHIFT **"
            } else {
                "stationary"
            }
        ),
    );
    if let Some(last) = &f.last_regime {
        line(&mut out, &format!("  last: {last}"));
    }
    out.push_str(&hr);
    out
}

fn line(out: &mut String, content: &str) {
    let c = trunc(content, WIDTH - 2);
    out.push_str(&format!("| {:<w$} |\n", c, w = WIDTH - 2));
}

fn trunc(s: &str, max: usize) -> String {
    if s.chars().count() <= max {
        s.to_string()
    } else {
        s.chars().take(max).collect()
    }
}

/// Proportional gauge: `value` against `full_scale`, `cells` wide,
/// clamped. E.g. `[####....]`.
fn bar(value: f64, full_scale: f64, cells: usize) -> String {
    let frac = if full_scale > 0.0 {
        (value / full_scale).clamp(0.0, 1.0)
    } else {
        0.0
    };
    let filled = (frac * cells as f64).round() as usize;
    let filled = filled.min(cells);
    format!("[{}{}]", "#".repeat(filled), ".".repeat(cells - filled))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame() -> Frame {
        Frame {
            now_us: 1_234_567.8,
            queue_depth: 8,
            utilization_pct: 75,
            arrived: 120,
            completed: 100,
            models: vec![
                ModelLatencyRow {
                    model: "resnet50".into(),
                    count: 60,
                    p50_ms: 12.5,
                    p99_ms: 40.25,
                },
                ModelLatencyRow {
                    model: "vgg19".into(),
                    count: 40,
                    p50_ms: 30.0,
                    p99_ms: 95.125,
                },
            ],
            fast_burn: 1.5,
            slow_burn: 0.75,
            violation_rate: 0.075,
            alert_active: true,
            alerts_fired: 3,
            drift_windows: 12,
            regime_events: 2,
            last_regime: Some("w6 yolov2 latency_p99 cusum 9000 vs 2000".into()),
        }
    }

    #[test]
    fn render_shows_every_panel_section() {
        let s = render_frame(&frame());
        for needle in [
            "SPLIT monitor",
            "queue depth    8",
            "utilization  75%",
            "resnet50",
            "vgg19",
            "40.250",
            "95.125",
            "burn",
            "ALERT ACTIVE",
            "alerts fired   3",
            "drift  windows   12",
            "regime events   2",
            "** SHIFT **",
            "last: w6 yolov2",
        ] {
            assert!(s.contains(needle), "missing {needle:?} in:\n{s}");
        }
    }

    #[test]
    fn render_has_uniform_width() {
        let s = render_frame(&frame());
        for l in s.lines() {
            assert_eq!(l.chars().count(), WIDTH + 2, "ragged line: {l:?}");
        }
    }

    #[test]
    fn empty_frame_renders_placeholder() {
        let f = Frame {
            models: vec![],
            alert_active: false,
            regime_events: 0,
            last_regime: None,
            ..frame()
        };
        let s = render_frame(&f);
        assert!(s.contains("(no completions yet)"));
        assert!(s.contains("ok"));
        assert!(!s.contains("ALERT ACTIVE"));
        assert!(s.contains("stationary"));
        assert!(!s.contains("last:"));
    }

    #[test]
    fn bar_clamps_and_scales() {
        assert_eq!(bar(0.0, 4.0, 4), "[....]");
        assert_eq!(bar(2.0, 4.0, 4), "[##..]");
        assert_eq!(bar(99.0, 4.0, 4), "[####]");
        assert_eq!(bar(1.0, 0.0, 4), "[....]");
    }
}
