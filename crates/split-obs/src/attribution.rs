//! Critical-path attribution: where did each request's latency go?
//!
//! For every completed request the end-to-end latency decomposes into
//! five components, read off the request's span tree
//! ([`crate::span::build_spans`]):
//!
//! | component | span kind | meaning |
//! |---|---|---|
//! | `queue_us` | Queue | arrival → first block start |
//! | `compute_us` | Block | time a block of this request held the device |
//! | `transfer_us` | Transfer | boundary activation movement |
//! | `stall_us` | Stall | block-boundary time lost to preemption/downgrade |
//! | `sched_us` | Drain | last block end → completion bookkeeping |
//!
//! Because the spans *partition* the arrival → completion interval, the
//! components sum to the e2e latency exactly (within floating-point
//! noise, far below [`SUM_TOLERANCE_US`] = 1 ns). `split-analyze`
//! enforces this as diagnostic `SA301` on every schedule it lints.

use crate::span::{build_spans, Span, SpanKind};
use qos_metrics::breakdown::BreakdownRow;
use serde::{Deserialize, Serialize};
use split_telemetry::Recorder;
use std::collections::BTreeMap;

/// Components must sum to e2e within this tolerance (1 ns in µs).
pub const SUM_TOLERANCE_US: f64 = 1e-3;

/// One completed request's latency decomposition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Attribution {
    /// Request id.
    pub req: u64,
    /// Model name.
    pub model: String,
    /// Arrival time, µs.
    pub arrival_us: f64,
    /// Completion time, µs.
    pub completion_us: f64,
    /// Queueing before the first block, µs.
    pub queue_us: f64,
    /// Device time across the request's blocks, µs.
    pub compute_us: f64,
    /// Boundary transfer time, µs.
    pub transfer_us: f64,
    /// Preemption/downgrade-induced boundary stalls, µs.
    pub stall_us: f64,
    /// Scheduler-decision/drain time after the last block, µs.
    pub sched_us: f64,
}

impl Attribution {
    /// End-to-end latency, µs.
    pub fn e2e_us(&self) -> f64 {
        self.completion_us - self.arrival_us
    }

    /// Sum of the five components, µs.
    pub fn components_sum_us(&self) -> f64 {
        self.queue_us + self.compute_us + self.transfer_us + self.stall_us + self.sched_us
    }

    /// Signed gap between the component sum and the e2e latency, µs.
    /// Must stay within [`SUM_TOLERANCE_US`] for a well-formed recording.
    pub fn residual_us(&self) -> f64 {
        self.components_sum_us() - self.e2e_us()
    }

    /// The dominant component's name (ties break in table order).
    pub fn dominant(&self) -> &'static str {
        let parts = [
            ("queue", self.queue_us),
            ("compute", self.compute_us),
            ("transfer", self.transfer_us),
            ("stall", self.stall_us),
            ("sched", self.sched_us),
        ];
        parts
            .iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(n, _)| *n)
            .expect("non-empty")
    }
}

/// Attribute every completed request in a recording, ordered by request
/// id. Requests without both an arrival and a completion are skipped
/// (they have no e2e latency to decompose).
pub fn attribute(rec: &Recorder) -> Vec<Attribution> {
    attribute_spans(&build_spans(rec))
}

/// [`attribute`] over an already-built span forest.
pub fn attribute_spans(spans: &[Span]) -> Vec<Attribution> {
    let mut by_trace: BTreeMap<u64, Attribution> = BTreeMap::new();
    for sp in spans {
        let id = sp.ctx.trace_id;
        match sp.kind {
            SpanKind::Request => {
                by_trace
                    .entry(id)
                    .or_insert_with(|| Attribution {
                        req: id,
                        model: String::new(),
                        arrival_us: 0.0,
                        completion_us: 0.0,
                        queue_us: 0.0,
                        compute_us: 0.0,
                        transfer_us: 0.0,
                        stall_us: 0.0,
                        sched_us: 0.0,
                    })
                    .model = sp.model.clone();
                let a = by_trace.get_mut(&id).expect("just inserted");
                a.arrival_us = sp.start_us;
                a.completion_us = sp.end_us;
            }
            _ => {
                let a = by_trace.entry(id).or_insert_with(|| Attribution {
                    req: id,
                    model: sp.model.clone(),
                    arrival_us: 0.0,
                    completion_us: 0.0,
                    queue_us: 0.0,
                    compute_us: 0.0,
                    transfer_us: 0.0,
                    stall_us: 0.0,
                    sched_us: 0.0,
                });
                let d = sp.dur_us();
                match sp.kind {
                    SpanKind::Queue => a.queue_us += d,
                    SpanKind::Block { .. } => a.compute_us += d,
                    SpanKind::Transfer { .. } => a.transfer_us += d,
                    SpanKind::Stall => a.stall_us += d,
                    SpanKind::Drain => a.sched_us += d,
                    SpanKind::Request => unreachable!("matched above"),
                }
            }
        }
    }
    by_trace.into_values().collect()
}

/// Aggregate attributions into per-model mean breakdowns (rows for
/// `qos_metrics::breakdown` rendering), ordered by model name.
pub fn rollup_by_model(attrs: &[Attribution]) -> Vec<BreakdownRow> {
    let mut acc: BTreeMap<&str, BreakdownRow> = BTreeMap::new();
    for a in attrs {
        let row = acc.entry(a.model.as_str()).or_insert_with(|| BreakdownRow {
            model: a.model.clone(),
            count: 0,
            e2e_us: 0.0,
            queue_us: 0.0,
            compute_us: 0.0,
            transfer_us: 0.0,
            stall_us: 0.0,
            sched_us: 0.0,
        });
        row.count += 1;
        row.e2e_us += a.e2e_us();
        row.queue_us += a.queue_us;
        row.compute_us += a.compute_us;
        row.transfer_us += a.transfer_us;
        row.stall_us += a.stall_us;
        row.sched_us += a.sched_us;
    }
    acc.into_values()
        .map(|mut r| {
            let n = r.count.max(1) as f64;
            r.e2e_us /= n;
            r.queue_us /= n;
            r.compute_us /= n;
            r.transfer_us /= n;
            r.stall_us /= n;
            r.sched_us /= n;
            r
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use split_telemetry::Event;

    /// (req, model, arrival, blocks[(start,end)], completion)
    type Spec<'a> = (u64, &'a str, f64, &'a [(f64, f64)], f64);

    fn rec(specs: &[Spec]) -> Recorder {
        let mut r = Recorder::new();
        for &(req, model, arrival, blocks, completion) in specs {
            r.record(Event::Arrival {
                req,
                model: model.into(),
                t_us: arrival,
            });
            for (i, &(s, e)) in blocks.iter().enumerate() {
                r.record(Event::BlockStart {
                    req,
                    block: i,
                    stream: 0,
                    t_us: s,
                });
                r.record(Event::BlockEnd {
                    req,
                    block: i,
                    stream: 0,
                    t_us: e,
                });
            }
            r.record(Event::Completion {
                req,
                t_us: completion,
            });
        }
        r
    }

    #[test]
    fn decomposition_matches_hand_computation() {
        // arrival 0, queue to 10, b0 [10,20], stall to 25, b1 [25,35],
        // drain to 36.
        let r = rec(&[(7, "resnet50", 0.0, &[(10.0, 20.0), (25.0, 35.0)], 36.0)]);
        let attrs = attribute(&r);
        assert_eq!(attrs.len(), 1);
        let a = &attrs[0];
        assert_eq!(a.req, 7);
        assert_eq!(a.model, "resnet50");
        assert!((a.queue_us - 10.0).abs() < 1e-12);
        assert!((a.compute_us - 20.0).abs() < 1e-12);
        assert!((a.stall_us - 5.0).abs() < 1e-12);
        assert!((a.sched_us - 1.0).abs() < 1e-12);
        assert_eq!(a.transfer_us, 0.0);
        assert!(a.residual_us().abs() < SUM_TOLERANCE_US);
        assert_eq!(a.dominant(), "compute");
    }

    #[test]
    fn transfers_inside_gaps_are_split_out() {
        let mut r = rec(&[(1, "m", 0.0, &[(0.0, 10.0), (18.0, 28.0)], 28.0)]);
        r.record(Event::Transfer {
            req: 1,
            bytes: 1024,
            t_us: 10.0,
            dur_us: 3.0,
        });
        let a = &attribute(&r)[0];
        assert!((a.transfer_us - 3.0).abs() < 1e-12);
        assert!((a.stall_us - 5.0).abs() < 1e-12);
        assert!(a.residual_us().abs() < SUM_TOLERANCE_US);
    }

    #[test]
    fn rollup_averages_per_model() {
        let r = rec(&[
            (0, "a", 0.0, &[(0.0, 10.0)], 10.0),
            (1, "a", 0.0, &[(10.0, 40.0)], 40.0),
            (2, "b", 5.0, &[(40.0, 50.0)], 50.0),
        ]);
        let rows = rollup_by_model(&attribute(&r));
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].model, "a");
        assert_eq!(rows[0].count, 2);
        assert!((rows[0].compute_us - 20.0).abs() < 1e-9);
        assert_eq!(rows[1].model, "b");
        assert!((rows[1].queue_us - 35.0).abs() < 1e-9);
    }

    #[test]
    fn incomplete_requests_have_no_attribution() {
        let mut r = Recorder::new();
        r.record(Event::Arrival {
            req: 9,
            model: "m".into(),
            t_us: 1.0,
        });
        assert!(attribute(&r).is_empty());
    }
}
