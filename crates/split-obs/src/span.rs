//! Causal spans: every request's lifecycle as a tree with parent links.
//!
//! A lifecycle recording is a flat event stream; this module folds it
//! back into the causal structure the events came from. Each completed
//! request becomes one *trace* (`trace_id` = request id) whose root span
//! covers arrival → completion, with child spans partitioning that
//! interval:
//!
//! ```text
//! request resnet50#17          [arrival ............... completion]
//! ├─ queue                     [arrival .. first block start]
//! ├─ execute b0                [block 0 start .. end]
//! ├─ transfer (N bytes)        [boundary activation movement]
//! ├─ stall                     [preemption / downgrade wait at a boundary]
//! ├─ execute b1                [block 1 start .. end]
//! └─ drain                     [last block end .. completion]
//! ```
//!
//! The children are a *partition* of the root interval, which is what
//! makes critical-path attribution ([`crate::attribution`]) exact: the
//! component sums telescope back to the end-to-end latency.

use serde::{Deserialize, Serialize};
use serde_json::{Map, Value};
use split_telemetry::{Event, Recorder};
use std::collections::BTreeMap;
use std::io;
use std::path::Path;

/// Identity of one span inside one request's trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanContext {
    /// Trace identifier — the request id (one trace per request).
    pub trace_id: u64,
    /// Span identifier, unique within the trace and a pure function of
    /// the span's phase: lifecycle phase code in the high 32 bits,
    /// per-phase occurrence in the low 32 (see [`deterministic_span_id`]).
    /// The same request content yields bit-identical ids regardless of
    /// worker-thread count or event arrival order.
    pub span_id: u64,
    /// Parent span id; `None` for the root span.
    pub parent: Option<u64>,
}

/// Span id for a phase: `(code + 1) << 32 | occurrence`, where the code
/// orders the lifecycle phases (request, queue, execute, transfer,
/// stall, drain) and `occurrence` distinguishes repeats of the same
/// phase — the block index for `Block`, chronological rank otherwise.
/// Ids derive only from (phase, occurrence), never from a shared
/// counter, so rebuilding the same trace under `SPLIT_THREADS=1` or
/// `=4` produces the same ids.
pub fn deterministic_span_id(kind: &SpanKind, occurrence: u32) -> u64 {
    let code: u64 = match kind {
        SpanKind::Request => 0,
        SpanKind::Queue => 1,
        SpanKind::Block { .. } => 2,
        SpanKind::Transfer { .. } => 3,
        SpanKind::Stall => 4,
        SpanKind::Drain => 5,
    };
    ((code + 1) << 32) | u64::from(occurrence)
}

/// The root (request) span's id: [`deterministic_span_id`] of
/// `SpanKind::Request`, occurrence 0.
pub const ROOT_SPAN_ID: u64 = 1 << 32;

/// What a span represents in the request lifecycle.
/// (Not serde-derived: spans reach disk via the hand-rolled Perfetto
/// JSON in [`span_trace_events`], never via direct serialization.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// Root: the whole arrival → completion interval.
    Request,
    /// Waiting in the queue before the first block starts.
    Queue,
    /// One model block executing on a stream.
    Block {
        /// Block index within the request's plan.
        index: usize,
        /// GPU stream it ran on.
        stream: u32,
    },
    /// Boundary activation transfer.
    Transfer {
        /// Payload size.
        bytes: u64,
    },
    /// Time at a block boundary where the request owned no resource —
    /// it was preempted (or downgraded) and waited for the device.
    Stall,
    /// Last block end → completion (scheduler bookkeeping / reply
    /// drain).
    Drain,
}

/// One reconstructed span.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Identity and parent link.
    pub ctx: SpanContext,
    /// Model the request ran (empty if the arrival carried none).
    pub model: String,
    /// Lifecycle phase this span covers.
    pub kind: SpanKind,
    /// Start time, µs.
    pub start_us: f64,
    /// End time, µs.
    pub end_us: f64,
}

impl Span {
    /// Span duration, µs.
    pub fn dur_us(&self) -> f64 {
        self.end_us - self.start_us
    }

    /// Human-readable label, e.g. `"execute b2"` or
    /// `"request resnet50#17"`.
    pub fn label(&self) -> String {
        match self.kind {
            SpanKind::Request => format!("request {}#{}", self.model, self.ctx.trace_id),
            SpanKind::Queue => "queue".into(),
            SpanKind::Block { index, .. } => format!("execute b{index}"),
            SpanKind::Transfer { bytes } => format!("transfer {bytes}B"),
            SpanKind::Stall => "stall".into(),
            SpanKind::Drain => "drain".into(),
        }
    }
}

/// Per-request raw material gathered from the event stream.
#[derive(Default)]
struct ReqEvents {
    model: String,
    arrival_us: Option<f64>,
    completion_us: Option<f64>,
    /// Closed block intervals `(index, stream, start, end)`.
    blocks: Vec<(usize, u32, f64, f64)>,
    /// Open block starts awaiting their end.
    open: Option<(usize, u32, f64)>,
    /// `(bytes, start, dur)` transfers.
    transfers: Vec<(u64, f64, f64)>,
}

/// Rebuild the span forest from a recording: one trace per request that
/// has both an arrival and a completion, roots first within each trace,
/// traces ordered by request id. Children partition the root interval;
/// zero-duration phases are omitted (they contribute nothing).
pub fn build_spans(rec: &Recorder) -> Vec<Span> {
    let mut reqs: BTreeMap<u64, ReqEvents> = BTreeMap::new();
    for e in rec.events() {
        let Some(id) = e.req() else { continue };
        let r = reqs.entry(id).or_default();
        match e {
            Event::Arrival { model, t_us, .. } => {
                r.model = model.clone();
                r.arrival_us = Some(*t_us);
            }
            Event::Completion { t_us, .. } => r.completion_us = Some(*t_us),
            Event::BlockStart {
                block,
                stream,
                t_us,
                ..
            } => r.open = Some((*block, *stream, *t_us)),
            Event::BlockEnd {
                block,
                stream,
                t_us,
                ..
            } => {
                if let Some((b, s, start)) = r.open.take() {
                    if b == *block && s == *stream {
                        r.blocks.push((b, s, start, *t_us));
                    }
                }
            }
            Event::Transfer {
                bytes,
                t_us,
                dur_us,
                ..
            } => r.transfers.push((*bytes, *t_us, *dur_us)),
            _ => {}
        }
    }

    let mut out = Vec::new();
    for (id, r) in reqs {
        let (Some(arrival), Some(completion)) = (r.arrival_us, r.completion_us) else {
            continue;
        };
        out.extend(build_one(id, &r, arrival, completion));
    }
    out
}

/// Build one request's trace. `blocks` are assumed time-ordered (the
/// recorder invariant `validate()` enforces per-request monotonicity).
fn build_one(id: u64, r: &ReqEvents, arrival: f64, completion: f64) -> Vec<Span> {
    let mut blocks = r.blocks.clone();
    blocks.sort_by(|a, b| a.2.total_cmp(&b.2));

    let mut spans = Vec::with_capacity(blocks.len() * 2 + 3);
    let root = SpanContext {
        trace_id: id,
        span_id: ROOT_SPAN_ID,
        parent: None,
    };
    spans.push(Span {
        ctx: root,
        model: r.model.clone(),
        kind: SpanKind::Request,
        start_us: arrival,
        end_us: completion,
    });
    // Occurrence counters per repeatable phase; blocks use their index
    // so the id says *which* block, not just "the nth one".
    let mut transfers_seen = 0u32;
    let mut stalls_seen = 0u32;
    let mut child = |kind: SpanKind, start_us: f64, end_us: f64, spans: &mut Vec<Span>| {
        if end_us - start_us <= 0.0 {
            return;
        }
        let occurrence = match kind {
            SpanKind::Block { index, .. } => index as u32,
            SpanKind::Transfer { .. } => {
                transfers_seen += 1;
                transfers_seen - 1
            }
            SpanKind::Stall => {
                stalls_seen += 1;
                stalls_seen - 1
            }
            _ => 0,
        };
        spans.push(Span {
            ctx: SpanContext {
                trace_id: id,
                span_id: deterministic_span_id(&kind, occurrence),
                parent: Some(ROOT_SPAN_ID),
            },
            model: r.model.clone(),
            kind,
            start_us,
            end_us,
        });
    };

    if blocks.is_empty() {
        // Completed without a recorded block (e.g. ring eviction): the
        // whole interval is unexplained queueing.
        child(SpanKind::Queue, arrival, completion, &mut spans);
        return spans;
    }

    child(SpanKind::Queue, arrival, blocks[0].2, &mut spans);
    for (i, &(index, stream, start, end)) in blocks.iter().enumerate() {
        child(SpanKind::Block { index, stream }, start, end, &mut spans);
        if let Some(&(_, _, next_start, _)) = blocks.get(i + 1) {
            // Boundary gap: transfers first (clamped into the gap),
            // whatever remains is a preemption/downgrade stall.
            let mut cursor = end;
            for &(bytes, t, dur) in &r.transfers {
                if t + 1e-9 >= end && t <= next_start + 1e-9 && dur > 0.0 {
                    let t_end = (cursor + dur).min(next_start);
                    child(SpanKind::Transfer { bytes }, cursor, t_end, &mut spans);
                    cursor = t_end;
                }
            }
            child(SpanKind::Stall, cursor, next_start, &mut spans);
        }
    }
    let last_end = blocks.last().expect("non-empty").3;
    child(SpanKind::Drain, last_end, completion, &mut spans);
    spans
}

// --- Perfetto export -----------------------------------------------------

/// Per-request tracks start at this tid (scheduler/io tracks of the
/// plain exporter use low tids).
const TID_TRACE_BASE: u64 = 1_000;

fn s(v: impl Into<String>) -> Value {
    Value::String(v.into())
}

fn u(v: u64) -> Value {
    Value::Number(serde_json::Number::PosInt(v))
}

fn f(v: f64) -> Value {
    Value::Number(serde_json::Number::Float(v))
}

fn obj(pairs: Vec<(&str, Value)>) -> Value {
    let mut m = Map::new();
    for (k, v) in pairs {
        m.insert(k, v);
    }
    Value::Object(m)
}

/// Export a span forest as a Chrome/Perfetto `trace_events` document.
///
/// Each trace (request) gets its own track (`tid = 1000 + trace_id`), so
/// the root request span visually contains its children; the real parent
/// links ride in `args` (`trace_id`, `span_id`, `parent`) for tooling
/// that wants the exact tree rather than the nesting heuristic.
pub fn span_trace_events(spans: &[Span], process_name: &str) -> Value {
    let mut events: Vec<Value> = Vec::with_capacity(spans.len() + 1);
    events.push(obj(vec![
        ("name", s("process_name")),
        ("ph", s("M")),
        ("pid", u(1)),
        ("args", obj(vec![("name", s(process_name))])),
    ]));
    for sp in spans {
        let mut args = vec![
            ("trace_id", u(sp.ctx.trace_id)),
            ("span_id", u(sp.ctx.span_id)),
        ];
        if let Some(p) = sp.ctx.parent {
            args.push(("parent", u(p)));
        }
        let cat = match sp.kind {
            SpanKind::Request => "request",
            SpanKind::Queue => "queue",
            SpanKind::Block { .. } => "execute",
            SpanKind::Transfer { .. } => "transfer",
            SpanKind::Stall => "stall",
            SpanKind::Drain => "drain",
        };
        events.push(obj(vec![
            ("name", s(sp.label())),
            ("cat", s(cat)),
            ("ph", s("X")),
            ("ts", f(sp.start_us)),
            ("dur", f(sp.dur_us())),
            ("pid", u(1)),
            ("tid", u(TID_TRACE_BASE + sp.ctx.trace_id)),
            ("args", obj(args)),
        ]));
    }
    let mut root = Map::new();
    root.insert("traceEvents", Value::Array(events));
    root.insert("displayTimeUnit", s("ms"));
    Value::Object(root)
}

/// Serialize [`span_trace_events`] to a file.
pub fn write_span_trace(spans: &[Span], process_name: &str, path: &Path) -> io::Result<()> {
    let doc = span_trace_events(spans, process_name);
    let text = serde_json::to_string(&doc).map_err(|e| io::Error::other(e.to_string()))?;
    std::fs::write(path, text)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Request 5: arrives at 0, queues until 10, runs b0 [10,20],
    /// transfer [20,21], stalls [21,30], runs b1 [30,40], completes 41.
    fn sample() -> Recorder {
        let mut r = Recorder::new();
        r.record(Event::Arrival {
            req: 5,
            model: "vgg19".into(),
            t_us: 0.0,
        });
        r.record(Event::BlockStart {
            req: 5,
            block: 0,
            stream: 0,
            t_us: 10.0,
        });
        r.record(Event::BlockEnd {
            req: 5,
            block: 0,
            stream: 0,
            t_us: 20.0,
        });
        r.record(Event::Transfer {
            req: 5,
            bytes: 4096,
            t_us: 20.0,
            dur_us: 1.0,
        });
        r.record(Event::BlockStart {
            req: 5,
            block: 1,
            stream: 0,
            t_us: 30.0,
        });
        r.record(Event::BlockEnd {
            req: 5,
            block: 1,
            stream: 0,
            t_us: 40.0,
        });
        r.record(Event::Completion { req: 5, t_us: 41.0 });
        r
    }

    #[test]
    fn tree_structure_and_partition() {
        let spans = build_spans(&sample());
        let root = &spans[0];
        assert_eq!(root.kind, SpanKind::Request);
        assert_eq!(root.ctx.trace_id, 5);
        assert_eq!(root.ctx.span_id, ROOT_SPAN_ID);
        assert_eq!(root.ctx.parent, None);
        assert_eq!(root.label(), "request vgg19#5");

        let kinds: Vec<SpanKind> = spans[1..].iter().map(|s| s.kind).collect();
        assert_eq!(
            kinds,
            vec![
                SpanKind::Queue,
                SpanKind::Block {
                    index: 0,
                    stream: 0
                },
                SpanKind::Transfer { bytes: 4096 },
                SpanKind::Stall,
                SpanKind::Block {
                    index: 1,
                    stream: 0
                },
                SpanKind::Drain,
            ]
        );
        // Children partition the root interval.
        let total: f64 = spans[1..].iter().map(Span::dur_us).sum();
        assert!((total - root.dur_us()).abs() < 1e-9, "{total}");
        for sp in &spans[1..] {
            assert_eq!(sp.ctx.parent, Some(ROOT_SPAN_ID));
            assert!(sp.dur_us() > 0.0);
        }
        // Ids are phase-derived: block spans carry their block index.
        let b1 = spans
            .iter()
            .find(|s| {
                s.kind
                    == SpanKind::Block {
                        index: 1,
                        stream: 0,
                    }
            })
            .unwrap();
        assert_eq!(
            b1.ctx.span_id,
            deterministic_span_id(&b1.kind, 1),
            "block span id must encode the block index"
        );
        // Span ids are unique within the trace.
        let mut ids: Vec<u64> = spans.iter().map(|s| s.ctx.span_id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), spans.len());
    }

    #[test]
    fn incomplete_requests_are_skipped() {
        let mut r = Recorder::new();
        r.record(Event::Arrival {
            req: 1,
            model: "m".into(),
            t_us: 0.0,
        });
        assert!(build_spans(&r).is_empty());
    }

    #[test]
    fn zero_duration_phases_are_omitted() {
        // Back-to-back blocks with no queueing and instant completion:
        // only the root and the two block spans exist.
        let mut r = Recorder::new();
        r.record(Event::Arrival {
            req: 0,
            model: "m".into(),
            t_us: 0.0,
        });
        r.record(Event::BlockStart {
            req: 0,
            block: 0,
            stream: 0,
            t_us: 0.0,
        });
        r.record(Event::BlockEnd {
            req: 0,
            block: 0,
            stream: 0,
            t_us: 5.0,
        });
        r.record(Event::BlockStart {
            req: 0,
            block: 1,
            stream: 0,
            t_us: 5.0,
        });
        r.record(Event::BlockEnd {
            req: 0,
            block: 1,
            stream: 0,
            t_us: 9.0,
        });
        r.record(Event::Completion { req: 0, t_us: 9.0 });
        let spans = build_spans(&r);
        assert_eq!(spans.len(), 3);
        assert!(spans[1..]
            .iter()
            .all(|s| matches!(s.kind, SpanKind::Block { .. })));
    }

    #[test]
    fn perfetto_export_carries_parent_links() {
        let spans = build_spans(&sample());
        let doc = span_trace_events(&spans, "split-obs");
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        // Metadata + one X per span.
        assert_eq!(events.len(), spans.len() + 1);
        let root_ev = events
            .iter()
            .find(|e| e.get("cat").and_then(Value::as_str) == Some("request"))
            .unwrap();
        assert_eq!(root_ev.get("tid").unwrap().as_u64().unwrap(), 1_005);
        let queue_ev = events
            .iter()
            .find(|e| e.get("cat").and_then(Value::as_str) == Some("queue"))
            .unwrap();
        assert_eq!(
            queue_ev
                .get("args")
                .unwrap()
                .get("parent")
                .unwrap()
                .as_u64(),
            Some(ROOT_SPAN_ID)
        );
        assert_eq!(
            queue_ev
                .get("args")
                .unwrap()
                .get("trace_id")
                .unwrap()
                .as_u64(),
            Some(5)
        );
    }

    #[test]
    fn span_file_roundtrip() {
        let dir = std::env::temp_dir().join("split-obs-span-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("spans.json");
        write_span_trace(&build_spans(&sample()), "p", &path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let parsed: Value = serde_json::from_str(&text).unwrap();
        assert!(!parsed
            .get("traceEvents")
            .unwrap()
            .as_array()
            .unwrap()
            .is_empty());
        std::fs::remove_file(&path).ok();
    }
}
