//! Rolling-window SLO tracking with multi-window burn-rate alerts.
//!
//! The objective is phrased the SPLIT way: at most `objective` of
//! requests may violate QoS (response ratio > α). The monitor keeps
//! every completion as a timestamped sample, computes the violation
//! rate over two half-open windows `(now − w, now]` of simulated time —
//! a fast window (default 5 s) and a slow window (default 60 s) — and
//! derives each window's **burn rate** = windowed violation rate ÷
//! objective. Following the Google SRE multi-window pattern, an alert
//! fires only when *both* windows burn at ≥ their thresholds (slow
//! window for significance, fast window for recency) and resolves as
//! soon as the fast window drops below its threshold. Empty windows
//! have rate 0 and never burn.

//!
//! Besides burn-rate alerts, the log also records **regime-shift**
//! alerts forwarded from `split-watch`'s change-point detectors via
//! [`SloMonitor::observe_regime`]. Regime alerts are informational:
//! they enter the log already resolved (a change-point is an instant,
//! not a condition that persists) and never gate or resolve burn-rate
//! alerting, which tracks its own active alert by index.

use serde::{Deserialize, Serialize};
use split_watch::RegimeEvent;

/// What raised an alert.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum AlertSource {
    /// Multi-window burn-rate alerting (the SLO condition proper).
    #[default]
    BurnRate,
    /// A change-point detector in `split-watch` flagged a regime shift.
    RegimeShift,
}

impl AlertSource {
    /// Stable lowercase label for rendering and metrics.
    pub fn label(&self) -> &'static str {
        match self {
            AlertSource::BurnRate => "burn_rate",
            AlertSource::RegimeShift => "regime_shift",
        }
    }
}

/// SLO + alerting configuration (times in simulated µs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloCfg {
    /// QoS latency multiplier: a request violates when e2e > α × compute.
    pub alpha: f64,
    /// Violation-rate objective (fraction of requests allowed to violate).
    pub objective: f64,
    /// Fast ("recency") window length, µs.
    pub fast_window_us: f64,
    /// Slow ("significance") window length, µs.
    pub slow_window_us: f64,
    /// Fast-window burn-rate threshold.
    pub fast_burn: f64,
    /// Slow-window burn-rate threshold.
    pub slow_burn: f64,
}

impl Default for SloCfg {
    fn default() -> Self {
        SloCfg {
            alpha: 4.0,
            objective: 0.10,
            fast_window_us: 5_000_000.0,
            slow_window_us: 60_000_000.0,
            fast_burn: 1.0,
            slow_burn: 1.0,
        }
    }
}

/// One fired alert, with the burn rates observed at fire time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Alert {
    /// Simulated time the alert fired, µs.
    pub fired_at_us: f64,
    /// Simulated time it resolved (None while still active).
    pub resolved_at_us: Option<f64>,
    /// Fast-window burn rate when it fired.
    pub fast_burn_at_fire: f64,
    /// Slow-window burn rate when it fired.
    pub slow_burn_at_fire: f64,
    /// What raised the alert (absent in old logs → burn rate).
    #[serde(default)]
    pub source: AlertSource,
    /// Human-readable context (regime alerts carry the event line;
    /// burn alerts leave it empty).
    #[serde(default)]
    pub detail: String,
}

/// Chronological record of every alert the monitor has raised.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AlertLog {
    /// Alerts in fire order.
    pub alerts: Vec<Alert>,
}

impl AlertLog {
    /// Number of alerts ever fired.
    pub fn fired(&self) -> usize {
        self.alerts.len()
    }

    /// Whether any alert is still unresolved. (Regime-shift alerts
    /// enter pre-resolved, so in practice this means an active
    /// burn-rate alert.)
    pub fn active(&self) -> bool {
        self.alerts.iter().any(|a| a.resolved_at_us.is_none())
    }

    /// Number of alerts from the given source.
    pub fn fired_from(&self, source: AlertSource) -> usize {
        self.alerts.iter().filter(|a| a.source == source).count()
    }

    /// One-line summary for reports, e.g. `2 fired, 1 active`.
    pub fn summary(&self) -> String {
        let active = self
            .alerts
            .iter()
            .filter(|a| a.resolved_at_us.is_none())
            .count();
        format!("{} fired, {} active", self.fired(), active)
    }
}

/// Sliding-window violation tracker + burn-rate alerter.
#[derive(Debug, Clone)]
pub struct SloMonitor {
    cfg: SloCfg,
    /// (completion time µs, violated) — ascending in time.
    samples: Vec<(f64, bool)>,
    now_us: f64,
    log: AlertLog,
    /// Index into `log.alerts` of the unresolved burn-rate alert, if
    /// any. Tracked explicitly so interleaved regime-shift alerts
    /// (already resolved) cannot confuse fire/resolve bookkeeping.
    active_burn: Option<usize>,
}

impl SloMonitor {
    /// New monitor with the given configuration.
    pub fn new(cfg: SloCfg) -> Self {
        SloMonitor {
            cfg,
            samples: Vec::new(),
            now_us: 0.0,
            log: AlertLog::default(),
            active_burn: None,
        }
    }

    /// The configuration in force.
    pub fn cfg(&self) -> &SloCfg {
        &self.cfg
    }

    /// Record one completed request at simulated time `t_us`.
    /// Timestamps must be non-decreasing; out-of-order samples are
    /// clamped to the current time so the windows stay well-formed.
    pub fn observe(&mut self, t_us: f64, violated: bool) {
        let t = t_us.max(self.now_us);
        self.now_us = t;
        self.samples.push((t, violated));
        self.prune();
        self.evaluate();
    }

    /// Record a completion given its e2e and pure-compute time,
    /// applying the α rule (violates iff `e2e > α × compute`, strict —
    /// matching `qos_metrics::RequestOutcome::violates`).
    pub fn observe_outcome(&mut self, t_us: f64, e2e_us: f64, compute_us: f64) {
        let violated = compute_us > 0.0 && e2e_us > self.cfg.alpha * compute_us;
        self.observe(t_us, violated);
    }

    /// Advance simulated time without a sample (lets alerts resolve as
    /// old violations age out of the fast window).
    pub fn advance(&mut self, t_us: f64) {
        if t_us > self.now_us {
            self.now_us = t_us;
            self.prune();
            self.evaluate();
        }
    }

    /// Current simulated time, µs.
    pub fn now_us(&self) -> f64 {
        self.now_us
    }

    /// Violation rate over the half-open window `(now − window_us, now]`.
    /// Empty window → 0.
    pub fn window_rate(&self, window_us: f64) -> f64 {
        let lo = self.now_us - window_us;
        let (mut total, mut bad) = (0u64, 0u64);
        for &(t, v) in self.samples.iter().rev() {
            if t <= lo {
                break;
            }
            total += 1;
            bad += u64::from(v);
        }
        if total == 0 {
            0.0
        } else {
            bad as f64 / total as f64
        }
    }

    /// Burn rate over a window: violation rate ÷ objective.
    pub fn burn_rate(&self, window_us: f64) -> f64 {
        self.window_rate(window_us) / self.cfg.objective
    }

    /// Fast-window burn rate.
    pub fn fast_burn(&self) -> f64 {
        self.burn_rate(self.cfg.fast_window_us)
    }

    /// Slow-window burn rate.
    pub fn slow_burn(&self) -> f64 {
        self.burn_rate(self.cfg.slow_window_us)
    }

    /// Whether a burn-rate alert is currently firing.
    pub fn alert_active(&self) -> bool {
        self.active_burn.is_some()
    }

    /// The alert history.
    pub fn log(&self) -> &AlertLog {
        &self.log
    }

    fn prune(&mut self) {
        // Keep everything inside the slow window; older samples can
        // never influence either rate again.
        let lo = self.now_us - self.cfg.slow_window_us;
        let cut = self.samples.partition_point(|&(t, _)| t <= lo);
        if cut > 0 {
            self.samples.drain(..cut);
        }
    }

    /// Record a regime-shift event from `split-watch` as an
    /// informational alert. The alert enters the log already resolved
    /// (a change-point is an instant, not a persistent condition) and
    /// does not interact with burn-rate fire/resolve logic.
    pub fn observe_regime(&mut self, event: &RegimeEvent) {
        let t = event.t_us.max(self.now_us);
        self.log.alerts.push(Alert {
            fired_at_us: t,
            resolved_at_us: Some(t),
            fast_burn_at_fire: self.fast_burn(),
            slow_burn_at_fire: self.slow_burn(),
            source: AlertSource::RegimeShift,
            detail: event.render(),
        });
    }

    fn evaluate(&mut self) {
        let fast = self.fast_burn();
        let slow = self.slow_burn();
        if let Some(i) = self.active_burn {
            if fast < self.cfg.fast_burn {
                self.log.alerts[i].resolved_at_us = Some(self.now_us);
                self.active_burn = None;
            }
        } else if fast >= self.cfg.fast_burn && slow >= self.cfg.slow_burn {
            self.active_burn = Some(self.log.alerts.len());
            self.log.alerts.push(Alert {
                fired_at_us: self.now_us,
                resolved_at_us: None,
                fast_burn_at_fire: fast,
                slow_burn_at_fire: slow,
                source: AlertSource::BurnRate,
                detail: String::new(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SloCfg {
        SloCfg {
            alpha: 4.0,
            objective: 0.10,
            fast_window_us: 100.0,
            slow_window_us: 1000.0,
            fast_burn: 1.0,
            slow_burn: 1.0,
        }
    }

    #[test]
    fn empty_windows_have_zero_rate_and_no_alert() {
        let mut m = SloMonitor::new(cfg());
        m.advance(10_000.0);
        assert_eq!(m.window_rate(100.0), 0.0);
        assert_eq!(m.fast_burn(), 0.0);
        assert!(!m.alert_active());
        assert_eq!(m.log().fired(), 0);
    }

    #[test]
    fn alert_fires_iff_windowed_rate_exceeds_threshold() {
        let mut m = SloMonitor::new(cfg());
        // 9 good + 1 bad = 10% violation rate = burn 1.0 → fires
        // exactly at the threshold sample, not before.
        for i in 0..9 {
            m.observe(i as f64, false);
            assert!(!m.alert_active(), "must not fire below objective");
        }
        m.observe(9.0, true);
        assert!(m.alert_active(), "burn 1.0 reaches both thresholds");
        assert_eq!(m.log().fired(), 1);
        let a = &m.log().alerts[0];
        assert!((a.fast_burn_at_fire - 1.0).abs() < 1e-9);
        assert!((a.slow_burn_at_fire - 1.0).abs() < 1e-9);
    }

    #[test]
    fn window_boundary_is_half_open() {
        let mut m = SloMonitor::new(cfg());
        m.observe(0.0, true);
        m.advance(100.0);
        // Sample at t=0 with window (0, 100]: exactly on the open edge,
        // so it is excluded from the fast window...
        assert_eq!(m.window_rate(100.0), 0.0);
        // ...but still inside the slow window (−900, 100].
        assert_eq!(m.window_rate(1000.0), 1.0);
    }

    #[test]
    fn alert_resolves_when_fast_window_cools() {
        let mut m = SloMonitor::new(cfg());
        m.observe(0.0, true); // rate 1.0 in both windows → fires
        assert!(m.alert_active());
        // Violation ages out of the fast window; slow window still hot,
        // but resolution only needs the fast window to cool.
        m.advance(200.0);
        assert!(!m.alert_active());
        assert_eq!(m.log().fired(), 1);
        assert_eq!(m.log().alerts[0].resolved_at_us, Some(200.0));
        assert!(m.slow_burn() > 1.0, "slow window is still burning");
    }

    #[test]
    fn slow_window_gates_firing() {
        let mut m = SloMonitor::new(cfg());
        // Dilute the slow window with old successes so a fresh burst
        // burns the fast window but not the slow one.
        for i in 0..95 {
            m.observe(i as f64, false);
        }
        for i in 0..5 {
            m.observe(900.0 + i as f64, true);
        }
        assert!(m.fast_burn() >= 1.0, "fast window is all violations");
        assert!(m.slow_burn() < 1.0, "slow window diluted to 5%");
        assert!(!m.alert_active(), "multi-window AND must gate the alert");
    }

    #[test]
    fn samples_prune_but_rates_are_unaffected() {
        let mut m = SloMonitor::new(cfg());
        for i in 0..500 {
            m.observe(i as f64 * 10.0, i % 2 == 0);
        }
        // Only the slow window (1000 µs / 10 µs spacing ≈ 100 samples)
        // is retained.
        assert!(m.samples.len() <= 101, "kept {}", m.samples.len());
        assert!((m.window_rate(1000.0) - 0.5).abs() < 0.02);
    }

    #[test]
    fn alert_fires_exactly_at_window_boundary() {
        let mut m = SloMonitor::new(cfg());
        // Fires immediately: rate 1.0 in both windows.
        m.observe(0.0, true);
        assert_eq!(m.log().fired(), 1);
        // One tick before the boundary the violation is still inside
        // the half-open fast window (now − 100, now] — alert holds.
        m.advance(99.0);
        assert!(m.alert_active(), "sample still inside the fast window");
        // Exactly at the boundary the t=0 sample sits on the open edge,
        // the fast window reads empty, and the alert resolves at
        // precisely that instant — not a tick earlier or later.
        m.advance(100.0);
        assert!(!m.alert_active());
        assert_eq!(m.log().alerts[0].resolved_at_us, Some(100.0));
        // A violation arriving exactly at the boundary time is the only
        // fast-window sample (t=0 stays excluded) — rate 1.0, burn 10 —
        // and refires at that exact timestamp.
        m.observe(100.0, true);
        assert_eq!(m.log().fired(), 2);
        let a = &m.log().alerts[1];
        assert_eq!(a.fired_at_us, 100.0);
        assert!(
            (a.fast_burn_at_fire - 10.0).abs() < 1e-9,
            "only the closed-edge sample is in the fast window: {}",
            a.fast_burn_at_fire
        );
    }

    #[test]
    fn resolve_then_refire_records_two_alerts() {
        let mut m = SloMonitor::new(cfg());
        m.observe(0.0, true);
        assert!(m.alert_active());
        // While active, more violations must not stack extra alerts.
        m.observe(10.0, true);
        m.observe(20.0, true);
        assert_eq!(m.log().fired(), 1, "active alert must not re-fire");
        // Fast window cools → resolve.
        m.advance(200.0);
        assert!(!m.alert_active());
        assert_eq!(m.log().alerts[0].resolved_at_us, Some(200.0));
        // Fresh violation: fast window hot again, slow window still
        // carries the earlier burn → a second, separate alert.
        m.observe(300.0, true);
        assert_eq!(m.log().fired(), 2, "cooled monitor must refire");
        assert!(m.alert_active());
        assert_eq!(m.log().alerts[1].fired_at_us, 300.0);
        assert_eq!(m.log().alerts[1].resolved_at_us, None);
        assert_eq!(m.log().summary(), "2 fired, 1 active");
    }

    #[test]
    fn empty_window_burn_after_long_idle() {
        let mut m = SloMonitor::new(cfg());
        m.observe(0.0, true);
        assert!(m.alert_active());
        // Idle far past the slow window: every sample ages out, both
        // burns read 0 (not NaN from 0/0), and the active alert
        // resolves at the advance time.
        m.advance(1_000_000.0);
        assert!(m.samples.is_empty(), "all samples pruned");
        assert_eq!(m.window_rate(m.cfg().fast_window_us), 0.0);
        assert_eq!(m.fast_burn(), 0.0);
        assert_eq!(m.slow_burn(), 0.0);
        assert!(!m.alert_active());
        assert_eq!(m.log().alerts[0].resolved_at_us, Some(1_000_000.0));
        // And an empty monitor stays quiet forever after.
        m.advance(2_000_000.0);
        assert_eq!(m.log().fired(), 1);
    }

    fn regime_event(t_us: f64) -> RegimeEvent {
        RegimeEvent {
            window: 7,
            t_us,
            model: "yolov2".into(),
            metric: split_watch::WatchMetric::LatencyP99,
            detector: split_watch::DetectorKind::Cusum,
            value: 9_000.0,
            baseline: 2_000.0,
            stat: 12.0,
            threshold: 8.0,
            culprit: None,
        }
    }

    #[test]
    fn regime_alerts_are_informational_and_do_not_gate_burn_alerts() {
        let mut m = SloMonitor::new(cfg());
        m.observe(0.0, true); // burn alert fires
        assert!(m.alert_active());
        // A regime shift lands while the burn alert is active; it enters
        // pre-resolved and must not hijack the burn alert's resolution.
        m.observe_regime(&regime_event(50.0));
        assert_eq!(m.log().fired(), 2);
        assert!(m.alert_active(), "burn alert still active");
        m.advance(200.0);
        assert!(!m.alert_active());
        // The burn alert (index 0) resolved, not the regime alert.
        assert_eq!(m.log().alerts[0].resolved_at_us, Some(200.0));
        assert_eq!(m.log().alerts[1].source, AlertSource::RegimeShift);
        assert_eq!(m.log().alerts[1].resolved_at_us, Some(50.0));
        assert!(m.log().alerts[1].detail.contains("yolov2"));
        assert_eq!(m.log().fired_from(AlertSource::BurnRate), 1);
        assert_eq!(m.log().fired_from(AlertSource::RegimeShift), 1);
    }

    #[test]
    fn regime_alert_timestamps_clamp_to_monitor_time() {
        let mut m = SloMonitor::new(cfg());
        m.advance(500.0);
        m.observe_regime(&regime_event(100.0)); // stale event time
        let a = &m.log().alerts[0];
        assert_eq!(a.fired_at_us, 500.0);
        assert_eq!(a.resolved_at_us, Some(500.0));
        assert_eq!(m.log().summary(), "1 fired, 0 active");
    }

    #[test]
    fn observe_outcome_applies_alpha_rule() {
        let mut m = SloMonitor::new(cfg());
        m.observe_outcome(1.0, 39.9, 10.0); // 39.9 ≤ 4×10 → ok
        m.observe_outcome(2.0, 40.0, 10.0); // boundary: not strict-greater
        m.observe_outcome(3.0, 40.1, 10.0); // violation
        assert!((m.window_rate(100.0) - 1.0 / 3.0).abs() < 1e-9);
    }
}
