#![warn(missing_docs)]
//! # split-obs — online observability for the SPLIT serving stack
//!
//! The telemetry substrate (`split-telemetry`) records *what happened*;
//! this crate explains *why a request was slow* and *whether the QoS
//! budget is burning*, while the system is still running:
//!
//! * [`span`] — rebuilds every request's causal span tree
//!   ([`SpanContext`] with real parent links) from a lifecycle
//!   recording: arrival → queue → per-block execute → transfers →
//!   preemption/downgrade stalls → completion drain. Exportable to
//!   Perfetto with one track per request.
//! * [`attribution`] — critical-path attribution: decomposes each
//!   completed request's end-to-end latency into queueing / compute /
//!   transfer / preemption-stall / scheduler-drain components that sum
//!   to the e2e latency within 1 ns (the `SA301` invariant enforced by
//!   `split-analyze`), plus per-model aggregate rollups for
//!   `qos-metrics` reports.
//! * [`slo`] — a rolling-window violation-rate tracker with Google
//!   SRE-style multi-window burn-rate alerts (fast 5 s + slow 60 s
//!   simulated-time windows by default) feeding an [`AlertLog`].
//! * [`dashboard`] / [`monitor`] — an incremental event consumer that
//!   maintains a live [`split_telemetry::Registry`], renders in-terminal
//!   dashboard frames (queue depth, utilization, per-model p50/p99,
//!   burn-rate gauges, active alerts), and emits Prometheus text-format
//!   metrics. Backs `split-cli monitor`.
//! * [`saturation`] — per-device saturation rollups for fleet runs
//!   (routed/completed counts, utilization, latency tail), rendered as
//!   the `split-cli fleet` device table and `results/` CSV artifacts.
//!
//! The crate depends only on `split-telemetry` and `qos-metrics`, so
//! every layer above (the policy engine, the threaded runtime, the
//! analyzers, the CLI) can consume it without dependency cycles.

pub mod attribution;
pub mod dashboard;
pub mod monitor;
pub mod saturation;
pub mod slo;
pub mod span;

pub use attribution::{attribute, rollup_by_model, Attribution, SUM_TOLERANCE_US};
pub use dashboard::{render_frame, Frame, ModelLatencyRow};
pub use monitor::{Monitor, MonitorCfg};
pub use saturation::{render_saturation_table, saturation_csv, DeviceSaturation};
pub use slo::{Alert, AlertLog, SloCfg, SloMonitor};
pub use span::{
    build_spans, deterministic_span_id, span_trace_events, write_span_trace, Span, SpanContext,
    SpanKind, ROOT_SPAN_ID,
};
