//! Per-device saturation telemetry for fleet runs.
//!
//! The cluster engine reduces each device's shard results into one
//! [`DeviceSaturation`] row: how much traffic the router sent it, how
//! busy its timeline was, and its end-to-end latency tail. The rows are
//! what `split-cli fleet` prints and what the committed
//! `results/fleet_devices.csv` stores — all values derive from the
//! simulation, never from wall clocks, so the artifact is deterministic.

use serde::{Deserialize, Serialize};

/// One device's saturation summary over a fleet run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSaturation {
    /// Device index within the fleet.
    pub device: usize,
    /// Device-class label (`"jetson"`, `"nx"`, `"edge"`).
    pub class: String,
    /// Spatial partitions (scheduler lanes) on the device.
    pub streams: usize,
    /// Requests the router assigned to the device.
    pub routed: u64,
    /// Requests the device's schedulers completed.
    pub completed: u64,
    /// Offered work as a fraction of what the device could serve over
    /// the run's span (router's demand estimate / capacity·span).
    pub offered_load: f64,
    /// Busy time summed over the device's lanes, µs.
    pub busy_us: f64,
    /// Longest lane timeline span on the device, µs.
    pub span_us: f64,
    /// Peak queue depth over the device's lanes.
    pub queue_peak: i64,
    /// Median end-to-end latency across the device's completions, µs.
    pub p50_e2e_us: u64,
    /// 99th-percentile end-to-end latency, µs.
    pub p99_e2e_us: u64,
}

impl DeviceSaturation {
    /// Fraction of the device's lane-time that was busy
    /// (`busy / (streams · span)`); 0 when the device served nothing.
    pub fn utilization(&self) -> f64 {
        if self.span_us <= 0.0 {
            return 0.0;
        }
        self.busy_us / (self.streams.max(1) as f64 * self.span_us)
    }
}

/// Render an aligned per-device saturation table (the `split-cli fleet`
/// stdout block).
pub fn render_saturation_table(rows: &[DeviceSaturation]) -> String {
    let mut out = String::new();
    out.push_str(
        "  dev  class    lanes     routed  completed   load   util   q.peak   p50(ms)   p99(ms)\n",
    );
    for r in rows {
        out.push_str(&format!(
            "  {:>3}  {:<7} {:>5} {:>10} {:>10}  {:>5.2}  {:>5.2} {:>8} {:>9.1} {:>9.1}\n",
            r.device,
            r.class,
            r.streams,
            r.routed,
            r.completed,
            r.offered_load,
            r.utilization(),
            r.queue_peak,
            r.p50_e2e_us as f64 / 1e3,
            r.p99_e2e_us as f64 / 1e3,
        ));
    }
    out
}

/// Render the rows as CSV (header + one line per device), for fig-style
/// artifacts under `results/`.
pub fn saturation_csv(rows: &[DeviceSaturation]) -> String {
    let mut out = String::from(
        "device,class,streams,routed,completed,offered_load,utilization,queue_peak,p50_e2e_us,p99_e2e_us\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{},{},{:.6},{:.6},{},{},{}\n",
            r.device,
            r.class,
            r.streams,
            r.routed,
            r.completed,
            r.offered_load,
            r.utilization(),
            r.queue_peak,
            r.p50_e2e_us,
            r.p99_e2e_us,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> DeviceSaturation {
        DeviceSaturation {
            device: 3,
            class: "edge".into(),
            streams: 4,
            routed: 1000,
            completed: 1000,
            offered_load: 0.62,
            busy_us: 2_000_000.0,
            span_us: 1_000_000.0,
            queue_peak: 7,
            p50_e2e_us: 52_000,
            p99_e2e_us: 240_000,
        }
    }

    #[test]
    fn utilization_normalizes_by_lanes() {
        let r = row();
        assert!((r.utilization() - 0.5).abs() < 1e-12);
        let idle = DeviceSaturation {
            span_us: 0.0,
            busy_us: 0.0,
            ..row()
        };
        assert_eq!(idle.utilization(), 0.0);
    }

    #[test]
    fn table_and_csv_carry_every_device() {
        let rows = vec![row(), DeviceSaturation { device: 4, ..row() }];
        let table = render_saturation_table(&rows);
        assert!(table.contains("edge"));
        assert_eq!(table.lines().count(), 3);
        let csv = saturation_csv(&rows);
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("device,class"));
        assert!(csv.contains("\n3,edge,4,1000,1000,"));
    }
}
