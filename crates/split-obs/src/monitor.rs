//! Incremental event consumer backing `split-cli monitor`.
//!
//! A [`Monitor`] is fed lifecycle [`Event`]s one at a time — live from a
//! running simulation or replayed from a trace — and maintains a
//! [`Registry`] of standard metrics, per-request state for QoS
//! judgement, and an [`crate::slo::SloMonitor`]. At any point it can
//! emit a dashboard [`Frame`], render it, or export Prometheus
//! text-format metrics.
//!
//! A request's QoS verdict needs its pure compute time, which the event
//! stream does not carry directly; the monitor reconstructs it online
//! as the sum of the request's observed block durations (`BlockStart` →
//! `BlockEnd` pairs). Violation is then the SPLIT rule: e2e > α ×
//! compute.

use crate::dashboard::{render_frame, Frame, ModelLatencyRow};
use crate::slo::{SloCfg, SloMonitor};
use split_telemetry::{Event, Recorder, Registry};
use split_watch::{DriftWatch, WatchCfg};
use std::collections::HashMap;

/// Monitor configuration.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MonitorCfg {
    /// SLO / burn-rate alert settings (α lives inside).
    pub slo: SloCfg,
    /// Drift-watch settings (window width, sketch accuracy, detector
    /// tuning).
    pub drift: WatchCfg,
}

#[derive(Debug, Default)]
struct InFlight {
    model: String,
    arrival_us: f64,
    compute_us: f64,
    /// (block, stream) → start time of an unclosed block.
    open_blocks: HashMap<(usize, u32), f64>,
}

/// Live observability state: metrics registry + SLO monitor + the
/// per-request bookkeeping needed to connect them.
pub struct Monitor {
    registry: Registry,
    slo: SloMonitor,
    drift: DriftWatch,
    inflight: HashMap<u64, InFlight>,
}

impl Monitor {
    /// New monitor with the given configuration. The drift watch's α
    /// is forced to the SLO α so both layers judge violations
    /// identically.
    pub fn new(cfg: MonitorCfg) -> Self {
        let mut drift_cfg = cfg.drift;
        drift_cfg.alpha = cfg.slo.alpha;
        Monitor {
            registry: Registry::new(),
            slo: SloMonitor::new(cfg.slo),
            drift: DriftWatch::new(drift_cfg),
            inflight: HashMap::new(),
        }
    }

    /// The backing metrics registry (for export or direct inspection).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The SLO / burn-rate monitor.
    pub fn slo(&self) -> &SloMonitor {
        &self.slo
    }

    /// The drift watch (windowed sketches + change-point detectors).
    pub fn drift(&self) -> &DriftWatch {
        &self.drift
    }

    /// Consume one lifecycle event.
    pub fn feed(&mut self, e: &Event) {
        match e {
            Event::Arrival { req, model, t_us } => {
                self.registry.counter("requests.arrived").inc();
                self.inflight.insert(
                    *req,
                    InFlight {
                        model: model.clone(),
                        arrival_us: *t_us,
                        ..InFlight::default()
                    },
                );
            }
            Event::BlockStart {
                req,
                block,
                stream,
                t_us,
            } => {
                if let Some(f) = self.inflight.get_mut(req) {
                    f.open_blocks.insert((*block, *stream), *t_us);
                }
            }
            Event::BlockEnd {
                req,
                block,
                stream,
                t_us,
            } => {
                if let Some(f) = self.inflight.get_mut(req) {
                    if let Some(start) = f.open_blocks.remove(&(*block, *stream)) {
                        f.compute_us += (t_us - start).max(0.0);
                    }
                }
            }
            Event::Transfer { bytes, .. } => {
                self.registry.counter("transfer.bytes").add(*bytes);
            }
            Event::Completion { req, t_us } => {
                self.registry.counter("requests.completed").inc();
                if let Some(f) = self.inflight.remove(req) {
                    let e2e = (t_us - f.arrival_us).max(0.0);
                    let us = e2e.round() as u64;
                    self.registry.histogram("request.e2e_us").record(us);
                    if !f.model.is_empty() {
                        self.registry
                            .histogram(&format!("model.{}.e2e_us", f.model))
                            .record(us);
                    }
                    self.slo.observe_outcome(*t_us, e2e, f.compute_us);
                }
            }
            Event::PreemptDecision { decision_ns, .. } => {
                self.registry
                    .histogram("sched.decision_ns")
                    .record(*decision_ns);
            }
            Event::QueueDepth { depth, .. } => {
                self.registry.gauge("queue.depth").set(*depth as i64);
            }
            Event::Utilization { busy, .. } => {
                // Busy fraction in [0, 1] → integer percent gauge.
                self.registry
                    .gauge("utilization.pct")
                    .set((busy * 100.0).round() as i64);
            }
            Event::Downgrade { .. } => {
                self.registry.counter("elastic.downgrades").inc();
            }
            Event::Enqueue { .. } | Event::Mark { .. } => {}
        }
        self.drift.feed(e);
        for ev in self.drift.drain_events() {
            self.slo.observe_regime(&ev);
        }
        self.slo.advance(e.t_us());
    }

    /// Consume every event of a recording (replay convenience).
    pub fn feed_recorder(&mut self, rec: &Recorder) {
        for e in rec.events() {
            self.feed(e);
        }
    }

    /// Snapshot the current state as a dashboard [`Frame`].
    pub fn frame(&self) -> Frame {
        let snap = self.registry.snapshot();
        let scalar = |name: &str| snap.get(name).map(|e| e.value).unwrap_or(0);
        let count = |name: &str| snap.get(name).map(|e| e.count).unwrap_or(0);

        let mut models = Vec::new();
        for e in &snap.entries {
            if let Some(model) = e
                .name
                .strip_prefix("model.")
                .and_then(|r| r.strip_suffix(".e2e_us"))
            {
                models.push(ModelLatencyRow {
                    model: model.to_string(),
                    count: e.count,
                    p50_ms: e.p50 as f64 / 1_000.0,
                    p99_ms: e.p99 as f64 / 1_000.0,
                });
            }
        }

        Frame {
            now_us: self.slo.now_us(),
            queue_depth: scalar("queue.depth"),
            utilization_pct: scalar("utilization.pct"),
            arrived: count("requests.arrived"),
            completed: count("requests.completed"),
            models,
            fast_burn: self.slo.fast_burn(),
            slow_burn: self.slo.slow_burn(),
            violation_rate: self.slo.window_rate(self.slo.cfg().slow_window_us),
            alert_active: self.slo.alert_active(),
            alerts_fired: self.slo.log().fired(),
            drift_windows: self.drift.ring().closed_count(),
            regime_events: self.drift.events().len(),
            last_regime: self.drift.events().last().map(|e| e.render()),
        }
    }

    /// Render the current frame as the terminal panel.
    pub fn render(&self) -> String {
        render_frame(&self.frame())
    }

    /// Export the current state in Prometheus text exposition format
    /// (metric names prefixed with `split_`), including burn-rate and
    /// alert gauges derived from the SLO monitor.
    pub fn prometheus(&self) -> String {
        let mut out = self.registry.snapshot().render_prometheus("split");
        out.push_str(
            "# HELP split_slo_fast_burn SLO error-budget burn rate over the fast window.\n",
        );
        out.push_str("# TYPE split_slo_fast_burn gauge\n");
        out.push_str(&format!("split_slo_fast_burn {}\n", self.slo.fast_burn()));
        out.push_str(
            "# HELP split_slo_slow_burn SLO error-budget burn rate over the slow window.\n",
        );
        out.push_str("# TYPE split_slo_slow_burn gauge\n");
        out.push_str(&format!("split_slo_slow_burn {}\n", self.slo.slow_burn()));
        out.push_str(
            "# HELP split_slo_alert_active Whether a burn-rate alert is currently firing.\n",
        );
        out.push_str("# TYPE split_slo_alert_active gauge\n");
        out.push_str(&format!(
            "split_slo_alert_active {}\n",
            u8::from(self.slo.alert_active())
        ));
        out.push_str("# HELP split_slo_alerts_fired Burn-rate alerts fired since start.\n");
        out.push_str("# TYPE split_slo_alerts_fired counter\n");
        out.push_str(&format!(
            "split_slo_alerts_fired {}\n",
            self.slo.log().fired()
        ));
        // Drift-watch families: windowed latency quantiles from the most
        // recently closed window, plus regime-shift state.
        if let Some(frame) = self.drift.ring().latest() {
            let mut quantiles = String::new();
            let mut completions = String::new();
            for (model, stats) in &frame.models {
                for (q, v) in [
                    ("0.5", stats.sketch.p50()),
                    ("0.99", stats.sketch.p99()),
                    ("0.999", stats.sketch.p999()),
                ] {
                    quantiles.push_str(&format!(
                        "split_watch_window_e2e_us{{model=\"{model}\",quantile=\"{q}\"}} {v}\n"
                    ));
                }
                completions.push_str(&format!(
                    "split_watch_window_completions{{model=\"{model}\"}} {}\n",
                    stats.completions
                ));
            }
            out.push_str(
                "# HELP split_watch_window_e2e_us Windowed e2e latency quantiles (last closed window).\n",
            );
            out.push_str("# TYPE split_watch_window_e2e_us gauge\n");
            out.push_str(&quantiles);
            out.push_str(
                "# HELP split_watch_window_completions Completions in the last closed window.\n",
            );
            out.push_str("# TYPE split_watch_window_completions gauge\n");
            out.push_str(&completions);
        }
        out.push_str("# HELP split_watch_windows_closed Drift-watch windows closed since start.\n");
        out.push_str("# TYPE split_watch_windows_closed counter\n");
        out.push_str(&format!(
            "split_watch_windows_closed {}\n",
            self.drift.ring().closed_count()
        ));
        out.push_str(
            "# HELP split_watch_regime_events Regime-shift events detected since start.\n",
        );
        out.push_str("# TYPE split_watch_regime_events counter\n");
        out.push_str(&format!(
            "split_watch_regime_events {}\n",
            self.drift.events().len()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(m: &mut Monitor, req: u64, model: &str, arrival: f64, exec: f64, done: f64) {
        m.feed(&Event::Arrival {
            req,
            model: model.into(),
            t_us: arrival,
        });
        m.feed(&Event::BlockStart {
            req,
            block: 0,
            stream: 0,
            t_us: done - exec,
        });
        m.feed(&Event::BlockEnd {
            req,
            block: 0,
            stream: 0,
            t_us: done,
        });
        m.feed(&Event::Completion { req, t_us: done });
    }

    #[test]
    fn frame_reflects_fed_events() {
        let mut m = Monitor::new(MonitorCfg::default());
        m.feed(&Event::QueueDepth {
            depth: 5,
            t_us: 0.0,
        });
        m.feed(&Event::Utilization {
            busy: 0.5,
            t_us: 0.0,
        });
        request(&mut m, 0, "resnet50", 0.0, 1_000.0, 2_000.0);
        request(&mut m, 1, "vgg19", 100.0, 4_000.0, 4_500.0);

        let f = m.frame();
        assert_eq!(f.queue_depth, 5);
        assert_eq!(f.utilization_pct, 50);
        assert_eq!(f.arrived, 2);
        assert_eq!(f.completed, 2);
        assert_eq!(f.models.len(), 2);
        assert_eq!(f.models[0].model, "resnet50");
        assert!(f.models[0].p50_ms > 0.0);
        assert_eq!(f.models[1].model, "vgg19");
        assert_eq!(f.now_us, 4_500.0);
    }

    #[test]
    fn violations_drive_burn_rate() {
        let mut m = Monitor::new(MonitorCfg::default());
        // e2e 2000 vs compute 100 → ratio 20 > α=4 → violation.
        request(&mut m, 0, "m", 0.0, 100.0, 2_000.0);
        let f = m.frame();
        assert!(f.violation_rate > 0.99);
        assert!(f.fast_burn >= 1.0);
        assert!(f.alert_active);
        assert_eq!(f.alerts_fired, 1);
    }

    #[test]
    fn compliant_requests_do_not_burn() {
        let mut m = Monitor::new(MonitorCfg::default());
        // e2e 110 vs compute 100 → ratio 1.1 ≤ 4.
        request(&mut m, 0, "m", 0.0, 100.0, 110.0);
        let f = m.frame();
        assert_eq!(f.violation_rate, 0.0);
        assert!(!f.alert_active);
    }

    #[test]
    fn prometheus_export_has_types_and_slo_lines() {
        let mut m = Monitor::new(MonitorCfg::default());
        request(&mut m, 0, "resnet50", 0.0, 100.0, 150.0);
        let p = m.prometheus();
        assert!(p.contains("# HELP split_requests_arrived "));
        assert!(p.contains("# TYPE split_requests_arrived counter"));
        assert!(p.contains("split_requests_arrived 1"));
        // Per-model latency is one labeled family, not a name per model.
        assert!(p.contains("split_model_e2e_us{model=\"resnet50\",quantile=\"0.99\"}"));
        assert!(p.contains("split_model_e2e_us_count{model=\"resnet50\"} 1"));
        assert!(p.contains("# HELP split_slo_fast_burn "));
        assert!(p.contains("split_slo_fast_burn"));
        assert!(p.contains("split_slo_alert_active 0"));
        // Drift counters are always present; the windowed family only
        // appears once a window has closed (none has at t=150 µs).
        assert!(p.contains("split_watch_windows_closed 0"));
        assert!(p.contains("split_watch_regime_events 0"));
        assert!(!p.contains("split_watch_window_e2e_us{"));
        // Every TYPE header is preceded by its HELP line.
        let lines: Vec<&str> = p.lines().collect();
        for (i, l) in lines.iter().enumerate() {
            if let Some(rest) = l.strip_prefix("# TYPE ") {
                let fam = rest.split_whitespace().next().unwrap();
                assert!(
                    i > 0 && lines[i - 1].starts_with(&format!("# HELP {fam} ")),
                    "TYPE without preceding HELP for {fam}"
                );
            }
        }
    }

    fn drifty_cfg() -> MonitorCfg {
        MonitorCfg {
            drift: WatchCfg {
                window_us: 1_000.0,
                ..WatchCfg::default()
            },
            ..MonitorCfg::default()
        }
    }

    #[test]
    fn windowed_families_appear_after_first_rotation() {
        let mut m = Monitor::new(drifty_cfg());
        request(&mut m, 0, "resnet50", 0.0, 100.0, 150.0);
        request(&mut m, 1, "resnet50", 1_500.0, 100.0, 1_600.0);
        // The second completion (t=1600) closes window 0.
        let p = m.prometheus();
        assert!(p.contains("split_watch_window_e2e_us{model=\"resnet50\",quantile=\"0.5\"}"));
        assert!(p.contains("split_watch_window_e2e_us{model=\"resnet50\",quantile=\"0.999\"}"));
        assert!(p.contains("split_watch_window_completions{model=\"resnet50\"} 1"));
        assert!(p.contains("split_watch_windows_closed 1"));
        let lines: Vec<&str> = p.lines().collect();
        for (i, l) in lines.iter().enumerate() {
            if let Some(rest) = l.strip_prefix("# TYPE ") {
                let fam = rest.split_whitespace().next().unwrap();
                assert!(
                    i > 0 && lines[i - 1].starts_with(&format!("# HELP {fam} ")),
                    "TYPE without preceding HELP for {fam}"
                );
            }
        }
        let f = m.frame();
        assert_eq!(f.drift_windows, 1);
    }

    #[test]
    fn arrival_surge_raises_regime_alerts() {
        let mut m = Monitor::new(drifty_cfg());
        let mut req = 0u64;
        // 15 calm windows then a sustained 10× arrival surge; every
        // request completes compliantly so only the arrival-rate series
        // can fire.
        for k in 0..30u64 {
            let n = if k < 15 { 4 } else { 40 };
            for i in 0..n {
                let t = k as f64 * 1_000.0 + 1.0 + i as f64 * 10.0;
                request(&mut m, req, "gpt2", t, 100.0, t + 120.0);
                req += 1;
            }
        }
        let f = m.frame();
        assert!(f.regime_events > 0, "surge must fire a detector");
        assert!(f.last_regime.is_some());
        // Regime events were forwarded into the alert log as resolved
        // informational alerts, without activating burn alerting.
        use crate::slo::AlertSource;
        assert!(m.slo().log().fired_from(AlertSource::RegimeShift) > 0);
        assert!(!m.slo().alert_active());
        let p = m.prometheus();
        assert!(!p.contains("split_watch_regime_events 0"));
    }

    #[test]
    fn render_smoke() {
        let mut m = Monitor::new(MonitorCfg::default());
        request(&mut m, 0, "m", 0.0, 100.0, 150.0);
        let s = m.render();
        assert!(s.contains("SPLIT monitor"));
        assert!(s.contains('m'));
    }
}
