//! Online change-point detectors over the windowed series.
//!
//! Every closed [`WindowFrame`] yields one point
//! per tracked series — per-model (and aggregate `"*"`) windowed p99
//! latency, violation rate, and arrival rate — and each series runs two
//! classic sequential detectors side by side:
//!
//! * **CUSUM** (one-sided, positive shift): `s ← max(0, s + (x − μ −
//!   k·σ))`, firing when `s > h·σ`. Catches both a single large jump
//!   and a sustained small drift above the allowance `k·σ`.
//! * **Page–Hinkley**: `m ← m + (x − μ − δ)`, `M ← min(M, m)`, firing
//!   when `m − M > λ`. The running-minimum form makes it robust to a
//!   slow start before the shift.
//!
//! The baseline `(μ, σ)` is frozen from the first `warmup` valid points
//! of each series (population moments), with `σ` floored at
//! `sigma_floor_frac·|μ|` and a per-metric absolute floor — five points
//! estimate σ noisily, and an accidental tiny σ̂ would turn runner
//! noise into false positives. **Hysteresis**: a firing detector
//! resets its statistics, sits out `cooldown` valid points, and then
//! re-learns its baseline from post-shift points — so a persistent
//! shift emits one event and adapts to the new regime instead of
//! re-firing every `cooldown` windows.
//!
//! The **interference-onset** detector pairs a victim model's latency
//! shift with a culprit model's arrival-rate shift within
//! `pair_window` windows (either order), emitting one
//! [`DetectorKind::InterferencePair`] event per (victim, culprit) pair
//! — the "Performance Isolation …" hazard (PAPERS.md) made observable.
//!
//! Everything here is pure f64 arithmetic over a deterministic series:
//! replaying the same windows yields a bit-identical event list
//! (SA504), at any `SPLIT_THREADS`.

use crate::window::WindowFrame;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Series name for the all-models aggregate.
pub const AGGREGATE_MODEL: &str = "*";

/// Which windowed series a detector watches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum WatchMetric {
    /// Windowed p99 of end-to-end latency, µs.
    LatencyP99,
    /// Windowed QoS-violation rate (violations ÷ completions).
    ViolationRate,
    /// Windowed arrival count.
    ArrivalRate,
}

impl WatchMetric {
    /// Stable lower-case label (Prometheus label / report text).
    pub fn label(&self) -> &'static str {
        match self {
            WatchMetric::LatencyP99 => "latency_p99",
            WatchMetric::ViolationRate => "violation_rate",
            WatchMetric::ArrivalRate => "arrival_rate",
        }
    }
}

/// Which detector produced a [`RegimeEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DetectorKind {
    /// One-sided CUSUM.
    Cusum,
    /// Page–Hinkley.
    PageHinkley,
    /// Victim-latency ∧ culprit-arrival pairing.
    InterferencePair,
}

impl DetectorKind {
    /// Stable lower-case label (Prometheus label / report text).
    pub fn label(&self) -> &'static str {
        match self {
            DetectorKind::Cusum => "cusum",
            DetectorKind::PageHinkley => "page_hinkley",
            DetectorKind::InterferencePair => "interference",
        }
    }
}

/// A typed, replayable change-point event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegimeEvent {
    /// Index of the closed window whose point triggered the event.
    pub window: u64,
    /// End of that window, µs (the event's logical timestamp).
    pub t_us: f64,
    /// Model the shifted series belongs to ([`AGGREGATE_MODEL`] for the
    /// all-models aggregate); the *victim* for interference events.
    pub model: String,
    /// The shifted series.
    pub metric: WatchMetric,
    /// The detector that fired.
    pub detector: DetectorKind,
    /// The series point that triggered the firing.
    pub value: f64,
    /// Frozen baseline mean μ of the series.
    pub baseline: f64,
    /// Detector statistic at fire time (CUSUM `s` / Page–Hinkley
    /// `m − M`; for interference, the window distance of the pairing).
    pub stat: f64,
    /// Threshold the statistic exceeded.
    pub threshold: f64,
    /// Culprit model for [`DetectorKind::InterferencePair`] events.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub culprit: Option<String>,
}

impl RegimeEvent {
    /// One-line human rendering, e.g.
    /// `w12 @ 130.0s  resnet50 latency_p99 cusum: 41320 vs baseline 9874`.
    pub fn render(&self) -> String {
        let pair = match &self.culprit {
            Some(c) => format!(" culprit={c}"),
            None => String::new(),
        };
        format!(
            "w{} @ {:.1}s  {} {} {}: value {:.1} vs baseline {:.1} (stat {:.1} > {:.1}){}",
            self.window,
            self.t_us / 1e6,
            self.model,
            self.metric.label(),
            self.detector.label(),
            self.value,
            self.baseline,
            self.stat,
            self.threshold,
            pair
        )
    }
}

/// Detector tuning. Defaults are calibrated so the six stationary
/// Table-2 scenarios stay silent while a flash crowd fires within a
/// window or two of onset (pinned by `tests/drift_watch.rs` and the CI
/// `watch` job).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectCfg {
    /// Valid points used to freeze each series' baseline (μ, σ).
    pub warmup: usize,
    /// CUSUM slack multiplier `k` (in σ).
    pub k_sigma: f64,
    /// CUSUM firing threshold `h` (in σ).
    pub h_sigma: f64,
    /// Page–Hinkley slack δ (in σ).
    pub ph_delta_sigma: f64,
    /// Page–Hinkley firing threshold λ (in σ).
    pub ph_lambda_sigma: f64,
    /// σ floor as a fraction of |μ|.
    pub sigma_floor_frac: f64,
    /// Absolute σ floor for latency series, µs.
    pub latency_floor_us: f64,
    /// Absolute σ floor for violation-rate series.
    pub violation_floor: f64,
    /// Absolute σ floor for arrival-rate series.
    pub arrival_floor: f64,
    /// Valid points a fired detector stays disarmed (hysteresis).
    pub cooldown: usize,
    /// Minimum completions in a window for its p99 / violation rate to
    /// count as a valid series point (sparse windows are skipped, not
    /// zero-filled).
    pub min_completions: u64,
    /// Max window distance for interference (victim, culprit) pairing.
    pub pair_window: u64,
}

impl Default for DetectCfg {
    fn default() -> Self {
        DetectCfg {
            warmup: 5,
            k_sigma: 1.0,
            h_sigma: 8.0,
            ph_delta_sigma: 0.5,
            ph_lambda_sigma: 12.0,
            sigma_floor_frac: 0.25,
            latency_floor_us: 500.0,
            violation_floor: 0.05,
            arrival_floor: 2.0,
            cooldown: 8,
            min_completions: 5,
            pair_window: 3,
        }
    }
}

/// One series' sequential-detector state.
#[derive(Debug, Clone)]
struct SeriesDetector {
    /// Warmup points; baseline freezes when `warm.len() == warmup`.
    warm: Vec<f64>,
    mean: f64,
    sigma: f64,
    armed: bool,
    cusum: f64,
    ph_m: f64,
    ph_min: f64,
    cooldown_left: usize,
}

impl SeriesDetector {
    fn new() -> Self {
        SeriesDetector {
            warm: Vec::new(),
            mean: 0.0,
            sigma: 0.0,
            armed: false,
            cusum: 0.0,
            ph_m: 0.0,
            ph_min: 0.0,
            cooldown_left: 0,
        }
    }

    /// Feed one valid point; report `(detector, stat, threshold)` for
    /// every detector that fired on it.
    fn step(
        &mut self,
        x: f64,
        cfg: &DetectCfg,
        metric: WatchMetric,
    ) -> Vec<(DetectorKind, f64, f64)> {
        if self.cooldown_left > 0 {
            self.cooldown_left -= 1;
            return Vec::new();
        }
        if !self.armed {
            self.warm.push(x);
            if self.warm.len() >= cfg.warmup {
                let n = self.warm.len() as f64;
                let mean = self.warm.iter().sum::<f64>() / n;
                let var = self
                    .warm
                    .iter()
                    .map(|v| (v - mean) * (v - mean))
                    .sum::<f64>()
                    / n;
                let floor_abs = match metric {
                    WatchMetric::LatencyP99 => cfg.latency_floor_us,
                    WatchMetric::ViolationRate => cfg.violation_floor,
                    WatchMetric::ArrivalRate => cfg.arrival_floor,
                };
                self.mean = mean;
                self.sigma = var
                    .max(0.0)
                    .sqrt()
                    .max(cfg.sigma_floor_frac * mean.abs())
                    .max(floor_abs);
                self.armed = true;
            }
            return Vec::new();
        }
        let mut fired = Vec::new();
        // CUSUM, one-sided positive.
        self.cusum = (self.cusum + (x - self.mean - cfg.k_sigma * self.sigma)).max(0.0);
        let h = cfg.h_sigma * self.sigma;
        if self.cusum > h {
            fired.push((DetectorKind::Cusum, self.cusum, h));
        }
        // Page–Hinkley.
        self.ph_m += x - self.mean - cfg.ph_delta_sigma * self.sigma;
        self.ph_min = self.ph_min.min(self.ph_m);
        let ph_stat = self.ph_m - self.ph_min;
        let lambda = cfg.ph_lambda_sigma * self.sigma;
        if ph_stat > lambda {
            fired.push((DetectorKind::PageHinkley, ph_stat, lambda));
        }
        if !fired.is_empty() {
            // The series has entered a new regime: clear the statistics,
            // sit out the cooldown, then *re-learn* the baseline from
            // post-shift points. A persistent shift therefore emits one
            // event and adapts, instead of re-firing every `cooldown`
            // windows forever.
            self.cusum = 0.0;
            self.ph_m = 0.0;
            self.ph_min = 0.0;
            self.cooldown_left = cfg.cooldown;
            self.armed = false;
            self.warm.clear();
        }
        fired
    }
}

/// All per-series detectors plus the interference pairer.
#[derive(Debug, Clone)]
pub struct DetectorBank {
    cfg: DetectCfg,
    series: BTreeMap<(String, WatchMetric), SeriesDetector>,
    /// Recent latency-shift fires: (window, victim model).
    latency_fires: Vec<(u64, String)>,
    /// Recent arrival-shift fires: (window, culprit model).
    arrival_fires: Vec<(u64, String)>,
    /// (victim, culprit) pairs already reported.
    paired: std::collections::BTreeSet<(String, String)>,
}

impl DetectorBank {
    /// New bank with the given tuning.
    pub fn new(cfg: DetectCfg) -> Self {
        DetectorBank {
            cfg,
            series: BTreeMap::new(),
            latency_fires: Vec::new(),
            arrival_fires: Vec::new(),
            paired: std::collections::BTreeSet::new(),
        }
    }

    /// The tuning in force.
    pub fn cfg(&self) -> &DetectCfg {
        &self.cfg
    }

    /// Whether the named series's detector is currently in cooldown —
    /// i.e. it fired within the last `cooldown` valid points (the
    /// dashboard's "shifted" regime state).
    pub fn in_cooldown(&self, model: &str, metric: WatchMetric) -> bool {
        self.series
            .get(&(model.to_string(), metric))
            .is_some_and(|d| d.cooldown_left > 0)
    }

    /// Consume one closed frame; return the regime events it triggered.
    pub fn step(&mut self, frame: &WindowFrame) -> Vec<RegimeEvent> {
        let mut events = Vec::new();
        // Aggregate first, then per-model in BTreeMap (name) order —
        // a deterministic series order, so event order is replayable.
        let mut series: Vec<(&str, &crate::window::WindowStats)> =
            vec![(AGGREGATE_MODEL, &frame.total)];
        series.extend(frame.models.iter().map(|(m, s)| (m.as_str(), s)));
        for (model, stats) in series {
            // Latency p99 and violation rate need enough completions to
            // be meaningful; arrival counts are always valid (including
            // an honest 0 for an idle window).
            if stats.completions >= self.cfg.min_completions {
                self.step_series(
                    model,
                    WatchMetric::LatencyP99,
                    stats.sketch.p99(),
                    frame,
                    &mut events,
                );
                self.step_series(
                    model,
                    WatchMetric::ViolationRate,
                    stats.violation_rate(),
                    frame,
                    &mut events,
                );
            }
            self.step_series(
                model,
                WatchMetric::ArrivalRate,
                stats.arrivals as f64,
                frame,
                &mut events,
            );
        }
        self.pair_interference(frame, &mut events);
        events
    }

    fn step_series(
        &mut self,
        model: &str,
        metric: WatchMetric,
        x: f64,
        frame: &WindowFrame,
        events: &mut Vec<RegimeEvent>,
    ) {
        let key = (model.to_string(), metric);
        let det = self.series.entry(key).or_insert_with(SeriesDetector::new);
        let baseline = det.mean;
        for (kind, stat, threshold) in det.step(x, &self.cfg, metric) {
            events.push(RegimeEvent {
                window: frame.index,
                t_us: frame.end_us,
                model: model.to_string(),
                metric,
                detector: kind,
                value: x,
                baseline,
                stat,
                threshold,
                culprit: None,
            });
            if model != AGGREGATE_MODEL {
                match metric {
                    WatchMetric::LatencyP99 => {
                        self.latency_fires.push((frame.index, model.to_string()));
                    }
                    WatchMetric::ArrivalRate => {
                        self.arrival_fires.push((frame.index, model.to_string()));
                    }
                    WatchMetric::ViolationRate => {}
                }
            }
        }
    }

    /// Pair victim latency shifts with culprit arrival shifts within
    /// `pair_window` windows, in either firing order. Deterministic
    /// choice: smallest window distance, then lexicographic culprit.
    fn pair_interference(&mut self, frame: &WindowFrame, events: &mut Vec<RegimeEvent>) {
        let horizon = frame.index.saturating_sub(self.cfg.pair_window);
        self.latency_fires.retain(|(w, _)| *w >= horizon);
        self.arrival_fires.retain(|(w, _)| *w >= horizon);
        let mut new_pairs = std::collections::BTreeMap::new();
        for (lw, victim) in &self.latency_fires {
            let mut best: Option<(u64, &String)> = None;
            for (aw, culprit) in &self.arrival_fires {
                if culprit == victim {
                    continue;
                }
                let dist = lw.abs_diff(*aw);
                if dist > self.cfg.pair_window {
                    continue;
                }
                best = match best {
                    Some((bd, bc)) if (bd, bc.as_str()) <= (dist, culprit.as_str()) => {
                        Some((bd, bc))
                    }
                    _ => Some((dist, culprit)),
                };
            }
            if let Some((dist, culprit)) = best {
                let pair = (victim.clone(), culprit.clone());
                if !self.paired.contains(&pair) {
                    // BTreeMap dedupes the pair when both CUSUM and
                    // Page–Hinkley put the same victim on the fire list.
                    new_pairs.entry(pair).or_insert(dist);
                }
            }
        }
        for ((victim, culprit), dist) in new_pairs {
            self.paired.insert((victim.clone(), culprit.clone()));
            events.push(RegimeEvent {
                window: frame.index,
                t_us: frame.end_us,
                model: victim,
                metric: WatchMetric::LatencyP99,
                detector: DetectorKind::InterferencePair,
                value: 0.0,
                baseline: 0.0,
                stat: dist as f64,
                threshold: self.cfg.pair_window as f64,
                culprit: Some(culprit),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::WindowRing;

    /// Drive a ring + bank with per-window completion batches.
    fn run(bank: &mut DetectorBank, batches: &[(u64, f64)]) -> Vec<RegimeEvent> {
        // batches[k] = (completions in window k, e2e_us per completion)
        let mut ring = WindowRing::new(100.0, 64, 0.01);
        let mut events = Vec::new();
        for (k, (n, e2e)) in batches.iter().enumerate() {
            let base = k as f64 * 100.0;
            for i in 0..*n {
                let t = base + (i as f64 + 0.5) * 100.0 / (*n as f64 + 1.0);
                let mut closed = ring.observe_arrival(t, "m");
                closed.extend(ring.observe_completion(t, "m", *e2e, false));
                for f in closed {
                    events.extend(bank.step(&f));
                }
            }
        }
        if let Some(f) = ring.finalize() {
            events.extend(bank.step(&f));
        }
        events
    }

    #[test]
    fn stationary_series_stays_silent() {
        let mut bank = DetectorBank::new(DetectCfg::default());
        let batches: Vec<(u64, f64)> = (0..30)
            .map(|k| (10 + (k % 3), 5_000.0 + 50.0 * (k % 5) as f64))
            .collect();
        let events = run(&mut bank, &batches);
        assert!(events.is_empty(), "false positives: {events:?}");
    }

    #[test]
    fn step_shift_fires_once_within_two_windows() {
        let mut bank = DetectorBank::new(DetectCfg::default());
        let mut batches: Vec<(u64, f64)> = (0..10).map(|_| (10, 5_000.0)).collect();
        // Onset at window 10: latency jumps 10x and arrivals triple.
        batches.extend((0..10).map(|_| (30u64, 50_000.0)));
        let events = run(&mut bank, &batches);
        assert!(!events.is_empty(), "shift not detected");
        let first = events.iter().map(|e| e.window).min().unwrap();
        assert!(
            (10..=12).contains(&first),
            "detected at window {first}, onset was 10"
        );
        // Hysteresis: at most one event per (model, metric, detector).
        let mut seen = std::collections::BTreeSet::new();
        for e in &events {
            assert!(
                seen.insert((e.model.clone(), e.metric, e.detector)),
                "duplicate event {e:?}"
            );
        }
    }

    #[test]
    fn interference_pairs_victim_latency_with_culprit_arrivals() {
        let mut bank = DetectorBank::new(DetectCfg::default());
        let mut ring = WindowRing::new(100.0, 64, 0.01);
        let mut events = Vec::new();
        let mut feed = |ring: &mut WindowRing,
                        events: &mut Vec<RegimeEvent>,
                        k: u64,
                        victim_e2e: f64,
                        culprit_n: u64| {
            let base = k as f64 * 100.0;
            for i in 0..10u64 {
                let t = base + 1.0 + i as f64;
                let mut closed = ring.observe_arrival(t, "victim");
                closed.extend(ring.observe_completion(t, "victim", victim_e2e, false));
                for f in closed {
                    events.extend(bank.step(&f));
                }
            }
            for i in 0..culprit_n {
                let t = base + 50.0 + i as f64 * 0.1;
                let mut closed = ring.observe_arrival(t, "culprit");
                closed.extend(ring.observe_completion(t, "culprit", 1_000.0, false));
                for f in closed {
                    events.extend(bank.step(&f));
                }
            }
        };
        for k in 0..10 {
            feed(&mut ring, &mut events, k, 5_000.0, 10);
        }
        // Culprit surges 20x; victim latency degrades 8x.
        for k in 10..18 {
            feed(&mut ring, &mut events, k, 40_000.0, 200);
        }
        if let Some(f) = ring.finalize() {
            events.extend(bank.step(&f));
        }
        let pair: Vec<_> = events
            .iter()
            .filter(|e| e.detector == DetectorKind::InterferencePair)
            .collect();
        assert_eq!(pair.len(), 1, "events: {events:#?}");
        assert_eq!(pair[0].model, "victim");
        assert_eq!(pair[0].culprit.as_deref(), Some("culprit"));
    }

    #[test]
    fn detector_replay_is_bit_identical() {
        let batches: Vec<(u64, f64)> = (0..12)
            .map(|k| (8 + k % 4, 4_000.0 + 800.0 * (k as f64).sin()))
            .chain((0..8).map(|_| (40, 60_000.0)))
            .collect();
        let mut b1 = DetectorBank::new(DetectCfg::default());
        let mut b2 = DetectorBank::new(DetectCfg::default());
        let e1 = run(&mut b1, &batches);
        let e2 = run(&mut b2, &batches);
        assert!(!e1.is_empty());
        assert_eq!(e1, e2);
        let j1 = serde_json::to_string(&e1).unwrap();
        let j2 = serde_json::to_string(&e2).unwrap();
        assert_eq!(j1, j2, "serialized events must be byte-identical");
        for (a, b) in e1.iter().zip(&e2) {
            assert_eq!(a.stat.to_bits(), b.stat.to_bits());
            assert_eq!(a.value.to_bits(), b.value.to_bits());
        }
    }
}
