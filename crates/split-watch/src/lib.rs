//! Streaming drift watch for the SPLIT reproduction.
//!
//! The paper's QoS guarantee assumes traffic stays in the regime the
//! split plan was optimized for; this crate is the sensor layer that
//! notices when it does not (DESIGN.md §15). It sits between
//! `split-telemetry` (whose [`QuantileSketch`](split_telemetry::QuantileSketch)
//! it aggregates) and
//! `split-obs` (whose monitor and SLO alerter consume its events):
//!
//! * [`window`] — a sliding time-window engine: a ring of per-window,
//!   per-model sketches plus violation/drop/arrival counters, O(1)
//!   rotation, exact sample conservation (SA502).
//! * [`detect`] — CUSUM and Page–Hinkley change-point detectors over
//!   the windowed per-model p99 / violation-rate / arrival-rate series,
//!   plus an interference-onset detector pairing a victim's latency
//!   shift with a culprit's arrival surge; all emit typed, replayable
//!   [`RegimeEvent`]s (SA504).
//! * [`report`] — the serializable [`DriftReport`] behind
//!   `split-cli simulate --drift-report` and the CI `watch` job.
//!
//! [`DriftWatch`] ties the three together and is fed either whole
//! lifecycle [`Event`]s (offline replay: `sched`'s `SimResult`, the
//! monitor) or pre-judged observations (the live `split-runtime`
//! server, which already knows each completion's QoS verdict).
//! Everything downstream of the feed is pure integer/f64 arithmetic
//! over deterministic series, so the same events produce bit-identical
//! windows and regime events at any `SPLIT_THREADS`.

#![warn(missing_docs)]

pub mod detect;
pub mod report;
pub mod window;

pub use detect::{
    DetectCfg, DetectorBank, DetectorKind, RegimeEvent, WatchMetric, AGGREGATE_MODEL,
};
pub use report::{DriftReport, ModelWindowRow, WindowSummary};
pub use window::{FeedTotals, WindowFrame, WindowRing, WindowStats};

use split_telemetry::{sketch::DEFAULT_SKETCH_ALPHA, Event};
use std::collections::HashMap;

/// Drift-watch configuration.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WatchCfg {
    /// Window width, µs (default 10 s of simulated time).
    pub window_us: f64,
    /// Closed frames retained in the ring.
    pub ring: usize,
    /// QoS latency multiplier α (violation iff e2e > α × compute),
    /// matching `SloCfg::alpha`.
    pub alpha: f64,
    /// Sketch relative accuracy.
    pub sketch_alpha: f64,
    /// Detector tuning.
    pub detect: DetectCfg,
}

impl Default for WatchCfg {
    fn default() -> Self {
        WatchCfg {
            window_us: 10_000_000.0,
            ring: 64,
            alpha: 4.0,
            sketch_alpha: DEFAULT_SKETCH_ALPHA,
            detect: DetectCfg::default(),
        }
    }
}

#[derive(Debug, Default, Clone)]
struct InFlight {
    model: String,
    arrival_us: f64,
    compute_us: f64,
    /// (block, stream) → start time of an unclosed block.
    open_blocks: HashMap<(usize, u32), f64>,
}

/// Sliding windows + detectors + event log, fed live or by replay.
#[derive(Debug, Clone)]
pub struct DriftWatch {
    cfg: WatchCfg,
    ring: WindowRing,
    bank: DetectorBank,
    summaries: Vec<WindowSummary>,
    events: Vec<RegimeEvent>,
    /// Cursor into `events` for [`DriftWatch::drain_events`].
    drained: usize,
    inflight: HashMap<u64, InFlight>,
    finalized: bool,
}

impl Default for DriftWatch {
    fn default() -> Self {
        Self::new(WatchCfg::default())
    }
}

impl DriftWatch {
    /// New watch with the given configuration.
    pub fn new(cfg: WatchCfg) -> Self {
        DriftWatch {
            ring: WindowRing::new(cfg.window_us, cfg.ring, cfg.sketch_alpha),
            bank: DetectorBank::new(cfg.detect.clone()),
            cfg,
            summaries: Vec::new(),
            events: Vec::new(),
            drained: 0,
            inflight: HashMap::new(),
            finalized: false,
        }
    }

    /// The configuration in force.
    pub fn cfg(&self) -> &WatchCfg {
        &self.cfg
    }

    /// The window ring (latest closed frame, feed totals, ...).
    pub fn ring(&self) -> &WindowRing {
        &self.ring
    }

    /// The detector bank (regime / cooldown state).
    pub fn bank(&self) -> &DetectorBank {
        &self.bank
    }

    /// Every regime event so far, in detection order.
    pub fn events(&self) -> &[RegimeEvent] {
        &self.events
    }

    /// Regime events emitted since the last drain (incremental
    /// consumers: the live server routing events into `SloMonitor`).
    pub fn drain_events(&mut self) -> Vec<RegimeEvent> {
        let out = self.events[self.drained..].to_vec();
        self.drained = self.events.len();
        out
    }

    fn absorb(&mut self, closed: Vec<WindowFrame>) {
        for frame in closed {
            self.summaries.push(WindowSummary::from_frame(&frame));
            self.events.extend(self.bank.step(&frame));
        }
    }

    /// Record an arrival (live path — the caller names the model).
    pub fn observe_arrival(&mut self, t_us: f64, model: &str) {
        let closed = self.ring.observe_arrival(t_us, model);
        self.absorb(closed);
    }

    /// Record a completion with a pre-judged QoS verdict (live path).
    pub fn observe_completion(&mut self, t_us: f64, model: &str, e2e_us: f64, violated: bool) {
        let closed = self.ring.observe_completion(t_us, model, e2e_us, violated);
        self.absorb(closed);
    }

    /// Record a drop / elastic downgrade (live path).
    pub fn observe_drop(&mut self, t_us: f64, model: &str) {
        let closed = self.ring.observe_drop(t_us, model);
        self.absorb(closed);
    }

    /// Consume one lifecycle event (replay path). Reconstructs each
    /// request's pure compute time from its block durations and applies
    /// the α rule at completion — the same judgement
    /// `split-obs::Monitor` makes.
    pub fn feed(&mut self, e: &Event) {
        match e {
            Event::Arrival { req, model, t_us } => {
                self.inflight.insert(
                    *req,
                    InFlight {
                        model: model.clone(),
                        arrival_us: *t_us,
                        ..InFlight::default()
                    },
                );
                self.observe_arrival(*t_us, model);
            }
            Event::BlockStart {
                req,
                block,
                stream,
                t_us,
            } => {
                if let Some(f) = self.inflight.get_mut(req) {
                    f.open_blocks.insert((*block, *stream), *t_us);
                }
            }
            Event::BlockEnd {
                req,
                block,
                stream,
                t_us,
            } => {
                if let Some(f) = self.inflight.get_mut(req) {
                    if let Some(start) = f.open_blocks.remove(&(*block, *stream)) {
                        f.compute_us += (t_us - start).max(0.0);
                    }
                }
            }
            Event::Completion { req, t_us } => {
                if let Some(f) = self.inflight.remove(req) {
                    let e2e = (t_us - f.arrival_us).max(0.0);
                    let violated = f.compute_us > 0.0 && e2e > self.cfg.alpha * f.compute_us;
                    self.observe_completion(*t_us, &f.model, e2e, violated);
                }
            }
            Event::Downgrade { req, t_us, .. } => {
                let model = self
                    .inflight
                    .get(req)
                    .map(|f| f.model.clone())
                    .unwrap_or_default();
                if !model.is_empty() {
                    self.observe_drop(*t_us, &model);
                }
            }
            _ => {}
        }
    }

    /// Close the trailing partial window and stop accepting input.
    /// Idempotent.
    pub fn finalize(&mut self) {
        if self.finalized {
            return;
        }
        self.finalized = true;
        if let Some(frame) = self.ring.finalize() {
            self.summaries.push(WindowSummary::from_frame(&frame));
            self.events.extend(self.bank.step(&frame));
        }
    }

    /// Build the serializable report. Call [`DriftWatch::finalize`]
    /// first to include the trailing partial window.
    pub fn report(&self) -> DriftReport {
        DriftReport {
            window_us: self.cfg.window_us,
            fed: self.ring.fed(),
            windows: self.summaries.clone(),
            events: self.events.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feed_applies_alpha_rule_and_conserves() {
        let mut w = DriftWatch::new(WatchCfg {
            window_us: 1_000.0,
            ..WatchCfg::default()
        });
        for (req, (arr, exec, done)) in [
            (0.0, 100.0, 150.0),    // ratio 1.5 → ok
            (500.0, 100.0, 2500.0), // ratio 20 → violation
            (2600.0, 50.0, 2700.0), // ratio 2 → ok
        ]
        .iter()
        .enumerate()
        {
            let req = req as u64;
            w.feed(&Event::Arrival {
                req,
                model: "m".into(),
                t_us: *arr,
            });
            w.feed(&Event::BlockStart {
                req,
                block: 0,
                stream: 0,
                t_us: done - exec,
            });
            w.feed(&Event::BlockEnd {
                req,
                block: 0,
                stream: 0,
                t_us: *done,
            });
            w.feed(&Event::Completion { req, t_us: *done });
        }
        w.finalize();
        let r = w.report();
        assert!(r.conservation_holds(), "{r:?}");
        assert_eq!(r.fed.completions, 3);
        assert_eq!(r.fed.violations, 1);
        assert_eq!(r.fed.arrivals, 3);
        let text = r.render_text();
        assert!(text.contains("drift report"));
    }

    #[test]
    fn drain_events_is_incremental() {
        let mut w = DriftWatch::new(WatchCfg {
            window_us: 100.0,
            ..WatchCfg::default()
        });
        // Stationary then a massive surge; drain as we go.
        let mut drained_total = 0;
        for k in 0..30u64 {
            let (n, e2e) = if k < 15 {
                (10, 2_000.0)
            } else {
                (80, 40_000.0)
            };
            for i in 0..n {
                let t = k as f64 * 100.0 + 1.0 + i as f64 * 0.5;
                w.observe_arrival(t, "m");
                w.observe_completion(t, "m", e2e, false);
            }
            drained_total += w.drain_events().len();
        }
        w.finalize();
        drained_total += w.drain_events().len();
        assert_eq!(drained_total, w.events().len());
        assert!(drained_total > 0, "surge must fire at least one detector");
        assert!(w.drain_events().is_empty(), "second drain is empty");
    }

    #[test]
    fn report_roundtrips_through_json() {
        let mut w = DriftWatch::default();
        w.observe_arrival(5.0, "a");
        w.observe_completion(20.0, "a", 15.0, false);
        w.finalize();
        let r = w.report();
        let json = serde_json::to_string(&r).unwrap();
        let back: DriftReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
