//! Serializable drift report: per-window scalar digests plus the
//! regime-event log.
//!
//! The report is the replayable artifact behind `split-cli simulate
//! --drift-report PATH` and the CI `watch` smoke job: window summaries
//! are plain scalars (no sketches), so the file stays small even for
//! long runs, and [`DriftReport::conservation_holds`] re-checks the
//! exact-sample-conservation invariant from the serialized counters
//! alone.

use crate::detect::RegimeEvent;
use crate::window::{FeedTotals, WindowFrame};
use serde::{Deserialize, Serialize};

/// Per-model scalar digest of one closed window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelWindowRow {
    /// Model name.
    pub model: String,
    /// Completions in the window.
    pub completions: u64,
    /// QoS violations in the window.
    pub violations: u64,
    /// Arrivals in the window.
    pub arrivals: u64,
    /// Drops in the window.
    pub drops: u64,
    /// Windowed p50 latency, µs (0 when empty).
    pub p50_us: f64,
    /// Windowed p99 latency, µs (0 when empty).
    pub p99_us: f64,
    /// Windowed p999 latency, µs (0 when empty).
    pub p999_us: f64,
}

/// Scalar digest of one closed window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowSummary {
    /// Window index.
    pub index: u64,
    /// Inclusive start, µs.
    pub start_us: f64,
    /// Exclusive end, µs.
    pub end_us: f64,
    /// All-models aggregate row (model name [`crate::AGGREGATE_MODEL`]).
    pub total: ModelWindowRow,
    /// Per-model rows, sorted by model name.
    pub models: Vec<ModelWindowRow>,
}

impl WindowSummary {
    /// Digest a closed frame into scalars.
    pub fn from_frame(frame: &WindowFrame) -> Self {
        let row = |model: &str, s: &crate::window::WindowStats| ModelWindowRow {
            model: model.to_string(),
            completions: s.completions,
            violations: s.violations,
            arrivals: s.arrivals,
            drops: s.drops,
            p50_us: s.sketch.p50(),
            p99_us: s.sketch.p99(),
            p999_us: s.sketch.p999(),
        };
        WindowSummary {
            index: frame.index,
            start_us: frame.start_us,
            end_us: frame.end_us,
            total: row(crate::AGGREGATE_MODEL, &frame.total),
            models: frame.models.iter().map(|(m, s)| row(m, s)).collect(),
        }
    }
}

/// The full drift-watch artifact for one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriftReport {
    /// Window width, µs.
    pub window_us: f64,
    /// Lifetime feed totals (conservation cross-check).
    pub fed: FeedTotals,
    /// One summary per closed window, oldest first.
    pub windows: Vec<WindowSummary>,
    /// Regime events in detection order.
    pub events: Vec<RegimeEvent>,
}

impl DriftReport {
    /// Exact sample conservation: the per-window sums equal the
    /// lifetime feed totals — every completion/arrival/drop landed in
    /// exactly one closed window.
    pub fn conservation_holds(&self) -> bool {
        let sum =
            |f: fn(&ModelWindowRow) -> u64| self.windows.iter().map(|w| f(&w.total)).sum::<u64>();
        sum(|r| r.completions) == self.fed.completions
            && sum(|r| r.violations) == self.fed.violations
            && sum(|r| r.arrivals) == self.fed.arrivals
            && sum(|r| r.drops) == self.fed.drops
    }

    /// Human rendering: one line per window plus the event log.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "drift report: {} windows of {:.1}s, {} regime events\n",
            self.windows.len(),
            self.window_us / 1e6,
            self.events.len()
        ));
        out.push_str(
            "  win      span(s)  compl  viol  arriv  drops    p50(ms)    p99(ms)   p999(ms)\n",
        );
        for w in &self.windows {
            out.push_str(&format!(
                "  w{:<4} {:>5.1}-{:<5.1} {:>6} {:>5} {:>6} {:>6} {:>10.2} {:>10.2} {:>10.2}\n",
                w.index,
                w.start_us / 1e6,
                w.end_us / 1e6,
                w.total.completions,
                w.total.violations,
                w.total.arrivals,
                w.total.drops,
                w.total.p50_us / 1e3,
                w.total.p99_us / 1e3,
                w.total.p999_us / 1e3,
            ));
        }
        if self.events.is_empty() {
            out.push_str("  no regime events (stationary)\n");
        } else {
            out.push_str("  regime events:\n");
            for e in &self.events {
                out.push_str(&format!("    {}\n", e.render()));
            }
        }
        out
    }

    /// Serialize to pretty JSON at `path`.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        let json = serde_json::to_string_pretty(self).map_err(std::io::Error::other)?;
        std::fs::write(path, json)
    }

    /// Load a report written by [`DriftReport::save`].
    pub fn load(path: &std::path::Path) -> std::io::Result<Self> {
        let raw = std::fs::read_to_string(path)?;
        serde_json::from_str(&raw).map_err(std::io::Error::other)
    }
}
