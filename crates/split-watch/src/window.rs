//! Sliding time-window engine: a ring of per-window, per-model
//! [`QuantileSketch`]es plus QoS-violation / drop / arrival counters.
//!
//! Simulated time is tiled into half-open windows
//! `[k·w, (k+1)·w)` starting at `t = 0`. Exactly one window is *open*
//! at a time; observations land in the open window, and advancing time
//! past a window's end **closes** it — the closed frame is handed to
//! the caller (split-watch's detectors) and pushed onto a bounded ring
//! of recent frames. Rotation is O(1) per closed window (close, push,
//! pop-front — no re-aggregation of retained windows), and each window
//! closes exactly once over the run, so the total rotation work is
//! O(elapsed windows) regardless of how events cluster.
//!
//! Two invariants the SA502 analyzer and the unit tests pin:
//!
//! * **Exact sample conservation** — every completion fed to the ring
//!   lands in exactly one window: the half-open tiling has no gaps or
//!   overlaps, a sample at the exact rotation instant `t = (k+1)·w`
//!   belongs to window `k+1`, and [`WindowRing::finalize`] closes the
//!   trailing partial window so nothing is left in flight. Lifetime
//!   feed counters cross-check the sum over closed frames.
//! * **Empty windows yield 0, not NaN** — an idle stretch closes empty
//!   frames whose rates and quantiles all read 0 (the sketch's empty
//!   behavior), so downstream series never see NaN.

use serde::{Deserialize, Serialize};
use split_telemetry::QuantileSketch;
use std::collections::{BTreeMap, VecDeque};

/// Per-window, per-model accumulator: a latency sketch plus the three
/// flow counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowStats {
    /// End-to-end latency sketch over completions in this window (µs).
    pub sketch: QuantileSketch,
    /// Completions observed in this window.
    pub completions: u64,
    /// Completions that violated QoS (e2e > α × compute).
    pub violations: u64,
    /// Arrivals observed in this window.
    pub arrivals: u64,
    /// Drops (elastic downgrades / sheds) observed in this window.
    pub drops: u64,
}

impl WindowStats {
    fn new(sketch_alpha: f64) -> Self {
        WindowStats {
            sketch: QuantileSketch::new(sketch_alpha),
            completions: 0,
            violations: 0,
            arrivals: 0,
            drops: 0,
        }
    }

    /// Violation rate over this window's completions; 0 when empty
    /// (never NaN).
    pub fn violation_rate(&self) -> f64 {
        if self.completions == 0 {
            0.0
        } else {
            self.violations as f64 / self.completions as f64
        }
    }
}

/// One closed window: its time span plus the aggregate and per-model
/// accumulators.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowFrame {
    /// Window index `k` (the window covered `[k·w, (k+1)·w)`).
    pub index: u64,
    /// Inclusive start of the span, µs.
    pub start_us: f64,
    /// Exclusive end of the span, µs.
    pub end_us: f64,
    /// All-models aggregate.
    pub total: WindowStats,
    /// Per-model accumulators, sorted by model name.
    pub models: BTreeMap<String, WindowStats>,
}

/// Lifetime feed totals, for conservation cross-checks (SA502).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeedTotals {
    /// Completions ever fed.
    pub completions: u64,
    /// Violations ever fed.
    pub violations: u64,
    /// Arrivals ever fed.
    pub arrivals: u64,
    /// Drops ever fed.
    pub drops: u64,
}

/// The sliding-window ring. See the [module docs](self) for semantics.
///
/// The open window's per-model accumulators live in a small `Vec` with
/// a last-hit index cache (the server's arrival/completion stream has
/// strong model locality), and the aggregate sketch is assembled by
/// merging the per-model sketches once at rotation — merge is exact
/// (identical bucket state to per-sample double-recording), so the
/// per-observation cost stays at one map probe and one sketch insert.
/// This is the path every served request pays; perfbench's
/// `drift/record` entry gates it.
#[derive(Debug, Clone)]
pub struct WindowRing {
    window_us: f64,
    sketch_alpha: f64,
    capacity: usize,
    /// Index of the open window.
    index: u64,
    total: WindowStats,
    /// Open window's per-model accumulators (sorted into a `BTreeMap`
    /// only at rotation).
    models: Vec<(String, WindowStats)>,
    /// Index of the most recently touched `models` slot.
    last_model: usize,
    open_dirty: bool,
    closed: VecDeque<WindowFrame>,
    closed_count: u64,
    fed: FeedTotals,
    finalized: bool,
}

impl WindowRing {
    /// New ring with `window_us`-wide windows, retaining the most
    /// recent `capacity` closed frames, sketching at `sketch_alpha`
    /// relative accuracy.
    ///
    /// # Panics
    /// If `window_us` is not positive and finite, or `capacity` is 0.
    pub fn new(window_us: f64, capacity: usize, sketch_alpha: f64) -> Self {
        assert!(
            window_us.is_finite() && window_us > 0.0,
            "window width must be positive, got {window_us}"
        );
        assert!(capacity > 0, "ring capacity must be positive");
        WindowRing {
            window_us,
            sketch_alpha,
            capacity,
            index: 0,
            total: WindowStats::new(sketch_alpha),
            models: Vec::new(),
            last_model: 0,
            open_dirty: false,
            closed: VecDeque::new(),
            closed_count: 0,
            fed: FeedTotals::default(),
            finalized: false,
        }
    }

    /// Window width, µs.
    pub fn window_us(&self) -> f64 {
        self.window_us
    }

    /// Exclusive end of the open window, µs.
    fn open_end_us(&self) -> f64 {
        (self.index + 1) as f64 * self.window_us
    }

    /// Number of windows closed so far.
    pub fn closed_count(&self) -> u64 {
        self.closed_count
    }

    /// The most recently closed frame, if any.
    pub fn latest(&self) -> Option<&WindowFrame> {
        self.closed.back()
    }

    /// Retained closed frames, oldest first.
    pub fn frames(&self) -> impl Iterator<Item = &WindowFrame> {
        self.closed.iter()
    }

    /// Lifetime feed totals (for conservation checks).
    pub fn fed(&self) -> FeedTotals {
        self.fed
    }

    /// Close every window whose end is ≤ `t_us`, returning the closed
    /// frames oldest-first. A sample arriving at exactly `(k+1)·w`
    /// therefore rotates window `k` out *before* it is recorded, landing
    /// it in window `k+1` (half-open `[start, end)` semantics).
    pub fn advance(&mut self, t_us: f64) -> Vec<WindowFrame> {
        assert!(!self.finalized, "ring already finalized");
        let mut out = Vec::new();
        while t_us >= self.open_end_us() {
            out.push(self.rotate());
        }
        out
    }

    /// Close the open window regardless of time (trailing partial
    /// window at end of run). Returns the frame if it held any
    /// observations; an untouched open window is discarded silently so
    /// a run that ends exactly on a boundary does not emit a bogus
    /// empty frame. Further observations panic.
    pub fn finalize(&mut self) -> Option<WindowFrame> {
        assert!(!self.finalized, "ring already finalized");
        self.finalized = true;
        if self.open_dirty {
            Some(self.rotate())
        } else {
            None
        }
    }

    fn rotate(&mut self) -> WindowFrame {
        // The aggregate sketch is assembled here, once per window,
        // rather than on every completion: merging the per-model
        // sketches yields state bit-identical to per-sample recording
        // (buckets are integer counts keyed by index).
        let mut total = std::mem::replace(&mut self.total, WindowStats::new(self.sketch_alpha));
        let models: BTreeMap<String, WindowStats> = self.models.drain(..).collect();
        self.last_model = 0;
        for s in models.values() {
            total.sketch.merge(&s.sketch);
        }
        let frame = WindowFrame {
            index: self.index,
            start_us: self.index as f64 * self.window_us,
            end_us: self.open_end_us(),
            total,
            models,
        };
        self.index += 1;
        self.open_dirty = false;
        self.closed_count += 1;
        if self.closed.len() == self.capacity {
            self.closed.pop_front();
        }
        self.closed.push_back(frame.clone());
        frame
    }

    fn model_stats(&mut self, model: &str) -> &mut WindowStats {
        let idx = if self
            .models
            .get(self.last_model)
            .is_some_and(|(n, _)| n == model)
        {
            self.last_model
        } else if let Some(i) = self.models.iter().position(|(n, _)| n == model) {
            i
        } else {
            self.models
                .push((model.to_string(), WindowStats::new(self.sketch_alpha)));
            self.models.len() - 1
        };
        self.last_model = idx;
        &mut self.models[idx].1
    }

    /// Record an arrival at `t_us`. Returns any frames the implied
    /// [`WindowRing::advance`] closed.
    pub fn observe_arrival(&mut self, t_us: f64, model: &str) -> Vec<WindowFrame> {
        let closed = self.advance(t_us);
        self.fed.arrivals += 1;
        self.total.arrivals += 1;
        self.model_stats(model).arrivals += 1;
        self.open_dirty = true;
        closed
    }

    /// Record a completion at `t_us` with its end-to-end latency and
    /// QoS verdict. Returns any frames the implied advance closed.
    pub fn observe_completion(
        &mut self,
        t_us: f64,
        model: &str,
        e2e_us: f64,
        violated: bool,
    ) -> Vec<WindowFrame> {
        let closed = self.advance(t_us);
        let sample = e2e_us.max(0.0).round() as u64;
        self.fed.completions += 1;
        self.fed.violations += u64::from(violated);
        self.total.completions += 1;
        self.total.violations += u64::from(violated);
        let m = self.model_stats(model);
        m.completions += 1;
        m.violations += u64::from(violated);
        m.sketch.record(sample);
        self.open_dirty = true;
        closed
    }

    /// Record a drop (elastic downgrade / shed) at `t_us`. Returns any
    /// frames the implied advance closed.
    pub fn observe_drop(&mut self, t_us: f64, model: &str) -> Vec<WindowFrame> {
        let closed = self.advance(t_us);
        self.fed.drops += 1;
        self.total.drops += 1;
        self.model_stats(model).drops += 1;
        self.open_dirty = true;
        closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring() -> WindowRing {
        WindowRing::new(100.0, 8, 0.01)
    }

    #[test]
    fn sample_at_exact_rotation_instant_lands_in_next_window() {
        let mut r = ring();
        r.observe_completion(0.0, "m", 10.0, false);
        // t = 100.0 is the open edge of window 0 and the closed edge of
        // window 1: the rotation happens first, then the sample lands
        // in window 1.
        let closed = r.observe_completion(100.0, "m", 20.0, false);
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].index, 0);
        assert_eq!(closed[0].total.completions, 1);
        let last = r.finalize().expect("window 1 holds the second sample");
        assert_eq!(last.index, 1);
        assert_eq!(last.total.completions, 1);
    }

    #[test]
    fn empty_windows_yield_zero_not_nan() {
        let mut r = ring();
        r.observe_completion(50.0, "m", 10.0, true);
        // Jump 5 windows ahead: windows 0..=4 close, 1..=4 empty.
        let closed = r.advance(500.0);
        assert_eq!(closed.len(), 5);
        for f in &closed[1..] {
            assert_eq!(f.total.completions, 0);
            assert_eq!(f.total.violation_rate(), 0.0);
            assert_eq!(f.total.sketch.p99(), 0.0);
            assert!(!f.total.sketch.quantile(0.5).is_nan());
            assert!(f.models.is_empty());
        }
        assert_eq!(closed[0].total.violation_rate(), 1.0);
    }

    #[test]
    fn conservation_every_completion_in_exactly_one_window() {
        let mut r = ring();
        let mut frames = Vec::new();
        // Completions scattered across windows, including boundary hits.
        for (i, t) in [0.0, 99.0, 100.0, 199.9, 200.0, 200.0, 750.0]
            .iter()
            .enumerate()
        {
            let model = if i % 2 == 0 { "a" } else { "b" };
            frames.extend(r.observe_completion(*t, model, 5.0, i % 3 == 0));
        }
        frames.extend(r.finalize());
        let total: u64 = frames.iter().map(|f| f.total.completions).sum();
        let per_model: u64 = frames
            .iter()
            .flat_map(|f| f.models.values())
            .map(|s| s.completions)
            .sum();
        let sketched: u64 = frames.iter().map(|f| f.total.sketch.count()).sum();
        assert_eq!(total, 7);
        assert_eq!(per_model, 7);
        assert_eq!(sketched, 7);
        assert_eq!(r.fed().completions, 7);
        // Window indices strictly increase: no window closes twice.
        for w in frames.windows(2) {
            assert!(w[0].index < w[1].index);
        }
    }

    #[test]
    fn ring_is_bounded_but_closed_count_is_lifetime() {
        let mut r = ring();
        for k in 0..20 {
            r.observe_completion(k as f64 * 100.0 + 1.0, "m", 1.0, false);
        }
        assert_eq!(r.closed_count(), 19, "window 19 is still open");
        assert_eq!(r.frames().count(), 8, "ring keeps only `capacity`");
        assert_eq!(r.latest().unwrap().index, 18);
    }

    #[test]
    fn finalize_on_boundary_emits_no_empty_frame() {
        let mut r = ring();
        r.observe_completion(10.0, "m", 1.0, false);
        // Advance to exactly the boundary: window 0 closes, window 1
        // opens untouched; finalize must not emit it.
        let closed = r.advance(100.0);
        assert_eq!(closed.len(), 1);
        assert!(r.finalize().is_none());
    }
}
