//! Clock-compressed simulated time.
//!
//! The runtime measures everything in *simulated microseconds* (the same
//! unit the offline profiles use) but runs against the wall clock
//! compressed by a factor: with compression 100, one simulated millisecond
//! costs ten real microseconds. Thread scheduling, lock contention, and
//! preemption-decision latency remain genuinely concurrent.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Spin margin at (and below) [`REFERENCE_COMPRESSION`], µs. The OS
/// sleep overshoots by tens of microseconds, so the final stretch before
/// a deadline is spun instead of slept.
const BASE_SPIN_MARGIN_US: f64 = 150.0;

/// Compression at which the historical 150 µs margin was tuned. Above
/// it the margin shrinks proportionally: at 2000× compression nearly
/// every block sleep is shorter than 150 real µs, and a fixed margin
/// would turn the executor into a pure spinner that starves client
/// threads on a single-core host (and inflates every contention
/// benchmark). A smaller margin trades a little per-block accuracy —
/// already dwarfed at that compression by scheduler noise — for actually
/// yielding the core.
const REFERENCE_COMPRESSION: f64 = 100.0;

/// A compressed clock mapping wall time to simulated microseconds.
#[derive(Debug, Clone)]
pub struct SimClock {
    start: Instant,
    compression: f64,
    spin_margin: Duration,
    /// Total wall time spent busy-spinning in [`SimClock::sleep_us`],
    /// shared across clones so callers can bound the burn.
    spin_ns: Arc<AtomicU64>,
}

impl SimClock {
    /// Start a clock with the given compression factor (simulated time runs
    /// `compression` times faster than real time).
    pub fn new(compression: f64) -> Self {
        assert!(compression > 0.0, "compression must be positive");
        let margin_us =
            (BASE_SPIN_MARGIN_US * (REFERENCE_COMPRESSION / compression).min(1.0)).max(1.0);
        Self {
            start: Instant::now(),
            compression,
            spin_margin: Duration::from_secs_f64(margin_us * 1e-6),
            spin_ns: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Current simulated time, µs.
    pub fn now_us(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1e6 * self.compression
    }

    /// Sleep for `sim_us` simulated microseconds of "execution".
    ///
    /// Uses a hybrid sleep-then-spin: the OS sleep overshoots by tens of
    /// microseconds, which at high compression would inflate every block
    /// by whole simulated milliseconds, so the last stretch before the
    /// deadline is spun. The spun stretch scales *inversely* with
    /// compression (see `REFERENCE_COMPRESSION`), so total spin time
    /// per sleep is bounded by the margin, not by the sleep duration.
    pub fn sleep_us(&self, sim_us: f64) {
        if sim_us <= 0.0 {
            return;
        }
        let deadline = Instant::now() + Duration::from_secs_f64(sim_us / self.compression / 1e6);
        loop {
            let now = Instant::now();
            if now >= deadline {
                return;
            }
            let left = deadline - now;
            if left > self.spin_margin {
                std::thread::sleep(left - self.spin_margin);
            } else {
                // Spin out the final margin, accounting the burn.
                let spin_start = now;
                loop {
                    std::hint::spin_loop();
                    let t = Instant::now();
                    if t >= deadline {
                        self.spin_ns
                            .fetch_add((t - spin_start).as_nanos() as u64, Ordering::Relaxed);
                        return;
                    }
                }
            }
        }
    }

    /// The compression factor.
    pub fn compression(&self) -> f64 {
        self.compression
    }

    /// The spin margin this clock resolved for its compression.
    pub fn spin_margin(&self) -> Duration {
        self.spin_margin
    }

    /// Total wall time spent busy-spinning so far, nanoseconds
    /// (cumulative across all clones of this clock).
    pub fn spin_ns(&self) -> u64 {
        self.spin_ns.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_advances() {
        let c = SimClock::new(100.0);
        let a = c.now_us();
        std::thread::sleep(Duration::from_millis(2));
        let b = c.now_us();
        // 2 real ms at 100x = 200,000 sim µs.
        assert!(b - a >= 150_000.0, "advanced {}", b - a);
    }

    #[test]
    fn sleep_is_compressed() {
        let c = SimClock::new(1000.0);
        let t0 = Instant::now();
        c.sleep_us(10_000.0); // 10 sim ms = 10 real µs
        assert!(t0.elapsed() < Duration::from_millis(50));
    }

    #[test]
    fn zero_sleep_is_noop() {
        let c = SimClock::new(10.0);
        c.sleep_us(0.0);
        c.sleep_us(-5.0);
        assert_eq!(c.spin_ns(), 0);
    }

    #[test]
    fn spin_margin_scales_with_compression() {
        // At or below the reference compression the historical margin
        // holds; above it the margin shrinks proportionally.
        assert_eq!(
            SimClock::new(100.0).spin_margin(),
            Duration::from_micros(150)
        );
        assert_eq!(
            SimClock::new(10.0).spin_margin(),
            Duration::from_micros(150)
        );
        let high = SimClock::new(2_000.0).spin_margin();
        assert!(
            high <= Duration::from_micros(8),
            "margin at 2000x must shrink, got {high:?}"
        );
        assert!(high >= Duration::from_micros(1), "margin keeps its floor");
    }

    #[test]
    fn total_spin_time_stays_bounded_at_high_compression() {
        // 20 sleeps of 100 real µs each at 2000×. Under the old fixed
        // 150 µs margin every one of these was spun end-to-end
        // (~2 ms of pure spin); with the scaled margin each sleep may
        // spin at most the ~7.5 µs margin (plus timer jitter).
        let c = SimClock::new(2_000.0);
        const SLEEPS: u64 = 20;
        for _ in 0..SLEEPS {
            c.sleep_us(200_000.0); // 100 real µs
        }
        let spin = Duration::from_nanos(c.spin_ns());
        let bound = Duration::from_micros(25 * SLEEPS);
        assert!(
            spin <= bound,
            "spun {spin:?} across {SLEEPS} sleeps; bound {bound:?}"
        );
    }

    #[test]
    fn clones_share_spin_accounting() {
        let c = SimClock::new(2_000.0);
        let c2 = c.clone();
        c2.sleep_us(50_000.0);
        assert_eq!(c.spin_ns(), c2.spin_ns());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn bad_compression() {
        SimClock::new(0.0);
    }
}
