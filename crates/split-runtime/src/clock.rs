//! Clock-compressed simulated time.
//!
//! The runtime measures everything in *simulated microseconds* (the same
//! unit the offline profiles use) but runs against the wall clock
//! compressed by a factor: with compression 100, one simulated millisecond
//! costs ten real microseconds. Thread scheduling, lock contention, and
//! preemption-decision latency remain genuinely concurrent.

use std::time::{Duration, Instant};

/// A compressed clock mapping wall time to simulated microseconds.
#[derive(Debug, Clone)]
pub struct SimClock {
    start: Instant,
    compression: f64,
}

impl SimClock {
    /// Start a clock with the given compression factor (simulated time runs
    /// `compression` times faster than real time).
    pub fn new(compression: f64) -> Self {
        assert!(compression > 0.0, "compression must be positive");
        Self {
            start: Instant::now(),
            compression,
        }
    }

    /// Current simulated time, µs.
    pub fn now_us(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1e6 * self.compression
    }

    /// Sleep for `sim_us` simulated microseconds of "execution".
    ///
    /// Uses a hybrid sleep-then-spin: the OS sleep overshoots by tens of
    /// microseconds, which at high compression would inflate every block
    /// by whole simulated milliseconds, so the last stretch before the
    /// deadline is spun. Durations remain accurate to ~1 µs wall time
    /// even at 2000× compression.
    pub fn sleep_us(&self, sim_us: f64) {
        if sim_us <= 0.0 {
            return;
        }
        let deadline = Instant::now() + Duration::from_secs_f64(sim_us / self.compression / 1e6);
        const SPIN_MARGIN: Duration = Duration::from_micros(150);
        loop {
            let now = Instant::now();
            if now >= deadline {
                return;
            }
            let left = deadline - now;
            if left > SPIN_MARGIN {
                std::thread::sleep(left - SPIN_MARGIN);
            } else {
                std::hint::spin_loop();
            }
        }
    }

    /// The compression factor.
    pub fn compression(&self) -> f64 {
        self.compression
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_advances() {
        let c = SimClock::new(100.0);
        let a = c.now_us();
        std::thread::sleep(Duration::from_millis(2));
        let b = c.now_us();
        // 2 real ms at 100x = 200,000 sim µs.
        assert!(b - a >= 150_000.0, "advanced {}", b - a);
    }

    #[test]
    fn sleep_is_compressed() {
        let c = SimClock::new(1000.0);
        let t0 = Instant::now();
        c.sleep_us(10_000.0); // 10 sim ms = 10 real µs
        assert!(t0.elapsed() < Duration::from_millis(50));
    }

    #[test]
    fn zero_sleep_is_noop() {
        let c = SimClock::new(10.0);
        c.sleep_us(0.0);
        c.sleep_us(-5.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn bad_compression() {
        SimClock::new(0.0);
    }
}
