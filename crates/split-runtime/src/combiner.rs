//! Flat-combining decision core (ROADMAP item 2; paper §3.4).
//!
//! The original hot path funneled every request through a crossbeam
//! channel into a responder thread, which then fought the executor for a
//! global `Mutex<State>` guarded by a condvar. Under 8–64 client threads
//! the decision latency was governed by lock handoff and context-switch
//! chains, not by the greedy scan the paper times.
//!
//! [`CombiningCore`] replaces that with the flat-combining protocol
//! (Hendler et al.; see also the RCL and CCSynch designs in
//! SNIPPETS.md): all scheduler state lives behind one mutex that is only
//! ever `try_lock`ed on the submission path. A thread with an operation
//!
//! 1. claims a cache-padded **slot** (CAS `FREE → CLAIMED`),
//! 2. writes its operation and a publish timestamp into the slot and
//!    flips it `PUBLISHED` (SeqCst),
//! 3. tries to become the **combiner**: on `try_lock` success it drains
//!    *every* published slot — its own and everyone else's — through the
//!    handler in one pass; on failure it parks briefly and re-checks.
//!
//! The current combiner writes each response back through the slot
//! (`CONSUMED`, Release) and unparks the waiter, so a client observes
//! its own decision with one acquire load. One lock acquisition thus
//! serves *all* pending operations: decision latency is O(pending)
//! amortized O(1) per op, and no condvar broadcast storms occur.
//!
//! **Combiner handoff rule.** Every holder of the core lock — combiner
//! or observer via [`CombiningCore::with_state`] — must (a) drain all
//! published slots before releasing and (b) *re-check* for slots
//! published during its critical section after releasing, re-entering
//! via `try_lock` if any are found. A publisher whose `try_lock` failed
//! is then guaranteed its slot is seen: its SeqCst publish precedes the
//! failed `try_lock`, which precedes the holder's unlock, which precedes
//! the holder's re-check scan. Publishers additionally park with a
//! timeout, so even a missed wakeup costs microseconds, never a hang.
//!
//! The protocol's exact orderings are model-checked by the
//! `runtime.combiner.handoff` and `runtime.combiner.slot_roundtrip`
//! machines in `split-analyze` (codes SA207/SA208), with negative
//! fixtures demonstrating the lost-slot and stale-response failures the
//! orderings rule out.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::thread::{self, Thread};
use std::time::{Duration, Instant};

/// Number of combining slots. Slots are claimed per *call*, not per
/// thread, so this bounds concurrent submitters (64-thread contention
/// benchmarks plus the executor fit with headroom); excess claimants
/// spin-yield until a slot frees.
pub const SLOTS: usize = 128;

/// How long a publisher parks before re-polling its slot. A backstop
/// only — the fast path is an explicit unpark from the combiner.
const PARK_BACKSTOP: Duration = Duration::from_micros(200);

const FREE: u8 = 0;
const CLAIMED: u8 = 1;
const PUBLISHED: u8 = 2;
const CONSUMED: u8 = 3;

/// Mutable interior of a slot. Guarded by a per-slot mutex that is only
/// ever contended between one publisher and one combiner, never across
/// slots.
struct SlotPayload<Op, Resp> {
    op: Option<Op>,
    resp: Option<Resp>,
    waiter: Option<Thread>,
    publish: Option<Instant>,
}

/// One combining slot, padded to its own cache-line pair so publishing
/// threads never false-share state flags.
#[repr(align(128))]
struct Slot<Op, Resp> {
    /// FREE → CLAIMED → PUBLISHED → CONSUMED → FREE.
    state: AtomicU8,
    payload: Mutex<SlotPayload<Op, Resp>>,
}

impl<Op, Resp> Default for Slot<Op, Resp> {
    fn default() -> Self {
        Self {
            state: AtomicU8::new(FREE),
            payload: Mutex::new(SlotPayload {
                op: None,
                resp: None,
                waiter: None,
                publish: None,
            }),
        }
    }
}

/// The combiner-side operation handler: applies one operation to the
/// shared state and produces its response. Receives the operation's
/// *publish* instant so it can attribute latency from the moment the
/// client made the operation visible — not from lock acquisition, which
/// is exactly the distinction the decision-latency histograms need.
pub type Handler<Op, Resp, S> = Box<dyn Fn(&mut S, Op, Instant) -> Resp + Send + Sync>;

/// A flat-combining core: shared state `S`, operations `Op` applied to
/// it by whichever thread currently combines, responses `Resp` handed
/// back through the slots.
pub struct CombiningCore<Op, Resp, S> {
    slots: Box<[Slot<Op, Resp>]>,
    state: Mutex<S>,
    handler: Handler<Op, Resp, S>,
    /// Rotating start index for slot claims, spreading claimants so they
    /// don't all CAS slot 0.
    hint: AtomicUsize,
}

impl<Op: Send, Resp: Send, S: Send> CombiningCore<Op, Resp, S> {
    /// Build a core around initial state and an operation handler.
    pub fn new(
        state: S,
        handler: impl Fn(&mut S, Op, Instant) -> Resp + Send + Sync + 'static,
    ) -> Self {
        Self {
            slots: (0..SLOTS).map(|_| Slot::default()).collect(),
            state: Mutex::new(state),
            handler: Box::new(handler),
            hint: AtomicUsize::new(0),
        }
    }

    /// Submit an operation and block until its response is available.
    ///
    /// The calling thread either becomes the combiner (serving everyone's
    /// pending operations, including its own) or parks until the current
    /// combiner serves it.
    pub fn submit(&self, op: Op) -> Resp {
        let idx = self.claim_slot();
        let slot = &self.slots[idx];
        {
            let mut p = slot.payload.lock();
            p.op = Some(op);
            p.resp = None;
            p.waiter = Some(thread::current());
            p.publish = Some(Instant::now());
        }
        // SeqCst so the publish is totally ordered against the combiner's
        // post-release re-check scan (see the handoff rule above).
        slot.state.store(PUBLISHED, Ordering::SeqCst);

        loop {
            if slot.state.load(Ordering::Acquire) == CONSUMED {
                let resp = slot
                    .payload
                    .lock()
                    .resp
                    .take()
                    .expect("consumed slot carries a response");
                slot.state.store(FREE, Ordering::Release);
                return resp;
            }
            if let Some(mut st) = self.state.try_lock() {
                self.drain(&mut st);
                drop(st);
                self.recheck();
                // Own slot was published, so the drain consumed it;
                // loop back to collect the response without parking.
                continue;
            }
            thread::park_timeout(PARK_BACKSTOP);
        }
    }

    /// Run `f` against the shared state directly (observers, shutdown).
    ///
    /// Follows the full combiner discipline: pending operations are
    /// drained both before and after `f` (so `f` observes a quiesced
    /// state and leaves none behind), and the post-release re-check
    /// keeps the handoff rule intact.
    pub fn with_state<R>(&self, f: impl FnOnce(&mut S) -> R) -> R {
        let mut st = self.state.lock();
        self.drain(&mut st);
        let r = f(&mut st);
        self.drain(&mut st);
        drop(st);
        self.recheck();
        r
    }

    /// Claim a FREE slot, spreading starts via the rotating hint.
    fn claim_slot(&self) -> usize {
        let start = self.hint.fetch_add(1, Ordering::Relaxed);
        loop {
            for i in 0..self.slots.len() {
                let idx = (start + i) % self.slots.len();
                if self.slots[idx]
                    .state
                    .compare_exchange(FREE, CLAIMED, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
                {
                    return idx;
                }
            }
            // All slots in flight (more than SLOTS concurrent callers):
            // yield until a consumer frees one.
            thread::yield_now();
        }
    }

    /// Combiner pass: apply every published operation to the state and
    /// hand each response back through its slot. Caller holds the lock.
    fn drain(&self, st: &mut S) {
        for slot in self.slots.iter() {
            if slot.state.load(Ordering::SeqCst) != PUBLISHED {
                continue;
            }
            let (op, publish, waiter) = {
                let mut p = slot.payload.lock();
                (
                    p.op.take().expect("published slot carries an op"),
                    p.publish.take().expect("published slot carries a stamp"),
                    p.waiter.take(),
                )
            };
            let resp = (self.handler)(st, op, publish);
            slot.payload.lock().resp = Some(resp);
            // Release: the response write above happens-before the
            // publisher's acquire load of CONSUMED.
            slot.state.store(CONSUMED, Ordering::Release);
            if let Some(w) = waiter {
                w.unpark();
            }
        }
    }

    /// Post-release half of the handoff rule: if anything was published
    /// while we held the lock, either serve it ourselves or leave it to
    /// the holder whose `try_lock` beat ours (who follows the same
    /// rule).
    fn recheck(&self) {
        loop {
            let pending = self
                .slots
                .iter()
                .any(|s| s.state.load(Ordering::SeqCst) == PUBLISHED);
            if !pending {
                return;
            }
            match self.state.try_lock() {
                Some(mut st) => {
                    self.drain(&mut st);
                    // Loop: the drain itself ran while new slots may
                    // have published.
                }
                None => return,
            }
        }
    }
}

/// The architecture this crate used to be: every operation crosses a
/// channel into a dedicated responder thread, which takes the global
/// state `Mutex`, applies the operation, and sends the response back
/// over a per-request channel — two blocking handoffs (each a
/// condvar-style park/unpark) per decision. Kept not as dead code but
/// as the experimental control: `perfbench decision_core/contend*`
/// measures the combining core against exactly this path on identical
/// handlers.
pub struct MutexCore<Op, Resp, S> {
    state: std::sync::Arc<Mutex<S>>,
    submit_tx: Option<crossbeam::channel::Sender<(Op, Instant, crossbeam::channel::Sender<Resp>)>>,
    responder: Option<thread::JoinHandle<()>>,
}

impl<Op: Send + 'static, Resp: Send + 'static, S: Send + 'static> MutexCore<Op, Resp, S> {
    /// Build the responder-thread core around state and a handler.
    pub fn new(
        state: S,
        handler: impl Fn(&mut S, Op, Instant) -> Resp + Send + Sync + 'static,
    ) -> Self {
        let state = std::sync::Arc::new(Mutex::new(state));
        let (submit_tx, submit_rx) =
            crossbeam::channel::unbounded::<(Op, Instant, crossbeam::channel::Sender<Resp>)>();
        let responder_state = std::sync::Arc::clone(&state);
        let responder = thread::spawn(move || {
            for (op, publish, reply_tx) in submit_rx.iter() {
                let resp = {
                    let mut st = responder_state.lock();
                    handler(&mut st, op, publish)
                };
                // A racing shutdown may have dropped the receiver.
                let _ = reply_tx.send(resp);
            }
        });
        Self {
            state,
            submit_tx: Some(submit_tx),
            responder: Some(responder),
        }
    }

    /// Apply `op` through the responder thread, blocking until it sends
    /// the response back — the pre-combining decision path end to end.
    pub fn submit(&self, op: Op) -> Resp {
        let (reply_tx, reply_rx) = crossbeam::channel::unbounded();
        let sent = self.submit_tx.as_ref().expect("core not shut down").send((
            op,
            Instant::now(),
            reply_tx,
        ));
        assert!(sent.is_ok(), "responder thread alive");
        match reply_rx.recv() {
            Ok(resp) => resp,
            Err(_) => unreachable!("responder replies before exit"),
        }
    }

    /// Run `f` against the shared state directly (contending with the
    /// responder on the global lock, as observers used to).
    pub fn with_state<R>(&self, f: impl FnOnce(&mut S) -> R) -> R {
        f(&mut self.state.lock())
    }
}

impl<Op, Resp, S> Drop for MutexCore<Op, Resp, S> {
    fn drop(&mut self) {
        drop(self.submit_tx.take());
        if let Some(h) = self.responder.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// Counter state: ops add, responses echo the running total.
    fn counter_core() -> CombiningCore<u64, u64, u64> {
        CombiningCore::new(0u64, |total, add, _publish| {
            *total += add;
            *total
        })
    }

    #[test]
    fn single_thread_roundtrip() {
        let core = counter_core();
        assert_eq!(core.submit(5), 5);
        assert_eq!(core.submit(7), 12);
        assert_eq!(core.with_state(|t| *t), 12);
    }

    #[test]
    fn concurrent_submissions_all_apply() {
        let core = Arc::new(counter_core());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let core = Arc::clone(&core);
                thread::spawn(move || {
                    for _ in 0..500 {
                        core.submit(1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(core.with_state(|t| *t), 8 * 500);
    }

    #[test]
    fn responses_are_not_crossed_between_threads() {
        // Each thread adds its own tag and must read a total that
        // includes it — a stale (pre-apply) response would be smaller.
        let core = Arc::new(CombiningCore::new(0u64, |total: &mut u64, add, _| {
            *total += add;
            *total
        }));
        let handles: Vec<_> = (1..=6u64)
            .map(|tag| {
                let core = Arc::clone(&core);
                thread::spawn(move || {
                    for _ in 0..200 {
                        let seen = core.submit(tag);
                        assert!(seen >= tag, "response {seen} predates own op {tag}");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn handler_sees_publish_instants() {
        let core = CombiningCore::new(Vec::new(), |log: &mut Vec<u128>, (): (), publish| {
            log.push(publish.elapsed().as_nanos());
        });
        core.submit(());
        core.submit(());
        let lat = core.with_state(|log| log.clone());
        assert_eq!(lat.len(), 2);
    }

    #[test]
    fn with_state_drains_pending_operations() {
        // A publisher that parks (its try_lock loses) must still be
        // served when an observer passes through the state.
        let core = Arc::new(counter_core());
        let c2 = Arc::clone(&core);
        let t = thread::spawn(move || c2.submit(41));
        t.join().unwrap();
        assert_eq!(core.with_state(|t| *t), 41);
    }

    #[test]
    fn mutex_core_matches_semantics() {
        let core = Arc::new(MutexCore::new(0u64, |total: &mut u64, add, _| {
            *total += add;
            *total
        }));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let core = Arc::clone(&core);
                thread::spawn(move || {
                    for _ in 0..250 {
                        core.submit(1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(core.with_state(|t| *t), 1000);
    }
}
