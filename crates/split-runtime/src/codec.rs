//! Wire codec: length-prefixed JSON frames.
//!
//! The paper's responder "accepts user requests using the RPC protocol"
//! (§4.2). This module is that wire format: each message is a 4-byte
//! little-endian length followed by a JSON payload. The decoder is
//! incremental — it accepts arbitrarily fragmented byte chunks, as a TCP
//! stream would deliver them — and enforces a frame-size cap so a
//! corrupted length prefix cannot balloon memory.

use bytes::{Bytes, BytesMut};
use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Maximum accepted frame size (1 MiB — requests and replies are tiny).
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// A client's inference request on the wire.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireRequest {
    /// Model to run.
    pub model: String,
}

/// Codec errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Frame length prefix exceeds [`MAX_FRAME_BYTES`].
    FrameTooLarge(usize),
    /// Payload was not valid JSON for the expected type.
    BadPayload(String),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::FrameTooLarge(n) => write!(f, "frame of {n} bytes exceeds cap"),
            CodecError::BadPayload(e) => write!(f, "bad frame payload: {e}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Encode a message as one frame.
pub fn encode<T: Serialize>(msg: &T) -> Bytes {
    let payload = serde_json::to_vec(msg).expect("wire types serialize");
    assert!(payload.len() <= MAX_FRAME_BYTES, "outgoing frame too large");
    let mut buf = BytesMut::with_capacity(4 + payload.len());
    buf.put_u32_le(payload.len() as u32);
    buf.put_slice(&payload);
    buf.freeze()
}

/// Decode a single frame's payload.
pub fn decode<T: DeserializeOwned>(payload: &[u8]) -> Result<T, CodecError> {
    serde_json::from_slice(payload).map_err(|e| CodecError::BadPayload(e.to_string()))
}

/// Incremental frame decoder over a fragmented byte stream.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: BytesMut,
}

impl FrameDecoder {
    /// Fresh decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feed a chunk of bytes (any fragmentation).
    pub fn feed(&mut self, chunk: &[u8]) {
        self.buf.extend_from_slice(chunk);
    }

    /// Try to extract the next complete frame's payload.
    pub fn next_frame(&mut self) -> Result<Option<Bytes>, CodecError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
        if len > MAX_FRAME_BYTES {
            return Err(CodecError::FrameTooLarge(len));
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        self.buf.advance(4);
        Ok(Some(self.buf.split_to(len).freeze()))
    }

    /// Bytes buffered but not yet consumed.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::{InferenceReply, RequestStatus};

    #[test]
    fn round_trip_request() {
        let req = WireRequest {
            model: "resnet50".into(),
        };
        let frame = encode(&req);
        let mut dec = FrameDecoder::new();
        dec.feed(&frame);
        let payload = dec.next_frame().unwrap().expect("complete frame");
        let back: WireRequest = decode(&payload).unwrap();
        assert_eq!(back, req);
        assert_eq!(dec.pending_bytes(), 0);
    }

    #[test]
    fn round_trip_reply() {
        let reply = InferenceReply {
            id: 7,
            model: "vgg19".into(),
            status: RequestStatus::Completed,
            arrival_us: 1.0,
            start_us: 2.0,
            end_us: 3.0,
            exec_us: 4.0,
            blocks_run: 2,
        };
        let frame = encode(&reply);
        let mut dec = FrameDecoder::new();
        dec.feed(&frame);
        let back: InferenceReply = decode(&dec.next_frame().unwrap().unwrap()).unwrap();
        assert_eq!(back, reply);
    }

    #[test]
    fn byte_by_byte_fragmentation() {
        let req = WireRequest {
            model: "gpt2".into(),
        };
        let frame = encode(&req);
        let mut dec = FrameDecoder::new();
        for (i, b) in frame.iter().enumerate() {
            dec.feed(&[*b]);
            let got = dec.next_frame().unwrap();
            if i + 1 < frame.len() {
                assert!(got.is_none(), "frame completed early at byte {i}");
            } else {
                let back: WireRequest = decode(&got.unwrap()).unwrap();
                assert_eq!(back, req);
            }
        }
    }

    #[test]
    fn multiple_frames_in_one_chunk() {
        let a = WireRequest { model: "a".into() };
        let b = WireRequest { model: "b".into() };
        let mut chunk = Vec::new();
        chunk.extend_from_slice(&encode(&a));
        chunk.extend_from_slice(&encode(&b));
        let mut dec = FrameDecoder::new();
        dec.feed(&chunk);
        let fa: WireRequest = decode(&dec.next_frame().unwrap().unwrap()).unwrap();
        let fb: WireRequest = decode(&dec.next_frame().unwrap().unwrap()).unwrap();
        assert_eq!(fa, a);
        assert_eq!(fb, b);
        assert!(dec.next_frame().unwrap().is_none());
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut dec = FrameDecoder::new();
        dec.feed(&(u32::MAX).to_le_bytes());
        assert!(matches!(
            dec.next_frame(),
            Err(CodecError::FrameTooLarge(_))
        ));
    }

    #[test]
    fn garbage_payload_is_a_decode_error() {
        let mut frame = BytesMut::new();
        frame.put_u32_le(3);
        frame.put_slice(b"{{{");
        let mut dec = FrameDecoder::new();
        dec.feed(&frame);
        let payload = dec.next_frame().unwrap().unwrap();
        assert!(matches!(
            decode::<WireRequest>(&payload),
            Err(CodecError::BadPayload(_))
        ));
    }
}
