#![warn(missing_docs)]
//! # split-runtime — the online serving system (paper §4, Figure 4)
//!
//! Where the `sched` crate replays traces deterministically, this crate is
//! the *system*: real threads, real queues, real lock contention — the
//! shape of the authors' 9,000-line C++ deployment, in Rust.
//!
//! Components map one-to-one onto Figure 4:
//!
//! * **Decision core** ([`combiner`]): a flat-combining core owns all
//!   scheduler state; clients publish requests into cache-padded slots
//!   and the current combiner drains them in one pass — no global mutex
//!   or condvar on the decision path;
//! * **Token scheduler** ([`server`]): on every arrival, the combiner
//!   runs the greedy preemption algorithm
//!   ([`split_core::greedy_preempt`]) against the request queue — both
//!   the scan and the client-visible publish→apply latency are timed so
//!   the microsecond-scale claim of §3.4 is *measured*, not assumed;
//! * **Token assigner / executor**: hands the device token to the queue
//!   head and executes its next block (simulated by a clock-compressed
//!   sleep standing in for the GPU);
//! * **Deployment manager** ([`deployment`]): the models and their offline
//!   split plans.
//!
//! Execution time is *simulated µs* compressed by a configurable factor
//! (default 100× — a 22 ms block sleeps 220 µs), so integration tests run
//! in milliseconds while thread interleavings stay real.

pub mod clock;
pub mod codec;
pub mod combiner;
pub mod deployment;
pub mod driver;
pub mod messages;
pub mod server;
pub mod stats;
pub mod wire;

pub use clock::SimClock;
pub use codec::{decode, encode, CodecError, FrameDecoder, WireRequest};
pub use combiner::{CombiningCore, MutexCore};
pub use deployment::Deployment;
pub use driver::{drive, DriveReport};
pub use messages::{InferenceReply, RequestStatus};
pub use server::{Client, QueueSnapshot, Server, ServerConfig, ShutdownReport};
pub use stats::DecisionStats;
pub use wire::{WireClient, WireConn, WireServer};
