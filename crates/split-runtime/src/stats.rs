//! Preemption-decision latency statistics.
//!
//! §3.4 claims the greedy preemption achieves "near-optimal preemption at
//! microsecond-scale". With the combining core there are two distinct
//! latencies worth that claim, and this collector keeps both:
//!
//! * **decide** — slot-publish → decision-applied: the time from a client
//!   making its request visible in its combining slot to the combiner
//!   having placed it in the queue. This is what a client experiences
//!   and what `ShutdownReport` / the contention benchmarks quote.
//! * **compute** — the greedy scan alone (`greedy_preempt` wall time),
//!   the number the paper's algorithmic claim is about.
//!
//! Both are backed by [`split_telemetry::Histogram`], so on top of
//! count/mean/max the collector answers distribution queries —
//! [`DecisionStats::p50_ns`] / [`DecisionStats::p99_ns`] — with the
//! histogram's ≤12.5% relative bucket error; count, mean, and max stay
//! exact (the histogram tracks them with dedicated atomics).

use split_telemetry::Histogram;

/// Lock-free aggregate of decision durations (nanoseconds).
#[derive(Debug, Default)]
pub struct DecisionStats {
    /// Publish→applied latency (what clients experience).
    decide: Histogram,
    /// Pure greedy-scan duration (what the algorithm costs).
    compute: Histogram,
}

impl DecisionStats {
    /// Fresh collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one decision's publish→applied latency.
    pub fn record(&self, ns: u64) {
        self.decide.record(ns);
    }

    /// Record one decision's pure greedy-scan duration.
    pub fn record_compute(&self, ns: u64) {
        self.compute.record(ns);
    }

    /// Number of decisions recorded.
    pub fn count(&self) -> u64 {
        self.decide.count()
    }

    /// Mean publish→applied decision time, nanoseconds (0 before any
    /// decision).
    pub fn mean_ns(&self) -> f64 {
        if self.decide.count() == 0 {
            0.0
        } else {
            self.decide.mean()
        }
    }

    /// Worst publish→applied decision time, nanoseconds.
    pub fn max_ns(&self) -> u64 {
        self.decide.max()
    }

    /// Median publish→applied decision time, nanoseconds
    /// (bucket-approximate).
    pub fn p50_ns(&self) -> u64 {
        self.decide.p50()
    }

    /// 99th-percentile publish→applied decision time, nanoseconds
    /// (bucket-approximate).
    pub fn p99_ns(&self) -> u64 {
        self.decide.p99()
    }

    /// 99.9th-percentile publish→applied decision time, nanoseconds
    /// (bucket-approximate).
    pub fn p999_ns(&self) -> u64 {
        self.decide.p999()
    }

    /// Median greedy-scan duration, nanoseconds (bucket-approximate).
    pub fn compute_p50_ns(&self) -> u64 {
        self.compute.p50()
    }

    /// Worst greedy-scan duration, nanoseconds.
    pub fn compute_max_ns(&self) -> u64 {
        self.compute.max()
    }

    /// The underlying publish→applied histogram (e.g. for merging into
    /// a registry snapshot).
    pub fn histogram(&self) -> &Histogram {
        &self.decide
    }

    /// The underlying greedy-scan histogram.
    pub fn compute_histogram(&self) -> &Histogram {
        &self.compute
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates() {
        let s = DecisionStats::new();
        assert_eq!(s.mean_ns(), 0.0);
        s.record(100);
        s.record(300);
        s.record(200);
        assert_eq!(s.count(), 3);
        assert_eq!(s.mean_ns(), 200.0);
        assert_eq!(s.max_ns(), 300);
    }

    #[test]
    fn quantiles_are_ordered_and_bounded() {
        let s = DecisionStats::new();
        for ns in 1..=1_000u64 {
            s.record(ns);
        }
        let (p50, p99, p999, max) = (s.p50_ns(), s.p99_ns(), s.p999_ns(), s.max_ns());
        assert!(p50 <= p99, "p50 {p50} > p99 {p99}");
        assert!(p99 <= p999, "p99 {p99} > p999 {p999}");
        assert!(p999 <= max, "p999 {p999} > max {max}");
        // Log-bucketed: p50 within 12.5% of the true median 500.
        assert!((p50 as f64 - 500.0).abs() <= 500.0 * 0.125, "p50 {p50}");
        assert_eq!(max, 1_000);
    }

    #[test]
    fn concurrent_recording() {
        use std::sync::Arc;
        let s = Arc::new(DecisionStats::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        s.record(i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.count(), 8000);
        assert_eq!(s.max_ns(), 999);
    }

    #[test]
    fn compute_and_decide_are_independent() {
        let s = DecisionStats::new();
        s.record(10_000);
        s.record_compute(500);
        // Client-visible stats reflect only the decide histogram...
        assert_eq!(s.count(), 1);
        assert_eq!(s.max_ns(), 10_000);
        // ...while the scan histogram keeps its own books.
        assert_eq!(s.compute_max_ns(), 500);
        assert_eq!(s.compute_histogram().count(), 1);
    }
}
