//! Preemption-decision latency statistics.
//!
//! §3.4 claims the greedy preemption achieves "near-optimal preemption at
//! microsecond-scale". The scheduler thread times every `greedy_preempt`
//! call with `Instant`; this collector aggregates those wall-clock
//! durations lock-free so reading stats never perturbs the scheduler.

use std::sync::atomic::{AtomicU64, Ordering};

/// Lock-free aggregate of decision durations (nanoseconds).
#[derive(Debug, Default)]
pub struct DecisionStats {
    count: AtomicU64,
    total_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl DecisionStats {
    /// Fresh collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one decision.
    pub fn record(&self, ns: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Number of decisions recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean decision time, nanoseconds (0 before any decision).
    pub fn mean_ns(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.total_ns.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    /// Worst decision time, nanoseconds.
    pub fn max_ns(&self) -> u64 {
        self.max_ns.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates() {
        let s = DecisionStats::new();
        assert_eq!(s.mean_ns(), 0.0);
        s.record(100);
        s.record(300);
        s.record(200);
        assert_eq!(s.count(), 3);
        assert_eq!(s.mean_ns(), 200.0);
        assert_eq!(s.max_ns(), 300);
    }

    #[test]
    fn concurrent_recording() {
        use std::sync::Arc;
        let s = Arc::new(DecisionStats::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        s.record(i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.count(), 8000);
        assert_eq!(s.max_ns(), 999);
    }
}
