//! Wire types between clients and the server.

use serde::{Deserialize, Serialize};

/// Terminal status of a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RequestStatus {
    /// Served to completion.
    Completed,
    /// The server shut down before the request ran.
    Dropped,
}

/// The reply a client receives for one inference request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InferenceReply {
    /// Server-assigned request id.
    pub id: u64,
    /// Model served.
    pub model: String,
    /// Terminal status.
    pub status: RequestStatus,
    /// Arrival timestamp, simulated µs.
    pub arrival_us: f64,
    /// First block start, simulated µs (0 when dropped).
    pub start_us: f64,
    /// Completion, simulated µs (0 when dropped).
    pub end_us: f64,
    /// Isolated execution time of the model, µs.
    pub exec_us: f64,
    /// Number of blocks executed (1 when run vanilla).
    pub blocks_run: usize,
}

impl InferenceReply {
    /// End-to-end latency, µs.
    pub fn e2e_us(&self) -> f64 {
        self.end_us - self.arrival_us
    }

    /// Response ratio (Eq. 3).
    pub fn response_ratio(&self) -> f64 {
        self.e2e_us() / self.exec_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reply_math() {
        let r = InferenceReply {
            id: 1,
            model: "m".into(),
            status: RequestStatus::Completed,
            arrival_us: 1_000.0,
            start_us: 2_000.0,
            end_us: 5_000.0,
            exec_us: 2_000.0,
            blocks_run: 2,
        };
        assert_eq!(r.e2e_us(), 4_000.0);
        assert_eq!(r.response_ratio(), 2.0);
    }
}
