//! Deployment manager: models plus their offline split plans (Figure 4's
//! "Deployment manager" box).

use sched::{ModelRuntime, ModelTable};
use split_core::{PlanSet, SplitPlan};

/// The deployed models, ready for the online scheduler.
#[derive(Debug, Clone, Default)]
pub struct Deployment {
    table: ModelTable,
    next_task: u32,
}

impl Deployment {
    /// Empty deployment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Deploy a model that runs unsplit.
    pub fn deploy_vanilla(&mut self, name: impl Into<std::sync::Arc<str>>, exec_us: f64) -> u32 {
        let task = self.next_task;
        self.next_task += 1;
        self.table
            .insert(ModelRuntime::vanilla(name, task, exec_us));
        task
    }

    /// Deploy a model with an offline split plan. The plan's vanilla time
    /// becomes the QoS baseline.
    pub fn deploy_plan(&mut self, plan: &SplitPlan) -> u32 {
        let task = self.next_task;
        self.next_task += 1;
        let mut rt = ModelRuntime::split(
            plan.model.clone(),
            task,
            plan.vanilla_us,
            plan.block_times_us.clone(),
        );
        // Legacy plans (deserialized before transfer accounting) carry no
        // boundary sizes; only attach when the arity matches.
        if plan.transfer_bytes.len() + 1 == plan.block_times_us.len() {
            rt = rt.with_transfer_bytes(plan.transfer_bytes.clone());
        }
        self.table.insert(rt);
        task
    }

    /// Deploy every plan of a [`PlanSet`]; returns how many were deployed.
    pub fn deploy_all(&mut self, plans: &PlanSet) -> usize {
        // Sort for deterministic task-id assignment.
        let mut items: Vec<&SplitPlan> = plans.iter().collect();
        items.sort_by(|a, b| a.model.cmp(&b.model));
        for p in &items {
            self.deploy_plan(p);
        }
        items.len()
    }

    /// The model table the scheduler consumes.
    pub fn table(&self) -> &ModelTable {
        &self.table
    }

    /// Number of deployed models.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// True when nothing is deployed.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deploys_assign_distinct_tasks() {
        let mut d = Deployment::new();
        let a = d.deploy_vanilla("a", 1_000.0);
        let b = d.deploy_vanilla("b", 2_000.0);
        assert_ne!(a, b);
        assert_eq!(d.len(), 2);
        assert_eq!(d.table().get("a").task, a);
    }

    #[test]
    fn deploy_plan_carries_blocks() {
        let mut d = Deployment::new();
        let plan = SplitPlan {
            model: "m".into(),
            cuts: vec![5],
            block_times_us: vec![600.0, 700.0],
            vanilla_us: 1_000.0,
            overhead_ratio: 0.3,
            std_us: 50.0,
            fitness: -1.0,
            transfer_bytes: vec![0],
        };
        d.deploy_plan(&plan);
        let rt = d.table().get("m");
        assert_eq!(rt.blocks_us, vec![600.0, 700.0]);
        assert_eq!(rt.exec_us, 1_000.0);
        assert_eq!(rt.transfer_bytes, vec![0]);
    }

    #[test]
    fn deploy_plan_skips_mismatched_transfer_arity() {
        let mut d = Deployment::new();
        let plan = SplitPlan {
            model: "m".into(),
            cuts: vec![5],
            block_times_us: vec![600.0, 700.0],
            vanilla_us: 1_000.0,
            overhead_ratio: 0.3,
            std_us: 50.0,
            fitness: -1.0,
            transfer_bytes: vec![], // legacy plan without boundary sizes
        };
        d.deploy_plan(&plan);
        assert!(d.table().get("m").transfer_bytes.is_empty());
    }
}
