//! The threaded SPLIT server (paper §4, Figure 4).
//!
//! All scheduler state — the request queue, the device token, per-request
//! block cursors — is owned by a single flat-combining decision core
//! ([`crate::combiner::CombiningCore`]). There is no responder thread and
//! no condvar:
//!
//! * **clients** publish `Infer` operations (the private `CoreOp` enum)
//!   into cache-padded
//!   combining slots from their own threads; whichever thread currently
//!   combines stamps the arrival, consults the elastic controller, and
//!   places the request with the greedy preemption algorithm (timing both
//!   the scan and the client-visible publish→apply latency);
//! * the **token-assigner/executor** thread publishes `NextBlock`
//!   operations: each grants the device token to
//!   the queue head for one block (a clock-compressed sleep standing in
//!   for the GPU kernel launches) and retires the previous block,
//!   completing requests whose last block finished.
//!
//! Preemption therefore happens exactly at block boundaries: whoever the
//! scheduler moved to the head while a block was in flight gets the token
//! next. Replies travel on per-request channels as soon as the last block
//! completes — the asynchronous read/write split of §4.2.
//!
//! Shutdown is two-phase and cannot lose accepted work: the ingest gate
//! closes first (new `infer` calls observe a disconnected reply channel),
//! then the core is marked closed under the combiner discipline, which
//! drains every already-published request before the flag lands. An
//! `infer` that returned has *by construction* been decided — the old
//! channel design's drop window (a send landing after the shutdown drain
//! observed `Empty`) no longer exists.

use crate::clock::SimClock;
use crate::combiner::CombiningCore;
use crate::deployment::Deployment;
use crate::messages::{InferenceReply, RequestStatus};
use crate::stats::DecisionStats;
use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;
use split_core::{greedy_preempt, ElasticController, QueueEntry};
use split_forensics::{FlightKind, FlightRing, FlightSnapshot, ForensicsCfg, IncidentBundle};
use split_obs::{AlertLog, SloCfg, SloMonitor};
use split_telemetry::{Event, Recorder, RecorderMode, SharedRecorder};
use split_watch::{DriftReport, DriftWatch, WatchCfg};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::Thread;
use std::time::{Duration, Instant};

/// Ring capacity for the server's lifecycle recorder: enough for
/// thousands of in-flight requests (≈6 events each) while bounding a
/// long-running server's memory. Evictions are counted, not silent.
const RECORDER_RING: usize = 65_536;

/// How long the executor parks on an idle queue before re-polling. A
/// backstop only — the combiner explicitly unparks it on arrival.
const EXECUTOR_PARK: Duration = Duration::from_micros(200);

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Latency-target multiplier α for response-ratio comparisons.
    pub alpha: f64,
    /// Elastic-splitting thresholds (`None` = always split).
    pub elastic: Option<split_core::ElasticConfig>,
    /// Clock compression (simulated time vs wall time).
    pub compression: f64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            alpha: 4.0,
            elastic: Some(split_core::ElasticConfig::default()),
            compression: 100.0,
        }
    }
}

struct Meta {
    model: String,
    exec_us: f64,
    arrival_us: f64,
    start_us: Option<f64>,
    blocks_run: usize,
    /// Inter-block activation sizes (one per boundary) for telemetry.
    transfer_bytes: Vec<u64>,
    reply: Sender<InferenceReply>,
}

/// Everything the decision core owns. Only the current combiner touches
/// it; there is no finer-grained locking inside.
#[derive(Default)]
struct CoreState {
    queue: Vec<QueueEntry>,
    blocks: HashMap<u64, VecDeque<f64>>,
    meta: HashMap<u64, Meta>,
    running_end_us: Option<f64>,
    closed: bool,
    next_id: u64,
    accepted: u64,
    served: u64,
    elastic: Option<ElasticController>,
    /// The executor thread, for idle wakeups.
    executor: Option<Thread>,
    /// Set when the executor was told `Idle`; the next accepted arrival
    /// clears it and unparks the executor.
    executor_idle: bool,
}

/// Operations clients and the executor publish into combining slots.
enum CoreOp {
    /// A client inference request.
    Infer {
        model: String,
        reply: Sender<InferenceReply>,
    },
    /// The executor asking for the next block, retiring the one it just
    /// ran (if any).
    NextBlock { finished: Option<FinishedBlock> },
}

/// A block the executor finished sleeping through.
struct FinishedBlock {
    id: u64,
    block: usize,
}

/// The device-token grant handed to the executor.
struct BlockGrant {
    id: u64,
    block: usize,
    blk_us: f64,
}

/// Responses written back through the slots.
enum CoreResp {
    /// Request decided (enqueued, or replied `Dropped` for an unknown
    /// model).
    Accepted,
    /// Ingest already closed; the dropped reply sender tells the client.
    Rejected,
    /// Executor: run this block.
    Run(BlockGrant),
    /// Executor: queue empty, park until an arrival unparks you.
    Idle,
    /// Executor: queue empty and server closed — exit.
    Done,
}

type Core = CombiningCore<CoreOp, CoreResp, CoreState>;

struct Shared {
    clock: SimClock,
    decisions: DecisionStats,
    recorder: SharedRecorder,
    /// Burn-rate SLO monitor, fed on every completion; observable live
    /// via [`Server::alerts`] and in the shutdown report.
    slo: Mutex<SloMonitor>,
    /// Streaming drift watch, fed by the combiner (arrivals, judged
    /// completions, downgrades). Regime events it emits are forwarded
    /// into the SLO alert log as informational alerts.
    drift: Mutex<DriftWatch>,
    /// Always-on flight recorder: every causal event also lands here as
    /// a compact lock-free record (`None` when disabled via
    /// `SPLIT_FLIGHT=0`).
    flight: Option<FlightRing>,
    /// Ring snapshots taken the instant each alert fired, so the
    /// pre-incident history survives even if the ring wraps before
    /// shutdown.
    incident_rings: Mutex<Vec<FlightSnapshot>>,
    /// Phase 1 of shutdown: once set, `infer` returns a disconnected
    /// reply channel without publishing.
    ingest_closed: AtomicBool,
    /// Test hook: nanoseconds each combined `Infer` spins before the
    /// decision, simulating a slow combiner pass (see
    /// [`Server::set_combiner_stall_ns`]).
    combiner_stall_ns: AtomicU64,
}

impl Shared {
    /// Record a lifecycle event in both the full recorder and (its
    /// compact projection) the flight ring.
    fn record(&self, e: Event) {
        if let Some(ring) = &self.flight {
            ring.record_event(&e);
        }
        self.recorder.record(e);
    }
}

/// Number of queued requests pushed back by an insertion at `position`
/// in a queue now `queue_len` long. Saturating: a policy returning
/// `position == queue_len` (insertion past the tail) yields 0 displaced
/// rather than underflowing.
fn displaced_count(queue_len: usize, position: usize) -> usize {
    queue_len.saturating_sub(1).saturating_sub(position)
}

/// The combiner's operation handler: applies one published op to the
/// core state. Runs on whichever thread currently combines, with the
/// core lock held.
fn handle_op(
    shared: &Shared,
    deployment: &Deployment,
    alpha: f64,
    st: &mut CoreState,
    op: CoreOp,
    publish: Instant,
) -> CoreResp {
    match op {
        CoreOp::Infer { model, reply } => {
            handle_infer(shared, deployment, alpha, st, model, reply, publish)
        }
        CoreOp::NextBlock { finished } => handle_next_block(shared, st, finished),
    }
}

fn handle_infer(
    shared: &Shared,
    deployment: &Deployment,
    alpha: f64,
    st: &mut CoreState,
    model: String,
    reply: Sender<InferenceReply>,
    publish: Instant,
) -> CoreResp {
    let stall = shared.combiner_stall_ns.load(Ordering::Relaxed);
    if stall > 0 {
        let t = Instant::now();
        while (t.elapsed().as_nanos() as u64) < stall {
            std::hint::spin_loop();
        }
    }
    if st.closed {
        // Dropping `reply` disconnects the client's receiver: the
        // rejection is observable, never a silent loss.
        return CoreResp::Rejected;
    }
    let now = shared.clock.now_us();
    if !deployment.table().contains(&model) {
        shared.record(Event::Mark {
            label: format!("dropped:{model}"),
            t_us: now,
        });
        // Mark events don't project into the flight ring, so drops get
        // an explicit compact record of their own.
        if let Some(ring) = &shared.flight {
            ring.record(now, st.next_id, FlightKind::Drop, 0, 0);
        }
        let _ = reply.send(InferenceReply {
            id: st.next_id,
            model,
            status: RequestStatus::Dropped,
            arrival_us: now,
            start_us: 0.0,
            end_us: 0.0,
            exec_us: 0.0,
            blocks_run: 0,
        });
        st.next_id += 1;
        return CoreResp::Accepted;
    }
    let m = deployment.table().get(&model);
    let use_split = match st.elastic.as_mut() {
        Some(ctl) => ctl.on_arrival(now, m.task),
        None => true,
    };
    let blocks: VecDeque<f64> = if use_split {
        m.blocks_us.iter().copied().collect()
    } else {
        std::iter::once(m.exec_us).collect()
    };
    let left: f64 = blocks.iter().sum();
    let id = st.next_id;
    st.next_id += 1;
    st.accepted += 1;

    {
        let mut drift = shared.drift.lock();
        drift.observe_arrival(now, &m.name);
        if !use_split && m.blocks_us.len() > 1 {
            drift.observe_drop(now, &m.name);
        }
    }

    // Recorded under the core lock so event order matches scheduling
    // order across every combining thread.
    shared.record(Event::Arrival {
        req: id,
        model: m.name.to_string(),
        t_us: now,
    });
    if !use_split && m.blocks_us.len() > 1 {
        shared.record(Event::Downgrade {
            req: id,
            from_blocks: m.blocks_us.len(),
            to_blocks: 1,
            t_us: now,
        });
    }
    st.blocks.insert(id, blocks);
    st.meta.insert(
        id,
        Meta {
            model: m.name.to_string(),
            exec_us: m.exec_us,
            arrival_us: now,
            start_us: None,
            blocks_run: 0,
            transfer_bytes: if use_split {
                m.transfer_bytes.clone()
            } else {
                Vec::new()
            },
            reply,
        },
    );
    let base_wait = st.running_end_us.map(|e| (e - now).max(0.0)).unwrap_or(0.0);
    let t0 = Instant::now();
    let decision = greedy_preempt(
        &mut st.queue,
        QueueEntry {
            id,
            task: m.task,
            exec_us: m.exec_us,
            left_us: left,
            arrival_us: now,
        },
        base_wait,
        now,
        alpha,
    );
    let decision_ns = t0.elapsed().as_nanos() as u64;
    // Client-visible latency: from the request becoming visible in its
    // combining slot to the decision having been applied. Includes the
    // wait for the current combiner pass — the number §3.4's
    // microsecond-scale claim is judged on under contention.
    let publish_ns = publish.elapsed().as_nanos() as u64;
    shared.decisions.record(publish_ns);
    shared.decisions.record_compute(decision_ns);
    shared.record(Event::PreemptDecision {
        req: id,
        position: decision.position,
        comparisons: decision.comparisons,
        stop: format!("{:?}", decision.stop),
        decision_ns,
        publish_ns,
        t_us: now,
    });
    debug_assert!(
        decision.position < st.queue.len(),
        "greedy_preempt returned position {} past queue of {}",
        decision.position,
        st.queue.len()
    );
    shared.record(Event::Enqueue {
        req: id,
        position: decision.position,
        displaced: displaced_count(st.queue.len(), decision.position),
        t_us: now,
    });
    shared.record(Event::QueueDepth {
        depth: st.queue.len(),
        t_us: now,
    });
    if st.executor_idle {
        st.executor_idle = false;
        if let Some(t) = &st.executor {
            t.unpark();
        }
    }
    CoreResp::Accepted
}

fn handle_next_block(
    shared: &Shared,
    st: &mut CoreState,
    finished: Option<FinishedBlock>,
) -> CoreResp {
    if let Some(fin) = finished {
        st.running_end_us = None;
        let end = shared.clock.now_us();
        shared.record(Event::BlockEnd {
            req: fin.id,
            block: fin.block,
            stream: 0,
            t_us: end,
        });
        if st
            .blocks
            .get(&fin.id)
            .map(|b| b.is_empty())
            .unwrap_or(false)
        {
            let pos = st
                .queue
                .iter()
                .position(|e| e.id == fin.id)
                .expect("entry present");
            st.queue.remove(pos);
            st.blocks.remove(&fin.id);
            let meta = st.meta.remove(&fin.id).expect("meta present");
            shared.record(Event::Completion {
                req: fin.id,
                t_us: end,
            });
            shared.record(Event::QueueDepth {
                depth: st.queue.len(),
                t_us: end,
            });
            let newly_fired = {
                let mut slo = shared.slo.lock();
                let before = slo.log().fired();
                let e2e = end - meta.arrival_us;
                slo.observe_outcome(end, e2e, meta.exec_us);
                let burn_fired = slo.log().fired() > before;
                // Feed the drift watch with the already-judged verdict
                // (same α rule the SLO monitor just applied) and forward
                // any regime events into the alert log. Lock order is
                // always slo → drift.
                let violated = meta.exec_us > 0.0 && e2e > slo.cfg().alpha * meta.exec_us;
                let mut drift = shared.drift.lock();
                drift.observe_completion(end, &meta.model, e2e, violated);
                for ev in drift.drain_events() {
                    slo.observe_regime(&ev);
                }
                burn_fired
            };
            if newly_fired {
                // Freeze the pre-incident history the instant the alert
                // fires, before the ring can wrap over it.
                if let Some(ring) = &shared.flight {
                    shared.incident_rings.lock().push(ring.snapshot());
                }
            }
            let _ = meta.reply.send(InferenceReply {
                id: fin.id,
                model: meta.model,
                status: RequestStatus::Completed,
                arrival_us: meta.arrival_us,
                start_us: meta.start_us.unwrap_or(end),
                end_us: end,
                exec_us: meta.exec_us,
                blocks_run: meta.blocks_run,
            });
            st.served += 1;
        }
    }

    if st.queue.is_empty() {
        if st.closed {
            return CoreResp::Done;
        }
        st.executor_idle = true;
        return CoreResp::Idle;
    }

    // Token assignment: the head owns the device for one block.
    let id = st.queue[0].id;
    let blk = st
        .blocks
        .get_mut(&id)
        .and_then(|b| b.pop_front())
        .expect("queued request has blocks");
    st.queue[0].left_us -= blk;
    let now = shared.clock.now_us();
    st.running_end_us = Some(now + blk);
    let (block_idx, boundary_bytes) = {
        let meta = st.meta.get_mut(&id).expect("meta");
        meta.start_us.get_or_insert(now);
        meta.blocks_run += 1;
        let idx = meta.blocks_run - 1;
        let bytes = idx
            .checked_sub(1)
            .and_then(|b| meta.transfer_bytes.get(b).copied());
        (idx, bytes)
    };
    shared.record(Event::BlockStart {
        req: id,
        block: block_idx,
        stream: 0,
        t_us: now,
    });
    // Activation hand-off at the boundary into this block. Its time is
    // already folded into the block's profiled duration (§4); the event
    // attributes traffic, it does not add latency.
    if let Some(bytes) = boundary_bytes {
        shared.record(Event::Transfer {
            req: id,
            bytes,
            t_us: now,
            dur_us: 0.0,
        });
    }
    CoreResp::Run(BlockGrant {
        id,
        block: block_idx,
        blk_us: blk,
    })
}

fn executor_loop(shared: &Shared, core: &Core) -> u64 {
    core.with_state(|st| st.executor = Some(std::thread::current()));
    let mut finished: Option<FinishedBlock> = None;
    loop {
        match core.submit(CoreOp::NextBlock {
            finished: finished.take(),
        }) {
            CoreResp::Run(g) => {
                shared.clock.sleep_us(g.blk_us);
                finished = Some(FinishedBlock {
                    id: g.id,
                    block: g.block,
                });
            }
            CoreResp::Idle => std::thread::park_timeout(EXECUTOR_PARK),
            CoreResp::Done => break,
            CoreResp::Accepted | CoreResp::Rejected => {
                unreachable!("infer response delivered to the executor")
            }
        }
    }
    core.with_state(|st| st.served)
}

/// A running SPLIT server.
pub struct Server {
    shared: Arc<Shared>,
    core: Arc<Core>,
    executor: Option<std::thread::JoinHandle<u64>>,
}

/// A cheap cloneable handle for submitting requests.
#[derive(Clone)]
pub struct Client {
    shared: Arc<Shared>,
    core: Arc<Core>,
}

impl Client {
    /// Submit an inference request; the reply arrives on the returned
    /// channel when the request completes (or the channel disconnects if
    /// the server is gone). Returns only once the scheduling decision
    /// has been applied, so a returned receiver is never silently lost
    /// to a racing shutdown.
    pub fn infer(&self, model: impl Into<String>) -> Receiver<InferenceReply> {
        let (reply_tx, reply_rx) = bounded(1);
        // A closed ingest gate means the server is shutting down; the
        // disconnected reply channel communicates that to the caller.
        if self.shared.ingest_closed.load(Ordering::SeqCst) {
            return reply_rx;
        }
        let _ = self.core.submit(CoreOp::Infer {
            model: model.into(),
            reply: reply_tx,
        });
        reply_rx
    }
}

/// A point-in-time view of scheduler state (see [`Server::snapshot`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueueSnapshot {
    /// Requests currently queued (including the one whose block is
    /// running).
    pub queued: usize,
    /// Whether a block is executing right now.
    pub block_in_flight: bool,
    /// `(request id, task)` of the queue head, if any.
    pub head: Option<(u64, u32)>,
    /// Preemption decisions made so far.
    pub decisions: u64,
}

/// Final report returned by [`Server::shutdown`].
#[derive(Debug, Clone)]
pub struct ShutdownReport {
    /// Requests fully served.
    pub served: u64,
    /// Preemption decisions made.
    pub decisions: u64,
    /// Mean decision latency (slot-publish → decision applied),
    /// nanoseconds.
    pub mean_decision_ns: f64,
    /// Worst decision latency, nanoseconds.
    pub max_decision_ns: u64,
    /// Median decision latency, nanoseconds (bucket-approximate).
    pub p50_decision_ns: u64,
    /// 99th-percentile decision latency, nanoseconds
    /// (bucket-approximate).
    pub p99_decision_ns: u64,
    /// 99.9th-percentile decision latency, nanoseconds
    /// (bucket-approximate).
    pub p999_decision_ns: u64,
    /// The server's lifecycle recording (ring-bounded; see
    /// [`Server::telemetry`]).
    pub recorder: Recorder,
    /// Burn-rate alert history (summarize with [`AlertLog::summary`]).
    pub alerts: AlertLog,
    /// One self-contained forensic bundle per fired alert: flight-ring
    /// history, queue depths, the violating requests' span trees, and
    /// an aggregated root-cause verdict. Empty when no alert fired (or
    /// the flight recorder was disabled).
    pub incidents: Vec<IncidentBundle>,
    /// Finalized drift-watch report: windowed latency sketches and any
    /// regime-shift events detected while serving.
    pub drift: DriftReport,
}

impl Server {
    /// Start the server over a deployment.
    pub fn start(deployment: Deployment, cfg: ServerConfig) -> Self {
        let shared = Arc::new(Shared {
            clock: SimClock::new(cfg.compression),
            decisions: DecisionStats::new(),
            recorder: SharedRecorder::with_mode(RecorderMode::Ring(RECORDER_RING)),
            slo: Mutex::new(SloMonitor::new(SloCfg {
                alpha: cfg.alpha,
                ..SloCfg::default()
            })),
            drift: Mutex::new(DriftWatch::new(WatchCfg {
                alpha: cfg.alpha,
                ..WatchCfg::default()
            })),
            flight: split_forensics::flight_enabled()
                .then(|| FlightRing::with_capacity(split_forensics::flight_capacity())),
            incident_rings: Mutex::new(Vec::new()),
            ingest_closed: AtomicBool::new(false),
            combiner_stall_ns: AtomicU64::new(0),
        });
        let core = {
            let shared = Arc::clone(&shared);
            let alpha = cfg.alpha;
            Arc::new(CombiningCore::new(
                CoreState {
                    elastic: cfg.elastic.clone().map(ElasticController::new),
                    ..CoreState::default()
                },
                move |st, op, publish| handle_op(&shared, &deployment, alpha, st, op, publish),
            ))
        };
        let executor = {
            let shared = Arc::clone(&shared);
            let core = Arc::clone(&core);
            std::thread::Builder::new()
                .name("split-executor".into())
                .spawn(move || executor_loop(&shared, &core))
                .expect("spawn executor")
        };

        Self {
            shared,
            core,
            executor: Some(executor),
        }
    }

    /// A client handle (clone freely across threads).
    pub fn client(&self) -> Client {
        Client {
            shared: Arc::clone(&self.shared),
            core: Arc::clone(&self.core),
        }
    }

    /// The simulated clock (for tests that want timestamps).
    pub fn clock(&self) -> &SimClock {
        &self.shared.clock
    }

    /// A point-in-time view of the scheduler state (telemetry; passes
    /// through the decision core briefly, serving any pending
    /// operations on the way).
    pub fn snapshot(&self) -> QueueSnapshot {
        let decisions = self.shared.decisions.count();
        self.core.with_state(|st| QueueSnapshot {
            queued: st.queue.len(),
            block_in_flight: st.running_end_us.is_some(),
            head: st.queue.first().map(|e| (e.id, e.task)),
            decisions,
        })
    }

    /// A point-in-time view of the elastic-splitting controller, or
    /// `None` when elasticity is disabled. Reads through the decision
    /// core's [`CombiningCore::with_state`] — the full combiner
    /// discipline, no separate server lock — so an observer sees
    /// exactly the mode the next dispatch decision will use, and never
    /// waits behind more than the in-flight combiner pass.
    pub fn elastic(&self) -> Option<split_core::ElasticSnapshot> {
        self.core
            .with_state(|st| st.elastic.as_ref().map(ElasticController::snapshot))
    }

    /// A snapshot of the server's lifecycle recording so far (arrivals,
    /// preemption decisions, block executions, completions, queue
    /// depth). Ring-bounded; exportable with
    /// [`split_telemetry::perfetto::write_chrome_trace`].
    pub fn telemetry(&self) -> Recorder {
        self.shared.recorder.snapshot()
    }

    /// A snapshot of the burn-rate alert history so far (takes the SLO
    /// lock briefly).
    pub fn alerts(&self) -> AlertLog {
        self.shared.slo.lock().log().clone()
    }

    /// Test hook: make every combined `Infer` spin for `ns` nanoseconds
    /// before deciding, simulating a slow combiner pass. Used to prove
    /// the report's decision percentiles measure publish→apply.
    #[doc(hidden)]
    pub fn set_combiner_stall_ns(&self, ns: u64) {
        self.shared.combiner_stall_ns.store(ns, Ordering::Relaxed);
    }

    /// Two-phase close: gate the ingest, then mark the core closed.
    /// `with_state` drains already-published requests *before* the flag
    /// lands (they are accepted) and again after (gate-raced stragglers
    /// are rejected observably). Idempotent.
    fn initiate_shutdown(&self) {
        self.shared.ingest_closed.store(true, Ordering::SeqCst);
        self.core.with_state(|st| {
            st.closed = true;
            if let Some(t) = &st.executor {
                t.unpark();
            }
        });
    }

    /// Stop accepting requests, drain the queue, join the executor, and
    /// report.
    pub fn shutdown(mut self) -> ShutdownReport {
        self.initiate_shutdown();
        let served = self
            .executor
            .take()
            .map(|h| h.join().expect("executor panicked"));
        let accepted = self.core.with_state(|st| st.accepted);
        debug_assert!(
            served.unwrap_or(0) <= accepted,
            "served {} must not exceed accepted {accepted}",
            served.unwrap_or(0)
        );
        let recorder = self.shared.recorder.snapshot();
        let (alerts, slo_cfg) = {
            let slo = self.shared.slo.lock();
            (slo.log().clone(), slo.cfg().clone())
        };
        // Merge the fire-time ring snapshots (pre-incident history that
        // may since have been overwritten) with the final ring state.
        let flight = {
            let mut merged = self
                .shared
                .flight
                .as_ref()
                .map(|r| r.snapshot())
                .unwrap_or_else(FlightSnapshot::disabled);
            for snap in self.shared.incident_rings.lock().drain(..) {
                merged = merged.merge(&snap);
            }
            merged
        };
        let incidents = split_forensics::bundles_for_alerts(
            &recorder,
            &flight,
            None,
            &ForensicsCfg {
                slo: slo_cfg,
                sampler: Default::default(),
            },
            &alerts,
        );
        let drift = {
            let mut watch = self.shared.drift.lock();
            watch.finalize();
            watch.report()
        };
        ShutdownReport {
            served: served.unwrap_or(0),
            decisions: self.shared.decisions.count(),
            mean_decision_ns: self.shared.decisions.mean_ns(),
            max_decision_ns: self.shared.decisions.max_ns(),
            p50_decision_ns: self.shared.decisions.p50_ns(),
            p99_decision_ns: self.shared.decisions.p99_ns(),
            p999_decision_ns: self.shared.decisions.p999_ns(),
            recorder,
            alerts,
            incidents,
            drift,
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // Idempotent: shutdown() takes the handle; a bare drop still
        // stops the executor.
        self.initiate_shutdown();
        if let Some(h) = self.executor.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deployment() -> Deployment {
        let mut d = Deployment::new();
        d.deploy_vanilla("short", 10_000.0);
        let plan = split_core::SplitPlan {
            model: "long".into(),
            cuts: vec![40, 80],
            block_times_us: vec![22_000.0, 22_000.0, 22_000.0],
            vanilla_us: 60_000.0,
            overhead_ratio: 0.1,
            std_us: 0.0,
            fitness: -1.0,
            transfer_bytes: vec![0, 0],
        };
        d.deploy_plan(&plan);
        d
    }

    fn config() -> ServerConfig {
        ServerConfig {
            alpha: 4.0,
            elastic: None,
            compression: 2_000.0,
        }
    }

    #[test]
    fn serves_a_single_request() {
        let server = Server::start(deployment(), config());
        let rx = server.client().infer("short");
        let reply = rx.recv_timeout(std::time::Duration::from_secs(5)).unwrap();
        assert_eq!(reply.status, RequestStatus::Completed);
        assert_eq!(reply.blocks_run, 1);
        assert!(reply.e2e_us() >= 10_000.0 * 0.5, "{}", reply.e2e_us());
        let report = server.shutdown();
        assert_eq!(report.served, 1);
        assert_eq!(report.decisions, 1);
    }

    #[test]
    fn split_model_runs_all_blocks() {
        let server = Server::start(deployment(), config());
        let rx = server.client().infer("long");
        let reply = rx.recv_timeout(std::time::Duration::from_secs(5)).unwrap();
        assert_eq!(reply.blocks_run, 3);
        assert!(reply.e2e_us() >= 60_000.0 * 0.5);
        server.shutdown();
    }

    #[test]
    fn unknown_model_is_dropped() {
        let server = Server::start(deployment(), config());
        let rx = server.client().infer("ghost");
        let reply = rx.recv_timeout(std::time::Duration::from_secs(5)).unwrap();
        assert_eq!(reply.status, RequestStatus::Dropped);
        server.shutdown();
    }

    #[test]
    fn short_request_preempts_long_between_blocks() {
        // Gentle compression so the 22 ms block spans ~2.2 real ms and the
        // short request reliably lands inside block 0.
        let server = Server::start(
            deployment(),
            ServerConfig {
                alpha: 4.0,
                elastic: None,
                compression: 10.0,
            },
        );
        let client = server.client();
        let long_rx = client.infer("long");
        // Give the long request a head start into its first block.
        std::thread::sleep(std::time::Duration::from_millis(1));
        let short_rx = client.infer("short");
        let long = long_rx
            .recv_timeout(std::time::Duration::from_secs(5))
            .unwrap();
        let short = short_rx
            .recv_timeout(std::time::Duration::from_secs(5))
            .unwrap();
        assert!(
            short.end_us < long.end_us,
            "short ({}) must finish before long ({})",
            short.end_us,
            long.end_us
        );
        // The short request never waits for the whole long model.
        assert!(short.e2e_us() < 60_000.0, "short e2e {}", short.e2e_us());
        server.shutdown();
    }

    #[test]
    fn concurrent_clients_all_get_replies() {
        let server = Server::start(deployment(), config());
        let mut rxs = Vec::new();
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let client = server.client();
                std::thread::spawn(move || {
                    (0..10)
                        .map(|i| client.infer(if (t + i) % 3 == 0 { "long" } else { "short" }))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            rxs.extend(h.join().unwrap());
        }
        let mut completed = 0;
        for rx in rxs {
            let r = rx.recv_timeout(std::time::Duration::from_secs(30)).unwrap();
            assert_eq!(r.status, RequestStatus::Completed);
            completed += 1;
        }
        assert_eq!(completed, 40);
        let report = server.shutdown();
        assert_eq!(report.served, 40);
        assert_eq!(report.decisions, 40);
        // §3.4: decisions are microsecond-scale — now measured from
        // slot publish, not lock acquisition.
        assert!(
            report.mean_decision_ns < 1_000_000.0,
            "mean decision {} ns",
            report.mean_decision_ns
        );
    }

    #[test]
    fn shutdown_drains_queued_work() {
        let server = Server::start(deployment(), config());
        let client = server.client();
        let rxs: Vec<_> = (0..5).map(|_| client.infer("short")).collect();
        let report = server.shutdown();
        assert_eq!(report.served, 5, "shutdown must drain the queue");
        for rx in rxs {
            assert_eq!(rx.recv().unwrap().status, RequestStatus::Completed);
        }
    }

    #[test]
    fn infer_racing_shutdown_never_loses_accepted_requests() {
        // Regression for the old channel-ingest drop window: a request
        // whose `infer` returned could still be lost if its send landed
        // after the shutdown drain observed Empty. Now `infer` returns
        // only after the decision applied, so returned ⇒ decided, and
        // racing clients either complete or observe a disconnect.
        for round in 0..10 {
            let server = Server::start(deployment(), config());
            let client = server.client();
            // These receivers exist before shutdown begins: they MUST
            // all complete.
            let pre: Vec<_> = (0..3).map(|_| client.infer("short")).collect();
            let racers: Vec<_> = (0..4)
                .map(|_| {
                    let client = client.clone();
                    std::thread::spawn(move || {
                        (0..5).map(|_| client.infer("short")).collect::<Vec<_>>()
                    })
                })
                .collect();
            let report = server.shutdown();
            let mut completed = 0u64;
            for rx in pre {
                let r = rx
                    .recv_timeout(Duration::from_secs(10))
                    .expect("pre-shutdown infer must be served");
                assert_eq!(r.status, RequestStatus::Completed, "round {round}");
                completed += 1;
            }
            for h in racers {
                for rx in h.join().unwrap() {
                    match rx.recv_timeout(Duration::from_secs(10)) {
                        Ok(r) => {
                            assert_eq!(r.status, RequestStatus::Completed, "round {round}");
                            completed += 1;
                        }
                        // Raced past the close: an observable rejection,
                        // never a hang.
                        Err(e) => assert_eq!(
                            e,
                            crossbeam::channel::RecvTimeoutError::Disconnected,
                            "round {round}"
                        ),
                    }
                }
            }
            assert_eq!(
                report.served, completed,
                "round {round}: every accepted request must be served"
            );
        }
    }

    #[test]
    fn decision_latency_measures_publish_to_apply() {
        // Baseline: unstalled combiner, publish→apply stays far below
        // the stall we are about to inject.
        let server = Server::start(deployment(), config());
        let client = server.client();
        for _ in 0..8 {
            client
                .infer("short")
                .recv_timeout(Duration::from_secs(10))
                .unwrap();
        }
        let baseline = server.shutdown();
        assert!(
            baseline.p50_decision_ns < 1_500_000,
            "unstalled p50 {} ns",
            baseline.p50_decision_ns
        );

        // Stalled: every combiner pass spins 2 ms before deciding. The
        // publish→apply histogram must shift by the stall; the pure
        // greedy-scan time must not.
        const STALL_NS: u64 = 2_000_000;
        let server = Server::start(deployment(), config());
        server.set_combiner_stall_ns(STALL_NS);
        let client = server.client();
        for _ in 0..8 {
            client
                .infer("short")
                .recv_timeout(Duration::from_secs(10))
                .unwrap();
        }
        let stalled = server.shutdown();
        // Histogram buckets carry ≤12.5% relative error; leave slack.
        assert!(
            stalled.p50_decision_ns >= STALL_NS * 7 / 8,
            "stalled p50 {} ns must absorb the {STALL_NS} ns stall",
            stalled.p50_decision_ns
        );
        assert!(stalled.p999_decision_ns >= stalled.p50_decision_ns);
        let mut decisions = 0;
        for e in stalled.recorder.events() {
            if let Event::PreemptDecision {
                decision_ns,
                publish_ns,
                ..
            } = e
            {
                decisions += 1;
                assert!(
                    *publish_ns >= STALL_NS,
                    "publish→apply {publish_ns} ns below the stall"
                );
                assert!(
                    *decision_ns < STALL_NS,
                    "greedy scan {decision_ns} ns must not include the stall"
                );
            }
        }
        assert_eq!(decisions, 8);
    }

    #[test]
    fn displaced_count_saturates_at_tail_insertion() {
        assert_eq!(displaced_count(5, 2), 2);
        assert_eq!(displaced_count(5, 4), 0);
        assert_eq!(displaced_count(1, 0), 0);
        // A policy returning position == queue length (insert past the
        // tail) must yield 0, not underflow.
        assert_eq!(displaced_count(3, 3), 0);
        assert_eq!(displaced_count(0, 0), 0);
        assert_eq!(displaced_count(0, 7), 0);
    }

    #[test]
    fn snapshot_reflects_queue_state() {
        // Gentle compression so the queued phase is long enough for the
        // polling observer to catch it even on a contended host.
        let server = Server::start(
            deployment(),
            ServerConfig {
                alpha: 4.0,
                elastic: None,
                compression: 20.0,
            },
        );
        let idle = server.snapshot();
        assert_eq!(idle.queued, 0);
        assert!(!idle.block_in_flight);
        assert_eq!(idle.head, None);

        // Queue several long requests and observe a non-empty snapshot.
        let client = server.client();
        let rxs: Vec<_> = (0..4).map(|_| client.infer("long")).collect();
        // Spin briefly until the scheduler has enqueued at least one.
        let mut snap = server.snapshot();
        for _ in 0..200 {
            if snap.queued > 0 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_micros(200));
            snap = server.snapshot();
        }
        assert!(snap.queued > 0, "queue never became visible");
        assert!(snap.head.is_some());
        for rx in rxs {
            rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap();
        }
        let done = server.snapshot();
        assert_eq!(done.queued, 0);
        assert_eq!(done.decisions, 4);
        server.shutdown();
    }

    #[test]
    fn drop_without_shutdown_does_not_hang() {
        let server = Server::start(deployment(), config());
        let _ = server.client().infer("short");
        drop(server);
    }

    #[test]
    fn telemetry_recording_is_well_formed() {
        let server = Server::start(deployment(), config());
        let client = server.client();
        let rxs: Vec<_> = (0..6)
            .map(|i| client.infer(if i % 2 == 0 { "long" } else { "short" }))
            .collect();
        for rx in rxs {
            rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap();
        }
        let report = server.shutdown();
        let errors = report.recorder.validate();
        assert!(errors.is_empty(), "lifecycle violations: {errors:?}");
        assert!(report.p50_decision_ns <= report.p99_decision_ns);
        assert!(report.p99_decision_ns <= report.p999_decision_ns);
        assert!(report.p999_decision_ns <= report.max_decision_ns);

        let count = |f: fn(&Event) -> bool| report.recorder.events().filter(|e| f(e)).count();
        assert_eq!(count(|e| matches!(e, Event::Arrival { .. })), 6);
        assert_eq!(count(|e| matches!(e, Event::Completion { .. })), 6);
        assert_eq!(
            count(|e| matches!(e, Event::PreemptDecision { .. })),
            6,
            "one decision per accepted request"
        );
        // 3 long (3 blocks) + 3 short (1 block) = 12 block executions.
        assert_eq!(count(|e| matches!(e, Event::BlockStart { .. })), 12);
        // 3 long requests × 2 block boundaries = 6 activation hand-offs.
        assert_eq!(count(|e| matches!(e, Event::Transfer { .. })), 6);

        // The recording exports to a loadable Perfetto document.
        let doc = split_telemetry::trace_events(&report.recorder, "split-runtime");
        let span_cat = |cat: &str| {
            doc.get("traceEvents")
                .unwrap()
                .as_array()
                .unwrap()
                .iter()
                .filter(|e| {
                    e.get("ph").and_then(|p| p.as_str()) == Some("X")
                        && e.get("cat").and_then(|c| c.as_str()) == Some(cat)
                })
                .count()
        };
        assert_eq!(span_cat("block"), 12);
        assert_eq!(span_cat("io"), 6);
    }

    #[test]
    fn quiet_server_raises_no_alerts() {
        // Clock compression turns thread-wakeup wall latency into
        // simulated queue time, so even a lone request can breach a
        // small α on a loaded host; a huge α isolates the plumbing.
        let server = Server::start(
            deployment(),
            ServerConfig {
                alpha: 1e9,
                ..config()
            },
        );
        let rx = server.client().infer("short");
        rx.recv_timeout(std::time::Duration::from_secs(5)).unwrap();
        let report = server.shutdown();
        assert_eq!(report.alerts.fired(), 0);
        assert_eq!(report.alerts.summary(), "0 fired, 0 active");
    }

    #[test]
    fn overload_fires_a_burn_rate_alert() {
        let server = Server::start(deployment(), config());
        let client = server.client();
        // Flood the queue: request k waits ~k × 10 ms of simulated time,
        // so most requests blow e2e > α × exec and the violation rate
        // swamps the 10% objective in both burn windows.
        let rxs: Vec<_> = (0..30).map(|_| client.infer("short")).collect();
        for rx in rxs {
            rx.recv_timeout(std::time::Duration::from_secs(30)).unwrap();
        }
        let report = server.shutdown();
        assert!(
            report.alerts.fired() >= 1,
            "overload must trip the burn-rate alert ({})",
            report.alerts.summary()
        );
        let a = &report.alerts.alerts[0];
        assert!(a.fast_burn_at_fire >= 1.0);
        assert!(a.slow_burn_at_fire >= 1.0);
    }

    #[test]
    fn overload_produces_incident_bundles() {
        let server = Server::start(deployment(), config());
        let client = server.client();
        let rxs: Vec<_> = (0..30).map(|_| client.infer("short")).collect();
        for rx in rxs {
            rx.recv_timeout(std::time::Duration::from_secs(30)).unwrap();
        }
        let report = server.shutdown();
        assert!(report.alerts.fired() >= 1, "precondition: alert fires");
        assert_eq!(
            report.incidents.len(),
            report.alerts.alerts.len(),
            "one bundle per fired alert"
        );
        for bundle in &report.incidents {
            // Tail-sampling invariant: every violating request in the
            // incident window is captured with its full span tree.
            assert_eq!(
                bundle.verdict.captured_violating, bundle.verdict.violating,
                "bundle must capture 100% of violating requests"
            );
            assert!(
                bundle.verdict.violating > 0,
                "overload window has violations"
            );
            assert!(bundle.flight.enabled(), "flight ring was on");
            assert!(!bundle.flight.records.is_empty());
            // Every outlier's root-cause components reconcile with its
            // exact e2e decomposition.
            for o in &bundle.outliers {
                if matches!(o.reason, split_forensics::SampleReason::Dropped) {
                    continue;
                }
                let a = &o.attribution;
                assert!(
                    (a.components_sum_us() - a.e2e_us()).abs() <= 1e-3,
                    "attribution must reconcile for req {}",
                    a.req
                );
                assert!(!o.spans.is_empty(), "outliers carry span trees");
            }
            assert!(bundle.verdict.text.contains("p99 regression"));
        }
    }

    #[test]
    fn shutdown_report_carries_conserving_drift_watch() {
        let server = Server::start(deployment(), config());
        let client = server.client();
        let rxs: Vec<_> = (0..8)
            .map(|i| client.infer(if i % 2 == 0 { "long" } else { "short" }))
            .collect();
        for rx in rxs {
            rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap();
        }
        let report = server.shutdown();
        assert!(report.drift.conservation_holds(), "{:?}", report.drift.fed);
        assert_eq!(report.drift.fed.arrivals, 8);
        assert_eq!(report.drift.fed.completions, 8);
        assert!(!report.drift.windows.is_empty());
        // Per-model rows carry windowed quantiles for both models.
        let models: std::collections::BTreeSet<_> = report
            .drift
            .windows
            .iter()
            .flat_map(|w| w.models.iter().map(|r| r.model.clone()))
            .collect();
        assert!(
            models.contains("short") && models.contains("long"),
            "{models:?}"
        );
    }

    #[test]
    fn flight_disabled_still_shuts_down_clean() {
        split_forensics::with_flight(false, || {
            let server = Server::start(deployment(), config());
            let rx = server.client().infer("short");
            rx.recv_timeout(std::time::Duration::from_secs(5)).unwrap();
            let report = server.shutdown();
            assert_eq!(report.served, 1);
        });
    }
}
