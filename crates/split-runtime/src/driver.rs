//! Load driver: replay a `workload` trace against a live [`Server`].
//!
//! Bridges the deterministic evaluation world and the threaded runtime: a
//! trace generated for the figures can be fired at the real server in
//! compressed time, and the collected replies scored with the same
//! `qos-metrics` code. Integration tests use this to check the runtime
//! and the discrete-event engine agree qualitatively.

use crate::messages::{InferenceReply, RequestStatus};
use crate::server::Server;
use workload::Arrival;

/// Result of replaying a trace.
#[derive(Debug, Clone)]
pub struct DriveReport {
    /// Replies in trace order (index = arrival id).
    pub replies: Vec<InferenceReply>,
    /// How many arrivals the driver had to fire late because the wall
    /// clock slipped past their compressed deadline (telemetry; high
    /// values mean the compression factor is too aggressive for this
    /// machine).
    pub late_fires: usize,
}

impl DriveReport {
    /// Convert completed replies to metric outcomes (trace order).
    pub fn outcomes(&self) -> Vec<qos_metrics::RequestOutcome> {
        self.replies
            .iter()
            .filter(|r| r.status == RequestStatus::Completed)
            .map(|r| qos_metrics::RequestOutcome {
                id: r.id,
                model: r.model.clone(),
                exec_us: r.exec_us,
                e2e_us: r.e2e_us(),
            })
            .collect()
    }
}

/// Replay `arrivals` against `server`, pacing submissions by the server's
/// compressed clock, and block until every reply arrives.
pub fn drive(server: &Server, arrivals: &[Arrival]) -> DriveReport {
    let client = server.client();
    let clock = server.clock();
    let mut pending = Vec::with_capacity(arrivals.len());
    let mut late_fires = 0usize;

    for a in arrivals {
        // Busy-wait on the compressed clock (granularity is coarse enough
        // that a sleep-based pacer overshoots badly at high compression).
        loop {
            let now = clock.now_us();
            if now + 1e-9 >= a.arrival_us {
                if now > a.arrival_us + 10_000.0 {
                    late_fires += 1;
                }
                break;
            }
            std::hint::spin_loop();
        }
        pending.push(client.infer(a.model.clone()));
    }

    let replies = pending
        .into_iter()
        .map(|rx| rx.recv().expect("server replies before shutdown"))
        .collect();
    DriveReport {
        replies,
        late_fires,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::Deployment;
    use crate::server::ServerConfig;

    #[test]
    fn drives_a_small_trace() {
        let mut d = Deployment::new();
        d.deploy_vanilla("m", 5_000.0);
        let server = Server::start(
            d,
            ServerConfig {
                alpha: 4.0,
                elastic: None,
                compression: 5_000.0,
            },
        );
        let arrivals: Vec<Arrival> = (0..10)
            .map(|i| Arrival {
                id: i,
                model: "m".into(),
                arrival_us: i as f64 * 8_000.0,
            })
            .collect();
        let report = drive(&server, &arrivals);
        assert_eq!(report.replies.len(), 10);
        assert!(report
            .replies
            .iter()
            .all(|r| r.status == RequestStatus::Completed));
        let outcomes = report.outcomes();
        assert_eq!(outcomes.len(), 10);
        for o in &outcomes {
            assert!(o.response_ratio() >= 1.0 - 0.25, "{o:?}");
        }
        server.shutdown();
    }
}
