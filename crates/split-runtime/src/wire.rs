//! Wire transport: serving the framed protocol of [`crate::codec`].
//!
//! [`WireServer`] adapts a running [`Server`] to byte-stream connections:
//! each connection is a pair of byte channels (standing in for a TCP
//! socket), a per-connection thread decodes request frames, forwards them
//! to the responder, and streams reply frames back as requests complete —
//! out of order, as a real asynchronous RPC server would.

use crate::codec::{decode, encode, FrameDecoder, WireRequest};
use crate::messages::InferenceReply;
use crate::server::Server;
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};

/// One client connection: write request bytes in, read reply bytes out.
pub struct WireConn {
    /// Byte stream toward the server.
    pub to_server: Sender<Bytes>,
    /// Byte stream from the server.
    pub from_server: Receiver<Bytes>,
}

/// Adapter exposing a [`Server`] over the framed wire protocol.
pub struct WireServer<'a> {
    server: &'a Server,
}

impl<'a> WireServer<'a> {
    /// Wrap a running server.
    pub fn new(server: &'a Server) -> Self {
        Self { server }
    }

    /// Open a connection; spawns the per-connection service thread.
    pub fn connect(&self) -> WireConn {
        let (to_server_tx, to_server_rx) = unbounded::<Bytes>();
        let (from_server_tx, from_server_rx) = unbounded::<Bytes>();
        let client = self.server.client();

        std::thread::Builder::new()
            .name("split-wire-conn".into())
            .spawn(move || {
                let mut dec = FrameDecoder::new();
                // Replies flow back through one funnel so frames never
                // interleave mid-frame.
                let (reply_tx, reply_rx) = unbounded::<InferenceReply>();
                let writer = {
                    let out = from_server_tx.clone();
                    std::thread::spawn(move || {
                        for reply in reply_rx {
                            if out.send(encode(&reply)).is_err() {
                                break;
                            }
                        }
                    })
                };

                for chunk in to_server_rx {
                    dec.feed(&chunk);
                    loop {
                        match dec.next_frame() {
                            Ok(Some(payload)) => {
                                match decode::<WireRequest>(&payload) {
                                    Ok(req) => {
                                        let rx = client.infer(req.model);
                                        let tx = reply_tx.clone();
                                        // Replies complete out of order;
                                        // each waiter forwards when ready.
                                        std::thread::spawn(move || {
                                            if let Ok(reply) = rx.recv() {
                                                let _ = tx.send(reply);
                                            }
                                        });
                                    }
                                    Err(_) => return, // protocol error: drop conn
                                }
                            }
                            Ok(None) => break,
                            Err(_) => return,
                        }
                    }
                }
                drop(reply_tx);
                let _ = writer.join();
            })
            .expect("spawn wire connection");

        WireConn {
            to_server: to_server_tx,
            from_server: from_server_rx,
        }
    }
}

/// Blocking convenience client over a [`WireConn`].
pub struct WireClient {
    conn: WireConn,
    decoder: FrameDecoder,
}

impl WireClient {
    /// Wrap a connection.
    pub fn new(conn: WireConn) -> Self {
        Self {
            conn,
            decoder: FrameDecoder::new(),
        }
    }

    /// Send one request frame (does not wait for the reply).
    pub fn send(&self, model: impl Into<String>) {
        let frame = encode(&WireRequest {
            model: model.into(),
        });
        let _ = self.conn.to_server.send(frame);
    }

    /// Block until the next reply frame arrives.
    pub fn recv_reply(&mut self) -> Option<InferenceReply> {
        loop {
            if let Ok(Some(payload)) = self.decoder.next_frame() {
                return decode(&payload).ok();
            }
            match self.conn.from_server.recv() {
                Ok(chunk) => self.decoder.feed(&chunk),
                Err(_) => return None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::Deployment;
    use crate::messages::RequestStatus;
    use crate::server::ServerConfig;

    fn server() -> Server {
        let mut d = Deployment::new();
        d.deploy_vanilla("short", 5_000.0);
        d.deploy_vanilla("long", 40_000.0);
        Server::start(
            d,
            ServerConfig {
                alpha: 4.0,
                elastic: None,
                compression: 2_000.0,
            },
        )
    }

    #[test]
    fn single_request_over_the_wire() {
        let server = server();
        let wire = WireServer::new(&server);
        let mut client = WireClient::new(wire.connect());
        client.send("short");
        let reply = client.recv_reply().expect("reply");
        assert_eq!(reply.status, RequestStatus::Completed);
        assert_eq!(reply.model, "short");
        server.shutdown();
    }

    #[test]
    fn pipelined_requests_all_answered() {
        let server = server();
        let wire = WireServer::new(&server);
        let mut client = WireClient::new(wire.connect());
        for i in 0..20 {
            client.send(if i % 4 == 0 { "long" } else { "short" });
        }
        let mut models = Vec::new();
        for _ in 0..20 {
            let r = client.recv_reply().expect("reply");
            assert_eq!(r.status, RequestStatus::Completed);
            models.push(r.model);
        }
        assert_eq!(models.iter().filter(|m| *m == "long").count(), 5);
        server.shutdown();
    }

    #[test]
    fn concurrent_connections_are_isolated() {
        let server = server();
        let wire = WireServer::new(&server);
        let mut clients: Vec<WireClient> =
            (0..4).map(|_| WireClient::new(wire.connect())).collect();
        for c in &clients {
            for _ in 0..5 {
                c.send("short");
            }
        }
        for c in clients.iter_mut() {
            for _ in 0..5 {
                assert_eq!(
                    c.recv_reply().expect("reply").status,
                    RequestStatus::Completed
                );
            }
        }
        server.shutdown();
    }

    #[test]
    fn fragmented_request_bytes_are_reassembled() {
        let server = server();
        let wire = WireServer::new(&server);
        let conn = wire.connect();
        let frame = encode(&WireRequest {
            model: "short".into(),
        });
        // Deliver the frame one byte at a time.
        for b in frame.iter() {
            conn.to_server.send(Bytes::copy_from_slice(&[*b])).unwrap();
        }
        let mut client = WireClient::new(conn);
        let reply = client.recv_reply().expect("reply");
        assert_eq!(reply.status, RequestStatus::Completed);
        server.shutdown();
    }
}
