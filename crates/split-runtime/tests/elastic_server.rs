//! The elastic controller inside the threaded server: floods must flip
//! the server to vanilla execution, and recovery must restore splitting.

use split_core::ElasticConfig;
use split_core::SplitPlan;
use split_runtime::{Deployment, RequestStatus, Server, ServerConfig};
use std::time::Duration;

fn deployment() -> Deployment {
    let mut d = Deployment::new();
    d.deploy_plan(&SplitPlan {
        model: "long".into(),
        cuts: vec![50],
        block_times_us: vec![11_000.0, 11_000.0],
        vanilla_us: 20_000.0,
        overhead_ratio: 0.1,
        std_us: 0.0,
        fitness: -1.0,
        transfer_bytes: vec![0],
    });
    d.deploy_vanilla("short", 5_000.0);
    d
}

#[test]
fn same_type_flood_switches_to_vanilla_blocks() {
    // Aggressive elastic thresholds + fast clock so the flood is visible
    // in the windowed arrival rate.
    let elastic = ElasticConfig {
        window_us: 2_000_000.0,
        density_off_per_s: 1_000_000.0, // density rule effectively off
        density_on_per_s: 999_999.0,
        same_type_frac: 0.8,
        min_samples: 4,
    };
    let server = Server::start(
        deployment(),
        ServerConfig {
            alpha: 4.0,
            elastic: Some(elastic),
            compression: 2_000.0,
        },
    );
    let client = server.client();
    let rxs: Vec<_> = (0..12).map(|_| client.infer("long")).collect();
    let replies: Vec<_> = rxs
        .into_iter()
        .map(|rx| rx.recv_timeout(Duration::from_secs(20)).unwrap())
        .collect();
    assert!(replies.iter().all(|r| r.status == RequestStatus::Completed));
    // Early requests (before min_samples) run split (2 blocks); once the
    // same-type flood is detected, later ones run vanilla (1 block).
    assert!(
        replies.iter().take(3).all(|r| r.blocks_run == 2),
        "early requests should be split: {:?}",
        replies.iter().map(|r| r.blocks_run).collect::<Vec<_>>()
    );
    assert!(
        replies.iter().skip(6).any(|r| r.blocks_run == 1),
        "flood must switch to vanilla: {:?}",
        replies.iter().map(|r| r.blocks_run).collect::<Vec<_>>()
    );
    server.shutdown();
}

#[test]
fn elastic_observer_progresses_while_combiner_busy() {
    // Regression test for the ROADMAP item-2 follow-on: elastic state is
    // observed through `CombiningCore::with_state`, so an observer waits
    // behind at most the in-flight combiner pass — never the whole
    // backlog, and never a separate server lock.
    let elastic = ElasticConfig {
        window_us: 2_000_000.0,
        density_off_per_s: 1_000_000.0,
        density_on_per_s: 999_999.0,
        same_type_frac: 0.8,
        min_samples: 4,
    };
    let server = Server::start(
        deployment(),
        ServerConfig {
            alpha: 4.0,
            elastic: Some(elastic),
            compression: 2_000.0,
        },
    );
    // Every combined `Infer` spins 3 ms before deciding: a 40-request
    // flood keeps the decision core busy for ~120 ms of combiner passes.
    const STALL_NS: u64 = 3_000_000;
    const FLOOD: usize = 40;
    server.set_combiner_stall_ns(STALL_NS);
    let client = server.client();
    let flood = std::thread::spawn(move || {
        let rxs: Vec<_> = (0..FLOOD).map(|_| client.infer("short")).collect();
        rxs.into_iter()
            .filter(|rx| rx.recv_timeout(Duration::from_secs(30)).is_ok())
            .count()
    });

    // Observe concurrently with the flood. Each read must come back in
    // bounded time (a pass or two), so well before the flood's ~120 ms
    // of stalled passes drain, many reads have completed.
    let t0 = std::time::Instant::now();
    let mut reads = 0usize;
    let mut saw_window = false;
    while t0.elapsed() < Duration::from_millis(60) {
        let snap = server.elastic().expect("elasticity is enabled");
        saw_window |= snap.window_len > 0;
        reads += 1;
    }
    assert!(
        reads >= 3,
        "observer managed only {reads} reads while the combiner was busy"
    );
    assert!(
        saw_window,
        "observer never saw the controller's windowed arrivals"
    );

    assert_eq!(flood.join().unwrap(), FLOOD, "flood must fully complete");
    server.shutdown();
}

#[test]
fn mixed_traffic_keeps_splitting() {
    let elastic = ElasticConfig {
        window_us: 2_000_000.0,
        density_off_per_s: 1_000_000.0,
        density_on_per_s: 999_999.0,
        same_type_frac: 0.8,
        min_samples: 4,
    };
    let server = Server::start(
        deployment(),
        ServerConfig {
            alpha: 4.0,
            elastic: Some(elastic),
            compression: 2_000.0,
        },
    );
    let client = server.client();
    let mut long_rxs = Vec::new();
    for _ in 0..8 {
        long_rxs.push(client.infer("long"));
        let _ = client.infer("short");
    }
    for rx in long_rxs {
        let r = rx.recv_timeout(Duration::from_secs(20)).unwrap();
        assert_eq!(r.blocks_run, 2, "mixed traffic must stay split");
    }
    server.shutdown();
}
