//! Small-graph oracle: on graphs small enough to enumerate every cut
//! combination, the GA must find the exhaustive optimum (or at least a
//! plan within the evenness bound of it), and everything either search
//! produces must pass the plan linter.

use dnn_graph::{Graph, GraphBuilder, TensorShape};
use gpu_sim::DeviceConfig;
use split_analyze::{lint_plan, PlanLintCfg};
use split_core::{evolve, exhaustive_best, GaConfig, SplitPlan};

/// A small sequential CNN with `convs` conv+relu pairs (≤ 12 ops total).
fn small_cnn(name: &str, convs: usize) -> Graph {
    let mut b = GraphBuilder::new(name, TensorShape::chw(3, 32, 32));
    let x = b.source();
    let mut t = b.conv(&x, 8, 3, 1, 1);
    for i in 0..convs as u64 {
        let c = b.conv(&t, 8 + 4 * (i % 3), 3, if i % 3 == 2 { 2 } else { 1 }, 1);
        t = b.relu(&c);
    }
    b.finish()
}

#[test]
fn ga_matches_exhaustive_on_small_graphs() {
    let dev = DeviceConfig::default();
    for (name, convs, blocks) in [("tiny-a", 4, 2), ("tiny-b", 5, 3), ("tiny-c", 5, 2)] {
        let g = small_cnn(name, convs);
        assert!(g.op_count() <= 12, "oracle graphs must stay enumerable");

        let (_, best_profile) =
            exhaustive_best(&g, &dev, blocks, 1_000_000).expect("small graph is enumerable");
        let oracle_fitness = split_core::fitness(&best_profile);

        let out = evolve(&g, &dev, &GaConfig::new(blocks).with_seed(7));
        let ga_plan = SplitPlan::from_spec(&g, &out.best, &dev);

        // The GA plan must lint clean...
        let report = lint_plan(&g, &ga_plan, &dev, &PlanLintCfg::default());
        assert!(report.is_empty(), "{name}: {}", report.render_text());

        // ...and on an enumerable search space it must actually reach the
        // exhaustive optimum (the space has at most C(11,2) = 55 points;
        // the GA's population alone covers it).
        assert!(
            (ga_plan.fitness - oracle_fitness).abs() <= 1e-9,
            "{name}: GA fitness {} vs exhaustive optimum {}",
            ga_plan.fitness,
            oracle_fitness
        );

        // Evenness: the GA plan's block-time spread stays within the bound
        // of the exhaustive optimum's spread (identical when fitness ties).
        let spread = |times: &[f64]| {
            let max = times.iter().cloned().fold(f64::MIN, f64::max);
            let min = times.iter().cloned().fold(f64::MAX, f64::min);
            max - min
        };
        let ga_spread = spread(&ga_plan.block_times_us);
        let oracle_spread = spread(&best_profile.block_times_us);
        assert!(
            ga_spread <= oracle_spread + 1e-9,
            "{name}: GA spread {ga_spread}µs exceeds oracle spread {oracle_spread}µs"
        );
    }
}

#[test]
fn exhaustive_oracle_plans_lint_clean() {
    let dev = DeviceConfig::default();
    let g = small_cnn("tiny-d", 5);
    for blocks in 2..=4 {
        let (spec, _) =
            exhaustive_best(&g, &dev, blocks, 1_000_000).expect("small graph is enumerable");
        let plan = SplitPlan::from_spec(&g, &spec, &dev);
        let report = lint_plan(&g, &plan, &dev, &PlanLintCfg::default());
        assert!(
            report.is_empty(),
            "blocks={blocks}: {}",
            report.render_text()
        );
    }
}
