//! Negative-fixture exactness: each racy fixture must fire **exactly**
//! the SA code its bug class belongs to, and nothing else.
//!
//! A checker that flags a dropped Release fence as "some diagnostic"
//! is not certifying anything — the value is in the mapping: fence
//! dropped → SA205 (torn record), stamp parity swapped → SA206
//! (inconsistent cut), atomics downgraded to a Relaxed-only pair over
//! plain data → SA210 (data race). These tests pin that mapping, and
//! pin that the *shipped* protocols stay silent under the exact same
//! exploration.

use split_analyze::interleave::{catalog, explore, negative_fixtures, ExploreCfg, ModelSpec};
use std::collections::BTreeSet;

/// Which SA codes an exploration of `spec` fires: the machine's own
/// code for invariant violations, SA210 for any data race.
fn fired_codes(spec: &ModelSpec) -> BTreeSet<&'static str> {
    let out = explore(&spec.machine, &ExploreCfg::default(), &spec.check);
    assert!(
        !out.budget_exceeded,
        "{} must be explorable without a budget",
        spec.name
    );
    let mut codes = BTreeSet::new();
    if !out.violations.is_empty() {
        codes.insert(spec.code);
    }
    if !out.races.is_empty() {
        codes.insert("SA210");
    }
    codes
}

fn fixture(name: &str) -> ModelSpec {
    negative_fixtures()
        .into_iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("no fixture named {name}"))
}

#[test]
fn torn_counter_fires_exactly_sa201() {
    let codes = fired_codes(&fixture("fixture.torn_counter"));
    assert_eq!(codes, BTreeSet::from(["SA201"]), "{codes:?}");
}

#[test]
fn unclaimed_cache_fires_exactly_sa204() {
    let codes = fired_codes(&fixture("fixture.unclaimed_cache"));
    assert_eq!(codes, BTreeSet::from(["SA204"]), "{codes:?}");
}

#[test]
fn dropped_release_fence_fires_exactly_sa205() {
    let codes = fired_codes(&fixture("fixture.seqlock_no_release_fence"));
    assert_eq!(
        codes,
        BTreeSet::from(["SA205"]),
        "a dropped Release fence is a torn record, not a race: {codes:?}"
    );
}

#[test]
fn swapped_stamp_order_fires_exactly_sa206() {
    let codes = fired_codes(&fixture("fixture.seqlock_swapped_stamps"));
    assert_eq!(
        codes,
        BTreeSet::from(["SA206"]),
        "inverted stamp parity publishes a mid-write slot: {codes:?}"
    );
}

#[test]
fn relaxed_only_pair_fires_exactly_sa210() {
    let codes = fired_codes(&fixture("fixture.relaxed_flag_pair"));
    assert_eq!(
        codes,
        BTreeSet::from(["SA210"]),
        "a Relaxed-only flag leaves the plain payload unsynchronized: {codes:?}"
    );
}

#[test]
fn combiner_no_recheck_fires_exactly_sa207() {
    let codes = fired_codes(&fixture("fixture.combiner_no_recheck"));
    assert_eq!(
        codes,
        BTreeSet::from(["SA207"]),
        "a try_lock failure without recheck strands the published slot: {codes:?}"
    );
}

#[test]
fn combiner_unlocked_drain_fires_exactly_sa207() {
    let codes = fired_codes(&fixture("fixture.combiner_unlocked_drain"));
    assert_eq!(
        codes,
        BTreeSet::from(["SA207"]),
        "racing lockless drains consume one slot twice: {codes:?}"
    );
}

#[test]
fn combiner_relaxed_handoff_fires_exactly_sa207() {
    let codes = fired_codes(&fixture("fixture.combiner_relaxed_handoff"));
    assert_eq!(
        codes,
        BTreeSet::from(["SA207"]),
        "a Relaxed lock handoff loses queued requests, not a race: {codes:?}"
    );
}

#[test]
fn slot_relaxed_publish_fires_exactly_sa208() {
    let codes = fired_codes(&fixture("fixture.slot_relaxed_publish"));
    assert_eq!(
        codes,
        BTreeSet::from(["SA208"]),
        "a Relaxed publish lets the combiner answer a stale request: {codes:?}"
    );
}

#[test]
fn slot_relaxed_consume_fires_exactly_sa208() {
    let codes = fired_codes(&fixture("fixture.slot_relaxed_consume"));
    assert_eq!(
        codes,
        BTreeSet::from(["SA208"]),
        "a Relaxed consume lets the client read a stale response: {codes:?}"
    );
}

#[test]
fn plain_slot_payload_fires_exactly_sa210() {
    let codes = fired_codes(&fixture("fixture.slot_plain_payload"));
    assert_eq!(
        codes,
        BTreeSet::from(["SA210"]),
        "a plain request word under Relaxed flags is a data race: {codes:?}"
    );
}

#[test]
fn every_fixture_has_a_clean_catalog_counterpart() {
    // The fixtures prove the checker catches the bug; the catalog
    // proves the shipped protocol does not have it. Both halves are
    // needed, per SA code.
    let fixture_codes: BTreeSet<&str> = negative_fixtures().iter().map(|s| s.code).collect();
    let catalog_codes: BTreeSet<&str> = catalog().iter().map(|s| s.code).collect();
    for code in &fixture_codes {
        assert!(
            catalog_codes.contains(code),
            "fixture code {code} has no clean catalog machine"
        );
    }
}

#[test]
fn shipped_protocols_stay_silent() {
    for spec in catalog() {
        let codes = fired_codes(&spec);
        assert!(
            codes.is_empty(),
            "{} fired {codes:?} — the shipped protocol must be clean",
            spec.name
        );
    }
}
