//! DPOR ⇔ exhaustive equivalence proofs.
//!
//! Partial-order reduction is only a valid optimization if it changes
//! *nothing observable*: same invariant violations, same data races,
//! same set of reachable final states. This suite checks that promise
//! two ways:
//!
//! 1. On every catalog machine and negative fixture small enough for
//!    full DFS, both explorations run to completion and their outcome
//!    sets are compared exactly.
//! 2. A property test generates random jump-free weak-memory programs
//!    (random cells, orderings — including `Plain` and `SeqCst` — and
//!    step kinds) and checks the same equivalence, so the proof does
//!    not depend on the hand-written machines being representative.
//!
//! It also pins the acceptance criterion from the engine rebuild: on
//! the ProfileCache machine, DPOR must explore at most 20% of the
//! transitions the exhaustive baseline needs, with an identical
//! violation set.

use proptest::prelude::*;
use split_analyze::interleave::{
    catalog, explore, negative_fixtures, small_cache_spec, ExploreCfg, ExploreOutcome, ModelSpec,
};
use split_analyze::memmodel::{Machine, MemOrd, Operand, RmwOp, Step};

/// Generous ceiling for the exhaustive baseline; machines that exceed
/// it (the four-caller cache machine) are exactly the ones DPOR exists
/// for and are skipped by the fixed-machine comparison.
const EXHAUSTIVE_CAP: u64 = 2_000_000;

fn run(
    machine: &Machine,
    check: fn(&split_analyze::memmodel::FinalState<'_>) -> Vec<String>,
    dpor: bool,
) -> ExploreOutcome {
    let cfg = ExploreCfg {
        dpor,
        max_transitions: EXHAUSTIVE_CAP,
        wall_ms: 120_000,
        collect_finals: true,
    };
    explore(machine, &cfg, &check)
}

fn assert_equiv(name: &str, ex: &ExploreOutcome, dp: &ExploreOutcome) {
    assert!(!dp.budget_exceeded, "{name}: DPOR blew the budget");
    assert_eq!(
        ex.violations, dp.violations,
        "{name}: violation sets differ"
    );
    assert_eq!(ex.races, dp.races, "{name}: race sets differ");
    assert_eq!(
        ex.finals, dp.finals,
        "{name}: reachable final-state sets differ"
    );
    assert!(
        dp.transitions <= ex.transitions,
        "{name}: DPOR explored more than the baseline ({} > {})",
        dp.transitions,
        ex.transitions
    );
}

#[test]
fn dpor_is_equivalent_on_every_tractable_machine() {
    let mut specs: Vec<ModelSpec> = catalog();
    specs.extend(negative_fixtures());
    specs.push(small_cache_spec());
    let mut compared = 0;
    for spec in &specs {
        let ex = run(&spec.machine, spec.check, false);
        if ex.budget_exceeded {
            // Full DFS is intractable here — that is what DPOR is for.
            continue;
        }
        let dp = run(&spec.machine, spec.check, true);
        assert_equiv(spec.name, &ex, &dp);
        compared += 1;
    }
    assert!(
        compared >= specs.len() - 1,
        "only {compared}/{} machines were exhaustively tractable",
        specs.len()
    );
}

#[test]
fn dpor_explores_at_most_a_fifth_of_the_cache_machine() {
    let spec = small_cache_spec();
    let ex = run(&spec.machine, spec.check, false);
    assert!(
        !ex.budget_exceeded,
        "exhaustive baseline must complete on the small cache machine"
    );
    let dp = run(&spec.machine, spec.check, true);
    assert_equiv(spec.name, &ex, &dp);
    assert!(
        dp.transitions * 5 <= ex.transitions,
        "DPOR must explore <= 20% of the exhaustive baseline: {} vs {}",
        dp.transitions,
        ex.transitions
    );
}

/// Decode one `(kind, cell, ord, val)` tuple into a step. Jump-free on
/// purpose: every generated program terminates and every interleaving
/// is maximal.
fn decode_step(kind: u64, cell: u64, ord: u64, val: u64) -> Step {
    const ORDS: [MemOrd; 6] = [
        MemOrd::Plain,
        MemOrd::Relaxed,
        MemOrd::Acquire,
        MemOrd::Release,
        MemOrd::AcqRel,
        MemOrd::SeqCst,
    ];
    const FENCE_ORDS: [MemOrd; 4] = [
        MemOrd::Acquire,
        MemOrd::Release,
        MemOrd::AcqRel,
        MemOrd::SeqCst,
    ];
    let cell = cell as usize;
    match kind {
        0 => Step::Load {
            cell,
            reg: (val % 2) as usize,
            ord: ORDS[ord as usize],
        },
        1 => Step::Store {
            cell,
            val: Operand::Const(val),
            ord: ORDS[ord as usize],
        },
        2 => Step::Rmw {
            cell,
            op: RmwOp::Add,
            val: Operand::Const(val + 1),
            ord: ORDS[ord as usize],
        },
        3 => Step::Fence {
            ord: FENCE_ORDS[(ord % 4) as usize],
        },
        _ => Step::Log {
            reg: (val % 2) as usize,
        },
    }
}

fn equiv_on_random(threads: Vec<Vec<(u64, u64, u64, u64)>>) -> Result<(), String> {
    let machine = Machine {
        cells: vec![0, 0],
        threads: threads
            .into_iter()
            .map(|p| {
                p.into_iter()
                    .map(|(k, c, o, v)| decode_step(k, c, o, v))
                    .collect()
            })
            .collect(),
    };
    let ex = run(&machine, no_check, false);
    if ex.budget_exceeded {
        return Ok(()); // pathological blowup — nothing to compare
    }
    let dp = run(&machine, no_check, true);
    if ex.races != dp.races {
        return Err(format!(
            "race sets differ on {machine:?}: {:?} vs {:?}",
            ex.races, dp.races
        ));
    }
    if ex.finals != dp.finals {
        return Err(format!(
            "final-state sets differ on {machine:?}: {:?} vs {:?}",
            ex.finals, dp.finals
        ));
    }
    Ok(())
}

fn no_check(_: &split_analyze::memmodel::FinalState<'_>) -> Vec<String> {
    vec![]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    #[test]
    fn random_two_thread_programs_are_equivalent(
        progs in proptest::collection::vec(
            proptest::collection::vec((0u64..5, 0u64..2, 0u64..6, 0u64..3), 1..5),
            2..3,
        )
    ) {
        let r = equiv_on_random(progs);
        prop_assert!(r.is_ok(), "{}", r.err().unwrap_or_default());
    }

    #[test]
    fn random_three_thread_programs_are_equivalent(
        progs in proptest::collection::vec(
            proptest::collection::vec((0u64..5, 0u64..2, 0u64..6, 0u64..3), 1..4),
            3..4,
        )
    ) {
        let r = equiv_on_random(progs);
        prop_assert!(r.is_ok(), "{}", r.err().unwrap_or_default());
    }
}
