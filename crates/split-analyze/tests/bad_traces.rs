//! Golden "bad trace" fixtures: each hand-built simulation result
//! violates exactly one scheduling invariant and must produce exactly the
//! matching diagnostic code — no more, no less. These pin down both that
//! the analyzer fires and that its checks do not bleed into each other.

use gpu_sim::Trace;
use sched::{Completion, ModelRuntime, ModelTable, SimResult};
use split_analyze::{lint_schedule, ScheduleLintCfg};
use workload::Arrival;

fn arrival(id: u64, model: &str, t: f64) -> Arrival {
    Arrival {
        id,
        model: model.into(),
        arrival_us: t,
    }
}

fn completion(id: u64, model: &str, arrival_us: f64, start_us: f64, end_us: f64) -> Completion {
    Completion {
        id,
        model: model.into(),
        task: 0,
        arrival_us,
        start_us,
        end_us,
        exec_us: 100.0,
    }
}

fn vanilla_table() -> ModelTable {
    let mut t = ModelTable::new();
    t.insert(ModelRuntime::vanilla("m", 0, 100.0));
    t
}

/// Two spans overlap on stream 0; everything else is consistent.
#[test]
fn overlapping_streams_fixture_is_exactly_sa101() {
    let arrivals = vec![arrival(0, "m", 0.0), arrival(1, "m", 10.0)];
    let mut trace = Trace::new();
    trace.record("m#0", 0, 0.0, 100.0);
    trace.record("m#1", 0, 50.0, 150.0); // starts while m#0 still runs
    let result = SimResult {
        completions: vec![
            completion(0, "m", 0.0, 0.0, 100.0),
            completion(1, "m", 10.0, 50.0, 150.0),
        ],
        trace,
        recorder: Default::default(),
        flight: Default::default(),
    };
    let table = vanilla_table();
    let report = lint_schedule(&arrivals, &result, &ScheduleLintCfg::structural(&table));
    assert_eq!(report.len(), 1, "{}", report.render_text());
    assert_eq!(
        report.with_code("SA101").len(),
        1,
        "{}",
        report.render_text()
    );
}

/// A split request's second block is cut short mid-block (§3.4 forbids
/// this: preemption may only happen at block boundaries).
#[test]
fn mid_block_preemption_fixture_is_exactly_sa102() {
    let mut table = ModelTable::new();
    table.insert(ModelRuntime::split("s", 0, 100.0, vec![50.0, 50.0]));
    let arrivals = vec![arrival(0, "s", 0.0)];
    let mut trace = Trace::new();
    trace.record("s#0/b0", 0, 0.0, 50.0);
    trace.record("s#0/b1", 0, 60.0, 95.0); // 35µs of a declared 50µs block
    let result = SimResult {
        completions: vec![completion(0, "s", 0.0, 0.0, 95.0)],
        trace,
        recorder: Default::default(),
        flight: Default::default(),
    };
    let report = lint_schedule(&arrivals, &result, &ScheduleLintCfg::block_granular(&table));
    assert_eq!(report.len(), 1, "{}", report.render_text());
    assert_eq!(
        report.with_code("SA102").len(),
        1,
        "{}",
        report.render_text()
    );
}

/// A request arrives, is never dropped, and never completes.
#[test]
fn lost_request_fixture_is_exactly_sa103() {
    let arrivals = vec![arrival(0, "m", 0.0), arrival(1, "m", 10.0)];
    let mut trace = Trace::new();
    trace.record("m#0", 0, 0.0, 100.0);
    let result = SimResult {
        completions: vec![completion(0, "m", 0.0, 0.0, 100.0)],
        trace,
        recorder: Default::default(),
        flight: Default::default(),
    };
    let table = vanilla_table();
    let report = lint_schedule(&arrivals, &result, &ScheduleLintCfg::structural(&table));
    assert_eq!(report.len(), 1, "{}", report.render_text());
    assert_eq!(
        report.with_code("SA103").len(),
        1,
        "{}",
        report.render_text()
    );
}

/// A completion claiming less wall time than its own device work.
#[test]
fn impossible_latency_fixture_is_exactly_sa104() {
    let arrivals = vec![arrival(0, "m", 0.0)];
    let mut trace = Trace::new();
    trace.record("m#0", 0, 0.0, 100.0);
    let result = SimResult {
        // end_us says 80µs e2e, but the span occupies 100µs of device time
        // — and the span also runs past the claimed completion.
        completions: vec![completion(0, "m", 0.0, 0.0, 80.0)],
        trace,
        recorder: Default::default(),
        flight: Default::default(),
    };
    let table = vanilla_table();
    let report = lint_schedule(&arrivals, &result, &ScheduleLintCfg::structural(&table));
    assert!(
        !report.with_code("SA104").is_empty(),
        "{}",
        report.render_text()
    );
    for d in &report.diagnostics {
        assert_eq!(d.code, "SA104", "{}", report.render_text());
    }
}
