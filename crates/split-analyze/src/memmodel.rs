//! The weak-memory machine under the model checker: a step language with
//! per-access C11 memory orderings, and an operational semantics for the
//! release/acquire fragment.
//!
//! ## The modeled fragment
//!
//! The semantics is the standard *view-based* operational presentation of
//! release/acquire + fences (the promising-semantics machine without
//! promises). Every atomic cell carries a **timeline** of messages; the
//! modification order of a cell is its append order under the explored
//! schedule (the *strong* release/acquire fragment, SRA — the explorer
//! enumerates every schedule, so every interesting modification order is
//! covered). Each thread carries three views (per-cell timeline
//! positions):
//!
//! * `cur` — what the thread has observed; a load may read any message at
//!   or after `cur[x]` (per-location coherence: CoRR/CoWR/CoWW hold by
//!   construction),
//! * `acq` — knowledge gained by `Relaxed` reads, promoted into `cur` by
//!   an `Acquire` **fence**,
//! * `vrel` — the view pinned by the last `Release` **fence**, carried by
//!   subsequent `Relaxed` stores.
//!
//! A message records the view its writer published: `Release` stores
//! carry the writer's full `cur`; `Relaxed` stores carry only `vrel`;
//! RMWs additionally carry the view of the message they read, which is
//! exactly C++20's release-sequence rule (sequences continue through
//! RMWs of any ordering and are broken by plain stores). An `Acquire`
//! load joins the message view into `cur`; a `Relaxed` load only into
//! `acq`. This is what makes a **missing fence a reachable bug**: drop
//! the writer's `Release` fence and its relaxed payload stores carry an
//! empty view, so a reader can observe the payload yet still re-read a
//! stale stamp — the seqlock tear SA205 exists to catch.
//!
//! `SeqCst` is modeled as `AcqRel` plus a join through one global SC
//! view (total SC order = execution order); the modeled structures rely
//! only on release/acquire, so the approximation is not load-bearing.
//!
//! ## Races
//!
//! Every event also maintains a classic per-thread **vector clock**,
//! advanced along program order and joined across the same
//! synchronizes-with edges as the views (acquire load of a release
//! store, fence pairings). Cells may be accessed `Plain` (non-atomic):
//! two conflicting accesses — same cell, different threads, at least one
//! write, at least one `Plain` — that are not ordered by happens-before
//! are a data race (SA210). Atomic accesses of any ordering never race.

use std::collections::BTreeSet;

/// Memory ordering of one access, the C11 menu plus non-atomic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemOrd {
    /// Non-atomic access: participates in race detection (SA210).
    Plain,
    /// `Ordering::Relaxed`.
    Relaxed,
    /// `Ordering::Acquire` (loads, fences, CAS success read side).
    Acquire,
    /// `Ordering::Release` (stores, fences, RMW write side).
    Release,
    /// `Ordering::AcqRel`.
    AcqRel,
    /// `Ordering::SeqCst` — modeled as `AcqRel` + the global SC view.
    SeqCst,
}

impl MemOrd {
    /// Does the access have acquire semantics?
    pub fn acquires(self) -> bool {
        matches!(self, MemOrd::Acquire | MemOrd::AcqRel | MemOrd::SeqCst)
    }

    /// Does the access have release semantics?
    pub fn releases(self) -> bool {
        matches!(self, MemOrd::Release | MemOrd::AcqRel | MemOrd::SeqCst)
    }
}

/// A value operand: a constant, a register, or `register + constant`
/// (the torn-RMW negative fixtures need the addition).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operand {
    /// Immediate value.
    Const(u64),
    /// Current value of a thread-local register.
    Reg(usize),
    /// `register + constant` (wrapping).
    RegPlus(usize, u64),
}

/// The read-modify-write operations the telemetry primitives use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RmwOp {
    /// `fetch_add` (wrapping, like the real counter).
    Add,
    /// `fetch_max`.
    Max,
    /// `fetch_min`.
    Min,
}

/// One step of a modeled thread. Jumps are forward-only, so every
/// program terminates and the explorer needs no cycle detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// `reg := cell.load(ord)`. Under the weak model the load *branches*:
    /// the explorer enumerates every coherence-eligible message.
    Load {
        /// Shared cell index.
        cell: usize,
        /// Destination register.
        reg: usize,
        /// Load ordering.
        ord: MemOrd,
    },
    /// `cell.store(val, ord)`.
    Store {
        /// Shared cell index.
        cell: usize,
        /// Stored value.
        val: Operand,
        /// Store ordering.
        ord: MemOrd,
    },
    /// `cell.fetch_op(val, ord)` as one atomic step (reads the
    /// modification-order maximum, writes adjacent to it).
    Rmw {
        /// Shared cell index.
        cell: usize,
        /// Combine operation.
        op: RmwOp,
        /// Right-hand operand.
        val: Operand,
        /// Ordering (acquire half applies to the read, release to the
        /// write).
        ord: MemOrd,
    },
    /// `cell.compare_exchange(expect, set, ord, Relaxed)`: on success
    /// fall through, on failure jump (forward) to `orelse`. Failure is a
    /// `Relaxed` load of the message the CAS observed.
    Cas {
        /// Shared cell index.
        cell: usize,
        /// Expected value.
        expect: u64,
        /// Value stored on success.
        set: u64,
        /// Success ordering.
        ord: MemOrd,
        /// Forward jump target on failure.
        orelse: usize,
    },
    /// Standalone `std::sync::atomic::fence(ord)`.
    Fence {
        /// Fence ordering (`Acquire`, `Release`, `AcqRel`, `SeqCst`).
        ord: MemOrd,
    },
    /// Jump (forward) to `target` when `(regs[reg] == val) == eq`, else
    /// fall through. Thread-local.
    JumpIfReg {
        /// Compared register.
        reg: usize,
        /// Right-hand side.
        val: Operand,
        /// Jump on equality (`true`) or inequality (`false`).
        eq: bool,
        /// Forward jump target.
        target: usize,
    },
    /// Unconditional forward jump.
    Jump {
        /// Forward jump target.
        target: usize,
    },
    /// Append `regs[reg]` to the thread's observation log (the checker
    /// sees per-thread logs in the final state).
    Log {
        /// Logged register.
        reg: usize,
    },
}

impl Step {
    /// What the step touches, for the dependency relation driving DPOR.
    pub fn access(&self) -> Access {
        match *self {
            Step::Load { cell, .. } => Access::Read(cell),
            Step::Store { cell, .. } | Step::Rmw { cell, .. } | Step::Cas { cell, .. } => {
                Access::Write(cell)
            }
            Step::Fence {
                ord: MemOrd::SeqCst,
            } => Access::ScFence,
            Step::Fence { .. } | Step::JumpIfReg { .. } | Step::Jump { .. } | Step::Log { .. } => {
                Access::Local
            }
        }
    }
}

/// Conservative access footprint of a step (CAS counts as a write even
/// though it may fail; `SeqCst` accesses also touch the global SC view).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Reads one cell.
    Read(usize),
    /// Writes (or may write) one cell.
    Write(usize),
    /// A `SeqCst` fence: touches the global SC view.
    ScFence,
    /// Thread-local only.
    Local,
}

/// Are two steps of *different* threads dependent (non-commuting)?
///
/// Same-cell pairs with at least one writer are dependent; everything
/// else commutes. A load commutes with a load, and thread-local steps
/// commute with everything. `SeqCst` steps all touch the global SC view
/// and are conservatively mutually dependent.
pub fn dependent(a: &Step, b: &Step) -> bool {
    let sc = |s: &Step| -> bool {
        matches!(s.access(), Access::ScFence)
            || matches!(
                s,
                Step::Load {
                    ord: MemOrd::SeqCst,
                    ..
                } | Step::Store {
                    ord: MemOrd::SeqCst,
                    ..
                } | Step::Rmw {
                    ord: MemOrd::SeqCst,
                    ..
                } | Step::Cas {
                    ord: MemOrd::SeqCst,
                    ..
                }
            )
    };
    if sc(a) && sc(b) {
        return true;
    }
    let (ca, wa) = match a.access() {
        Access::Read(c) => (c, false),
        Access::Write(c) => (c, true),
        _ => return false,
    };
    let (cb, wb) = match b.access() {
        Access::Read(c) => (c, false),
        Access::Write(c) => (c, true),
        _ => return false,
    };
    ca == cb && (wa || wb)
}

/// A little machine: initial shared-cell values plus per-thread step
/// programs.
#[derive(Debug, Clone)]
pub struct Machine {
    /// Initial shared-cell values (each becomes the initial message of
    /// the cell's timeline, happens-before every thread's start).
    pub cells: Vec<u64>,
    /// One step program per modeled thread.
    pub threads: Vec<Vec<Step>>,
}

/// A per-cell view: for each cell, the timeline index the owner is
/// "at" — a load must read at or after it.
pub type View = Vec<usize>;

/// A vector clock over the machine's threads.
pub type VClock = Vec<u64>;

fn join_view(dst: &mut View, src: &View) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d = (*d).max(*s);
    }
}

fn join_vc(dst: &mut VClock, src: &VClock) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d = (*d).max(*s);
    }
}

/// `a ≤ b` pointwise: does clock `a` happen-before (or equal) `b`?
fn vc_leq(a: &VClock, b: &VClock) -> bool {
    a.iter().zip(b).all(|(x, y)| x <= y)
}

/// One message in a cell's timeline. Its timestamp is its index.
#[derive(Debug, Clone)]
struct Msg {
    val: u64,
    /// View published with the message (what an acquire reader learns).
    view: View,
    /// Vector clock published with the message (happens-before edge for
    /// an acquire reader).
    vc: VClock,
}

/// Per-thread execution state.
#[derive(Debug, Clone)]
struct ThreadState {
    pc: usize,
    regs: Vec<u64>,
    log: Vec<u64>,
    cur: View,
    acq: View,
    vrel: View,
    vc: VClock,
    acq_vc: VClock,
    vrel_vc: VClock,
}

/// One recorded access to a cell, for race detection.
#[derive(Debug, Clone)]
struct CellAccess {
    thread: usize,
    pc: usize,
    write: bool,
    plain: bool,
    vc: VClock,
}

/// A data race found during exploration: two unsynchronized conflicting
/// accesses, at least one non-atomic (SA210).
///
/// The two endpoints are ordered lexicographically, *not* temporally:
/// equivalent interleavings observe the same race with the endpoints in
/// either temporal order, and canonicalizing makes the race set
/// identical between exhaustive and DPOR-reduced exploration.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct RaceReport {
    /// The racing cell.
    pub cell: usize,
    /// Lexicographically smaller `(thread, pc, is_write)` endpoint.
    pub a: (usize, usize, bool),
    /// Lexicographically larger `(thread, pc, is_write)` endpoint.
    pub b: (usize, usize, bool),
}

/// The mutable execution state the explorer drives, with O(1)-ish undo.
#[derive(Debug)]
pub struct ExecState {
    threads: Vec<ThreadState>,
    timelines: Vec<Vec<Msg>>,
    accesses: Vec<Vec<CellAccess>>,
    sc_view: View,
    sc_vc: VClock,
    programs: Vec<Vec<Step>>,
}

/// Everything needed to reverse one [`ExecState::apply`].
#[derive(Debug)]
pub struct Undo {
    thread: usize,
    saved: ThreadState,
    pushed_msg: Option<usize>,
    pushed_access: Option<usize>,
    saved_sc: Option<(View, VClock)>,
}

/// A completed execution's final state, handed to the invariant checker.
#[derive(Debug)]
pub struct FinalState<'a> {
    /// Final (modification-order-maximal) value of every cell.
    pub cells: Vec<u64>,
    /// Per-thread observation logs (`Step::Log`, program order).
    pub logs: Vec<&'a [u64]>,
    /// Per-thread register files.
    pub regs: Vec<&'a [u64]>,
}

impl FinalState<'_> {
    /// A canonical digest of the final state, for set comparison between
    /// DPOR and exhaustive exploration (cells, then logs, then regs,
    /// `u64::MAX`-separated).
    pub fn digest(&self) -> Vec<u64> {
        let mut d = self.cells.clone();
        for log in &self.logs {
            d.push(u64::MAX);
            d.extend_from_slice(log);
        }
        for regs in &self.regs {
            d.push(u64::MAX);
            d.extend_from_slice(regs);
        }
        d
    }
}

impl ExecState {
    /// Fresh state for `machine`: every cell's timeline starts with one
    /// initial message whose clock is ⊥ (initialization happens-before
    /// every thread).
    pub fn new(machine: &Machine) -> ExecState {
        let n_cells = machine.cells.len();
        let n_threads = machine.threads.len();
        let zero_view = vec![0usize; n_cells];
        let zero_vc = vec![0u64; n_threads];
        let timelines = machine
            .cells
            .iter()
            .map(|&v| {
                vec![Msg {
                    val: v,
                    view: zero_view.clone(),
                    vc: zero_vc.clone(),
                }]
            })
            .collect();
        let n_regs = machine
            .threads
            .iter()
            .flatten()
            .map(|s| match *s {
                Step::Load { reg, .. } | Step::Log { reg } | Step::JumpIfReg { reg, .. } => reg + 1,
                Step::Store { val, .. } | Step::Rmw { val, .. } => match val {
                    Operand::Reg(r) | Operand::RegPlus(r, _) => r + 1,
                    Operand::Const(_) => 0,
                },
                _ => 0,
            })
            .max()
            .unwrap_or(0);
        let threads = (0..n_threads)
            .map(|t| {
                let mut vc = zero_vc.clone();
                vc[t] = 1; // own component: strictly after init
                ThreadState {
                    pc: 0,
                    regs: vec![0; n_regs],
                    log: Vec::new(),
                    cur: zero_view.clone(),
                    acq: zero_view.clone(),
                    vrel: zero_view.clone(),
                    acq_vc: vc.clone(),
                    vrel_vc: zero_vc.clone(),
                    vc,
                }
            })
            .collect();
        ExecState {
            threads,
            timelines,
            accesses: vec![Vec::new(); n_cells],
            sc_view: zero_view,
            sc_vc: zero_vc,
            programs: machine.threads.clone(),
        }
    }

    /// Threads that still have steps to run.
    pub fn enabled(&self) -> Vec<usize> {
        (0..self.threads.len())
            .filter(|&t| self.threads[t].pc < self.programs[t].len())
            .collect()
    }

    /// The step thread `t` would execute next (`None` when finished).
    pub fn next_step(&self, t: usize) -> Option<&Step> {
        self.programs[t].get(self.threads[t].pc)
    }

    /// How many branches executing thread `t`'s next step has: loads
    /// (and CASes) enumerate every coherence-eligible message — index
    /// `cur[cell]..=latest` of the cell's timeline; every other step has
    /// exactly one. The choice passed to [`ExecState::apply`] is an
    /// offset into that eligible range.
    pub fn choice_count(&self, t: usize) -> usize {
        match self.next_step(t) {
            Some(&Step::Load { cell, .. }) | Some(&Step::Cas { cell, .. }) => {
                self.timelines[cell].len() - self.threads[t].cur[cell]
            }
            _ => 1,
        }
    }

    fn eval(&self, t: usize, op: Operand) -> u64 {
        match op {
            Operand::Const(v) => v,
            Operand::Reg(r) => self.threads[t].regs[r],
            Operand::RegPlus(r, d) => self.threads[t].regs[r].wrapping_add(d),
        }
    }

    /// Record an access for race detection; report new races into `races`.
    fn record_access(
        &mut self,
        cell: usize,
        t: usize,
        write: bool,
        plain: bool,
        races: &mut BTreeSet<RaceReport>,
    ) {
        let me = &self.threads[t];
        for a in &self.accesses[cell] {
            if a.thread == t || !(a.write || write) || !(a.plain || plain) {
                continue;
            }
            if !vc_leq(&a.vc, &me.vc) {
                let mut x = (a.thread, a.pc, a.write);
                let mut y = (t, self.threads[t].pc, write);
                if y < x {
                    std::mem::swap(&mut x, &mut y);
                }
                races.insert(RaceReport { cell, a: x, b: y });
            }
        }
        let vc = self.threads[t].vc.clone();
        let pc = self.threads[t].pc;
        self.accesses[cell].push(CellAccess {
            thread: t,
            pc,
            write,
            plain,
            vc,
        });
    }

    /// Acquire-read side effects of reading message (`view`, `vc`) at
    /// `idx` of `cell` with ordering `ord`.
    fn read_effects(&mut self, t: usize, cell: usize, idx: usize, ord: MemOrd) {
        let (mview, mvc) = {
            let m = &self.timelines[cell][idx];
            (m.view.clone(), m.vc.clone())
        };
        let th = &mut self.threads[t];
        th.cur[cell] = th.cur[cell].max(idx);
        th.acq[cell] = th.acq[cell].max(idx);
        if ord.acquires() {
            join_view(&mut th.cur, &mview);
            join_view(&mut th.acq, &mview);
            join_vc(&mut th.vc, &mvc);
            join_vc(&mut th.acq_vc, &mvc);
        } else {
            join_view(&mut th.acq, &mview);
            join_vc(&mut th.acq_vc, &mvc);
        }
        if ord == MemOrd::SeqCst {
            let sc_view = self.sc_view.clone();
            let sc_vc = self.sc_vc.clone();
            let th = &mut self.threads[t];
            join_view(&mut th.cur, &sc_view);
            join_vc(&mut th.vc, &sc_vc);
            let cur = th.cur.clone();
            let vc = th.vc.clone();
            join_view(&mut self.sc_view, &cur);
            join_vc(&mut self.sc_vc, &vc);
        }
    }

    /// Append a message to `cell` with write ordering `ord`;
    /// `continue_seq` carries the view/clock of the message an RMW read,
    /// continuing its release sequence.
    fn write_msg(
        &mut self,
        t: usize,
        cell: usize,
        val: u64,
        ord: MemOrd,
        continue_seq: Option<(View, VClock)>,
    ) {
        let ts = self.timelines[cell].len();
        let th = &self.threads[t];
        let mut view = th.vrel.clone();
        let mut vc = th.vrel_vc.clone();
        if ord.releases() {
            join_view(&mut view, &th.cur);
            join_vc(&mut vc, &th.vc);
        }
        if let Some((pview, pvc)) = continue_seq {
            join_view(&mut view, &pview);
            join_vc(&mut vc, &pvc);
        }
        view[cell] = view[cell].max(ts);
        if ord == MemOrd::SeqCst {
            let sc_view = self.sc_view.clone();
            let sc_vc = self.sc_vc.clone();
            join_view(&mut view, &sc_view);
            join_vc(&mut vc, &sc_vc);
            join_view(&mut self.sc_view, &view);
            join_vc(&mut self.sc_vc, &vc);
        }
        self.timelines[cell].push(Msg { val, view, vc });
        let th = &mut self.threads[t];
        th.cur[cell] = ts;
        th.acq[cell] = th.acq[cell].max(ts);
    }

    /// Execute thread `t`'s next step with the given read-from `choice`
    /// (an offset into the eligible range — see
    /// [`ExecState::choice_count`]; pass 0 for single-choice steps).
    /// Newly discovered races accumulate into `races`. Returns the undo
    /// token; apply/undo pairs must nest LIFO.
    pub fn apply(&mut self, t: usize, choice: usize, races: &mut BTreeSet<RaceReport>) -> Undo {
        let step = *self.next_step(t).expect("thread enabled");
        let saved = self.threads[t].clone();
        let mut undo = Undo {
            thread: t,
            saved,
            pushed_msg: None,
            pushed_access: None,
            saved_sc: None,
        };
        let is_sc = matches!(
            step,
            Step::Load {
                ord: MemOrd::SeqCst,
                ..
            } | Step::Store {
                ord: MemOrd::SeqCst,
                ..
            } | Step::Rmw {
                ord: MemOrd::SeqCst,
                ..
            } | Step::Cas {
                ord: MemOrd::SeqCst,
                ..
            } | Step::Fence {
                ord: MemOrd::SeqCst
            }
        );
        if is_sc {
            undo.saved_sc = Some((self.sc_view.clone(), self.sc_vc.clone()));
        }
        // Every event advances the thread's own clock component.
        self.threads[t].vc[t] += 1;
        let pc = self.threads[t].pc;
        let next_pc = match step {
            Step::Load { cell, reg, ord } => {
                let idx = self.threads[t].cur[cell] + choice;
                debug_assert!(idx < self.timelines[cell].len(), "choice out of range");
                self.record_access(cell, t, false, ord == MemOrd::Plain, races);
                let val = self.timelines[cell][idx].val;
                self.read_effects(t, cell, idx, ord);
                undo.pushed_access = Some(cell);
                self.threads[t].regs[reg] = val;
                pc + 1
            }
            Step::Store { cell, val, ord } => {
                let v = self.eval(t, val);
                self.record_access(cell, t, true, ord == MemOrd::Plain, races);
                self.write_msg(t, cell, v, ord, None);
                undo.pushed_access = Some(cell);
                undo.pushed_msg = Some(cell);
                pc + 1
            }
            Step::Rmw { cell, op, val, ord } => {
                let rhs = self.eval(t, val);
                self.record_access(cell, t, true, ord == MemOrd::Plain, races);
                let last = self.timelines[cell].len() - 1;
                let prev = &self.timelines[cell][last];
                let (pval, pview, pvc) = (prev.val, prev.view.clone(), prev.vc.clone());
                self.read_effects(t, cell, last, ord);
                let new = match op {
                    RmwOp::Add => pval.wrapping_add(rhs),
                    RmwOp::Max => pval.max(rhs),
                    RmwOp::Min => pval.min(rhs),
                };
                self.write_msg(t, cell, new, ord, Some((pview, pvc)));
                undo.pushed_access = Some(cell);
                undo.pushed_msg = Some(cell);
                pc + 1
            }
            Step::Cas {
                cell,
                expect,
                set,
                ord,
                orelse,
            } => {
                debug_assert!(orelse > pc, "jumps must be forward-only");
                self.record_access(cell, t, true, ord == MemOrd::Plain, races);
                undo.pushed_access = Some(cell);
                let idx = self.threads[t].cur[cell] + choice;
                debug_assert!(idx < self.timelines[cell].len(), "choice out of range");
                let last = self.timelines[cell].len() - 1;
                let val = self.timelines[cell][idx].val;
                if idx == last && val == expect {
                    // Success: RMW semantics — read the mo-maximum,
                    // write adjacent to it, continue its release
                    // sequence.
                    let prev = &self.timelines[cell][last];
                    let (pview, pvc) = (prev.view.clone(), prev.vc.clone());
                    self.read_effects(t, cell, last, ord);
                    self.write_msg(t, cell, set, ord, Some((pview, pvc)));
                    undo.pushed_msg = Some(cell);
                    pc + 1
                } else if val != expect {
                    // Failure: a Relaxed load of the observed message.
                    self.read_effects(t, cell, idx, MemOrd::Relaxed);
                    orelse
                } else {
                    // Reading an older expect-matching message cannot
                    // succeed under append-only modification order (the
                    // write would not be adjacent); the explorer skips
                    // this infeasible branch by treating it as a failure
                    // read of the same message.
                    self.read_effects(t, cell, idx, MemOrd::Relaxed);
                    orelse
                }
            }
            Step::Fence { ord } => {
                let th = &mut self.threads[t];
                if ord.acquires() {
                    let acq = th.acq.clone();
                    let acq_vc = th.acq_vc.clone();
                    join_view(&mut th.cur, &acq);
                    join_vc(&mut th.vc, &acq_vc);
                }
                if ord == MemOrd::SeqCst {
                    let sc_view = self.sc_view.clone();
                    let sc_vc = self.sc_vc.clone();
                    let th = &mut self.threads[t];
                    join_view(&mut th.cur, &sc_view);
                    join_vc(&mut th.vc, &sc_vc);
                    let cur = th.cur.clone();
                    let vc = th.vc.clone();
                    join_view(&mut self.sc_view, &cur);
                    join_vc(&mut self.sc_vc, &vc);
                }
                let th = &mut self.threads[t];
                if ord.releases() {
                    let cur = th.cur.clone();
                    let vc = th.vc.clone();
                    join_view(&mut th.vrel, &cur);
                    join_vc(&mut th.vrel_vc, &vc);
                }
                pc + 1
            }
            Step::JumpIfReg {
                reg,
                val,
                eq,
                target,
            } => {
                debug_assert!(target > pc, "jumps must be forward-only");
                let rhs = self.eval(t, val);
                if (self.threads[t].regs[reg] == rhs) == eq {
                    target
                } else {
                    pc + 1
                }
            }
            Step::Jump { target } => {
                debug_assert!(target > pc, "jumps must be forward-only");
                target
            }
            Step::Log { reg } => {
                let v = self.threads[t].regs[reg];
                self.threads[t].log.push(v);
                pc + 1
            }
        };
        self.threads[t].pc = next_pc;
        undo
    }

    /// Reverse one [`ExecState::apply`]. Must be called LIFO.
    pub fn undo(&mut self, undo: Undo) {
        if let Some(cell) = undo.pushed_msg {
            self.timelines[cell].pop();
        }
        if let Some(cell) = undo.pushed_access {
            self.accesses[cell].pop();
        }
        if let Some((view, vc)) = undo.saved_sc {
            self.sc_view = view;
            self.sc_vc = vc;
        }
        self.threads[undo.thread] = undo.saved;
    }

    /// The final state of a completed execution (every thread finished).
    pub fn final_state(&self) -> FinalState<'_> {
        FinalState {
            cells: self
                .timelines
                .iter()
                .map(|tl| tl.last().expect("init message").val)
                .collect(),
            logs: self.threads.iter().map(|t| t.log.as_slice()).collect(),
            regs: self.threads.iter().map(|t| t.regs.as_slice()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_to_end(machine: &Machine, order: &[usize]) -> (Vec<u64>, BTreeSet<RaceReport>) {
        // Drive one fixed schedule (round-robin over `order`), always
        // taking the *latest* eligible message (choice = last).
        let mut st = ExecState::new(machine);
        let mut races = BTreeSet::new();
        let mut i = 0;
        while !st.enabled().is_empty() {
            let t = order[i % order.len()];
            i += 1;
            if st.next_step(t).is_none() {
                continue;
            }
            let c = st.choice_count(t) - 1;
            st.apply(t, c, &mut races);
        }
        (st.final_state().cells, races)
    }

    #[test]
    fn relaxed_rmw_is_atomic() {
        let prog = vec![
            Step::Rmw {
                cell: 0,
                op: RmwOp::Add,
                val: Operand::Const(5),
                ord: MemOrd::Relaxed,
            };
            2
        ];
        let machine = Machine {
            cells: vec![0],
            threads: vec![prog.clone(), prog],
        };
        let (cells, races) = run_to_end(&machine, &[0, 1]);
        assert_eq!(cells[0], 20);
        assert!(races.is_empty(), "atomic RMWs never race");
    }

    #[test]
    fn stale_read_is_eligible_for_relaxed_load() {
        // Writer stores 1 then 2 (Relaxed); a fresh reader may read the
        // initial 0, the 1, or the 2 — three eligible messages.
        let machine = Machine {
            cells: vec![0],
            threads: vec![
                vec![
                    Step::Store {
                        cell: 0,
                        val: Operand::Const(1),
                        ord: MemOrd::Relaxed,
                    },
                    Step::Store {
                        cell: 0,
                        val: Operand::Const(2),
                        ord: MemOrd::Relaxed,
                    },
                ],
                vec![Step::Load {
                    cell: 0,
                    reg: 0,
                    ord: MemOrd::Relaxed,
                }],
            ],
        };
        let mut st = ExecState::new(&machine);
        let mut races = BTreeSet::new();
        st.apply(0, 0, &mut races);
        st.apply(0, 0, &mut races);
        assert_eq!(st.choice_count(1), 3);
        // Choice 0 = the stale initial value.
        st.apply(1, 0, &mut races);
        assert!(st.enabled().is_empty());
        let fs = st.final_state();
        assert_eq!(fs.regs[1][0], 0, "relaxed load observed the stale init");
    }

    #[test]
    fn message_passing_with_release_acquire_synchronizes() {
        // T0: data = 42 (Plain); flag.store(1, Release).
        // T1: if flag.load(Acquire) == 1 { r = data (Plain) }.
        // Schedule T0 fully, then T1 reading the flag's latest message:
        // no race, and r == 42.
        let machine = Machine {
            cells: vec![0, 0], // data, flag
            threads: vec![
                vec![
                    Step::Store {
                        cell: 0,
                        val: Operand::Const(42),
                        ord: MemOrd::Plain,
                    },
                    Step::Store {
                        cell: 1,
                        val: Operand::Const(1),
                        ord: MemOrd::Release,
                    },
                ],
                vec![
                    Step::Load {
                        cell: 1,
                        reg: 0,
                        ord: MemOrd::Acquire,
                    },
                    Step::JumpIfReg {
                        reg: 0,
                        val: Operand::Const(1),
                        eq: false,
                        target: 3,
                    },
                    Step::Load {
                        cell: 0,
                        reg: 1,
                        ord: MemOrd::Plain,
                    },
                ],
            ],
        };
        let mut st = ExecState::new(&machine);
        let mut races = BTreeSet::new();
        st.apply(0, 0, &mut races);
        st.apply(0, 0, &mut races);
        let c = st.choice_count(1) - 1; // latest flag message
        st.apply(1, c, &mut races);
        st.apply(1, 0, &mut races);
        // After the acquire read of the release store, the data cell's
        // only eligible message is the 42: cur[data] advanced.
        assert_eq!(st.choice_count(1), 1);
        st.apply(1, 0, &mut races);
        assert!(races.is_empty(), "release/acquire orders the plain pair");
        assert_eq!(st.final_state().regs[1][1], 42);
    }

    #[test]
    fn relaxed_flag_leaves_plain_pair_racy() {
        // Same shape, but the flag is Relaxed on both sides: the plain
        // data accesses are unordered — a race even on a schedule where
        // the reader sees the flag.
        let machine = Machine {
            cells: vec![0, 0],
            threads: vec![
                vec![
                    Step::Store {
                        cell: 0,
                        val: Operand::Const(42),
                        ord: MemOrd::Plain,
                    },
                    Step::Store {
                        cell: 1,
                        val: Operand::Const(1),
                        ord: MemOrd::Relaxed,
                    },
                ],
                vec![
                    Step::Load {
                        cell: 1,
                        reg: 0,
                        ord: MemOrd::Relaxed,
                    },
                    Step::Load {
                        cell: 0,
                        reg: 1,
                        ord: MemOrd::Plain,
                    },
                ],
            ],
        };
        let mut st = ExecState::new(&machine);
        let mut races = BTreeSet::new();
        st.apply(0, 0, &mut races);
        st.apply(0, 0, &mut races);
        let c = st.choice_count(1) - 1;
        st.apply(1, c, &mut races);
        st.apply(1, 0, &mut races);
        assert_eq!(races.len(), 1, "plain pair must race: {races:?}");
        let r = races.first().unwrap();
        assert_eq!(r.cell, 0);
    }

    #[test]
    fn acquire_fence_promotes_relaxed_knowledge() {
        // T0: data = 7 (Plain); fence(Release); flag.store(1, Relaxed).
        // T1: flag.load(Relaxed) == 1; fence(Acquire); read data.
        // The fence pair synchronizes: no race.
        let machine = Machine {
            cells: vec![0, 0],
            threads: vec![
                vec![
                    Step::Store {
                        cell: 0,
                        val: Operand::Const(7),
                        ord: MemOrd::Plain,
                    },
                    Step::Fence {
                        ord: MemOrd::Release,
                    },
                    Step::Store {
                        cell: 1,
                        val: Operand::Const(1),
                        ord: MemOrd::Relaxed,
                    },
                ],
                vec![
                    Step::Load {
                        cell: 1,
                        reg: 0,
                        ord: MemOrd::Relaxed,
                    },
                    Step::Fence {
                        ord: MemOrd::Acquire,
                    },
                    Step::Load {
                        cell: 0,
                        reg: 1,
                        ord: MemOrd::Plain,
                    },
                ],
            ],
        };
        let mut st = ExecState::new(&machine);
        let mut races = BTreeSet::new();
        for _ in 0..3 {
            st.apply(0, 0, &mut races);
        }
        let c = st.choice_count(1) - 1;
        st.apply(1, c, &mut races);
        st.apply(1, 0, &mut races);
        st.apply(1, 0, &mut races);
        assert!(races.is_empty(), "fence pairing synchronizes: {races:?}");
        assert_eq!(st.final_state().regs[1][1], 7);
    }

    #[test]
    fn undo_restores_state_exactly() {
        let machine = Machine {
            cells: vec![3],
            threads: vec![vec![
                Step::Rmw {
                    cell: 0,
                    op: RmwOp::Add,
                    val: Operand::Const(4),
                    ord: MemOrd::AcqRel,
                },
                Step::Load {
                    cell: 0,
                    reg: 0,
                    ord: MemOrd::Acquire,
                },
            ]],
        };
        let mut st = ExecState::new(&machine);
        let mut races = BTreeSet::new();
        let before = format!("{st:?}");
        let u1 = st.apply(0, 0, &mut races);
        let u2 = st.apply(0, 0, &mut races);
        st.undo(u2);
        st.undo(u1);
        assert_eq!(format!("{st:?}"), before);
    }

    #[test]
    fn release_sequence_continues_through_rmw() {
        // T0: data = 9 (Plain); flag.store(1, Release).
        // T1: flag.fetch_add(1, Relaxed)  — continues T0's release seq.
        // T2: flag.load(Acquire) reads the RMW's message → synchronizes
        //     with T0's release store → may read data safely.
        let machine = Machine {
            cells: vec![0, 0],
            threads: vec![
                vec![
                    Step::Store {
                        cell: 0,
                        val: Operand::Const(9),
                        ord: MemOrd::Plain,
                    },
                    Step::Store {
                        cell: 1,
                        val: Operand::Const(1),
                        ord: MemOrd::Release,
                    },
                ],
                vec![Step::Rmw {
                    cell: 1,
                    op: RmwOp::Add,
                    val: Operand::Const(1),
                    ord: MemOrd::Relaxed,
                }],
                vec![
                    Step::Load {
                        cell: 1,
                        reg: 0,
                        ord: MemOrd::Acquire,
                    },
                    Step::Load {
                        cell: 0,
                        reg: 1,
                        ord: MemOrd::Plain,
                    },
                ],
            ],
        };
        let mut st = ExecState::new(&machine);
        let mut races = BTreeSet::new();
        st.apply(0, 0, &mut races);
        st.apply(0, 0, &mut races);
        st.apply(1, 0, &mut races); // RMW reads the release store
        let c = st.choice_count(2) - 1; // the RMW's message (flag == 2)
        st.apply(2, c, &mut races);
        st.apply(2, 0, &mut races);
        assert!(
            races.is_empty(),
            "release sequence through the RMW must synchronize: {races:?}"
        );
        assert_eq!(st.final_state().regs[2][1], 9);
    }
}
