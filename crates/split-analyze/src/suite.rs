//! The full verification suite: plans for every zoo model, schedules for
//! every policy, and the telemetry interleaving checks, in one call.
//!
//! This is what `split-cli analyze` and the figure harnesses run. The
//! suite regenerates each artifact the same way the experiments do (GA
//! plans from the calibrated zoo graphs, simulations over a Table 2
//! scenario) and lints everything it produces.

use crate::cluster_lint::lint_cluster;
use crate::diag::Report;
use crate::forensics_lint::lint_bundles;
use crate::interleave::{check_models, MachineStats, McBudget};
use crate::obs_lint::lint_attribution;
use crate::par_audit::{audit_costtable_equivalence, audit_parallel_determinism};
use crate::plan_lint::{lint_plan, PlanLintCfg};
use crate::sched_lint::{audit_determinism, lint_schedule, ScheduleLintCfg};
use gpu_sim::DeviceConfig;
use model_zoo::{benchmark_models, LengthClass, ModelId};
use sched::{simulate, Policy};
use split_core::{GaConfig, SplitPlan};
use split_runtime::Deployment;
use workload::{BurstConfig, RequestTrace, Scenario};

/// Suite configuration.
#[derive(Debug, Clone)]
pub struct SuiteCfg {
    /// Models to plan and deploy.
    pub models: Vec<ModelId>,
    /// Table 2 scenario index driving the simulated workload.
    pub scenario: usize,
    /// Requests in the workload (Table 2 uses 1000; the suite default is
    /// smaller to keep `analyze` quick).
    pub requests: usize,
    /// GA block-count range for long models (§3.3 searches 2..=4).
    pub ga_blocks: std::ops::RangeInclusive<usize>,
    /// GA seed (the experiments' offline seed).
    pub seed: u64,
    /// Per-machine model-checking budget (transition ceiling +
    /// wall-clock cap; `SA200` when exhausted).
    pub mc_budget: McBudget,
    /// Run only the stages/machines certifying these SA codes (the
    /// `analyze --only SAxxx[,SAyyy]` filter). `None` = everything.
    pub only: Option<Vec<String>>,
    /// Plan-linter thresholds.
    pub plan_cfg: PlanLintCfg,
}

impl Default for SuiteCfg {
    fn default() -> Self {
        Self {
            models: benchmark_models().to_vec(),
            scenario: 3,
            requests: 150,
            ga_blocks: 2..=4,
            seed: 99,
            mc_budget: McBudget::default(),
            only: None,
            plan_cfg: PlanLintCfg::default(),
        }
    }
}

impl SuiteCfg {
    /// The `--all` configuration: every zoo model.
    pub fn all_models() -> Self {
        Self {
            models: ModelId::ALL.to_vec(),
            ..Self::default()
        }
    }
}

/// Everything the suite verified, with one report per section.
#[derive(Debug)]
pub struct SuiteOutcome {
    /// Plan-linter findings (`SA0xx`), across all models.
    pub plan_report: Report,
    /// Schedule-analyzer findings (`SA101`–`SA105`), across all policies.
    pub schedule_report: Report,
    /// Determinism-auditor findings (`SA106`/`SA107`), across all
    /// policies, the thread-pool (1-vs-8-worker) GA audit, and the
    /// cost-table bit-identity audit over every model.
    pub determinism_report: Report,
    /// Model-checker findings (`SA2xx`): weak-memory exploration of the
    /// telemetry, profile-cache, and flight-ring machines.
    pub interleave_report: Report,
    /// Attribution-exactness findings (`SA301`–`SA303`), across all
    /// policies.
    pub attribution_report: Report,
    /// Forensics-bundle findings (`SA401`–`SA404`) from the burst
    /// incident stage.
    pub forensics_report: Report,
    /// Drift-watch findings (`SA501`–`SA504`): sketch accuracy, window
    /// conservation, merge determinism, detector replay.
    pub watch_report: Report,
    /// Cluster-schedule findings (`SA601`–`SA603`): request conservation
    /// across shards, replica-placement discipline, per-device QoS
    /// feasibility — one fleet run per routing policy.
    pub cluster_report: Report,
    /// Plans linted.
    pub plans_checked: usize,
    /// Policy schedules analyzed.
    pub schedules_checked: usize,
    /// Incident bundles produced and linted by the burst stage.
    pub bundles_checked: usize,
    /// Individual drift-watch probes run by the `SA5xx` stage.
    pub watch_checks: usize,
    /// Fleet runs linted by the `SA6xx` cluster stage (one per routing
    /// policy).
    pub clusters_checked: usize,
    /// Executions covered by the model-checking stage, across machines.
    pub interleavings: u64,
    /// Per-machine model-checking statistics (explored/pruned counts,
    /// budget status, wall time) — surfaced in `--json` and CI logs.
    pub machine_stats: Vec<MachineStats>,
}

impl SuiteOutcome {
    /// The `analyze --json` document: every diagnostic plus the
    /// per-machine model-checking statistics (explored/pruned counts),
    /// as `{"diagnostics": [...], "machines": [...]}`.
    pub fn render_json(&self) -> String {
        let mut doc = serde::Map::new();
        doc.insert(
            "diagnostics",
            serde_json::to_value(&self.merged().diagnostics).expect("diagnostics serialize"),
        );
        let machines: Vec<serde::Value> = self
            .machine_stats
            .iter()
            .map(|s| {
                let mut m = serde::Map::new();
                m.insert("name", serde::Value::String(s.name.to_string()));
                m.insert("code", serde::Value::String(s.code.to_string()));
                m.insert(
                    "executions",
                    serde_json::to_value(&s.executions).expect("u64"),
                );
                m.insert(
                    "transitions",
                    serde_json::to_value(&s.transitions).expect("u64"),
                );
                m.insert(
                    "sleep_prunes",
                    serde_json::to_value(&s.sleep_prunes).expect("u64"),
                );
                m.insert("budget_exceeded", serde::Value::Bool(s.budget_exceeded));
                m.insert("wall_ms", serde_json::to_value(&s.wall_ms).expect("u64"));
                serde::Value::Object(m)
            })
            .collect();
        doc.insert("machines", serde::Value::Array(machines));
        serde_json::to_string_pretty(&serde::Value::Object(doc)).expect("doc serializes")
    }

    /// All findings merged into one report (section order preserved).
    pub fn merged(&self) -> Report {
        let mut all = Report::new();
        for r in [
            &self.plan_report,
            &self.schedule_report,
            &self.determinism_report,
            &self.interleave_report,
            &self.attribution_report,
            &self.forensics_report,
            &self.watch_report,
            &self.cluster_report,
        ] {
            for d in &r.diagnostics {
                all.push(d.clone());
            }
        }
        all
    }
}

/// Run the whole suite.
///
/// With [`SuiteCfg::only`] set, only the stages certifying the listed
/// SA codes run (mapped by the code's hundreds digit: `SA0xx` plans,
/// `SA1xx` schedules/determinism, `SA2xx` model checking, `SA3xx`
/// attribution, `SA4xx` forensics, `SA5xx` drift watch, `SA6xx`
/// cluster schedules); skipped stages report clean with zero counts.
pub fn run_suite(cfg: &SuiteCfg) -> SuiteOutcome {
    let dev = DeviceConfig::default();
    // Which stage families did --only select? Keyed by the hundreds
    // digit of the SA code (position 2 of "SAxyz").
    let wants = |digit: u8| -> bool {
        match &cfg.only {
            None => true,
            Some(codes) => codes
                .iter()
                .any(|c| c.as_bytes().get(2).copied() == Some(digit)),
        }
    };
    // Plans (and the deployment built from them) feed every
    // simulation-based stage, not just the plan linter.
    let need_plans = wants(b'0') || wants(b'1') || wants(b'3') || wants(b'4') || wants(b'6');

    // --- Offline stage: plan every model, lint every plan. ---
    let mut plan_report = Report::new();
    let mut plans_checked = 0usize;
    let mut deployment = Deployment::new();
    let mut names: Vec<&'static str> = Vec::new();
    if need_plans {
        for &id in &cfg.models {
            let graph = id.build_calibrated(&dev);
            let info = id.info();
            names.push(info.name);
            // The paper splits the long models; short ones deploy vanilla.
            // Lint both artifacts either way — the GA output must be sane
            // even for models the deployment ends up not splitting.
            let (ga_plan, _) =
                SplitPlan::offline(&graph, &dev, cfg.ga_blocks.clone(), cfg.seed ^ id as u64);
            let vanilla = SplitPlan::vanilla(&graph, &dev);
            if wants(b'0') {
                plan_report.merge(lint_plan(&graph, &ga_plan, &dev, &cfg.plan_cfg));
                plan_report.merge(lint_plan(&graph, &vanilla, &dev, &cfg.plan_cfg));
                plans_checked += 2;
            }
            if info.class == LengthClass::Long {
                deployment.deploy_plan(&ga_plan);
            } else {
                deployment.deploy_plan(&vanilla);
            }
        }
    }
    let table = deployment.table();

    // --- Online stage: one workload, every policy, lint + audit. ---
    let mut schedule_report = Report::new();
    let mut determinism_report = Report::new();
    let mut attribution_report = Report::new();
    let mut schedules_checked = 0usize;
    if wants(b'1') || wants(b'3') {
        let mut scenario = Scenario::table2(cfg.scenario);
        scenario.requests = cfg.requests;
        let trace = RequestTrace::generate(scenario, &names);
        let arrivals = &trace.arrivals;

        let mut policies = Policy::all_default();
        policies.push(Policy::StreamParallel(Default::default()));
        policies.push(Policy::Sjf);
        for policy in &policies {
            let result = simulate(policy, arrivals, table);
            if wants(b'1') {
                let lint_cfg = match policy {
                    Policy::Split(_) => ScheduleLintCfg::block_granular(table),
                    Policy::Rta(_) | Policy::StreamParallel(_) => {
                        ScheduleLintCfg::concurrent(table)
                    }
                    _ => ScheduleLintCfg::structural(table),
                };
                schedule_report.merge(prefix_context(
                    lint_schedule(arrivals, &result, &lint_cfg),
                    policy.name(),
                ));
                determinism_report.merge(audit_determinism(policy, arrivals, table));
            }
            if wants(b'3') {
                attribution_report.merge(prefix_context(lint_attribution(&result), policy.name()));
            }
            schedules_checked += 1;
        }
    }

    // --- Pool stage: the GA must be thread-count invariant (SA106). ---
    // One long model is enough — every model goes through the same
    // profile-through-the-pool path.
    if wants(b'1') {
        if let Some(&id) = cfg
            .models
            .iter()
            .find(|id| id.info().class == LengthClass::Long)
        {
            let graph = id.build_calibrated(&dev);
            let ga_cfg = GaConfig {
                blocks: *cfg.ga_blocks.start().max(&2),
                generations: 5,
                seed: cfg.seed,
                ..GaConfig::new(2)
            };
            determinism_report.merge(audit_parallel_determinism(&graph, &dev, &ga_cfg, 8));
        }

        // --- Cost-table stage: the memoized profiling path must be
        // bit-identical to the direct arithmetic on every model (SA107). ---
        for &id in &cfg.models {
            let graph = id.build_calibrated(&dev);
            determinism_report.merge(audit_costtable_equivalence(&graph, &dev));
        }
    }

    // --- Forensics stage: an overload burst must fire the burn-rate
    // alert, and every bundle it produces must pass the SA4xx checks
    // (sampling invariant, exact classification, causal flight ring,
    // consistent verdict). ---
    let mut forensics_report = Report::new();
    let mut bundles_checked = 0usize;
    if wants(b'4') {
        let burst = BurstConfig {
            calm_interval_us: 50_000.0,
            burst_interval_us: 1_500.0,
            calm_dwell_us: 300_000.0,
            burst_dwell_us: 400_000.0,
        };
        let mut burst_scenario = Scenario::table2(cfg.scenario);
        burst_scenario.requests = cfg.requests;
        let burst_trace = RequestTrace::generate_burst(burst_scenario, &names, burst);
        let burst_result = simulate(
            &Policy::Split(Default::default()),
            &burst_trace.arrivals,
            table,
        );
        let inv = burst_result.investigate(&split_forensics::ForensicsCfg::default());
        if inv.bundles.is_empty() {
            forensics_report.push(
                crate::diag::Diagnostic::error(
                    "SA402",
                    "forensics stage",
                    "the overload burst fired no burn-rate alert, so no incident bundle \
                     could be verified",
                )
                .with_help("the burst workload or SLO config no longer overloads the device"),
            );
        }
        bundles_checked = inv.bundles.len();
        forensics_report.merge(lint_bundles(&inv.bundles));
    }

    // --- Drift-watch stage: re-prove the SA5xx invariants (sketch
    // γ-bound vs exact sorted quantiles, window sample conservation on
    // a replayed schedule, merge order-independence, detector replay
    // determinism). ---
    let mut watch_report = Report::new();
    let mut watch_checks = 0usize;
    if wants(b'5') {
        let (r, n) = crate::watch_lint::lint_watch(cfg.scenario, cfg.requests);
        watch_report.merge(r);
        watch_checks = n;
    }

    // --- Cluster stage: a small heterogeneous fleet run per routing
    // policy, verified end to end (SA601 conservation, SA602 placement
    // discipline, SA603 per-lane feasibility). The offered interval is
    // scaled to the fleet's aggregate capacity so the run stays
    // feasible by construction — SA603 firing means the router or the
    // capacity model regressed, not that the stage overloads itself. ---
    let mut cluster_report = Report::new();
    let mut clusters_checked = 0usize;
    if wants(b'6') {
        let spec = gpu_sim::FleetSpec::heterogeneous(4);
        let fleet = split_cluster::Fleet::new(&spec, table);
        let placement = split_cluster::Placement::full(&fleet, table);
        let mut scenario = Scenario::table2(cfg.scenario);
        scenario.requests = cfg.requests;
        // Offer ~60% of fleet capacity (the single-device Table 2
        // scenario would leave a 4-device heterogeneous fleet idle).
        let interval = split_cluster::offered_interval_us(table, &fleet, 0.6);
        let fleet_scenario = Scenario::fleet(interval, scenario.requests);
        let trace = RequestTrace::generate(fleet_scenario, &names);
        for policy in split_cluster::RoutePolicy::all() {
            let route_cfg = split_cluster::RouteCfg {
                policy,
                seed: cfg.seed,
            };
            let result = split_cluster::simulate_fleet(
                &Policy::Split(Default::default()),
                &trace.arrivals,
                &fleet,
                &placement,
                &route_cfg,
            );
            cluster_report.merge(prefix_context(
                lint_cluster(&trace.arrivals, &fleet, &placement, &result),
                policy.name(),
            ));
            clusters_checked += 1;
        }
    }

    // --- Model-checking stage: weak-memory exploration of every
    // lock-free hot-path machine (telemetry, profile cache, flight
    // ring), DPOR-reduced, under the per-machine budget. ---
    let mut interleave_report = Report::new();
    let mut machine_stats = Vec::new();
    if wants(b'2') {
        let (report, stats) = check_models(cfg.mc_budget, cfg.only.as_deref());
        interleave_report.merge(report);
        machine_stats = stats;
    }
    let interleavings = machine_stats.iter().map(|s| s.executions).sum();

    SuiteOutcome {
        plan_report,
        schedule_report,
        determinism_report,
        interleave_report,
        attribution_report,
        forensics_report,
        watch_report,
        cluster_report,
        plans_checked,
        schedules_checked,
        bundles_checked,
        watch_checks,
        clusters_checked,
        interleavings,
        machine_stats,
    }
}

/// Prepend a policy name to every diagnostic context so merged reports
/// stay attributable.
fn prefix_context(report: Report, prefix: &str) -> Report {
    report
        .diagnostics
        .into_iter()
        .map(|mut d| {
            d.context = format!("{prefix}: {}", d.context);
            d
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_suite_is_clean() {
        let cfg = SuiteCfg {
            // Keep the unit test quick: two models (one long, one short)
            // and a short trace.
            models: vec![ModelId::ResNet50, ModelId::GoogLeNet],
            requests: 60,
            ..SuiteCfg::default()
        };
        let out = run_suite(&cfg);
        let merged = out.merged();
        assert_eq!(merged.error_count(), 0, "{}", merged.render_text());
        assert_eq!(merged.warning_count(), 0, "{}", merged.render_text());
        assert_eq!(out.plans_checked, 4);
        assert_eq!(out.schedules_checked, 6);
        assert!(
            out.bundles_checked >= 1,
            "burst stage must produce a bundle"
        );
        assert!(out.watch_checks > 60, "drift-watch stage must probe");
        assert_eq!(out.clusters_checked, 3, "one fleet run per routing policy");
        assert_eq!(out.machine_stats.len(), crate::interleave::catalog().len());
        assert!(out.interleavings > 0);
        assert!(
            out.machine_stats.iter().all(|s| !s.budget_exceeded),
            "{:?}",
            out.machine_stats
        );
    }

    #[test]
    fn only_filter_skips_unrelated_stages() {
        let cfg = SuiteCfg {
            models: vec![ModelId::ResNet50],
            only: Some(vec!["SA205".to_string()]),
            ..SuiteCfg::default()
        };
        let out = run_suite(&cfg);
        assert_eq!(out.plans_checked, 0);
        assert_eq!(out.schedules_checked, 0);
        assert_eq!(out.bundles_checked, 0);
        assert_eq!(out.watch_checks, 0);
        assert_eq!(out.clusters_checked, 0);
        assert_eq!(out.machine_stats.len(), 1);
        assert_eq!(out.machine_stats[0].code, "SA205");
        assert!(out.merged().is_empty(), "{}", out.merged().render_text());
    }
}
