//! Parallel-determinism audit (`SA106` over the thread pool).
//!
//! The offline GA profiles its population through the rayon pool, and its
//! determinism contract says the worker count is **not allowed to
//! matter**: the pool collects chunk results in index order, the RNG
//! never leaves the caller thread, and the profile cache returns the same
//! value to every racer. This auditor *checks* that contract the same way
//! [`crate::sched_lint::audit_determinism`] checks the schedulers — run
//! the search once at `SPLIT_THREADS=1` (the old sequential behavior) and
//! once at 8 workers, then structurally diff the two [`GaOutcome`]s.
//! Floating-point history rows are compared **bitwise** (`to_bits`), not
//! by `==`, so a reassociated reduction cannot hide behind an epsilon.

use crate::diag::{Diagnostic, Report};
use dnn_graph::{Graph, SplitSpec};
use gpu_sim::{CostTable, DeviceConfig};
use profiler::{profile_split_on, BlockProfile};
use split_core::{evolve, GaConfig, GaOutcome};

/// Run the GA search at 1 worker and at `workers`, and diff the outcomes
/// structurally. Any divergence is an `SA106` error: the pool leaked
/// scheduling order into the result.
pub fn audit_parallel_determinism(
    graph: &Graph,
    dev: &DeviceConfig,
    cfg: &GaConfig,
    workers: usize,
) -> Report {
    let seq = rayon::with_threads(1, || evolve(graph, dev, cfg));
    let par = rayon::with_threads(workers.max(2), || evolve(graph, dev, cfg));
    diff_outcomes(
        &format!("GA on {} (1 vs {} workers)", graph.name, workers.max(2)),
        &seq,
        &par,
    )
}

/// Structural diff of two GA outcomes; every mismatch is one `SA106`.
/// Split out from [`audit_parallel_determinism`] so tests can feed it
/// fabricated divergent outcomes.
pub fn diff_outcomes(ctx: &str, a: &GaOutcome, b: &GaOutcome) -> Report {
    let mut report = Report::new();
    if a.best.cuts() != b.best.cuts() {
        report.push(
            Diagnostic::error(
                "SA106",
                format!("{ctx} best split"),
                format!(
                    "worker count changed the winning cut vector: {:?} vs {:?}",
                    a.best.cuts(),
                    b.best.cuts()
                ),
            )
            .with_help("the pool must collect results in index order and keep RNG caller-side"),
        );
    }
    if a.best_profile != b.best_profile {
        report.push(Diagnostic::error(
            "SA106",
            format!("{ctx} best profile"),
            "worker count changed the winning candidate's profile",
        ));
    }
    if a.generations_run != b.generations_run {
        report.push(Diagnostic::error(
            "SA106",
            format!("{ctx} generations"),
            format!(
                "worker count changed early-stop behavior: {} vs {} generations",
                a.generations_run, b.generations_run
            ),
        ));
    }
    if a.history.len() != b.history.len() {
        report.push(Diagnostic::error(
            "SA106",
            format!("{ctx} history"),
            format!(
                "history length diverged: {} vs {} rows",
                a.history.len(),
                b.history.len()
            ),
        ));
        return report;
    }
    for (i, (x, y)) in a.history.iter().zip(&b.history).enumerate() {
        let bitwise_equal = x.generation == y.generation
            && x.best_fitness.to_bits() == y.best_fitness.to_bits()
            && x.best_std_us.to_bits() == y.best_std_us.to_bits()
            && x.best_overhead.to_bits() == y.best_overhead.to_bits()
            && x.candidates_profiled == y.candidates_profiled;
        if !bitwise_equal {
            report.push(
                Diagnostic::error(
                    "SA106",
                    format!("{ctx} generation {i}"),
                    format!("per-generation stats diverge bitwise at row {i}: {x:?} vs {y:?}"),
                )
                .with_help("candidates_profiled must be snapshotted after the profiling barrier"),
            );
            break;
        }
    }
    report
}

/// Cost-table equivalence audit (`SA107`, the `SA106` family's companion
/// for the memoized profiling path).
///
/// The `CostTable` optimization claims table-backed candidate profiles
/// are **bit-identical** to ones derived from first principles — same
/// float operations in the same order, just amortized. This auditor
/// checks the claim over a deterministic spread of split candidates:
/// every strided single cut, strided two-cut pairs, and evenly-spaced
/// k-way splits, each profiled twice — once from a reference path that
/// recomputes operator times, the prefix fold, and boundary transfers
/// from the graph directly, and once through the shared [`CostTable`] —
/// then compared with `to_bits` on every `f64` field. Any mismatch is an
/// `SA107` error: the memoization changed numerics, which would silently
/// shift GA outcomes and committed results.
pub fn audit_costtable_equivalence(graph: &Graph, dev: &DeviceConfig) -> Report {
    let mut report = Report::new();
    let table = CostTable::build(graph, dev);
    for spec in equivalence_specs(graph) {
        let direct = reference_profile(graph, &spec, dev);
        let tabled = profile_split_on(&table, &spec);
        if let Some(field) = profile_bit_mismatch(&direct, &tabled) {
            report.push(
                Diagnostic::error(
                    "SA107",
                    format!("cost table on {} cuts {:?}", graph.name, spec.cuts()),
                    format!(
                        "table-backed profile diverges bitwise from the direct path in `{field}`"
                    ),
                )
                .with_help(
                    "CostTable must reproduce the reference float operations in the same order",
                ),
            );
        }
    }
    report
}

/// Deterministic candidate spread for the equivalence audit: strided
/// single cuts, strided two-cut pairs, and evenly-spaced k-way splits.
fn equivalence_specs(graph: &Graph) -> Vec<SplitSpec> {
    let m = graph.op_count();
    let mut specs = Vec::new();
    if m < 2 {
        return specs;
    }
    let stride = (m / 16).max(1);
    for c in (1..m).step_by(stride) {
        specs.push(SplitSpec::new(graph, vec![c]).expect("strided cut in range"));
    }
    for c1 in (1..m).step_by(stride * 2) {
        for c2 in ((c1 + stride)..m).step_by(stride * 2) {
            specs.push(SplitSpec::new(graph, vec![c1, c2]).expect("strided pair in range"));
        }
    }
    for k in 3..=6usize.min(m - 1) {
        let cuts: Vec<usize> = (1..k).map(|i| (i * m / k).max(i)).collect();
        if let Ok(spec) = SplitSpec::new(graph, cuts) {
            specs.push(spec);
        }
    }
    specs
}

/// The pre-table profiling arithmetic, recomputed from the graph: operator
/// times, the left-fold prefix, per-block `overhead + lead + body + trail`,
/// and the derived statistics in `BlockProfile` field order. This is the
/// reference the table must match bitwise.
fn reference_profile(graph: &Graph, spec: &SplitSpec, dev: &DeviceConfig) -> BlockProfile {
    let ops = gpu_sim::op_times_us(graph, dev);
    let mut prefix = Vec::with_capacity(ops.len() + 1);
    prefix.push(0.0);
    for t in &ops {
        prefix.push(prefix.last().unwrap() + t);
    }
    let vanilla_us = ops.iter().sum::<f64>() + dev.block_overhead_us;
    let block_times_us: Vec<f64> = spec
        .blocks(graph)
        .iter()
        .map(|b| {
            let body = prefix[b.end] - prefix[b.start];
            let lead = gpu_sim::transfer::half_boundary_us(b.input_transfer_bytes(graph), dev);
            let trail = gpu_sim::transfer::half_boundary_us(b.output_transfer_bytes(graph), dev);
            dev.block_overhead_us + lead + body + trail
        })
        .collect();
    let total: f64 = block_times_us.iter().sum();
    BlockProfile {
        cuts: spec.cuts().to_vec(),
        overhead_ratio: (total - vanilla_us) / vanilla_us,
        std_us: profiler::population_std(&block_times_us),
        mean_us: profiler::mean(&block_times_us),
        range_pct: profiler::range_pct(&block_times_us),
        block_times_us,
        vanilla_us,
    }
}

/// First `f64` field (or structural component) where two profiles differ
/// bitwise, if any.
fn profile_bit_mismatch(a: &BlockProfile, b: &BlockProfile) -> Option<&'static str> {
    if a.cuts != b.cuts {
        return Some("cuts");
    }
    if a.block_times_us.len() != b.block_times_us.len() {
        return Some("block_times_us.len");
    }
    for (x, y) in a.block_times_us.iter().zip(&b.block_times_us) {
        if x.to_bits() != y.to_bits() {
            return Some("block_times_us");
        }
    }
    for (field, x, y) in [
        ("vanilla_us", a.vanilla_us, b.vanilla_us),
        ("overhead_ratio", a.overhead_ratio, b.overhead_ratio),
        ("std_us", a.std_us, b.std_us),
        ("mean_us", a.mean_us, b.mean_us),
        ("range_pct", a.range_pct, b.range_pct),
    ] {
        if x.to_bits() != y.to_bits() {
            return Some(field);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_graph::{GraphBuilder, TensorShape};
    use split_core::GenStats;

    fn chain(n: usize) -> Graph {
        let mut b = GraphBuilder::new("pa-chain", TensorShape::chw(4, 16, 16));
        let x = b.source();
        let mut t = b.conv(&x, 8, 3, 1, 1);
        for _ in 0..n {
            t = b.relu(&t);
        }
        b.finish()
    }

    #[test]
    fn ga_is_thread_count_invariant() {
        let g = chain(12);
        let dev = DeviceConfig::default();
        let cfg = GaConfig {
            generations: 6,
            ..GaConfig::new(3)
        };
        let report = audit_parallel_determinism(&g, &dev, &cfg, 8);
        assert!(report.is_empty(), "{}", report.render_text());
    }

    #[test]
    fn costtable_equivalence_is_clean_on_zoo_models() {
        let dev = DeviceConfig::default();
        for id in [model_zoo::ModelId::ResNet50, model_zoo::ModelId::Gpt2] {
            let g = id.build_calibrated(&dev);
            let report = audit_costtable_equivalence(&g, &dev);
            assert!(report.is_empty(), "{}: {}", g.name, report.render_text());
        }
        // And on a hand-built graph with a skip connection (live tensors
        // crossing a boundary exercise the transfer half of the table).
        let mut b = GraphBuilder::new("pa-skip", TensorShape::chw(8, 32, 32));
        let x = b.source();
        let c1 = b.conv(&x, 16, 3, 1, 1);
        let r1 = b.relu(&c1);
        let c2 = b.conv(&r1, 16, 3, 1, 1);
        let s = b.add(&c2, &c1);
        let c3 = b.conv(&s, 32, 3, 2, 1);
        let _ = b.relu(&c3);
        let g = b.finish();
        let report = audit_costtable_equivalence(&g, &dev);
        assert!(report.is_empty(), "{}", report.render_text());
    }

    #[test]
    fn profile_bit_mismatch_catches_one_ulp() {
        let g = chain(10);
        let dev = DeviceConfig::default();
        let spec = SplitSpec::new(&g, vec![3]).unwrap();
        let a = reference_profile(&g, &spec, &dev);
        assert_eq!(profile_bit_mismatch(&a, &a), None);
        let mut b = a.clone();
        b.std_us = f64::from_bits(a.std_us.to_bits() ^ 1);
        assert_eq!(profile_bit_mismatch(&a, &b), Some("std_us"));
        let mut c = a.clone();
        c.block_times_us[1] = f64::from_bits(a.block_times_us[1].to_bits() ^ 1);
        assert_eq!(profile_bit_mismatch(&a, &c), Some("block_times_us"));
    }

    #[test]
    fn equivalence_specs_are_valid_and_cover_arities() {
        let g = chain(20);
        let specs = equivalence_specs(&g);
        assert!(!specs.is_empty());
        let mut max_blocks = 0;
        for s in &specs {
            // Re-validating proves every generated spec is in range/sorted.
            SplitSpec::new(&g, s.cuts().to_vec()).unwrap();
            max_blocks = max_blocks.max(s.block_count());
        }
        assert!(max_blocks >= 4, "k-way specs missing (max {max_blocks})");
    }

    #[test]
    fn fabricated_divergence_is_sa106() {
        let g = chain(10);
        let dev = DeviceConfig::default();
        let cfg = GaConfig {
            generations: 3,
            ..GaConfig::new(2)
        };
        let a = evolve(&g, &dev, &cfg);
        // Perturb one history row by one ulp: an epsilon comparison would
        // miss it, the bitwise diff must not.
        let mut b = a.clone();
        b.history[1] = GenStats {
            best_fitness: f64::from_bits(a.history[1].best_fitness.to_bits() ^ 1),
            ..a.history[1].clone()
        };
        let report = diff_outcomes("fabricated", &a, &b);
        assert!(!report.with_code("SA106").is_empty());
        // A divergent winner is flagged too.
        let mut c = a.clone();
        c.generations_run += 1;
        assert!(!diff_outcomes("fabricated", &a, &c)
            .with_code("SA106")
            .is_empty());
    }
}
