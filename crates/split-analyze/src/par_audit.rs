//! Parallel-determinism audit (`SA106` over the thread pool).
//!
//! The offline GA profiles its population through the rayon pool, and its
//! determinism contract says the worker count is **not allowed to
//! matter**: the pool collects chunk results in index order, the RNG
//! never leaves the caller thread, and the profile cache returns the same
//! value to every racer. This auditor *checks* that contract the same way
//! [`crate::sched_lint::audit_determinism`] checks the schedulers — run
//! the search once at `SPLIT_THREADS=1` (the old sequential behavior) and
//! once at 8 workers, then structurally diff the two [`GaOutcome`]s.
//! Floating-point history rows are compared **bitwise** (`to_bits`), not
//! by `==`, so a reassociated reduction cannot hide behind an epsilon.

use crate::diag::{Diagnostic, Report};
use dnn_graph::Graph;
use gpu_sim::DeviceConfig;
use split_core::{evolve, GaConfig, GaOutcome};

/// Run the GA search at 1 worker and at `workers`, and diff the outcomes
/// structurally. Any divergence is an `SA106` error: the pool leaked
/// scheduling order into the result.
pub fn audit_parallel_determinism(
    graph: &Graph,
    dev: &DeviceConfig,
    cfg: &GaConfig,
    workers: usize,
) -> Report {
    let seq = rayon::with_threads(1, || evolve(graph, dev, cfg));
    let par = rayon::with_threads(workers.max(2), || evolve(graph, dev, cfg));
    diff_outcomes(
        &format!("GA on {} (1 vs {} workers)", graph.name, workers.max(2)),
        &seq,
        &par,
    )
}

/// Structural diff of two GA outcomes; every mismatch is one `SA106`.
/// Split out from [`audit_parallel_determinism`] so tests can feed it
/// fabricated divergent outcomes.
pub fn diff_outcomes(ctx: &str, a: &GaOutcome, b: &GaOutcome) -> Report {
    let mut report = Report::new();
    if a.best.cuts() != b.best.cuts() {
        report.push(
            Diagnostic::error(
                "SA106",
                format!("{ctx} best split"),
                format!(
                    "worker count changed the winning cut vector: {:?} vs {:?}",
                    a.best.cuts(),
                    b.best.cuts()
                ),
            )
            .with_help("the pool must collect results in index order and keep RNG caller-side"),
        );
    }
    if a.best_profile != b.best_profile {
        report.push(Diagnostic::error(
            "SA106",
            format!("{ctx} best profile"),
            "worker count changed the winning candidate's profile",
        ));
    }
    if a.generations_run != b.generations_run {
        report.push(Diagnostic::error(
            "SA106",
            format!("{ctx} generations"),
            format!(
                "worker count changed early-stop behavior: {} vs {} generations",
                a.generations_run, b.generations_run
            ),
        ));
    }
    if a.history.len() != b.history.len() {
        report.push(Diagnostic::error(
            "SA106",
            format!("{ctx} history"),
            format!(
                "history length diverged: {} vs {} rows",
                a.history.len(),
                b.history.len()
            ),
        ));
        return report;
    }
    for (i, (x, y)) in a.history.iter().zip(&b.history).enumerate() {
        let bitwise_equal = x.generation == y.generation
            && x.best_fitness.to_bits() == y.best_fitness.to_bits()
            && x.best_std_us.to_bits() == y.best_std_us.to_bits()
            && x.best_overhead.to_bits() == y.best_overhead.to_bits()
            && x.candidates_profiled == y.candidates_profiled;
        if !bitwise_equal {
            report.push(
                Diagnostic::error(
                    "SA106",
                    format!("{ctx} generation {i}"),
                    format!("per-generation stats diverge bitwise at row {i}: {x:?} vs {y:?}"),
                )
                .with_help("candidates_profiled must be snapshotted after the profiling barrier"),
            );
            break;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_graph::{GraphBuilder, TensorShape};
    use split_core::GenStats;

    fn chain(n: usize) -> Graph {
        let mut b = GraphBuilder::new("pa-chain", TensorShape::chw(4, 16, 16));
        let x = b.source();
        let mut t = b.conv(&x, 8, 3, 1, 1);
        for _ in 0..n {
            t = b.relu(&t);
        }
        b.finish()
    }

    #[test]
    fn ga_is_thread_count_invariant() {
        let g = chain(12);
        let dev = DeviceConfig::default();
        let cfg = GaConfig {
            generations: 6,
            ..GaConfig::new(3)
        };
        let report = audit_parallel_determinism(&g, &dev, &cfg, 8);
        assert!(report.is_empty(), "{}", report.render_text());
    }

    #[test]
    fn fabricated_divergence_is_sa106() {
        let g = chain(10);
        let dev = DeviceConfig::default();
        let cfg = GaConfig {
            generations: 3,
            ..GaConfig::new(2)
        };
        let a = evolve(&g, &dev, &cfg);
        // Perturb one history row by one ulp: an epsilon comparison would
        // miss it, the bitwise diff must not.
        let mut b = a.clone();
        b.history[1] = GenStats {
            best_fitness: f64::from_bits(a.history[1].best_fitness.to_bits() ^ 1),
            ..a.history[1].clone()
        };
        let report = diff_outcomes("fabricated", &a, &b);
        assert!(!report.with_code("SA106").is_empty());
        // A divergent winner is flagged too.
        let mut c = a.clone();
        c.generations_run += 1;
        assert!(!diff_outcomes("fabricated", &a, &c)
            .with_code("SA106")
            .is_empty());
    }
}
