//! Cluster-schedule lints (`SA6xx`): verify a fleet run end to end.
//!
//! A [`split_cluster::ClusterResult`] makes three claims the figures and
//! the committed fleet artifacts rest on, each re-derived here from the
//! inputs instead of trusted:
//!
//! * **SA601 — request conservation.** Every arrival is routed exactly
//!   once and completed exactly once: the router's per-lane totals sum
//!   to the trace, and the multiset of completion ids across shards is
//!   exactly the arrival id set (no drops, no duplicates).
//! * **SA602 — placement discipline.** Replica lists are sorted, free
//!   of duplicate devices, and in range, and every completion ran on a
//!   device actually holding a replica of its model.
//! * **SA603 — per-device QoS feasibility.** No lane was offered
//!   sustained work beyond what it can serve over the run's span
//!   (`saturation ≤ 1`): an over-saturated lane grows its queue without
//!   bound and its response ratios are unbounded, so a committed
//!   "feasible" artifact must never contain one.

use crate::diag::{Diagnostic, Report};
use split_cluster::{ClusterResult, Fleet, Placement};
use std::collections::BTreeMap;
use workload::Arrival;

/// Tolerance on sustained lane saturation: transient bursts above 1.0
/// are expected of a Poisson stream, so feasibility is judged on the
/// whole-span average with a small slack for boundary effects.
pub const SATURATION_SLACK: f64 = 0.02;

/// Minimum requests a lane must have served before its saturation is
/// judged at all. Below this, "sustained" is meaningless — a single
/// long-model request on a slow lane can exceed a short trace's whole
/// span without implying instability.
pub const MIN_SUSTAINED_REQUESTS: u64 = 20;

/// Run every `SA6xx` lint over a fleet run.
pub fn lint_cluster(
    arrivals: &[Arrival],
    fleet: &Fleet,
    placement: &Placement,
    result: &ClusterResult,
) -> Report {
    let mut report = Report::new();
    check_conservation(arrivals, result, &mut report);
    check_placement(fleet, placement, result, &mut report);
    check_feasibility(result, &mut report);
    report
}

/// SA601: arrivals, routed counts, and completions must be the same
/// multiset of request ids.
fn check_conservation(arrivals: &[Arrival], result: &ClusterResult, report: &mut Report) {
    let ctx = format!("cluster[{}/{}]", result.policy, result.route.policy);
    let routed: u64 = result.route.lanes.iter().map(|l| l.routed).sum();
    if routed != arrivals.len() as u64 {
        report.push(
            Diagnostic::error(
                "SA601",
                &ctx,
                format!(
                    "router conservation broken: {} arrivals but {} routed",
                    arrivals.len(),
                    routed
                ),
            )
            .with_help("every arrival must be assigned to exactly one lane"),
        );
    }
    let mut counts: BTreeMap<u64, u32> = BTreeMap::new();
    for s in &result.shards {
        for c in &s.completions {
            *counts.entry(c.id).or_insert(0) += 1;
        }
    }
    let mut missing = 0u64;
    for a in arrivals {
        match counts.remove(&a.id) {
            Some(1) => {}
            Some(n) => {
                report.push(
                    Diagnostic::error(
                        "SA601",
                        &ctx,
                        format!("request {} completed {} times across shards", a.id, n),
                    )
                    .with_help("a request must be served by exactly one lane"),
                );
            }
            None => missing += 1,
        }
    }
    if missing > 0 {
        report.push(
            Diagnostic::error(
                "SA601",
                &ctx,
                format!("{missing} request(s) were routed but never completed"),
            )
            .with_help("shard schedulers must drain every routed request"),
        );
    }
    for (id, _) in counts {
        report.push(Diagnostic::error(
            "SA601",
            &ctx,
            format!("completion for unknown request id {id} (not in the trace)"),
        ));
    }
}

/// SA602: replica lists are sane and no completion ran off-replica.
fn check_placement(
    fleet: &Fleet,
    placement: &Placement,
    result: &ClusterResult,
    report: &mut Report,
) {
    let devices = fleet.devices().len();
    for (model, replicas) in placement.iter() {
        let ctx = format!("placement[{model}]");
        if replicas.is_empty() {
            report.push(Diagnostic::error("SA602", &ctx, "model has no replicas"));
            continue;
        }
        let mut sorted = replicas.clone();
        sorted.sort_unstable();
        sorted.dedup();
        if &sorted != replicas {
            report.push(
                Diagnostic::error(
                    "SA602",
                    &ctx,
                    format!("replica list {replicas:?} is not sorted and duplicate-free"),
                )
                .with_help("a device must not be assigned the same model twice"),
            );
        }
        if let Some(&bad) = replicas.iter().find(|&&d| d >= devices) {
            report.push(Diagnostic::error(
                "SA602",
                &ctx,
                format!("replica device {bad} outside the {devices}-device fleet"),
            ));
        }
    }
    for s in &result.shards {
        for c in &s.completions {
            if !placement.devices_for(&c.model).contains(&s.device) {
                report.push(
                    Diagnostic::error(
                        "SA602",
                        format!("cluster[{}]", result.policy),
                        format!(
                            "request {} ({}) served on device {} which holds no replica",
                            c.id, c.model, s.device
                        ),
                    )
                    .with_help("the router must only consider lanes of replica devices"),
                );
            }
        }
    }
}

/// SA603: sustained per-lane saturation stays within capacity.
fn check_feasibility(result: &ClusterResult, report: &mut Report) {
    for lane in &result.route.lanes {
        if lane.routed >= MIN_SUSTAINED_REQUESTS && lane.saturation > 1.0 + SATURATION_SLACK {
            report.push(
                Diagnostic::error(
                    "SA603",
                    format!("lane[{}] (device {})", lane.lane, lane.device),
                    format!(
                        "sustained saturation {:.3} exceeds lane capacity ({} requests, {:.0} µs demand over {:.0} µs span)",
                        lane.saturation, lane.routed, lane.demand_us, result.route.span_us
                    ),
                )
                .with_help(
                    "an over-saturated lane grows its queue without bound; \
                     lower the offered load, add devices, or fix the balancing policy",
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::FleetSpec;
    use sched::{ModelRuntime, ModelTable, Policy};
    use split_cluster::{simulate_fleet, RouteCfg};

    fn base_table() -> ModelTable {
        let mut t = ModelTable::new();
        t.insert(ModelRuntime::vanilla("small", 0, 8_000.0));
        t.insert(ModelRuntime::vanilla("big", 1, 30_000.0));
        t
    }

    fn arrivals(n: u64, gap_us: f64) -> Vec<Arrival> {
        (0..n)
            .map(|i| Arrival {
                id: i,
                model: (if i % 3 == 0 { "big" } else { "small" }).to_string(),
                arrival_us: i as f64 * gap_us,
            })
            .collect()
    }

    #[test]
    fn clean_run_is_clean() {
        let fleet = Fleet::new(&FleetSpec::heterogeneous(4), &base_table());
        let placement = Placement::full(&fleet, &base_table());
        let a = arrivals(200, 3_000.0);
        let res = simulate_fleet(
            &Policy::Split(Default::default()),
            &a,
            &fleet,
            &placement,
            &RouteCfg::default(),
        );
        let report = lint_cluster(&a, &fleet, &placement, &res);
        assert!(report.is_empty(), "{}", report.render_text());
    }

    #[test]
    fn dropped_and_duplicated_requests_fire_sa601() {
        let fleet = Fleet::new(&FleetSpec::heterogeneous(2), &base_table());
        let placement = Placement::full(&fleet, &base_table());
        let a = arrivals(50, 4_000.0);
        let mut res = simulate_fleet(
            &Policy::Split(Default::default()),
            &a,
            &fleet,
            &placement,
            &RouteCfg::default(),
        );
        // Drop one completion and duplicate another.
        let shard = res
            .shards
            .iter_mut()
            .find(|s| s.completions.len() >= 2)
            .expect("some shard served requests");
        shard.completions.remove(0);
        let dup = shard.completions[0].clone();
        shard.completions.push(dup);
        let report = lint_cluster(&a, &fleet, &placement, &res);
        let text = report.render_text();
        assert!(report.error_count() >= 2, "{text}");
        assert!(text.contains("SA601"), "{text}");
        assert!(text.contains("never completed"), "{text}");
        assert!(text.contains("completed 2 times"), "{text}");
    }

    #[test]
    fn off_replica_service_fires_sa602() {
        let fleet = Fleet::new(&FleetSpec::heterogeneous(4), &base_table());
        let placement = Placement::full(&fleet, &base_table());
        let a = arrivals(60, 4_000.0);
        let mut res = simulate_fleet(
            &Policy::Split(Default::default()),
            &a,
            &fleet,
            &placement,
            &RouteCfg::default(),
        );
        // Lie about where a shard ran: single-replica placement, shard
        // claims a different device.
        let single = Placement::replicated(&fleet, &base_table(), 1);
        let shard = res
            .shards
            .iter_mut()
            .find(|s| !s.completions.is_empty())
            .expect("some shard served requests");
        let model = shard.completions[0].model.to_string();
        shard.device = (0..4)
            .find(|d| !single.devices_for(&model).contains(d))
            .expect("some non-replica device");
        let report = lint_cluster(&a, &fleet, &single, &res);
        assert!(
            report.render_text().contains("SA602"),
            "{}",
            report.render_text()
        );
    }

    #[test]
    fn overload_fires_sa603() {
        let fleet = Fleet::new(&FleetSpec::uniform("jetson", 2), &base_table());
        let placement = Placement::full(&fleet, &base_table());
        // Mean demand ≈ 15.3 ms per request on a 2-unit fleet offered
        // every 2 ms: ~4× capacity — every lane saturates.
        let a = arrivals(300, 2_000.0);
        let res = simulate_fleet(
            &Policy::Split(Default::default()),
            &a,
            &fleet,
            &placement,
            &RouteCfg::default(),
        );
        let report = lint_cluster(&a, &fleet, &placement, &res);
        let text = report.render_text();
        assert!(text.contains("SA603"), "{text}");
        assert!(text.contains("saturation"), "{text}");
    }
}
