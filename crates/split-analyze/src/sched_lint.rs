//! Schedule/trace analyzer: replay a [`SimResult`] and statically check
//! the scheduler invariants the paper's claims rest on.
//!
//! Invariant catalog (DESIGN.md §9):
//! * `SA101` — two spans overlap on the same stream (serialized-stream
//!   policies only; RT-A and Stream-Parallel deliberately model
//!   concurrency, so their lanes may legitimately overlap)
//! * `SA102` — preemption happened mid-block: a request's block indices
//!   are not contiguous from 0, or a span's duration does not match the
//!   block time declared by the deployment (block-granular policies only)
//! * `SA103` — event conservation: every arrival must be matched by
//!   exactly one completion or an explicit drop, and nothing completes
//!   that never arrived
//! * `SA104` — QoS infeasibility: a completion claims less wall time than
//!   the device work it performed, or runs outside its own lifetime
//! * `SA105` — the lifecycle recording itself is structurally broken
//!   (delegated to [`split_telemetry::Recorder::validate`])
//! * `SA106` — nondeterminism: the same policy over the same input
//!   produced a structurally different result on a second run

use crate::diag::{Diagnostic, Report};
use gpu_sim::parse_block_label;
use sched::{simulate, ModelTable, Policy, SimResult};
use split_telemetry::Event;
use std::collections::{BTreeMap, BTreeSet};
use workload::Arrival;

/// Configuration for [`lint_schedule`].
#[derive(Debug, Clone, Default)]
pub struct ScheduleLintCfg<'a> {
    /// The deployment the schedule served. Required for the `SA102`
    /// block-duration checks; without it only structural checks run.
    pub models: Option<&'a ModelTable>,
    /// Enforce §3.4 block granularity (`SA102`). Only meaningful for
    /// block-granular policies (SPLIT, block round-robin); time-slicing
    /// baselines like PREMA legitimately cut spans at arbitrary points.
    pub block_granular: bool,
    /// Requests the policy explicitly dropped (admission control);
    /// counted on the completion side of `SA103` conservation.
    pub dropped: &'a [u64],
    /// Enforce `SA101` (no same-stream overlap). True for policies that
    /// serialize each stream (SPLIT, ClockWork, PREMA, SJF); false for
    /// concurrency-modeling baselines (RT-A, Stream-Parallel) whose
    /// `lane % 8` coloring reuses streams across co-running requests.
    pub serialized_streams: bool,
    /// Absolute timing tolerance, µs.
    pub time_tol_us: f64,
}

impl<'a> ScheduleLintCfg<'a> {
    /// Strict configuration for a block-granular policy over `models`.
    pub fn block_granular(models: &'a ModelTable) -> Self {
        Self {
            models: Some(models),
            block_granular: true,
            dropped: &[],
            serialized_streams: true,
            time_tol_us: 1e-6,
        }
    }

    /// Structural-only configuration (serialized baselines: ClockWork,
    /// PREMA, SJF).
    pub fn structural(models: &'a ModelTable) -> Self {
        Self {
            models: Some(models),
            block_granular: false,
            dropped: &[],
            serialized_streams: true,
            time_tol_us: 1e-6,
        }
    }

    /// Configuration for concurrency-modeling baselines (RT-A,
    /// Stream-Parallel) whose streams legitimately overlap.
    pub fn concurrent(models: &'a ModelTable) -> Self {
        Self {
            serialized_streams: false,
            ..Self::structural(models)
        }
    }
}

/// One executed span attributed to a request.
#[derive(Debug, Clone, Copy)]
struct Span {
    stream: usize,
    start_us: f64,
    end_us: f64,
    /// Block index as labeled by the policy (`None` for unsplit spans).
    labeled_block: Option<usize>,
}

/// Statically check one simulation result against the invariants above.
pub fn lint_schedule(arrivals: &[Arrival], result: &SimResult, cfg: &ScheduleLintCfg) -> Report {
    let mut report = Report::new();
    let tol = if cfg.time_tol_us > 0.0 {
        cfg.time_tol_us
    } else {
        1e-6
    };

    // SA105: the recording's own structural invariants.
    for msg in result.recorder.validate() {
        report.push(
            Diagnostic::error("SA105", "lifecycle recording", msg)
                .with_help("the policy emitted a malformed event sequence"),
        );
    }

    // Attribute device spans to requests.
    let mut spans: BTreeMap<u64, Vec<Span>> = BTreeMap::new();
    for e in result.trace.events() {
        let Some((_, req, block)) = parse_block_label(&e.label) else {
            continue;
        };
        spans.entry(req).or_default().push(Span {
            stream: e.stream,
            start_us: e.start_us,
            end_us: e.end_us,
            labeled_block: block,
        });
    }
    for list in spans.values_mut() {
        list.sort_by(|a, b| a.start_us.total_cmp(&b.start_us));
    }

    // SA101: same-stream spans must not overlap. Independent sweep over
    // the raw trace (the recorder's lane re-coloring must not be the only
    // thing standing between us and an overlap).
    let mut by_stream: BTreeMap<usize, Vec<(f64, f64, u64)>> = BTreeMap::new();
    if cfg.serialized_streams {
        for (req, list) in &spans {
            for s in list {
                by_stream
                    .entry(s.stream)
                    .or_default()
                    .push((s.start_us, s.end_us, *req));
            }
        }
    }
    for (stream, mut list) in by_stream {
        list.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
        for w in list.windows(2) {
            let ((_, end1, r1), (start2, _, r2)) = (w[0], w[1]);
            if start2 + tol < end1 {
                report.push(Diagnostic::error(
                    "SA101",
                    format!("stream {stream} @ {start2:.3}µs"),
                    format!(
                        "request {r2}'s span starts at {start2:.3}µs while \
                         request {r1}'s span is still executing (until {end1:.3}µs)"
                    ),
                ));
            }
        }
    }

    // SA103: conservation — arrivals = completions + drops, exactly.
    let arrival_ids: BTreeSet<u64> = arrivals.iter().map(|a| a.id).collect();
    let dropped_ids: BTreeSet<u64> = cfg.dropped.iter().copied().collect();
    let mut completion_count: BTreeMap<u64, usize> = BTreeMap::new();
    for c in &result.completions {
        *completion_count.entry(c.id).or_insert(0) += 1;
    }
    for &id in &arrival_ids {
        match (completion_count.get(&id), dropped_ids.contains(&id)) {
            (Some(1), false) | (None, true) => {}
            (None, false) => report.push(
                Diagnostic::error(
                    "SA103",
                    format!("request {id}"),
                    "request arrived but was neither completed nor dropped",
                )
                .with_help("a lost request silently violates its QoS target"),
            ),
            (Some(n), false) => report.push(Diagnostic::error(
                "SA103",
                format!("request {id}"),
                format!("request completed {n} times"),
            )),
            (Some(_), true) => report.push(Diagnostic::error(
                "SA103",
                format!("request {id}"),
                "request was both dropped and completed",
            )),
        }
    }
    for id in completion_count.keys() {
        if !arrival_ids.contains(id) {
            report.push(Diagnostic::error(
                "SA103",
                format!("request {id}"),
                "completion for a request that never arrived",
            ));
        }
    }

    // SA104: per-completion feasibility.
    let arrival_t: BTreeMap<u64, f64> = arrivals.iter().map(|a| (a.id, a.arrival_us)).collect();
    for c in &result.completions {
        let ctx = format!("request {} ({})", c.id, c.model);
        if c.end_us + tol < c.arrival_us {
            report.push(Diagnostic::error(
                "SA104",
                ctx.clone(),
                format!(
                    "completes at {:.3}µs before its arrival at {:.3}µs",
                    c.end_us, c.arrival_us
                ),
            ));
        }
        if let Some(&at) = arrival_t.get(&c.id) {
            if (c.arrival_us - at).abs() > tol {
                report.push(Diagnostic::error(
                    "SA104",
                    ctx.clone(),
                    format!(
                        "completion records arrival {:.3}µs but the trace arrival is {:.3}µs",
                        c.arrival_us, at
                    ),
                ));
            }
        }
        if let Some(list) = spans.get(&c.id) {
            let busy: f64 = list.iter().map(|s| s.end_us - s.start_us).sum();
            if c.e2e_us() + tol < busy {
                report.push(
                    Diagnostic::error(
                        "SA104",
                        ctx.clone(),
                        format!(
                            "end-to-end latency {:.3}µs is less than the {busy:.3}µs \
                             of device time its spans occupy",
                            c.e2e_us()
                        ),
                    )
                    .with_help("no request can finish faster than its own device work"),
                );
            }
            for s in list {
                if s.start_us + tol < c.arrival_us || s.end_us > c.end_us + tol {
                    report.push(Diagnostic::error(
                        "SA104",
                        ctx.clone(),
                        format!(
                            "span [{:.3}, {:.3}]µs runs outside the request's \
                             lifetime [{:.3}, {:.3}]µs",
                            s.start_us, s.end_us, c.arrival_us, c.end_us
                        ),
                    ));
                }
            }
        }
    }

    // SA102: block-granularity (§3.4) — only for block-granular policies.
    if cfg.block_granular {
        let downgraded: BTreeSet<u64> = result
            .recorder
            .events()
            .filter_map(|e| match e {
                Event::Downgrade { req, .. } => Some(*req),
                _ => None,
            })
            .collect();
        for c in &result.completions {
            let ctx = format!("request {} ({})", c.id, c.model);
            let Some(list) = spans.get(&c.id) else {
                continue; // SA103/SA105 already cover requests with no spans.
            };
            // Block indices, in execution order, must be 0, 1, 2, ….
            for (i, s) in list.iter().enumerate() {
                if let Some(b) = s.labeled_block {
                    if b != i {
                        report.push(
                            Diagnostic::error(
                                "SA102",
                                ctx.clone(),
                                format!(
                                    "span {i} is labeled block {b}; blocks must run 0, 1, 2, …"
                                ),
                            )
                            .with_help(
                                "a skipped or repeated block index means a block was \
                                 abandoned or restarted mid-request",
                            ),
                        );
                    }
                }
            }
            // Durations must match the deployment's declared block times —
            // a truncated span is a mid-block preemption.
            if let Some(models) = cfg.models {
                let m = models.get(&c.model);
                let expected: Vec<f64> = if downgraded.contains(&c.id) {
                    vec![m.exec_us]
                } else {
                    m.blocks_us.clone()
                };
                if list.len() != expected.len() {
                    report.push(Diagnostic::error(
                        "SA102",
                        ctx.clone(),
                        format!(
                            "executed {} block span(s) but the deployment declares {}",
                            list.len(),
                            expected.len()
                        ),
                    ));
                } else {
                    for (i, (s, want)) in list.iter().zip(&expected).enumerate() {
                        let got = s.end_us - s.start_us;
                        if (got - want).abs() > tol.max(1e-9 * want.abs()) {
                            report.push(
                                Diagnostic::error(
                                    "SA102",
                                    format!("{ctx} block {i}"),
                                    format!(
                                        "block ran for {got:.3}µs but the plan declares \
                                         {want:.3}µs — the block was cut short or stretched"
                                    ),
                                )
                                .with_help(
                                    "§3.4 allows preemption only at block boundaries, \
                                     never inside a block",
                                ),
                            );
                        }
                    }
                }
            }
        }
    }

    report
}

/// Zero out the wall-clock field of a decision event so two runs of the
/// same simulation compare structurally equal.
fn structural(e: &Event) -> Event {
    match e {
        Event::PreemptDecision {
            req,
            position,
            comparisons,
            stop,
            t_us,
            ..
        } => Event::PreemptDecision {
            req: *req,
            position: *position,
            comparisons: *comparisons,
            stop: stop.clone(),
            decision_ns: 0,
            publish_ns: 0,
            t_us: *t_us,
        },
        other => other.clone(),
    }
}

/// Determinism auditor (`SA106`): run `policy` twice over the same input
/// and structurally diff the results. Completions, device spans, and
/// lifecycle events (modulo wall-clock decision timings) must be
/// identical — a divergence means scheduling depends on ambient state
/// such as hash-map iteration order.
pub fn audit_determinism(policy: &Policy, arrivals: &[Arrival], models: &ModelTable) -> Report {
    let mut report = Report::new();
    let a = simulate(policy, arrivals, models);
    let b = simulate(policy, arrivals, models);
    let ctx = format!("policy {}", policy.name());

    if a.completions != b.completions {
        let i = a
            .completions
            .iter()
            .zip(&b.completions)
            .position(|(x, y)| x != y)
            .unwrap_or_else(|| a.completions.len().min(b.completions.len()));
        report.push(
            Diagnostic::error(
                "SA106",
                format!("{ctx} completion {i}"),
                format!(
                    "two runs over identical input diverge at completion {i}: \
                     {:?} vs {:?}",
                    a.completions.get(i),
                    b.completions.get(i)
                ),
            )
            .with_help("scheduling consults nondeterministic state (HashMap iteration order?)"),
        );
    }
    if a.trace.events() != b.trace.events() {
        report.push(Diagnostic::error(
            "SA106",
            format!("{ctx} trace"),
            "two runs over identical input produced different device traces",
        ));
    }
    let ea: Vec<Event> = a.recorder.events().map(structural).collect();
    let eb: Vec<Event> = b.recorder.events().map(structural).collect();
    if ea != eb {
        let i = ea
            .iter()
            .zip(&eb)
            .position(|(x, y)| x != y)
            .unwrap_or_else(|| ea.len().min(eb.len()));
        report.push(Diagnostic::error(
            "SA106",
            format!("{ctx} lifecycle event {i}"),
            format!(
                "two runs over identical input diverge at event {i}: {:?} vs {:?}",
                ea.get(i),
                eb.get(i)
            ),
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use sched::policy::SplitCfg;
    use sched::ModelRuntime;

    fn table() -> ModelTable {
        let mut t = ModelTable::new();
        t.insert(ModelRuntime::vanilla("short", 0, 10_000.0));
        t.insert(ModelRuntime::split("long", 1, 60_000.0, vec![22_000.0; 3]));
        t
    }

    fn arrivals(n: u64) -> Vec<Arrival> {
        (0..n)
            .map(|i| Arrival {
                id: i,
                model: (if i % 3 == 0 { "long" } else { "short" }).into(),
                arrival_us: i as f64 * 9_000.0,
            })
            .collect()
    }

    #[test]
    fn split_schedule_lints_clean() {
        let t = table();
        let a = arrivals(30);
        let r = simulate(&Policy::Split(SplitCfg::default()), &a, &t);
        let rep = lint_schedule(&a, &r, &ScheduleLintCfg::block_granular(&t));
        assert!(rep.is_empty(), "{}", rep.render_text());
    }

    #[test]
    fn baseline_schedules_lint_clean_structurally() {
        let t = table();
        let a = arrivals(30);
        for p in [
            Policy::ClockWork,
            Policy::Prema(Default::default()),
            Policy::Sjf,
        ] {
            let r = simulate(&p, &a, &t);
            let rep = lint_schedule(&a, &r, &ScheduleLintCfg::structural(&t));
            assert!(rep.is_empty(), "{}: {}", p.name(), rep.render_text());
        }
        for p in [
            Policy::Rta(Default::default()),
            Policy::StreamParallel(Default::default()),
        ] {
            let r = simulate(&p, &a, &t);
            let rep = lint_schedule(&a, &r, &ScheduleLintCfg::concurrent(&t));
            assert!(rep.is_empty(), "{}: {}", p.name(), rep.render_text());
        }
    }

    #[test]
    fn all_default_policies_are_deterministic() {
        let t = table();
        let a = arrivals(40);
        for p in Policy::all_default() {
            let rep = audit_determinism(&p, &a, &t);
            assert!(rep.is_empty(), "{}: {}", p.name(), rep.render_text());
        }
    }

    #[test]
    fn lost_request_is_sa103() {
        let t = table();
        let a = arrivals(6);
        let mut r = simulate(&Policy::ClockWork, &a, &t);
        r.completions.pop();
        let rep = lint_schedule(&a, &r, &ScheduleLintCfg::structural(&t));
        assert!(!rep.with_code("SA103").is_empty(), "{}", rep.render_text());
    }

    #[test]
    fn dropped_requests_balance_conservation() {
        let t = table();
        let a = arrivals(6);
        let mut r = simulate(&Policy::ClockWork, &a, &t);
        let dropped_id = r.completions.last().unwrap().id;
        r.completions.pop();
        let dropped = [dropped_id];
        let cfg = ScheduleLintCfg {
            dropped: &dropped,
            ..ScheduleLintCfg::structural(&t)
        };
        let rep = lint_schedule(&a, &r, &cfg);
        // The drop balances the ledger but the recorder still carries the
        // full lifecycle, so only SA103 must be silent.
        assert!(rep.with_code("SA103").is_empty(), "{}", rep.render_text());
    }
}
