//! Plan linter: check a [`SplitPlan`] against the dnn-graph IR.
//!
//! The offline GA *produces* plans; nothing in the production path
//! re-checks them against the model graph before the online scheduler
//! trusts their block times. This linter is that independent check. It
//! re-derives every claim a plan makes — partition structure, boundary
//! transfer volumes, profiled block times, derived statistics, and the
//! paper's evenness property (§3.3) — from the graph and device model,
//! and reports any drift as [`Diagnostic`]s.
//!
//! Invariant catalog (DESIGN.md §9):
//! * `SA001` — the model graph itself violates DAG/topological invariants
//! * `SA002` — a cut position is invalid (out of range / unsorted)
//! * `SA003` — the blocks are not an exact cover of the operator sequence
//! * `SA004` — declared block/vanilla times differ from re-profiling
//! * `SA005` — the plan exceeds the evenness bound
//! * `SA006` — declared transfer bytes differ from the live tensors at a cut
//! * `SA007` — derived statistics (overhead, σ, fitness) are inconsistent
//! * `SA008` — adjacent blocks disagree about their shared boundary
//! * `SA009` — the plan names a different model than the graph

use crate::diag::{Diagnostic, Report};
use dnn_graph::{Graph, SplitSpec};
use gpu_sim::DeviceConfig;
use profiler::profile_split;
use split_core::{fitness, SplitPlan};

/// Tunable thresholds for [`lint_plan`].
#[derive(Debug, Clone)]
pub struct PlanLintCfg {
    /// Relative tolerance when comparing re-derived times/statistics.
    pub rel_tol: f64,
    /// Maximum `(max − min) / mean` of block times, percent, before a
    /// split plan is flagged as uneven (`SA005`). The paper's Table 3
    /// plans stay well under 30%; the default leaves headroom for
    /// skip-connection-heavy architectures while still catching the
    /// degenerate "one huge block" plans SPLIT exists to avoid.
    pub max_range_pct: f64,
}

impl Default for PlanLintCfg {
    fn default() -> Self {
        Self {
            rel_tol: 1e-9,
            max_range_pct: 60.0,
        }
    }
}

fn rel_close(a: f64, b: f64, tol: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= tol * scale
}

/// Lint one plan against its model graph on a device.
pub fn lint_plan(graph: &Graph, plan: &SplitPlan, dev: &DeviceConfig, cfg: &PlanLintCfg) -> Report {
    let mut report = Report::new();
    let ctx = |detail: &str| format!("plan({}) {detail}", plan.model);

    if plan.model != graph.name {
        report.push(Diagnostic::error(
            "SA009",
            ctx("model"),
            format!(
                "plan is for model {:?} but was checked against graph {:?}",
                plan.model, graph.name
            ),
        ));
        return report;
    }

    // SA001: the IR itself must be a well-formed topologically-ordered DAG.
    if let Err(e) = graph.validate() {
        report.push(
            Diagnostic::error(
                "SA001",
                ctx("graph"),
                format!("model graph is invalid: {e}"),
            )
            .with_help("fix the model builder; plans over a broken IR are meaningless"),
        );
        return report;
    }

    // SA002: cut positions must form a valid split of this graph.
    let spec = match SplitSpec::new(graph, plan.cuts.clone()) {
        Ok(s) => s,
        Err(e) => {
            report.push(
                Diagnostic::error(
                    "SA002",
                    ctx(&format!("cuts {:?}", plan.cuts)),
                    format!("invalid cut positions: {e}"),
                )
                .with_help("regenerate the plan with `split-cli plan-all`"),
            );
            return report;
        }
    };

    // SA003: exact cover — every operator in exactly one block. Re-derived
    // from the cut list, independently of SplitSpec's own block builder.
    let blocks = spec.blocks(graph);
    let mut owners = vec![0usize; graph.op_count()];
    for b in &blocks {
        if b.is_empty() {
            report.push(Diagnostic::error(
                "SA003",
                ctx(&format!("block {}", b.index)),
                format!("block {} covers no operators", b.index),
            ));
        }
        for owner in &mut owners[b.start..b.end.min(graph.op_count())] {
            *owner += 1;
        }
    }
    for (op, &n) in owners.iter().enumerate() {
        if n != 1 {
            report.push(Diagnostic::error(
                "SA003",
                ctx(&format!("operator {op}")),
                format!("operator {op} is covered by {n} blocks (must be exactly 1)"),
            ));
        }
    }
    if blocks.first().map(|b| b.start) != Some(0)
        || blocks.last().map(|b| b.end) != Some(graph.op_count())
    {
        report.push(Diagnostic::error(
            "SA003",
            ctx("blocks"),
            "blocks do not span the full operator sequence",
        ));
    }

    // SA008: adjacent blocks must agree about their shared boundary — the
    // bytes leaving block i are the bytes entering block i+1, and both
    // equal the live-tensor volume at the cut.
    for w in blocks.windows(2) {
        let (prev, next) = (&w[0], &w[1]);
        let out = prev.output_transfer_bytes(graph);
        let inp = next.input_transfer_bytes(graph);
        let live = graph.boundary_bytes(prev.end);
        if out != inp || out != live {
            report.push(Diagnostic::error(
                "SA008",
                ctx(&format!("boundary at operator {}", prev.end)),
                format!(
                    "blocks {} and {} disagree about their boundary: \
                     {out} bytes out vs {inp} bytes in (live tensors: {live} bytes)",
                    prev.index, next.index
                ),
            ));
        }
    }

    // SA006: the declared transfer tensors must be exactly the live
    // tensors at each cut.
    if plan.transfer_bytes.is_empty() {
        if plan.is_split() {
            report.push(
                Diagnostic::note(
                    "SA006",
                    ctx("transfers"),
                    "plan declares no per-cut transfer volumes (legacy plan format)",
                )
                .with_help("regenerate the plan to record boundary transfers"),
            );
        }
    } else if plan.transfer_bytes.len() != plan.cuts.len() {
        report.push(Diagnostic::error(
            "SA006",
            ctx("transfers"),
            format!(
                "plan declares {} transfer volumes for {} cuts",
                plan.transfer_bytes.len(),
                plan.cuts.len()
            ),
        ));
    } else {
        for (i, (&cut, &declared)) in plan.cuts.iter().zip(&plan.transfer_bytes).enumerate() {
            let live = graph.boundary_bytes(cut);
            if declared != live {
                report.push(
                    Diagnostic::error(
                        "SA006",
                        ctx(&format!("cut {i} at operator {cut}")),
                        format!(
                            "declared transfer of {declared} bytes but the live tensors \
                             at the cut total {live} bytes"
                        ),
                    )
                    .with_help("a skip connection crossing the cut is likely unaccounted"),
                );
            }
        }
    }

    // SA004/SA007: re-profile the spec and compare every claimed number.
    let p = profile_split(graph, &spec, dev);
    if plan.block_times_us.len() != p.block_times_us.len() {
        report.push(Diagnostic::error(
            "SA004",
            ctx("block times"),
            format!(
                "plan declares {} block times but the cuts induce {} blocks",
                plan.block_times_us.len(),
                p.block_times_us.len()
            ),
        ));
    } else {
        for (i, (&got, &want)) in plan
            .block_times_us
            .iter()
            .zip(&p.block_times_us)
            .enumerate()
        {
            if !rel_close(got, want, cfg.rel_tol) {
                report.push(
                    Diagnostic::error(
                        "SA004",
                        ctx(&format!("block {i}")),
                        format!("declared block time {got:.3}µs; re-profiling gives {want:.3}µs"),
                    )
                    .with_help("the device model or graph changed since the plan was generated"),
                );
            }
        }
    }
    if !rel_close(plan.vanilla_us, p.vanilla_us, cfg.rel_tol) {
        report.push(Diagnostic::error(
            "SA004",
            ctx("vanilla time"),
            format!(
                "declared vanilla time {:.3}µs; re-profiling gives {:.3}µs",
                plan.vanilla_us, p.vanilla_us
            ),
        ));
    }
    // SA007: the plan's summary statistics must follow from its *own*
    // declared block times (internal consistency — orthogonal to SA004,
    // which compares against a fresh profile). Tampering with any one
    // field breaks the set.
    let declared = profiler::BlockProfile {
        cuts: plan.cuts.clone(),
        block_times_us: plan.block_times_us.clone(),
        vanilla_us: plan.vanilla_us,
        overhead_ratio: if plan.vanilla_us > 0.0 {
            (plan.total_us() - plan.vanilla_us) / plan.vanilla_us
        } else {
            0.0
        },
        std_us: profiler::population_std(&plan.block_times_us),
        mean_us: profiler::mean(&plan.block_times_us),
        range_pct: profiler::range_pct(&plan.block_times_us),
    };
    for (name, got, want) in [
        (
            "overhead_ratio",
            plan.overhead_ratio,
            declared.overhead_ratio,
        ),
        ("std_us", plan.std_us, declared.std_us),
        ("fitness", plan.fitness, fitness(&declared)),
    ] {
        if !rel_close(got, want, cfg.rel_tol.max(1e-9)) {
            report.push(Diagnostic::error(
                "SA007",
                ctx(name),
                format!(
                    "declared {name} = {got} does not follow from the plan's \
                     own block times (expected {want})"
                ),
            ));
        }
    }

    // SA005: the paper's evenness property (§3.3) — block times of a split
    // plan must stay within the configured range bound.
    if plan.is_split() && p.range_pct > cfg.max_range_pct {
        report.push(
            Diagnostic::error(
                "SA005",
                ctx(&format!("cuts {:?}", plan.cuts)),
                format!(
                    "block times span {:.1}% of their mean (bound: {:.1}%) — \
                     the plan is not evenly sized",
                    p.range_pct, cfg.max_range_pct
                ),
            )
            .with_help("re-run the offline GA; an uneven plan forfeits the §3.3 QoS guarantee"),
        );
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_graph::{GraphBuilder, TensorShape};

    fn cnn() -> Graph {
        let mut b = GraphBuilder::new("toy", TensorShape::chw(3, 64, 64));
        let x = b.source();
        let mut t = b.conv(&x, 16, 3, 1, 1);
        for i in 0..10 {
            let c = b.conv(&t, 16 + 8 * (i / 3), 3, if i % 4 == 3 { 2 } else { 1 }, 1);
            t = b.relu(&c);
        }
        b.finish()
    }

    fn good_plan(g: &Graph, dev: &DeviceConfig) -> SplitPlan {
        let spec = SplitSpec::new(g, vec![4, 8]).unwrap();
        SplitPlan::from_spec(g, &spec, dev)
    }

    #[test]
    fn clean_plan_lints_clean() {
        let g = cnn();
        let dev = DeviceConfig::default();
        let plan = good_plan(&g, &dev);
        let r = lint_plan(&g, &plan, &dev, &PlanLintCfg::default());
        assert!(r.is_empty(), "{}", r.render_text());
    }

    #[test]
    fn vanilla_plan_lints_clean() {
        let g = cnn();
        let dev = DeviceConfig::default();
        let plan = SplitPlan::vanilla(&g, &dev);
        let r = lint_plan(&g, &plan, &dev, &PlanLintCfg::default());
        assert!(r.is_empty(), "{}", r.render_text());
    }

    #[test]
    fn wrong_model_is_sa009() {
        let g = cnn();
        let dev = DeviceConfig::default();
        let mut plan = good_plan(&g, &dev);
        plan.model = "other".into();
        let r = lint_plan(&g, &plan, &dev, &PlanLintCfg::default());
        assert_eq!(r.with_code("SA009").len(), 1, "{}", r.render_text());
    }

    #[test]
    fn out_of_range_cut_is_sa002() {
        let g = cnn();
        let dev = DeviceConfig::default();
        let mut plan = good_plan(&g, &dev);
        plan.cuts = vec![4, 999];
        let r = lint_plan(&g, &plan, &dev, &PlanLintCfg::default());
        assert_eq!(r.with_code("SA002").len(), 1, "{}", r.render_text());
    }

    #[test]
    fn tampered_block_time_is_sa004() {
        let g = cnn();
        let dev = DeviceConfig::default();
        let mut plan = good_plan(&g, &dev);
        plan.block_times_us[1] *= 1.5;
        let r = lint_plan(&g, &plan, &dev, &PlanLintCfg::default());
        assert!(!r.with_code("SA004").is_empty(), "{}", r.render_text());
        // The tampered time also breaks σ and fitness.
        assert!(!r.with_code("SA007").is_empty(), "{}", r.render_text());
    }

    #[test]
    fn tampered_transfer_bytes_is_sa006() {
        let g = cnn();
        let dev = DeviceConfig::default();
        let mut plan = good_plan(&g, &dev);
        assert_eq!(plan.transfer_bytes.len(), 2, "from_spec declares transfers");
        plan.transfer_bytes[0] += 1;
        let r = lint_plan(&g, &plan, &dev, &PlanLintCfg::default());
        assert_eq!(r.with_code("SA006").len(), 1, "{}", r.render_text());
    }

    #[test]
    fn legacy_plan_without_transfers_gets_a_note_only() {
        let g = cnn();
        let dev = DeviceConfig::default();
        let mut plan = good_plan(&g, &dev);
        plan.transfer_bytes.clear();
        let r = lint_plan(&g, &plan, &dev, &PlanLintCfg::default());
        assert_eq!(r.error_count(), 0, "{}", r.render_text());
        assert_eq!(r.with_code("SA006").len(), 1);
    }

    #[test]
    fn uneven_plan_is_sa005() {
        let g = cnn();
        let dev = DeviceConfig::default();
        // Cut almost at the end: a tiny final block → huge range.
        let spec = SplitSpec::new(&g, vec![g.op_count() - 1]).unwrap();
        let plan = SplitPlan::from_spec(&g, &spec, &dev);
        let r = lint_plan(&g, &plan, &dev, &PlanLintCfg::default());
        assert_eq!(r.with_code("SA005").len(), 1, "{}", r.render_text());
    }
}
