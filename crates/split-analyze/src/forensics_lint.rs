//! Forensics-bundle analyzer (`SA4xx`): verifies that incident bundles
//! keep the promises the forensics subsystem makes.
//!
//! A bundle is only useful if it can be trusted during an incident, so
//! every claim it carries is checkable from the document alone:
//!
//! * `SA401` — an outlier's root-cause components do not reconcile with
//!   its exact e2e decomposition (residual beyond 1 ns,
//!   [`split_obs::SUM_TOLERANCE_US`]) or a component is negative;
//! * `SA402` — the tail-sampling invariant is broken: a QoS-violating
//!   completion inside the incident window is *not* captured with its
//!   full trace (per-model `captured < violated`, or the verdict's
//!   `captured_violating != violating`);
//! * `SA403` — the flight ring's causal order is broken: sequence
//!   numbers not strictly increasing, a request's records not
//!   time-monotone, or a record before its request's `Arrival` / after
//!   its `Completion`;
//! * `SA404` — the verdict's aggregation is inconsistent with the
//!   outlier list (cause shares don't sum to 1, counts don't match,
//!   named top/culprit model absent from the outliers).

use crate::diag::{Diagnostic, Report};
use split_forensics::{FlightKind, IncidentBundle, SampleReason};
use split_obs::SUM_TOLERANCE_US;
use std::collections::BTreeMap;

/// Lint one incident bundle.
pub fn lint_bundle(bundle: &IncidentBundle) -> Report {
    let mut report = Report::new();
    lint_attribution_exactness(bundle, &mut report);
    lint_sampling_invariant(bundle, &mut report);
    lint_flight_order(bundle, &mut report);
    lint_verdict(bundle, &mut report);
    report
}

/// Lint a batch of bundles, prefixing each diagnostic with the bundle's
/// position so merged reports stay attributable.
pub fn lint_bundles(bundles: &[IncidentBundle]) -> Report {
    let mut all = Report::new();
    for (i, b) in bundles.iter().enumerate() {
        for mut d in lint_bundle(b).diagnostics {
            d.context = format!("bundle {i}: {}", d.context);
            all.push(d);
        }
    }
    all
}

/// `SA401`: every retained outlier's decomposition must be exact.
fn lint_attribution_exactness(bundle: &IncidentBundle, report: &mut Report) {
    for o in &bundle.outliers {
        if o.reason == SampleReason::Dropped {
            // Drops never executed; their attribution is all-zero by
            // construction and carries no decomposition claim.
            continue;
        }
        let a = &o.attribution;
        let ctx = format!("request {} ({})", a.req, a.model);
        let residual = a.residual_us();
        if residual.abs() > SUM_TOLERANCE_US {
            report.push(
                Diagnostic::error(
                    "SA401",
                    ctx.clone(),
                    format!(
                        "root-cause components sum to {:.4} µs but e2e is {:.4} µs \
                         (residual {:+.4} µs, tolerance ±{} µs)",
                        a.components_sum_us(),
                        a.e2e_us(),
                        residual,
                        SUM_TOLERANCE_US
                    ),
                )
                .with_help(
                    "the classification was made from a decomposition that no longer \
                     partitions [arrival, completion]; the root-cause label cannot be trusted",
                ),
            );
        }
        for (name, v) in [
            ("queue", a.queue_us),
            ("compute", a.compute_us),
            ("transfer", a.transfer_us),
            ("stall", a.stall_us),
            ("sched", a.sched_us),
        ] {
            if v < -1e-9 {
                report.push(Diagnostic::error(
                    "SA401",
                    ctx.clone(),
                    format!("negative {name} component: {v:.4} µs"),
                ));
            }
        }
    }
}

/// `SA402`: every violating completion in the window must be captured.
fn lint_sampling_invariant(bundle: &IncidentBundle, report: &mut Report) {
    let v = &bundle.verdict;
    if v.captured_violating != v.violating {
        report.push(
            Diagnostic::error(
                "SA402",
                "verdict",
                format!(
                    "{} QoS-violating completions in the incident window but only {} \
                     captured with full traces",
                    v.violating, v.captured_violating
                ),
            )
            .with_help(
                "the tail sampler must retain every violating request; head-sampling \
                 one away makes the incident unexplainable",
            ),
        );
    }
    for m in &bundle.models {
        if m.captured < m.violated {
            report.push(Diagnostic::error(
                "SA402",
                format!("model {}", m.model),
                format!(
                    "{} violations in the window but only {} traces captured",
                    m.violated, m.captured
                ),
            ));
        }
    }
    // Internal consistency: the verdict's capture count must match the
    // outlier list it summarizes.
    let marked = bundle.outliers.iter().filter(|o| o.violated).count() as u64;
    if marked != v.captured_violating {
        report.push(Diagnostic::error(
            "SA402",
            "verdict",
            format!(
                "verdict claims {} captured violating traces but {} outliers are \
                 marked violating",
                v.captured_violating, marked
            ),
        ));
    }
    for o in &bundle.outliers {
        if o.violated && o.spans.is_empty() {
            report.push(Diagnostic::error(
                "SA402",
                format!("request {} ({})", o.attribution.req, o.attribution.model),
                "violating outlier captured without its span tree",
            ));
        }
    }
}

/// `SA403`: the flight ring must read as a causally ordered history.
fn lint_flight_order(bundle: &IncidentBundle, report: &mut Report) {
    let records = &bundle.flight.records;
    for w in records.windows(2) {
        if w[1].seq <= w[0].seq {
            report.push(
                Diagnostic::error(
                    "SA403",
                    format!("flight seq {} → {}", w[0].seq, w[1].seq),
                    "sequence numbers not strictly increasing",
                )
                .with_help("a torn or duplicated seqlock slot survived the snapshot"),
            );
        }
    }
    // Per-request: time monotone in seq order, Arrival first,
    // Completion last.
    let mut by_req: BTreeMap<u64, Vec<&split_forensics::FlightRecord>> = BTreeMap::new();
    for r in records {
        if r.req != split_forensics::NO_REQ {
            by_req.entry(r.req).or_default().push(r);
        }
    }
    for (req, rs) in &by_req {
        for w in rs.windows(2) {
            if w[1].t_us < w[0].t_us {
                report.push(Diagnostic::error(
                    "SA403",
                    format!("request {req}"),
                    format!(
                        "records run backwards in time: {:?}@{:.3} µs then {:?}@{:.3} µs",
                        w[0].kind, w[0].t_us, w[1].kind, w[1].t_us
                    ),
                ));
            }
        }
        if let Some(pos) = rs.iter().position(|r| r.kind == FlightKind::Arrival) {
            if pos != 0 {
                report.push(Diagnostic::error(
                    "SA403",
                    format!("request {req}"),
                    format!("{:?} recorded before the request's Arrival", rs[0].kind),
                ));
            }
        }
        if let Some(pos) = rs.iter().position(|r| r.kind == FlightKind::Completion) {
            if pos != rs.len() - 1 {
                report.push(Diagnostic::error(
                    "SA403",
                    format!("request {req}"),
                    format!(
                        "{:?} recorded after the request's Completion",
                        rs[pos + 1].kind
                    ),
                ));
            }
        }
    }
}

/// `SA404`: the verdict must aggregate the outlier list exactly.
fn lint_verdict(bundle: &IncidentBundle, report: &mut Report) {
    let v = &bundle.verdict;
    let n = bundle.outliers.len() as u64;
    if v.outliers != n {
        report.push(Diagnostic::error(
            "SA404",
            "verdict",
            format!(
                "verdict counts {} outliers but the bundle holds {n}",
                v.outliers
            ),
        ));
    }
    let count_sum: u64 = v.cause_shares.iter().map(|c| c.count).sum();
    if count_sum != n {
        report.push(Diagnostic::error(
            "SA404",
            "verdict",
            format!("cause-share counts sum to {count_sum}, not the {n} outliers"),
        ));
    }
    if n > 0 {
        let share_sum: f64 = v.cause_shares.iter().map(|c| c.share).sum();
        if (share_sum - 1.0).abs() > 1e-9 {
            report.push(Diagnostic::error(
                "SA404",
                "verdict",
                format!("cause shares sum to {share_sum:.9}, not 1"),
            ));
        }
    }
    if v.captured_violating > v.violating {
        report.push(Diagnostic::error(
            "SA404",
            "verdict",
            format!(
                "more captured violating traces ({}) than violations ({})",
                v.captured_violating, v.violating
            ),
        ));
    }
    if !v.top_model.is_empty()
        && !bundle
            .outliers
            .iter()
            .any(|o| o.attribution.model == v.top_model)
    {
        report.push(Diagnostic::error(
            "SA404",
            "verdict",
            format!("top model {:?} has no outlier in the bundle", v.top_model),
        ));
    }
    if !v.culprit_model.is_empty()
        && !bundle
            .outliers
            .iter()
            .any(|o| o.culprit_model == v.culprit_model)
    {
        report.push(Diagnostic::error(
            "SA404",
            "verdict",
            format!(
                "culprit model {:?} blamed by no outlier in the bundle",
                v.culprit_model
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sched::{simulate, ModelRuntime, ModelTable, Policy};
    use split_forensics::{ForensicsCfg, TailSampler};
    use split_obs::SloCfg;
    use workload::Arrival;

    /// An overloaded SPLIT simulation whose investigation fires at least
    /// one alert: every third request is a long model, arrivals outpace
    /// the device by far.
    fn incident_bundle() -> IncidentBundle {
        let mut t = ModelTable::new();
        t.insert(ModelRuntime::vanilla("short", 0, 10_000.0));
        t.insert(
            ModelRuntime::split("long", 1, 60_000.0, vec![22_000.0; 3])
                .with_transfer_bytes(vec![1 << 20, 1 << 20]),
        );
        let arrivals: Vec<Arrival> = (0..40)
            .map(|i| Arrival {
                id: i,
                model: (if i % 3 == 0 { "long" } else { "short" }).into(),
                arrival_us: i as f64 * 2_000.0,
            })
            .collect();
        let result = simulate(&Policy::Split(Default::default()), &arrivals, &t);
        let inv = result.investigate(&ForensicsCfg {
            slo: SloCfg {
                fast_window_us: 50_000.0,
                slow_window_us: 400_000.0,
                ..SloCfg::default()
            },
            sampler: TailSampler::default(),
        });
        assert!(
            !inv.bundles.is_empty(),
            "fixture must fire an alert ({})",
            inv.alerts.summary()
        );
        inv.bundles.into_iter().next().unwrap()
    }

    #[test]
    fn real_bundle_is_clean() {
        let report = lint_bundle(&incident_bundle());
        assert!(report.diagnostics.is_empty(), "{}", report.render_text());
    }

    #[test]
    fn broken_decomposition_raises_sa401() {
        let mut b = incident_bundle();
        let o = b
            .outliers
            .iter_mut()
            .find(|o| o.reason != SampleReason::Dropped)
            .unwrap();
        o.attribution.queue_us += 5.0;
        let report = lint_bundle(&b);
        assert!(
            report.diagnostics.iter().any(|d| d.code == "SA401"),
            "{}",
            report.render_text()
        );
    }

    #[test]
    fn uncaptured_violation_raises_sa402() {
        let mut b = incident_bundle();
        assert!(b.verdict.violating > 0, "fixture has violations");
        // Pretend one violating trace was head-sampled away.
        let victim = b.outliers.iter().position(|o| o.violated).unwrap();
        b.outliers.remove(victim);
        b.verdict.captured_violating -= 1;
        let report = lint_bundle(&b);
        assert!(
            report.diagnostics.iter().any(|d| d.code == "SA402"),
            "{}",
            report.render_text()
        );
    }

    #[test]
    fn violating_outlier_without_spans_raises_sa402() {
        let mut b = incident_bundle();
        let victim = b.outliers.iter().position(|o| o.violated).unwrap();
        b.outliers[victim].spans.clear();
        let report = lint_bundle(&b);
        assert!(report.diagnostics.iter().any(|d| d.code == "SA402"));
    }

    #[test]
    fn scrambled_flight_ring_raises_sa403() {
        let mut b = incident_bundle();
        assert!(b.flight.records.len() >= 2, "fixture records flight data");
        b.flight.records.swap(0, 1);
        let report = lint_bundle(&b);
        assert!(
            report.diagnostics.iter().any(|d| d.code == "SA403"),
            "{}",
            report.render_text()
        );
    }

    #[test]
    fn inconsistent_verdict_raises_sa404() {
        let mut b = incident_bundle();
        b.verdict.outliers += 3;
        if let Some(cs) = b.verdict.cause_shares.first_mut() {
            cs.share += 0.25;
        }
        let report = lint_bundle(&b);
        let codes: Vec<&str> = report.diagnostics.iter().map(|d| d.code.as_str()).collect();
        assert!(codes.contains(&"SA404"), "{}", report.render_text());
    }

    #[test]
    fn bundle_index_prefixes_batch_context() {
        let mut b = incident_bundle();
        b.verdict.outliers += 1;
        let report = lint_bundles(&[b]);
        assert!(report.diagnostics[0].context.starts_with("bundle 0:"));
    }
}
