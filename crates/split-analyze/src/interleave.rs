//! Weak-memory stateless model checker for the lock-free hot-path
//! structures, with dynamic partial-order reduction.
//!
//! The old checker enumerated thread schedules under **sequential
//! consistency**, which cannot even express the bug class the
//! `FlightRing` seqlock exists to prevent: under SC a reader that
//! re-checks the stamp always sees the latest stamp, so a dropped
//! Release fence is invisible. This module explores executions of
//! [`crate::memmodel`] machines instead — per-access C11 orderings, standalone
//! fences, and **reads-from enumeration** (a `Relaxed` load branches
//! over every coherence-eligible message, so stale reads are reachable
//! behaviors, and a missing fence is a reachable bug). See
//! [`crate::memmodel`] for the exact fragment and DESIGN.md §14 for the
//! engine description.
//!
//! Two exploration modes share one DFS:
//!
//! * **exhaustive** — every schedule × every reads-from choice; the
//!   ground-truth baseline the equivalence tests compare against;
//! * **DPOR** — sleep sets plus Flanagan–Godefroid backtrack points
//!   computed over a happens-before relation (dependency vector
//!   clocks), exploring one representative per Mazurkiewicz trace.
//!   Reachable final states, invariant violations, and data races are
//!   preserved (same-cell accesses with a writer are dependent, so
//!   reads-from branching commutes with the reduction); the
//!   `dpor_equiv` test suite checks this equivalence machine by
//!   machine, and property-tests it on randomly generated programs.
//!
//! Invariant catalog (DESIGN.md §9):
//! * `SA200` — model-checking budget exhausted (transition ceiling or
//!   wall-clock cap hit before the space was covered)
//! * `SA201` — lost update: the final state misses a mutation some
//!   thread performed (non-linearizable counter/histogram update)
//! * `SA202` — a snapshot observed a counter moving backwards
//! * `SA203` — merge result depends on merge order
//! * `SA204` — profile-cache dedup violation: a candidate measured more
//!   than once, or `misses ≠` distinct candidates, under some execution
//!   of the modeled `ProfileCache::profile` callers
//! * `SA205` — torn record: a seqlock snapshot accepted a payload
//!   mixing two writes (`FlightRing::snapshot` vs `record`)
//! * `SA206` — snapshot not a consistent cut: an accepted record never
//!   existed in the published history
//! * `SA207` — lost slot: a published combining slot was skipped,
//!   consumed twice, or a queued request vanished across the combiner
//!   lock handoff (`CombiningCore::submit` / `drain`)
//! * `SA208` — stale response: a client observed a slot response the
//!   combiner never wrote for its request
//! * `SA210` — data race: two unsynchronized conflicting accesses, at
//!   least one non-atomic
//!
//! Every machine the suite certifies has a **racy negative fixture** —
//! the same protocol with the bug re-introduced (fence dropped, stamp
//! parity swapped, RMW torn into load+store, claim skipped) — proving
//! the checker catches exactly the bug class each SA code names. The
//! fixtures live in [`negative_fixtures`] and are exercised by the
//! `weakmem_fixtures` test suite, never by `analyze`.

use crate::diag::{Diagnostic, Report};
use crate::memmodel::{
    dependent, ExecState, FinalState, Machine, MemOrd, Operand, RaceReport, RmwOp, Step, VClock,
};
use std::collections::BTreeSet;
use std::time::Instant;

/// Exploration configuration: mode plus budgets.
#[derive(Debug, Clone)]
pub struct ExploreCfg {
    /// Use DPOR (sleep sets + backtrack points). `false` = exhaustive
    /// baseline, for equivalence testing only.
    pub dpor: bool,
    /// Transition ceiling: exploration stops (and reports
    /// `budget_exceeded`) after this many applied steps.
    pub max_transitions: u64,
    /// Wall-clock cap in milliseconds (checked every 1024 transitions).
    pub wall_ms: u64,
    /// Collect the set of reachable final-state digests (for
    /// equivalence testing; costs memory on large spaces).
    pub collect_finals: bool,
}

impl Default for ExploreCfg {
    fn default() -> Self {
        Self {
            dpor: true,
            max_transitions: u64::MAX,
            wall_ms: u64::MAX,
            collect_finals: false,
        }
    }
}

/// What an exploration found and how much work it did.
#[derive(Debug)]
pub struct ExploreOutcome {
    /// Completed executions (maximal interleavings × reads-from choices).
    pub executions: u64,
    /// Applied transitions (the "states explored" count the budget gate
    /// and the DPOR-vs-exhaustive criterion are measured in).
    pub transitions: u64,
    /// Sleep-set prunes: nodes abandoned because every enabled thread
    /// was asleep (each prune is a provably redundant subtree).
    pub sleep_prunes: u64,
    /// The budget ([`ExploreCfg::max_transitions`] or
    /// [`ExploreCfg::wall_ms`]) ran out before the space was covered.
    pub budget_exceeded: bool,
    /// Distinct invariant-violation messages from the check function.
    pub violations: BTreeSet<String>,
    /// Data races observed in any explored execution (canonicalized, so
    /// DPOR and exhaustive exploration agree exactly).
    pub races: BTreeSet<RaceReport>,
    /// Reachable final-state digests, when
    /// [`ExploreCfg::collect_finals`] was set.
    pub finals: Option<BTreeSet<Vec<u64>>>,
}

/// Per-node bookkeeping for DPOR.
struct Node {
    /// Threads that must (still) be explored from this node.
    backtrack: BTreeSet<usize>,
    /// Threads already fully explored from this node.
    done: BTreeSet<usize>,
    /// Sleep set: threads whose exploration here is provably redundant.
    sleep: BTreeSet<usize>,
    /// Threads enabled at this node (recorded for backtrack insertion).
    enabled: Vec<usize>,
}

/// One executed event of the current trace.
struct TraceEntry {
    thread: usize,
    step: Step,
    /// Dependency clock of the event (happens-before in the
    /// Mazurkiewicz-trace sense, built from [`dependent`]).
    clock: VClock,
}

struct Explorer<'a> {
    state: ExecState,
    cfg: &'a ExploreCfg,
    check: &'a dyn Fn(&FinalState<'_>) -> Vec<String>,
    out: ExploreOutcome,
    nodes: Vec<Node>,
    trace: Vec<TraceEntry>,
    /// Per-thread dependency clocks.
    dep: Vec<VClock>,
    /// Per-cell clock of the last write event.
    last_write: Vec<VClock>,
    /// Per-cell join of all access-event clocks.
    all_access: Vec<VClock>,
    /// Clock of the last SC event.
    last_sc: VClock,
    started: Instant,
}

fn join(dst: &mut VClock, src: &VClock) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d = (*d).max(*s);
    }
}

impl Explorer<'_> {
    fn budget_ok(&mut self) -> bool {
        if self.out.budget_exceeded {
            return false;
        }
        if self.out.transitions >= self.cfg.max_transitions {
            self.out.budget_exceeded = true;
            return false;
        }
        if self.out.transitions.is_multiple_of(1024)
            && self.started.elapsed().as_millis() as u64 >= self.cfg.wall_ms
        {
            self.out.budget_exceeded = true;
            return false;
        }
        true
    }

    /// The dependency clock thread `t`'s next step would get, from the
    /// clocks of the events it does not commute with.
    fn event_clock(&self, t: usize, step: &Step) -> VClock {
        use crate::memmodel::Access;
        let mut c = self.dep[t].clone();
        match step.access() {
            Access::Read(x) => join(&mut c, &self.last_write[x]),
            Access::Write(x) => {
                join(&mut c, &self.all_access[x]);
            }
            Access::ScFence => join(&mut c, &self.last_sc),
            Access::Local => {}
        }
        let sc = matches!(
            step,
            Step::Load {
                ord: MemOrd::SeqCst,
                ..
            } | Step::Store {
                ord: MemOrd::SeqCst,
                ..
            } | Step::Rmw {
                ord: MemOrd::SeqCst,
                ..
            } | Step::Cas {
                ord: MemOrd::SeqCst,
                ..
            }
        );
        if sc {
            join(&mut c, &self.last_sc);
        }
        c[t] += 1;
        c
    }

    /// Flanagan–Godefroid race scan: find the last event of the trace
    /// that is dependent with and concurrent to thread `p`'s next step,
    /// and plant a backtrack point just before it.
    fn update_backtracks(&mut self, p: usize) {
        let Some(&next) = self.state.next_step(p) else {
            return;
        };
        for i in (0..self.trace.len()).rev() {
            let e = &self.trace[i];
            if e.thread == p || !dependent(&e.step, &next) {
                continue;
            }
            // Concurrent iff p has not (transitively) observed event i.
            if e.clock[e.thread] <= self.dep[p][e.thread] {
                continue;
            }
            let node = &mut self.nodes[i];
            if node.enabled.contains(&p) {
                if !node.done.contains(&p) {
                    node.backtrack.insert(p);
                }
            } else {
                for &q in &node.enabled {
                    if !node.done.contains(&q) {
                        node.backtrack.insert(q);
                    }
                }
            }
            return;
        }
    }

    fn dfs(&mut self, sleep: BTreeSet<usize>) {
        let enabled = self.state.enabled();
        if enabled.is_empty() {
            self.out.executions += 1;
            let fs = self.state.final_state();
            for v in (self.check)(&fs) {
                self.out.violations.insert(v);
            }
            if self.cfg.collect_finals {
                let d = fs.digest();
                self.out.finals.get_or_insert_with(BTreeSet::new).insert(d);
            }
            return;
        }
        if self.cfg.dpor {
            for &p in &enabled {
                self.update_backtracks(p);
            }
        }
        let awake: Vec<usize> = enabled
            .iter()
            .copied()
            .filter(|p| !sleep.contains(p))
            .collect();
        if awake.is_empty() {
            self.out.sleep_prunes += 1;
            return;
        }
        let backtrack: BTreeSet<usize> = if self.cfg.dpor {
            // Seed with one awake thread; the race scans of deeper
            // nodes add the rest on demand.
            [awake[0]].into()
        } else {
            awake.iter().copied().collect()
        };
        let depth = self.nodes.len();
        self.nodes.push(Node {
            backtrack,
            done: BTreeSet::new(),
            sleep,
            enabled,
        });
        loop {
            let p = {
                let node = &self.nodes[depth];
                node.backtrack
                    .iter()
                    .copied()
                    .find(|p| !node.done.contains(p) && !node.sleep.contains(p))
            };
            let Some(p) = p else { break };
            let step = *self.state.next_step(p).expect("backtracked thread enabled");
            // Child sleep set: threads asleep (or already explored) here
            // stay asleep below p's step iff they commute with it. The
            // exhaustive baseline uses no sleep sets at all.
            let child_sleep: BTreeSet<usize> = if self.cfg.dpor {
                let node = &self.nodes[depth];
                node.sleep
                    .iter()
                    .chain(node.done.iter())
                    .copied()
                    .filter(|&q| match self.state.next_step(q) {
                        Some(qs) => !dependent(qs, &step),
                        None => false,
                    })
                    .collect()
            } else {
                BTreeSet::new()
            };
            let clock = self.event_clock(p, &step);
            let nchoices = self.state.choice_count(p);
            for choice in 0..nchoices {
                if !self.budget_ok() {
                    break;
                }
                // Save the dependency-clock state this transition mutates.
                use crate::memmodel::Access;
                let saved_dep = self.dep[p].clone();
                let saved_cell = match step.access() {
                    Access::Read(x) => Some((x, self.all_access[x].clone(), None)),
                    Access::Write(x) => Some((
                        x,
                        self.all_access[x].clone(),
                        Some(self.last_write[x].clone()),
                    )),
                    _ => None,
                };
                let saved_sc = self.last_sc.clone();
                self.dep[p] = clock.clone();
                match step.access() {
                    Access::Read(x) => join(&mut self.all_access[x], &clock),
                    Access::Write(x) => {
                        join(&mut self.all_access[x], &clock);
                        self.last_write[x] = clock.clone();
                    }
                    Access::ScFence => self.last_sc = clock.clone(),
                    Access::Local => {}
                }
                if matches!(
                    step,
                    Step::Load {
                        ord: MemOrd::SeqCst,
                        ..
                    } | Step::Store {
                        ord: MemOrd::SeqCst,
                        ..
                    } | Step::Rmw {
                        ord: MemOrd::SeqCst,
                        ..
                    } | Step::Cas {
                        ord: MemOrd::SeqCst,
                        ..
                    }
                ) {
                    self.last_sc = clock.clone();
                }
                self.trace.push(TraceEntry {
                    thread: p,
                    step,
                    clock: clock.clone(),
                });
                let undo = self.state.apply(p, choice, &mut self.out.races);
                self.out.transitions += 1;
                self.dfs(child_sleep.clone());
                self.state.undo(undo);
                self.trace.pop();
                self.dep[p] = saved_dep;
                if let Some((x, all, lw)) = saved_cell {
                    self.all_access[x] = all;
                    if let Some(lw) = lw {
                        self.last_write[x] = lw;
                    }
                }
                self.last_sc = saved_sc;
            }
            self.nodes[depth].done.insert(p);
            if self.out.budget_exceeded {
                break;
            }
        }
        self.nodes.pop();
    }
}

/// Explore every reads-from-consistent execution of `machine`, calling
/// `check` on each completed final state; returned violation messages
/// are collected (deduplicated) into the outcome.
pub fn explore(
    machine: &Machine,
    cfg: &ExploreCfg,
    check: &dyn Fn(&FinalState<'_>) -> Vec<String>,
) -> ExploreOutcome {
    let n_threads = machine.threads.len();
    let n_cells = machine.cells.len();
    let mut ex = Explorer {
        state: ExecState::new(machine),
        cfg,
        check,
        out: ExploreOutcome {
            executions: 0,
            transitions: 0,
            sleep_prunes: 0,
            budget_exceeded: false,
            violations: BTreeSet::new(),
            races: BTreeSet::new(),
            finals: if cfg.collect_finals {
                Some(BTreeSet::new())
            } else {
                None
            },
        },
        nodes: Vec::new(),
        trace: Vec::new(),
        dep: vec![vec![0; n_threads]; n_threads],
        last_write: vec![vec![0; n_threads]; n_cells],
        all_access: vec![vec![0; n_threads]; n_cells],
        last_sc: vec![0; n_threads],
        started: Instant::now(),
    };
    ex.dfs(BTreeSet::new());
    ex.out
}

// ---------------------------------------------------------------------------
// Machine catalog: the shipped protocols, modeled.
// ---------------------------------------------------------------------------

/// A certified model: one machine, the SA code its invariant belongs
/// to, and the invariant check run on every final state.
pub struct ModelSpec {
    /// Display name (`structure.protocol`), used as diagnostic context.
    pub name: &'static str,
    /// The SA code a violation of this machine's invariant carries.
    pub code: &'static str,
    /// The machine.
    pub machine: Machine,
    /// Invariant check: violation messages for a final state.
    pub check: fn(&FinalState<'_>) -> Vec<String>,
}

const RLX: MemOrd = MemOrd::Relaxed;

fn rmw(cell: usize, op: RmwOp, v: u64, ord: MemOrd) -> Step {
    Step::Rmw {
        cell,
        op,
        val: Operand::Const(v),
        ord,
    }
}

fn store(cell: usize, v: u64, ord: MemOrd) -> Step {
    Step::Store {
        cell,
        val: Operand::Const(v),
        ord,
    }
}

fn load(cell: usize, reg: usize, ord: MemOrd) -> Step {
    Step::Load { cell, reg, ord }
}

/// `split-telemetry` `Counter::add`: three threads of relaxed
/// `fetch_add`s; the final value must equal the arithmetic sum
/// (SA201 — lost update).
fn counter_machine() -> Machine {
    Machine {
        cells: vec![0],
        threads: (1..=3u64)
            .map(|d| vec![rmw(0, RmwOp::Add, d, RLX); 3])
            .collect(),
    }
}

fn counter_check(fs: &FinalState<'_>) -> Vec<String> {
    if fs.cells[0] == 18 {
        vec![]
    } else {
        vec![format!(
            "lost update: final counter {} != 18 (3 threads x 3 adds of 1/2/3)",
            fs.cells[0]
        )]
    }
}

/// The racy counter negative fixture: the RMW torn into a relaxed load
/// plus a store of `register + delta` — the lost-update bug SA201
/// exists to catch.
fn racy_counter_machine() -> Machine {
    let torn = |delta: u64| {
        vec![
            load(0, 0, RLX),
            Step::Store {
                cell: 0,
                val: Operand::RegPlus(0, delta),
                ord: RLX,
            },
        ]
    };
    Machine {
        cells: vec![0],
        threads: vec![torn(1), torn(2)],
    }
}

fn racy_counter_check(fs: &FinalState<'_>) -> Vec<String> {
    if fs.cells[0] == 3 {
        vec![]
    } else {
        vec![format!(
            "lost update: final counter {} != 3 (torn read-modify-write)",
            fs.cells[0]
        )]
    }
}

/// `Histogram::record`: two threads record one sample each (count, sum,
/// max, min, own bucket — all relaxed RMWs). Final aggregates must be
/// exact (SA201).
fn histogram_machine() -> Machine {
    // cells: 0=count 1=sum 2=max 3=min 4=bucket_a 5=bucket_b
    let record = |v: u64, bucket: usize| {
        vec![
            rmw(0, RmwOp::Add, 1, RLX),
            rmw(1, RmwOp::Add, v, RLX),
            rmw(2, RmwOp::Max, v, RLX),
            rmw(3, RmwOp::Min, v, RLX),
            rmw(bucket, RmwOp::Add, 1, RLX),
        ]
    };
    Machine {
        cells: vec![0, 0, 0, u64::MAX, 0, 0],
        threads: vec![record(7, 4), record(1000, 5)],
    }
}

fn histogram_check(fs: &FinalState<'_>) -> Vec<String> {
    let mut v = Vec::new();
    let c = &fs.cells;
    if c[0] != 2 || c[1] != 1007 || c[2] != 1000 || c[3] != 7 || c[4] != 1 || c[5] != 1 {
        v.push(format!(
            "histogram aggregates wrong: count={} sum={} max={} min={} buckets=({},{})",
            c[0], c[1], c[2], c[3], c[4], c[5]
        ));
    }
    v
}

/// `Counter::get` monotonicity: a reader polling a relaxed counter that
/// only grows must never observe it moving backwards, even though each
/// relaxed load may be stale (SA202). Per-location coherence makes this
/// hold — the model proves the primitive needs no stronger ordering.
fn snapshot_machine() -> Machine {
    Machine {
        cells: vec![0],
        threads: vec![
            vec![rmw(0, RmwOp::Add, 1, RLX); 3],
            vec![
                load(0, 0, RLX),
                Step::Log { reg: 0 },
                load(0, 0, RLX),
                Step::Log { reg: 0 },
                load(0, 0, RLX),
                Step::Log { reg: 0 },
            ],
        ],
    }
}

fn snapshot_check(fs: &FinalState<'_>) -> Vec<String> {
    let log = fs.logs[1];
    if log.windows(2).any(|w| w[0] > w[1]) {
        vec![format!("snapshot moved backwards: observed {log:?}")]
    } else {
        vec![]
    }
}

/// `Histogram::merge` order-independence: two threads fold disjoint
/// shard aggregates into the global histogram concurrently; the result
/// must not depend on merge order (SA203).
fn merge_machine() -> Machine {
    // cells: 0=count 1=sum 2=max (shards: {2 samples,sum 50,max 30} and
    // {3 samples,sum 70,max 40})
    let fold = |n: u64, sum: u64, max: u64| {
        vec![
            rmw(0, RmwOp::Add, n, RLX),
            rmw(1, RmwOp::Add, sum, RLX),
            rmw(2, RmwOp::Max, max, RLX),
        ]
    };
    Machine {
        cells: vec![0, 0, 0],
        threads: vec![fold(2, 50, 30), fold(3, 70, 40)],
    }
}

fn merge_check(fs: &FinalState<'_>) -> Vec<String> {
    let c = &fs.cells;
    if c[0] != 5 || c[1] != 120 || c[2] != 40 {
        vec![format!(
            "merge result depends on order: count={} sum={} max={}",
            c[0], c[1], c[2]
        )]
    } else {
        vec![]
    }
}

/// Cell layout of the cache machines: per key `k` of `keys`, `slot_k`
/// (0 = empty, 1 = pending, 2 = ready) at `k` and `measured_k` at
/// `keys + k`; then `misses` and `hits`.
struct CacheCells {
    keys: usize,
    calls: usize,
}

impl CacheCells {
    fn slot(&self, k: usize) -> usize {
        k
    }
    fn measured(&self, k: usize) -> usize {
        self.keys + k
    }
    fn misses(&self) -> usize {
        2 * self.keys
    }
    fn hits(&self) -> usize {
        2 * self.keys + 1
    }
    fn cells(&self) -> Vec<u64> {
        vec![0; 2 * self.keys + 2]
    }
}

/// One `ProfileCache::profile` caller for key `k`, claim-then-measure:
/// fast-path acquire check, CAS claim of the empty slot, measure once,
/// release-publish, losers count a hit.
fn cache_caller(c: &CacheCells, k: usize) -> Vec<Step> {
    vec![
        // 0: fast path — already published?
        load(c.slot(k), 0, MemOrd::Acquire),
        Step::JumpIfReg {
            reg: 0,
            val: Operand::Const(2),
            eq: true,
            target: 8,
        },
        // 2: claim the empty slot
        Step::Cas {
            cell: c.slot(k),
            expect: 0,
            set: 1,
            ord: MemOrd::AcqRel,
            orelse: 8,
        },
        // 3: winner — measure exactly once, publish with Release
        rmw(c.misses(), RmwOp::Add, 1, RLX),
        rmw(c.measured(k), RmwOp::Add, 1, RLX),
        store(c.slot(k), 2, MemOrd::Release),
        Step::Jump { target: 9 },
        Step::Jump { target: 9 }, // 7: unused pad (keeps targets stable)
        // 8: loser/fast-path — count a hit
        rmw(c.hits(), RmwOp::Add, 1, RLX),
        // 9: end
    ]
}

/// The 16-shard `ProfileCache` claim-then-measure protocol under weak
/// memory: two keys, two concurrent callers per key. Exactly one caller
/// per key may measure (SA204), even though the fast-path load can be
/// stale — the CAS claim arbitrates.
fn cache_machine() -> Machine {
    let c = CacheCells { keys: 2, calls: 4 };
    Machine {
        cells: c.cells(),
        threads: vec![
            cache_caller(&c, 0),
            cache_caller(&c, 0),
            cache_caller(&c, 1),
            cache_caller(&c, 1),
        ],
    }
}

fn cache_check(fs: &FinalState<'_>) -> Vec<String> {
    cache_check_impl(fs, &CacheCells { keys: 2, calls: 4 })
}

fn cache_check_impl(fs: &FinalState<'_>, c: &CacheCells) -> Vec<String> {
    let mut v = Vec::new();
    for k in 0..c.keys {
        let m = fs.cells[c.measured(k)];
        if m != 1 {
            v.push(format!("candidate {k} measured {m} times (want exactly 1)"));
        }
        if fs.cells[c.slot(k)] != 2 {
            v.push(format!(
                "slot {k} finished in state {} (want 2 = ready)",
                fs.cells[c.slot(k)]
            ));
        }
    }
    let (misses, hits) = (fs.cells[c.misses()], fs.cells[c.hits()]);
    if misses != c.keys as u64 {
        v.push(format!(
            "misses {} != distinct candidates {}",
            misses, c.keys
        ));
    }
    if hits != (c.calls - c.keys) as u64 {
        v.push(format!(
            "hits {} != calls - candidates {}",
            hits,
            c.calls - c.keys
        ));
    }
    v
}

fn small_cache_check(fs: &FinalState<'_>) -> Vec<String> {
    cache_check_impl(fs, &CacheCells { keys: 2, calls: 3 })
}

/// A three-caller ProfileCache machine (two contending on one key, one
/// on the other) small enough for full exhaustive DFS: the same
/// claim-then-measure protocol minus the fast-path pre-check (a pure
/// optimization — the CAS alone arbitrates). The catalog's four-caller
/// machine is exhaustively intractable — which is the point of DPOR —
/// so this is the machine the `dpor_equiv` suite proves the reduction
/// equivalent (and ≥5× smaller) on.
pub fn small_cache_spec() -> ModelSpec {
    let c = CacheCells { keys: 2, calls: 3 };
    let caller = |k: usize| {
        vec![
            Step::Cas {
                cell: c.slot(k),
                expect: 0,
                set: 1,
                ord: MemOrd::AcqRel,
                orelse: 5,
            },
            rmw(c.misses(), RmwOp::Add, 1, RLX),
            rmw(c.measured(k), RmwOp::Add, 1, RLX),
            store(c.slot(k), 2, MemOrd::Release),
            Step::Jump { target: 6 },
            // 5: loser — count a hit
            rmw(c.hits(), RmwOp::Add, 1, RLX),
            // 6: end
        ]
    };
    ModelSpec {
        name: "profiler.cache.small",
        code: "SA204",
        machine: Machine {
            cells: c.cells(),
            threads: vec![caller(0), caller(0), caller(1)],
        },
        check: small_cache_check,
    }
}

/// The pre-fix cache negative fixture: check-then-measure *without* the
/// CAS claim — two callers can both observe "empty" and measure twice
/// (SA204).
fn racy_cache_machine() -> Machine {
    let c = CacheCells { keys: 1, calls: 2 };
    let caller = vec![
        load(c.slot(0), 0, MemOrd::Acquire),
        Step::JumpIfReg {
            reg: 0,
            val: Operand::Const(2),
            eq: true,
            target: 6,
        },
        rmw(c.misses(), RmwOp::Add, 1, RLX),
        rmw(c.measured(0), RmwOp::Add, 1, RLX),
        store(c.slot(0), 2, MemOrd::Release),
        Step::Jump { target: 7 },
        // 6: hit path
        rmw(c.hits(), RmwOp::Add, 1, RLX),
        // 7: end
    ];
    Machine {
        cells: c.cells(),
        threads: vec![caller.clone(), caller],
    }
}

fn racy_cache_check(fs: &FinalState<'_>) -> Vec<String> {
    cache_check_impl(fs, &CacheCells { keys: 1, calls: 2 })
}

/// Seqlock cell layout: stamp at 0, two payload words at 1 and 2.
const STAMP: usize = 0;
const PAY_A: usize = 1;
const PAY_B: usize = 2;

/// One `FlightRing::record` of payload `(a, b)` into the slot whose
/// published stamp will be `even`: odd stamp (Relaxed), Release fence,
/// relaxed payload stores, even stamp (Release) — exactly the shipped
/// protocol (`crates/split-forensics/src/ring.rs`).
fn seqlock_write(even: u64, a: u64, b: u64, with_fence: bool) -> Vec<Step> {
    let mut p = vec![store(STAMP, even - 1, RLX)];
    if with_fence {
        p.push(Step::Fence {
            ord: MemOrd::Release,
        });
    }
    p.push(store(PAY_A, a, RLX));
    p.push(store(PAY_B, b, RLX));
    p.push(store(STAMP, even, MemOrd::Release));
    p
}

/// One `FlightRing::snapshot` read of the slot, expecting published
/// stamp `expect`: acquire stamp load, relaxed payload loads, Acquire
/// fence, relaxed stamp re-read, accept (log the payload) iff both
/// stamp reads saw `expect`.
fn seqlock_read(expect: u64) -> Vec<Step> {
    vec![
        load(STAMP, 0, MemOrd::Acquire),
        Step::JumpIfReg {
            reg: 0,
            val: Operand::Const(expect),
            eq: false,
            target: 9,
        },
        load(PAY_A, 1, RLX),
        load(PAY_B, 2, RLX),
        Step::Fence {
            ord: MemOrd::Acquire,
        },
        load(STAMP, 3, RLX),
        Step::JumpIfReg {
            reg: 3,
            val: Operand::Const(expect),
            eq: false,
            target: 9,
        },
        Step::Log { reg: 1 },
        Step::Log { reg: 2 },
        // 9: end
    ]
}

/// The `FlightRing` seqlock under reuse: one writer records twice into
/// the same slot; a concurrent reader tries to snapshot the *first*
/// record. An accepted snapshot must be exactly the first record's
/// payload — anything else is a torn record (SA205).
fn seqlock_machine(with_fence: bool) -> Machine {
    let mut writer = seqlock_write(2, 10, 11, with_fence);
    writer.extend(seqlock_write(4, 20, 21, with_fence));
    // Rebase the second record's jump-free program (no jumps inside, so
    // concatenation is safe).
    Machine {
        cells: vec![0, 0, 0],
        threads: vec![writer, seqlock_read(2)],
    }
}

fn seqlock_check(fs: &FinalState<'_>) -> Vec<String> {
    let log = fs.logs[1];
    match log {
        [] | [10, 11] => vec![],
        other => vec![format!(
            "torn record accepted: snapshot saw {other:?}, writer published (10,11) then (20,21)"
        )],
    }
}

/// Snapshot consistent-cut machine: a single record, and the invariant
/// that an accepted snapshot equals a payload the writer actually
/// published (SA206). The negative fixture swaps the odd/even stamp
/// order, so "published" marks a mid-write slot and the reader accepts
/// content that never existed.
fn snapshot_cut_machine(swapped: bool) -> Machine {
    let writer = if swapped {
        // Buggy parity: even ("published") stamp written *before* the
        // payload, odd after.
        vec![
            store(STAMP, 2, RLX),
            Step::Fence {
                ord: MemOrd::Release,
            },
            store(PAY_A, 10, RLX),
            store(PAY_B, 11, RLX),
            store(STAMP, 1, MemOrd::Release),
        ]
    } else {
        seqlock_write(2, 10, 11, true)
    };
    Machine {
        cells: vec![0, 0, 0],
        threads: vec![writer, seqlock_read(2)],
    }
}

fn snapshot_cut_check(fs: &FinalState<'_>) -> Vec<String> {
    let log = fs.logs[1];
    match log {
        [] | [10, 11] => vec![],
        other => vec![format!(
            "snapshot is not a cut of the published history: accepted {other:?}, \
             published payloads are exactly {{(10,11)}}"
        )],
    }
}

/// Message passing, the synchronization skeleton every publish path in
/// the workspace reduces to: a `Plain` (non-atomic) payload guarded by
/// an atomic flag. With Release/Acquire on the flag the payload pair is
/// happens-before ordered — no SA210 race, and the reader sees the
/// value. The negative fixture downgrades both flag accesses to
/// Relaxed, leaving the plain accesses unsynchronized.
fn message_passing_machine(ordered: bool) -> Machine {
    let (st, ld) = if ordered {
        (MemOrd::Release, MemOrd::Acquire)
    } else {
        (RLX, RLX)
    };
    Machine {
        cells: vec![0, 0], // data, flag
        threads: vec![
            vec![store(0, 42, MemOrd::Plain), store(1, 1, st)],
            vec![
                load(1, 0, ld),
                Step::JumpIfReg {
                    reg: 0,
                    val: Operand::Const(1),
                    eq: false,
                    target: 4,
                },
                load(0, 1, MemOrd::Plain),
                Step::Log { reg: 1 },
            ],
        ],
    }
}

fn message_passing_check(fs: &FinalState<'_>) -> Vec<String> {
    let log = fs.logs[1];
    match log {
        [] | [42] => vec![],
        other => vec![format!("reader observed unpublished payload {other:?}")],
    }
}

// Combining-core handoff cell layout: the combiner lock, one
// pre-published slot, the scheduler queue depth, and a pass counter.
const CB_LOCK: usize = 0;
const CB_SLOT: usize = 1;
const CB_Q: usize = 2;
const CB_WINS: usize = 3;

/// The `CombiningCore` lock handoff (`crates/split-runtime/src/combiner.rs`):
/// two threads race to become the combiner over one already-published
/// slot (`CB_SLOT` starts at 1 = PUBLISHED). The winner CASes the lock
/// (AcqRel), bumps the pass counter, consumes the slot if still
/// published (Acquire read, Release consume), appends to the scheduler
/// queue (plain-shaped Relaxed load/store pair — the queue is ordinary
/// data guarded by the lock), and Release-stores the lock free.
///
/// Invariant (SA207): the slot ends consumed exactly once, the lock
/// ends free, and the queue depth equals the number of combiner passes
/// — the second combiner must see everything the first one did through
/// the Release unlock / AcqRel lock edge.
fn combiner_handoff_machine() -> Machine {
    let contender = vec![
        Step::Cas {
            cell: CB_LOCK,
            expect: 0,
            set: 1,
            ord: MemOrd::AcqRel,
            orelse: 8, // try_lock failed: someone else is combining
        },
        rmw(CB_WINS, RmwOp::Add, 1, MemOrd::SeqCst),
        load(CB_SLOT, 0, MemOrd::Acquire),
        Step::JumpIfReg {
            reg: 0,
            val: Operand::Const(1),
            eq: false,
            target: 5, // already consumed by the previous combiner
        },
        store(CB_SLOT, 2, MemOrd::Release),
        load(CB_Q, 1, RLX),
        Step::Store {
            cell: CB_Q,
            val: Operand::RegPlus(1, 1),
            ord: RLX,
        },
        store(CB_LOCK, 0, MemOrd::Release),
        // 8: end
    ];
    Machine {
        cells: vec![0, 1, 0, 0],
        threads: vec![contender.clone(), contender],
    }
}

fn combiner_handoff_check(fs: &FinalState<'_>) -> Vec<String> {
    let mut v = Vec::new();
    let (lock, slot, q, wins) = (
        fs.cells[CB_LOCK],
        fs.cells[CB_SLOT],
        fs.cells[CB_Q],
        fs.cells[CB_WINS],
    );
    if wins == 0 {
        v.push("no thread ever won the combiner CAS".to_string());
    }
    if slot != 2 {
        v.push(format!(
            "published slot lost: final state {slot} (want 2 = consumed exactly once)"
        ));
    }
    if lock != 0 {
        v.push(format!("combiner lock leaked: final state {lock}"));
    }
    if q != wins {
        v.push(format!(
            "lost queued request across the lock handoff: queue depth {q} after {wins} combiner passes"
        ));
    }
    v
}

/// SA207 fixture: a publisher whose `try_lock` fails simply gives up —
/// the real protocol's post-publish recheck (and the combiner's
/// post-unlock recheck) are both deleted. The current combiner can scan
/// before the publish lands and the slot is then never consumed.
fn combiner_no_recheck_machine() -> Machine {
    let publisher = vec![
        store(CB_SLOT, 1, MemOrd::SeqCst),
        Step::Cas {
            cell: CB_LOCK,
            expect: 0,
            set: 1,
            ord: MemOrd::AcqRel,
            orelse: 7, // bug: no recheck, no handoff — the slot is stranded
        },
        load(CB_SLOT, 0, MemOrd::Acquire),
        Step::JumpIfReg {
            reg: 0,
            val: Operand::Const(1),
            eq: false,
            target: 5,
        },
        store(CB_SLOT, 2, MemOrd::Release),
        store(CB_LOCK, 0, MemOrd::Release),
        // 7: end
    ];
    let combiner = vec![
        Step::Cas {
            cell: CB_LOCK,
            expect: 0,
            set: 1,
            ord: MemOrd::AcqRel,
            orelse: 6,
        },
        load(CB_SLOT, 0, MemOrd::Acquire),
        Step::JumpIfReg {
            reg: 0,
            val: Operand::Const(1),
            eq: false,
            target: 4,
        },
        store(CB_SLOT, 2, MemOrd::Release),
        store(CB_LOCK, 0, MemOrd::Release),
        // 6: end (no post-unlock recheck)
    ];
    Machine {
        cells: vec![0, 0],
        threads: vec![publisher, combiner],
    }
}

fn combiner_no_recheck_check(fs: &FinalState<'_>) -> Vec<String> {
    if fs.cells[CB_SLOT] == 1 {
        vec![
            "lost published slot: a request was published but no combiner ever consumed it"
                .to_string(),
        ]
    } else {
        vec![]
    }
}

/// SA207 fixture: two drains run without taking the combiner lock at
/// all. Both can Acquire-read the slot as PUBLISHED before either marks
/// it consumed, so one operation is applied twice.
fn combiner_unlocked_drain_machine() -> Machine {
    let drain = vec![
        load(CB_SLOT, 0, MemOrd::Acquire),
        Step::JumpIfReg {
            reg: 0,
            val: Operand::Const(1),
            eq: false,
            target: 4,
        },
        rmw(CB_Q, RmwOp::Add, 1, RLX),
        store(CB_SLOT, 2, MemOrd::Release),
        // 4: end
    ];
    Machine {
        cells: vec![0, 1, 0], // lock (unused), slot = PUBLISHED, consume count
        threads: vec![drain.clone(), drain],
    }
}

fn combiner_unlocked_drain_check(fs: &FinalState<'_>) -> Vec<String> {
    if fs.cells[CB_Q] == 2 {
        vec!["published operation consumed twice by racing unlocked drains".to_string()]
    } else {
        vec![]
    }
}

/// SA207 fixture: the handoff with the lock CAS and unlock store
/// downgraded to Relaxed. Mutual exclusion still holds (CAS success
/// reads the modification-order maximum) but nothing synchronizes, so
/// the second combiner can read a stale queue depth and lose the first
/// combiner's enqueue. Cells: lock, queue depth, pass counter.
fn combiner_relaxed_handoff_machine() -> Machine {
    let contender = vec![
        Step::Cas {
            cell: 0,
            expect: 0,
            set: 1,
            ord: RLX, // bug: no acquire on lock entry
            orelse: 5,
        },
        rmw(2, RmwOp::Add, 1, MemOrd::SeqCst),
        load(1, 0, RLX),
        Step::Store {
            cell: 1,
            val: Operand::RegPlus(0, 1),
            ord: RLX,
        },
        store(0, 0, RLX), // bug: no release on unlock
                          // 5: end
    ];
    Machine {
        cells: vec![0, 0, 0],
        threads: vec![contender.clone(), contender],
    }
}

fn combiner_relaxed_handoff_check(fs: &FinalState<'_>) -> Vec<String> {
    let (q, wins) = (fs.cells[1], fs.cells[2]);
    if q != wins {
        vec![format!(
            "lost queued request: queue depth {q} after {wins} combiner passes"
        )]
    } else {
        vec![]
    }
}

// Slot round-trip cell layout: request word, slot state
// (0 = FREE, 1 = PUBLISHED, 2 = CONSUMED), response word.
const RT_REQ: usize = 0;
const RT_STATE: usize = 1;
const RT_RESP: usize = 2;

/// One client/combiner slot round trip (`CombiningCore::submit`): the
/// client writes its request (plain), publishes with a Release state
/// store, then Acquire-polls the state once; if it reads CONSUMED it
/// logs the response. The combiner Acquire-reads the state, and if
/// PUBLISHED computes `request + 100`, writes the response (plain), and
/// Release-stores CONSUMED.
///
/// Invariant (SA208): an observed response is exactly the one computed
/// for this client's request — 142 for request 42, never a stale or
/// torn value.
fn slot_roundtrip_machine(publish_ord: MemOrd, consume_ord: MemOrd) -> Machine {
    // The bug knobs: `publish_ord` weakens the client's publish edge
    // (request → combiner), `consume_ord` weakens the combiner's
    // consume edge (response → client). `Release`/`Release` is the
    // shipped protocol. The weakened sides keep their payload accesses
    // atomic-Relaxed so the fixture stays race-free and fires SA208
    // alone, not SA210.
    let publish_weak = publish_ord == RLX;
    let consume_weak = consume_ord == RLX;
    let pay = |weak: bool| if weak { RLX } else { MemOrd::Plain };
    let client = vec![
        Step::Store {
            cell: RT_REQ,
            val: Operand::Const(42),
            ord: pay(publish_weak),
        },
        store(RT_STATE, 1, publish_ord),
        load(
            RT_STATE,
            0,
            if consume_weak { RLX } else { MemOrd::Acquire },
        ),
        Step::JumpIfReg {
            reg: 0,
            val: Operand::Const(2),
            eq: false,
            target: 6,
        },
        load(RT_RESP, 1, pay(consume_weak)),
        Step::Log { reg: 1 },
        // 6: end
    ];
    let combiner = vec![
        load(RT_STATE, 0, MemOrd::Acquire),
        Step::JumpIfReg {
            reg: 0,
            val: Operand::Const(1),
            eq: false,
            target: 5,
        },
        load(RT_REQ, 1, pay(publish_weak)),
        Step::Store {
            cell: RT_RESP,
            val: Operand::RegPlus(1, 100),
            ord: pay(consume_weak),
        },
        store(RT_STATE, 2, consume_ord),
        // 5: end
    ];
    Machine {
        cells: vec![0, 0, 0],
        threads: vec![client, combiner],
    }
}

fn slot_roundtrip_check(fs: &FinalState<'_>) -> Vec<String> {
    let log = fs.logs[0];
    match log {
        [] | [142] => vec![],
        other => vec![format!(
            "stale response: client observed {other:?}, the combiner writes exactly 142 \
             for request 42"
        )],
    }
}

/// SA210 fixture: the slot payload left plain while both state accesses
/// are Relaxed — the request word races between client and combiner.
fn slot_plain_payload_machine() -> Machine {
    Machine {
        cells: vec![0, 0],
        threads: vec![
            vec![
                Step::Store {
                    cell: RT_REQ,
                    val: Operand::Const(42),
                    ord: MemOrd::Plain,
                },
                store(RT_STATE, 1, RLX),
            ],
            vec![
                load(RT_STATE, 0, RLX),
                Step::JumpIfReg {
                    reg: 0,
                    val: Operand::Const(1),
                    eq: false,
                    target: 3,
                },
                load(RT_REQ, 1, MemOrd::Plain),
            ],
        ],
    }
}

fn no_check(_: &FinalState<'_>) -> Vec<String> {
    vec![]
}

/// The shipped-protocol catalog: every machine `analyze` certifies,
/// each clean under all reads-from-consistent executions.
pub fn catalog() -> Vec<ModelSpec> {
    vec![
        ModelSpec {
            name: "telemetry.counter",
            code: "SA201",
            machine: counter_machine(),
            check: counter_check,
        },
        ModelSpec {
            name: "telemetry.histogram.record",
            code: "SA201",
            machine: histogram_machine(),
            check: histogram_check,
        },
        ModelSpec {
            name: "telemetry.snapshot",
            code: "SA202",
            machine: snapshot_machine(),
            check: snapshot_check,
        },
        ModelSpec {
            name: "telemetry.histogram.merge",
            code: "SA203",
            machine: merge_machine(),
            check: merge_check,
        },
        ModelSpec {
            name: "profiler.cache",
            code: "SA204",
            machine: cache_machine(),
            check: cache_check,
        },
        ModelSpec {
            name: "forensics.flightring.seqlock",
            code: "SA205",
            machine: seqlock_machine(true),
            check: seqlock_check,
        },
        ModelSpec {
            name: "forensics.flightring.cut",
            code: "SA206",
            machine: snapshot_cut_machine(false),
            check: snapshot_cut_check,
        },
        ModelSpec {
            name: "runtime.combiner.handoff",
            code: "SA207",
            machine: combiner_handoff_machine(),
            check: combiner_handoff_check,
        },
        ModelSpec {
            name: "runtime.combiner.slot_roundtrip",
            code: "SA208",
            machine: slot_roundtrip_machine(MemOrd::Release, MemOrd::Release),
            check: slot_roundtrip_check,
        },
        ModelSpec {
            name: "sync.message_passing",
            code: "SA210",
            machine: message_passing_machine(true),
            check: message_passing_check,
        },
    ]
}

/// The racy negative fixtures: each re-introduces exactly the bug class
/// its SA code names. Exercised by tests only — never by `analyze`.
pub fn negative_fixtures() -> Vec<ModelSpec> {
    vec![
        ModelSpec {
            name: "fixture.torn_counter",
            code: "SA201",
            machine: racy_counter_machine(),
            check: racy_counter_check,
        },
        ModelSpec {
            name: "fixture.unclaimed_cache",
            code: "SA204",
            machine: racy_cache_machine(),
            check: racy_cache_check,
        },
        ModelSpec {
            name: "fixture.seqlock_no_release_fence",
            code: "SA205",
            machine: seqlock_machine(false),
            check: seqlock_check,
        },
        ModelSpec {
            name: "fixture.seqlock_swapped_stamps",
            code: "SA206",
            machine: snapshot_cut_machine(true),
            check: snapshot_cut_check,
        },
        ModelSpec {
            name: "fixture.relaxed_flag_pair",
            code: "SA210",
            machine: message_passing_machine(false),
            check: no_check,
        },
        ModelSpec {
            name: "fixture.combiner_no_recheck",
            code: "SA207",
            machine: combiner_no_recheck_machine(),
            check: combiner_no_recheck_check,
        },
        ModelSpec {
            name: "fixture.combiner_unlocked_drain",
            code: "SA207",
            machine: combiner_unlocked_drain_machine(),
            check: combiner_unlocked_drain_check,
        },
        ModelSpec {
            name: "fixture.combiner_relaxed_handoff",
            code: "SA207",
            machine: combiner_relaxed_handoff_machine(),
            check: combiner_relaxed_handoff_check,
        },
        ModelSpec {
            name: "fixture.slot_relaxed_publish",
            code: "SA208",
            machine: slot_roundtrip_machine(RLX, MemOrd::Release),
            check: slot_roundtrip_check,
        },
        ModelSpec {
            name: "fixture.slot_relaxed_consume",
            code: "SA208",
            machine: slot_roundtrip_machine(MemOrd::Release, RLX),
            check: slot_roundtrip_check,
        },
        ModelSpec {
            name: "fixture.slot_plain_payload",
            code: "SA210",
            machine: slot_plain_payload_machine(),
            check: no_check,
        },
    ]
}

// ---------------------------------------------------------------------------
// Suite entry point.
// ---------------------------------------------------------------------------

/// Model-checking budget applied to each machine of the catalog.
#[derive(Debug, Clone, Copy)]
pub struct McBudget {
    /// Per-machine transition ceiling (`SA200` when hit).
    pub max_transitions: u64,
    /// Per-machine wall-clock cap in milliseconds (`SA200` when hit).
    pub wall_ms: u64,
}

impl Default for McBudget {
    fn default() -> Self {
        // Generous for the shipped catalog (largest machine is ~200k
        // transitions under DPOR) while still failing loudly — long
        // before a CI timeout — if a future machine explodes.
        Self {
            max_transitions: 5_000_000,
            wall_ms: 60_000,
        }
    }
}

/// Per-machine exploration statistics, surfaced in reports, the CLI
/// `--json` output, and the CI job log.
#[derive(Debug, Clone)]
pub struct MachineStats {
    /// Machine name from the [`catalog`].
    pub name: &'static str,
    /// The SA code the machine certifies.
    pub code: &'static str,
    /// Completed executions.
    pub executions: u64,
    /// Applied transitions (states explored).
    pub transitions: u64,
    /// Sleep-set prunes (redundant subtrees skipped by DPOR).
    pub sleep_prunes: u64,
    /// Whether the budget ran out (also reported as `SA200`).
    pub budget_exceeded: bool,
    /// Wall-clock milliseconds spent on this machine.
    pub wall_ms: u64,
}

/// Run the whole catalog (optionally filtered to the SA codes in
/// `only`) under DPOR with the given per-machine budget. Returns the
/// findings plus per-machine statistics.
pub fn check_models(budget: McBudget, only: Option<&[String]>) -> (Report, Vec<MachineStats>) {
    let mut report = Report::new();
    let mut stats = Vec::new();
    for spec in catalog() {
        if let Some(filter) = only {
            if !filter.iter().any(|c| c.eq_ignore_ascii_case(spec.code)) {
                continue;
            }
        }
        let cfg = ExploreCfg {
            dpor: true,
            max_transitions: budget.max_transitions,
            wall_ms: budget.wall_ms,
            collect_finals: false,
        };
        let t0 = Instant::now();
        let out = explore(&spec.machine, &cfg, &spec.check);
        let wall_ms = t0.elapsed().as_millis() as u64;
        for v in &out.violations {
            report
                .push(Diagnostic::error(spec.code, spec.name, v).with_help(
                    "reachable under the C11 release/acquire axioms; see DESIGN.md §14",
                ));
        }
        for r in &out.races {
            report.push(
                Diagnostic::error(
                    "SA210",
                    spec.name,
                    format!(
                        "data race on cell {}: thread {} pc {} ({}) vs thread {} pc {} ({}), \
                         unordered by happens-before",
                        r.cell,
                        r.a.0,
                        r.a.1,
                        if r.a.2 { "write" } else { "read" },
                        r.b.0,
                        r.b.1,
                        if r.b.2 { "write" } else { "read" },
                    ),
                )
                .with_help("at least one access is non-atomic; add an ordering or make it atomic"),
            );
        }
        if out.budget_exceeded {
            report.push(
                Diagnostic::error(
                    "SA200",
                    spec.name,
                    format!(
                        "model-checking budget exhausted after {} transitions / {} ms \
                         (ceiling {} transitions, {} ms): the state space was not covered",
                        out.transitions, wall_ms, budget.max_transitions, budget.wall_ms
                    ),
                )
                .with_help("shrink the machine or raise --mc-budget / --mc-wall-ms"),
            );
        }
        stats.push(MachineStats {
            name: spec.name,
            code: spec.code,
            executions: out.executions,
            transitions: out.transitions,
            sleep_prunes: out.sleep_prunes,
            budget_exceeded: out.budget_exceeded,
            wall_ms,
        });
    }
    (report, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(machine: &Machine, check: fn(&FinalState<'_>) -> Vec<String>) -> ExploreOutcome {
        explore(machine, &ExploreCfg::default(), &check)
    }

    #[test]
    fn catalog_is_clean_under_dpor() {
        for spec in catalog() {
            let out = run(&spec.machine, spec.check);
            assert!(!out.budget_exceeded, "{} blew the budget", spec.name);
            assert!(
                out.violations.is_empty(),
                "{}: {:?}",
                spec.name,
                out.violations
            );
            assert!(out.races.is_empty(), "{}: {:?}", spec.name, out.races);
        }
    }

    #[test]
    fn every_negative_fixture_fires() {
        for spec in negative_fixtures() {
            let out = run(&spec.machine, spec.check);
            let fired = !out.violations.is_empty() || !out.races.is_empty();
            assert!(fired, "{} found nothing", spec.name);
        }
    }

    #[test]
    fn seqlock_without_fence_tears() {
        let out = run(&seqlock_machine(false), seqlock_check);
        assert!(
            out.violations.iter().any(|v| v.contains("torn record")),
            "{:?}",
            out.violations
        );
        assert!(
            out.races.is_empty(),
            "seqlock fixture is race-free (all atomics)"
        );
    }

    #[test]
    fn swapped_stamps_break_the_cut() {
        let out = run(&snapshot_cut_machine(true), snapshot_cut_check);
        assert!(
            out.violations.iter().any(|v| v.contains("not a cut")),
            "{:?}",
            out.violations
        );
        assert!(out.races.is_empty());
    }

    #[test]
    fn relaxed_flag_pair_races() {
        let out = run(&message_passing_machine(false), no_check);
        assert_eq!(out.races.len(), 1, "{:?}", out.races);
        assert_eq!(out.races.first().unwrap().cell, 0);
    }

    #[test]
    fn lost_slot_without_recheck() {
        let out = run(&combiner_no_recheck_machine(), combiner_no_recheck_check);
        assert!(
            out.violations
                .iter()
                .any(|v| v.contains("lost published slot")),
            "{:?}",
            out.violations
        );
        assert!(out.races.is_empty(), "all slot accesses are atomic");
    }

    #[test]
    fn unlocked_drains_double_consume() {
        let out = run(
            &combiner_unlocked_drain_machine(),
            combiner_unlocked_drain_check,
        );
        assert!(
            out.violations.iter().any(|v| v.contains("consumed twice")),
            "{:?}",
            out.violations
        );
        assert!(out.races.is_empty());
    }

    #[test]
    fn relaxed_handoff_loses_queued_requests() {
        let out = run(
            &combiner_relaxed_handoff_machine(),
            combiner_relaxed_handoff_check,
        );
        assert!(
            out.violations
                .iter()
                .any(|v| v.contains("lost queued request")),
            "{:?}",
            out.violations
        );
        assert!(out.races.is_empty(), "the broken lock is still all-atomic");
    }

    #[test]
    fn weak_slot_edges_yield_stale_responses() {
        for (publish, consume) in [(RLX, MemOrd::Release), (MemOrd::Release, RLX)] {
            let out = run(
                &slot_roundtrip_machine(publish, consume),
                slot_roundtrip_check,
            );
            assert!(
                out.violations.iter().any(|v| v.contains("stale response")),
                "publish={publish:?} consume={consume:?}: {:?}",
                out.violations
            );
            assert!(out.races.is_empty(), "weakened sides stay atomic-Relaxed");
        }
    }

    #[test]
    fn plain_slot_payload_races() {
        let out = run(&slot_plain_payload_machine(), no_check);
        assert!(!out.races.is_empty());
        assert!(
            out.races.iter().all(|r| r.cell == RT_REQ),
            "{:?}",
            out.races
        );
    }

    #[test]
    fn only_filter_selects_combiner_machines() {
        let (report, stats) = check_models(
            McBudget::default(),
            Some(&["SA207".to_string(), "SA208".to_string()]),
        );
        assert!(report.is_empty(), "{}", report.render_text());
        let names: Vec<&str> = stats.iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            [
                "runtime.combiner.handoff",
                "runtime.combiner.slot_roundtrip"
            ]
        );
    }

    #[test]
    fn budget_ceiling_reports_exceeded() {
        let cfg = ExploreCfg {
            max_transitions: 10,
            ..ExploreCfg::default()
        };
        let out = explore(&cache_machine(), &cfg, &cache_check);
        assert!(out.budget_exceeded);
        assert!(out.transitions <= 11);
    }

    #[test]
    fn check_models_is_clean_and_counts() {
        let (report, stats) = check_models(McBudget::default(), None);
        assert!(report.is_empty(), "{}", report.render_text());
        assert_eq!(stats.len(), catalog().len());
        assert!(stats.iter().all(|s| s.executions > 0));
    }

    #[test]
    fn only_filter_selects_machines() {
        let (report, stats) = check_models(McBudget::default(), Some(&["SA205".to_string()]));
        assert!(report.is_empty());
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].name, "forensics.flightring.seqlock");
    }
}
